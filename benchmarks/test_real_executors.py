"""Extension bench — real-executor scaling of the skeleton library.

The paper's portability claim is that skeletons retarget by swapping the
implementation of the compositional operators.  Here the target is the host
Python machine: the same ``farm`` runs on the sequential, thread-pool and
process-pool executors.  NumPy base-language fragments release the GIL, so
threads give real speedup for array work; the band note ("GIL limits true
parallel speedup") applies to pure-Python fragments, which we document by
benchmarking both kinds.

Results → ``benchmarks/results/real_executors.txt``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import write_table
from repro.core import ParArray, farm
from repro.runtime import SequentialExecutor, ThreadExecutor

JOBS = 8
MATRIX = 220


def _numpy_job(env, seed: int) -> float:
    """A GIL-releasing base-language fragment: dense matrix products."""
    r = np.random.default_rng(seed)
    a = r.standard_normal((MATRIX, MATRIX))
    for _ in range(3):
        a = a @ a
        a /= np.abs(a).max() + 1.0
    return float(a.sum())


def _python_job(env, seed: int) -> int:
    """A GIL-bound base-language fragment: pure-Python arithmetic."""
    acc = seed
    for i in range(120_000):
        acc = (acc * 1103515245 + 12345) % (1 << 31)
    return acc


@pytest.fixture(scope="module")
def jobs():
    return ParArray(list(range(JOBS)))


def _time_farm(fn, jobs, executor) -> float:
    start = time.perf_counter()
    farm(fn, None, jobs, executor=executor)
    return time.perf_counter() - start


def test_executor_scaling_report(benchmark, jobs, results_dir):
    rows = []
    seq_np = _time_farm(_numpy_job, jobs, SequentialExecutor())
    with ThreadExecutor(max_workers=4) as tex:
        thr_np = _time_farm(_numpy_job, jobs, tex)
    seq_py = _time_farm(_python_job, jobs, SequentialExecutor())
    with ThreadExecutor(max_workers=4) as tex:
        thr_py = _time_farm(_python_job, jobs, tex)

    rows.append(["numpy (GIL-releasing)", f"{seq_np:.3f}", f"{thr_np:.3f}",
                 f"{seq_np / max(thr_np, 1e-9):.2f}x"])
    rows.append(["pure python (GIL-bound)", f"{seq_py:.3f}", f"{thr_py:.3f}",
                 f"{seq_py / max(thr_py, 1e-9):.2f}x"])
    write_table(
        results_dir, "real_executors",
        f"Real executors: farm of {JOBS} jobs, sequential vs 4 threads",
        ["workload", "sequential (s)", "threads (s)", "speedup"],
        rows,
        notes=("NumPy fragments release the GIL and scale; pure-Python "
               "fragments do not — the documented CPython limitation."))

    # results must at least be correct on every executor
    with ThreadExecutor(max_workers=4) as tex:
        a = farm(_numpy_job, None, jobs, executor=None)
        b = farm(_numpy_job, None, jobs, executor=tex)
    assert a == b

    benchmark.pedantic(
        lambda: farm(_numpy_job, None, jobs, executor=None),
        rounds=2, iterations=1)


def test_farm_threads_bench(benchmark, jobs):
    with ThreadExecutor(max_workers=4) as tex:
        benchmark.pedantic(
            lambda: farm(_numpy_job, None, jobs, executor=tex),
            rounds=2, iterations=1)
