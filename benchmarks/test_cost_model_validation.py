"""Cost-model validation — does `estimate_cost` predict the simulator?

The optimiser accepts rewrites based on the analytic cost model
(`repro.scl.optimize`), not on simulation.  That is only defensible if the
model's *ranking* agrees with the machine.  This bench prices a suite of
expressions both ways on the same AP1000 constants and checks:

* every predicted/simulated ratio stays within one order of magnitude,
* the rank order of programs by predicted cost matches the simulated
  order (Spearman-style: counting inversions).

Results → ``benchmarks/results/cost_model_validation.txt``.
"""

from __future__ import annotations

import operator

import pytest

from benchmarks.conftest import write_table
from repro.core import ParArray
from repro.machine import AP1000, Hypercube, Machine
from repro.scl import (
    AlignFetch,
    Brdcast,
    Fetch,
    Fold,
    Map,
    Rotate,
    Scan,
    base_fragment,
    compose_nodes,
    estimate_cost,
    run_expression,
)

P = 16
FN_OPS = 200


@base_fragment(ops=FN_OPS)
def work(x):
    return x + 1


def _suite():
    return [
        ("map", Map(work)),
        ("map.map", compose_nodes(Map(work), Map(work))),
        ("rotate", Rotate(1)),
        ("rotate x4", compose_nodes(*[Rotate(1)] * 4)),
        ("fetch", Fetch(lambda i: (i * 3) % P)),
        ("map.alignfetch", compose_nodes(Map(lambda t: t[0] + t[1]),
                                         AlignFetch(lambda i: i ^ 1))),
        ("fold", Fold(operator.add)),
        ("scan", Scan(operator.add)),
        ("brdcast", Brdcast(7)),
        ("big pipeline", compose_nodes(Map(work), Rotate(2), Map(work),
                                       Fetch(lambda i: (i + 5) % P),
                                       Map(work))),
    ]


@pytest.fixture(scope="module")
def measurements():
    pa = ParArray(list(range(P)))
    rows = []
    for name, expr in _suite():
        predicted = estimate_cost(expr, n=P, spec=AP1000, fn_ops=FN_OPS).seconds
        _out, res = run_expression(expr, pa, Machine(Hypercube(4), spec=AP1000))
        rows.append((name, predicted, res.makespan))
    return rows


def _inversions(order_a, order_b):
    pos = {name: i for i, name in enumerate(order_b)}
    seq = [pos[name] for name in order_a]
    return sum(1 for i in range(len(seq)) for j in range(i + 1, len(seq))
               if seq[i] > seq[j])


def test_cost_model_validation(benchmark, measurements, results_dir):
    rows = [[name, f"{pred * 1e3:.3f}", f"{sim * 1e3:.3f}",
             f"{pred / sim:.2f}x"]
            for name, pred, sim in measurements]
    by_pred = [n for n, p, s in sorted(measurements, key=lambda r: r[1])]
    by_sim = [n for n, p, s in sorted(measurements, key=lambda r: r[2])]
    inv = _inversions(by_pred, by_sim)
    pairs = len(measurements) * (len(measurements) - 1) // 2
    write_table(
        results_dir, "cost_model_validation",
        f"Cost model vs simulator, {P} procs, {FN_OPS} ops/fragment (AP1000)",
        ["program", "predicted (ms)", "simulated (ms)", "ratio"],
        rows,
        notes=(f"Rank agreement: {pairs - inv}/{pairs} ordered pairs "
               f"({inv} inversions).  Communication programs match within "
               f"~1x; map-heavy programs are over-priced because the model "
               f"charges the paper's bulk-synchronous barrier per stage "
               f"while the data-flow compiler needs none — a conservative "
               f"bias, so model-accepted rewrites stay safe.  The decisive "
               f"comparisons (fuse or not) agree exactly — see "
               f"test_fusion_decisions_agree_with_simulation."))
    pa = ParArray(list(range(P)))
    benchmark(lambda: run_expression(Map(work), pa,
                                     Machine(Hypercube(4), spec=AP1000)))


def test_ratios_within_order_of_magnitude(measurements):
    for name, pred, sim in measurements:
        assert 0.1 < pred / sim < 10.0, (name, pred, sim)


def test_rank_agreement(measurements):
    """Better than chance overall; exact among communication programs
    (where the barrier bias cancels)."""
    by_pred = [n for n, p, s in sorted(measurements, key=lambda r: r[1])]
    by_sim = [n for n, p, s in sorted(measurements, key=lambda r: r[2])]
    pairs = len(measurements) * (len(measurements) - 1) // 2
    assert _inversions(by_pred, by_sim) <= pairs // 2

    comm_only = [r for r in measurements
                 if r[0] in ("rotate", "rotate x4", "fetch", "brdcast", "fold")]
    by_pred_c = [n for n, p, s in sorted(comm_only, key=lambda r: r[1])]
    by_sim_c = [n for n, p, s in sorted(comm_only, key=lambda r: r[2])]
    assert _inversions(by_pred_c, by_sim_c) <= 2


def test_model_never_underprices_map_stages(measurements):
    """The barrier term makes map predictions an upper bound."""
    data = {name: (pred, sim) for name, pred, sim in measurements}
    for name in ("map", "map.map", "big pipeline"):
        pred, sim = data[name]
        assert pred >= sim


def test_fusion_decisions_agree_with_simulation(measurements):
    """The specific comparisons the optimiser makes must agree."""
    data = {name: (pred, sim) for name, pred, sim in measurements}
    # map fusion: 2 maps vs 1
    assert (data["map"][0] < data["map.map"][0]) == \
        (data["map"][1] < data["map.map"][1])
    # rotation fusion: 4 rotations vs 1
    assert (data["rotate"][0] < data["rotate x4"][0]) == \
        (data["rotate"][1] < data["rotate x4"][1])
