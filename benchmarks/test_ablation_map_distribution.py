"""Ablation D (§4) — map distribution: ``foldr (f . g) = fold f . map g``.

"Clearly the left-hand side is not parallel as the combined function f . g
is not associative.  However, by splitting the foldr into a fold and map
the program becomes parallel" — the analogue of loop distribution.

We compare the inherently sequential fused right-fold with the distributed
fold-of-map on the simulated AP1000: the sequential form runs on one
processor in O(n); the parallel form does the map everywhere at once and a
log-p tree reduction.  Results → ``benchmarks/results/ablation_map_distribution.txt``.
"""

from __future__ import annotations

import operator

import pytest

from benchmarks.conftest import write_table
from repro.core import ParArray
from repro.machine import AP1000, Comm, Machine, collectives as C
from repro.scl import (
    FoldrFused,
    compose_nodes,
    default_engine,
    estimate_cost,
    evaluate,
)

P = 64
FN_OPS = 200  # per-element work of the base-language fragment g


def _machine_sequential_time() -> float:
    def prog(env):
        yield env.work(P * (FN_OPS + 2))
        return None

    return Machine(1, spec=AP1000).run(prog).makespan


def _machine_parallel_time() -> float:
    def prog(env):
        comm = Comm.world(env)
        yield env.work(FN_OPS)           # map g locally
        total = yield from C.reduce(comm, env.pid, operator.add)
        return total

    return Machine(P, spec=AP1000).run(prog).makespan


def test_ablation_map_distribution(benchmark, results_dir):
    g = lambda x: x * 2 + 1
    seq_prog = FoldrFused(operator.add, g, op_associative=True)
    par_prog, steps = default_engine().rewrite(seq_prog)
    assert [s.rule for s in steps] == ["map-distribution"]

    pa = ParArray(list(range(P)))
    assert evaluate(seq_prog, pa) == evaluate(par_prog, pa)

    c_seq = estimate_cost(seq_prog, n=P, spec=AP1000, fn_ops=FN_OPS)
    c_par = estimate_cost(par_prog, n=P, spec=AP1000, fn_ops=FN_OPS)
    assert c_par.seconds < c_seq.seconds

    t_seq = _machine_sequential_time()
    t_par = _machine_parallel_time()
    assert t_par < t_seq

    write_table(
        results_dir, "ablation_map_distribution",
        f"Ablation D: map distribution — {P} elements, {FN_OPS} ops/element",
        ["variant", "predicted (s)", "simulated (s)"],
        [["foldr (f.g)  [sequential]", f"{c_seq.seconds:.3e}", f"{t_seq:.3e}"],
         ["fold f . map g  [parallel]", f"{c_par.seconds:.3e}", f"{t_par:.3e}"],
         ["speedup", f"{c_seq.seconds / c_par.seconds:.1f}x",
          f"{t_seq / t_par:.1f}x"]],
        notes="The rewrite exposes parallelism hidden by the fused non-"
              "associative function (§4, loop-distribution analogue).")

    benchmark(lambda: evaluate(par_prog, pa))


def test_map_distribution_crossover(results_dir):
    """With trivial per-element work, latency makes the sequential form
    competitive — the crossover the cost-guided optimiser navigates."""
    seq_small = estimate_cost(
        FoldrFused(operator.add, lambda x: x, op_associative=True),
        n=32, spec=AP1000, fn_ops=1)
    par_small = estimate_cost(
        default_engine().rewrite(
            FoldrFused(operator.add, lambda x: x, op_associative=True))[0],
        n=32, spec=AP1000, fn_ops=1)
    assert seq_small.seconds < par_small.seconds


def test_map_distribution_host_wallclock_seq(benchmark):
    pa = ParArray(list(range(P)))
    seq_prog = FoldrFused(operator.add, lambda x: x * 2 + 1,
                          op_associative=True)
    benchmark(lambda: evaluate(seq_prog, pa))
