"""Ablation B (§4) — communication algebra:
``send f . send g = send (f . g)`` and ``fetch f . fetch g = fetch (g . f)``.

"Communication steps can be removed by combining two communication steps
into one."  We verify that claim quantitatively: a chain of k rotations/
fetches rewrites to a single data movement, and on the simulated machine
the message count and virtual time drop by ~k.

Results → ``benchmarks/results/ablation_comm_algebra.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_table
from repro.core import ParArray
from repro.machine import AP1000, Machine
from repro.scl import (
    Fetch,
    Rotate,
    compose_nodes,
    default_engine,
    estimate_cost,
    evaluate,
)

P = 32
CHAIN = 5


def _machine_rotation_time(p: int, steps: int) -> tuple[float, int]:
    """Virtual time + messages for `steps` successive one-place rotations."""

    def prog(env):
        left = (env.pid - 1) % p
        right = (env.pid + 1) % p
        x = env.pid
        for s in range(steps):
            yield env.send(left, x, tag=s, nbytes=8)
            msg = yield env.recv(right, tag=s)
            x = msg.payload
        return x

    res = Machine(p, spec=AP1000).run(prog)
    return res.makespan, res.total_messages


def test_ablation_comm_algebra(benchmark, results_dir):
    # a chain of rotations collapses to one rotation
    chain = compose_nodes(*[Rotate(1) for _ in range(CHAIN)])
    fused, steps = default_engine().rewrite(chain)
    assert fused == Rotate(CHAIN)
    assert len(steps) == CHAIN - 1

    c_chain = estimate_cost(chain, n=P, spec=AP1000)
    c_fused = estimate_cost(fused, n=P, spec=AP1000)
    assert c_fused.messages == c_chain.messages // CHAIN

    t_chain, m_chain = _machine_rotation_time(P, CHAIN)
    t_fused, m_fused = _machine_rotation_time(P, 1)
    assert t_fused < t_chain
    assert m_fused == m_chain // CHAIN

    pa = ParArray(list(range(P)))
    assert evaluate(chain, pa) == evaluate(fused, pa)

    write_table(
        results_dir, "ablation_comm_algebra",
        f"Ablation B: communication algebra — {CHAIN} rotations vs 1, {P} procs",
        ["variant", "predicted (s)", "msgs (model)", "simulated (s)", "msgs (sim)"],
        [["chained", f"{c_chain.seconds:.3e}", c_chain.messages,
          f"{t_chain:.3e}", m_chain],
         ["fused", f"{c_fused.seconds:.3e}", c_fused.messages,
          f"{t_fused:.3e}", m_fused],
         ["ratio", f"{c_chain.seconds / c_fused.seconds:.2f}x", "",
          f"{t_chain / t_fused:.2f}x", ""]],
        notes="send f . send g = send (f.g); fetch f . fetch g = fetch (g.f) (§4).")

    benchmark(lambda: evaluate(fused, pa))


def test_fetch_chain_fuses_to_single_fetch(benchmark):
    n = P
    fns = [lambda i, k=k: (i + 2 * k + 1) % n for k in range(CHAIN)]
    chain = compose_nodes(*[Fetch(f) for f in fns])
    fused, _ = default_engine().rewrite(chain)
    assert isinstance(fused, Fetch)
    pa = ParArray(list(range(n)))
    assert evaluate(chain, pa) == evaluate(fused, pa)
    benchmark(lambda: evaluate(fused, pa))


def test_comm_algebra_host_wallclock_chain(benchmark):
    chain = compose_nodes(*[Rotate(1) for _ in range(CHAIN)])
    pa = ParArray(list(range(P)))
    benchmark(lambda: evaluate(chain, pa))
