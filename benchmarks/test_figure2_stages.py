"""Figure 2 — hyperquicksort on a 2-dim hypercube, stage by stage.

The paper illustrates the algorithm on 32 values across 4 processors,
showing the per-processor contents at states (a) through (h).  The figure's
numbers come from an unspecified random vector, so we reproduce the
*invariants* each panel exhibits:

(a) all 32 values on p0 — (b/c) evenly distributed and locally sorted —
(d)/(f) partner exchange within (sub-)cubes — (e) lower half-cube values
all <= upper half-cube values — (g) per-processor runs sorted and globally
ordered — (h) the sorted vector gathered on p0.

The regenerated stage listing is written to ``benchmarks/results/figure2.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.sort import hyperquicksort_trace

D = 2
N = 32


@pytest.fixture(scope="module")
def snaps(bench_rng):
    values = bench_rng.integers(1, 100, size=N)
    return values, hyperquicksort_trace(values, D)


def test_figure2_stage_listing(benchmark, snaps, results_dir):
    values, stages = snaps
    lines = [f"Figure 2: hyperquicksort of {N} values on a {D}-dim hypercube",
             "=" * 60, ""]
    panels = "abcdefgh"
    for panel, snap in zip(panels, stages):
        lines.append(f"({panel}) {snap.label}")
        for pid, contents in enumerate(snap.contents):
            lines.append(f"    p{pid}: {' '.join(str(int(v)) for v in contents)}")
        lines.append("")
    text = "\n".join(lines)
    (results_dir / "figure2.txt").write_text(text)
    print("\n" + text)

    benchmark.pedantic(lambda: hyperquicksort_trace(values, D),
                       rounds=3, iterations=1)


def test_panel_a_initial_on_p0(snaps):
    _values, stages = snaps
    assert stages[0].label == "initial-on-p0"
    assert stages[0].sizes() == (N, 0, 0, 0)


def test_panel_bc_distributed_and_sorted(snaps):
    _values, stages = snaps
    snap = stages[1]
    assert snap.sizes() == (8, 8, 8, 8)
    for part in snap.contents:
        assert list(part) == sorted(part)


def test_panel_e_halves_separated_by_pivot(snaps):
    _values, stages = snaps
    snap = next(s for s in stages if s.label == "iter0-merged")
    low = [x for part in snap.contents[:2] for x in part]
    high = [x for part in snap.contents[2:] for x in part]
    if low and high:
        assert max(low) <= min(high)


def test_panel_g_fully_ordered_across_processors(snaps):
    _values, stages = snaps
    snap = next(s for s in stages if s.label == "iter1-merged")
    flat = []
    for part in snap.contents:
        assert list(part) == sorted(part)
        flat.extend(part)
    assert flat == sorted(flat)


def test_panel_h_gathered_sorted_on_p0(snaps):
    values, stages = snaps
    final = stages[-1]
    assert final.sizes() == (N, 0, 0, 0)
    assert list(final.contents[0]) == sorted(values.tolist())


def test_every_panel_conserves_values(snaps):
    values, stages = snaps
    expected = sorted(values.tolist())
    for snap in stages:
        assert sorted(x for part in snap.contents for x in part) == expected


def test_gantt_artifact(benchmark, bench_rng, results_dir):
    """Extension: a Gantt rendering of the machine-level sort, showing the
    compute/exchange phase structure per processor."""
    from repro.apps.sort import hyperquicksort_machine
    from repro.machine import AP1000

    values = bench_rng.integers(0, 2**31, size=4096).astype(np.int32)
    out, res = benchmark.pedantic(
        lambda: hyperquicksort_machine(values, 3, spec=AP1000,
                                       record_trace=True),
        rounds=1, iterations=1)
    assert np.array_equal(out, np.sort(values))
    chart = res.trace.gantt(width=100)
    text = ("Gantt chart: hyperquicksort of 4096 integers on 8 processors\n"
            "(# compute, > send, < receive; time left to right)\n\n"
            + chart + "\n")
    (results_dir / "gantt_hyperquicksort.txt").write_text(text)
    print("\n" + text)
    assert "#" in chart and ">" in chart and "<" in chart
