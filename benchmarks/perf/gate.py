"""CI perf-regression gate: paired medians vs a frozen quick baseline.

Reads two ``BENCH_simulator.json`` documents — the smoke artifact the CI
job just produced (``--current``, run with ``--quick --repeat 3`` so every
row is a paired median) and the frozen ``baseline_quick.json`` checked in
next to this script — and fails when any tracked row regressed more than
the threshold **after normalising for host speed**.

CI machines differ run to run, so raw host-time ratios mix two signals:
the code got slower, or the runner is slower.  The gate separates them
with a robust normaliser: the per-row ratio ``current / baseline`` is
divided by the *median* ratio across all shared rows (the host-speed
estimate — a genuine regression in one or two rows barely moves the
median of a dozen).  A row fails when its normalised ratio exceeds
``--threshold`` (default 1.20, i.e. >20% slower than the fleet of rows
says this host is).

Rows whose ``events`` count differs between the two documents are skipped
with a notice: the event count is engine-invariant for a fixed workload,
so a mismatch means the workload itself changed and the frozen baseline
is stale for that row (regenerate it with
``python -m repro perf --quick --repeat 3 --output
benchmarks/perf/baseline_quick.json``).  Every skipped row is listed with
the reason; when more than half the baseline rows skip, the gate itself
fails — a mostly-skipped comparison silently passing is how a stale
baseline stops gating anything.

``--budget KEY=SECONDS`` (repeatable) additionally enforces hard
wall-clock ceilings on individual rows — raw host seconds, deliberately
*not* host-normalised: the budget is a scaling canary (a large-p row
whose cost explodes should fail even on a fast runner), so pick generous
ceilings that only trip on complexity regressions, not host jitter.

Exit status: 0 clean, 1 regression/budget breach, 2 usage/schema error
(including a majority-skipped comparison).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys


def load_rows(path: str) -> dict[str, dict]:
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}")
    rows = doc.get("current")
    if not isinstance(rows, dict) or not rows:
        raise SystemExit(f"error: {path} has no 'current' workload table")
    return rows


def gate(current: dict[str, dict], baseline: dict[str, dict],
         threshold: float, budgets: dict[str, float] | None = None) -> int:
    shared, skipped = [], []
    for key in sorted(baseline):
        cur, base = current.get(key), baseline[key]
        if cur is None:
            skipped.append((key, "missing from current run"))
        elif cur.get("events") != base.get("events"):
            skipped.append((key, f"workload changed (events "
                                 f"{base.get('events')} -> {cur.get('events')}); "
                                 "baseline stale"))
        elif not base.get("host_seconds") or not cur.get("host_seconds"):
            skipped.append((key, "no host timing"))
        else:
            shared.append((key, cur["host_seconds"] / base["host_seconds"]))
    if len(shared) < 3:
        print("error: fewer than 3 comparable rows; cannot estimate host "
              "speed — regenerate the baseline", file=sys.stderr)
        return 2

    host_speed = statistics.median(r for _, r in shared)
    failures = []
    print(f"host-speed normaliser (median ratio over {len(shared)} rows): "
          f"{host_speed:.3f}")
    for key, ratio in shared:
        norm = ratio / host_speed
        verdict = "FAIL" if norm > threshold else "ok"
        print(f"  {verdict:>4}  {key:<38} raw {ratio:5.2f}x  "
              f"normalised {norm:5.2f}x")
        if norm > threshold:
            failures.append(key)
    for key, why in skipped:
        print(f"  skip  {key:<38} {why}")

    for key, budget in sorted((budgets or {}).items()):
        cur = current.get(key)
        host = cur.get("host_seconds") if cur else None
        if host is None:
            print(f"  FAIL  {key:<38} budget row missing from current run")
            failures.append(key)
        elif host > budget:
            print(f"  FAIL  {key:<38} host {host:.3f}s over wall-clock "
                  f"budget {budget:.3f}s")
            failures.append(key)
        else:
            print(f"    ok  {key:<38} host {host:.3f}s within budget "
                  f"{budget:.3f}s")

    if len(skipped) * 2 > len(baseline):
        print(f"\nperf gate FAILED: {len(skipped)} of {len(baseline)} "
              "baseline rows skipped — the frozen baseline is stale; "
              "regenerate it with 'python -m repro perf --quick --repeat 3 "
              "--output benchmarks/perf/baseline_quick.json'",
              file=sys.stderr)
        return 2
    if failures:
        print(f"\nperf gate FAILED: {len(failures)} row(s) regressed more "
              f"than {(threshold - 1):.0%} beyond host speed or breached "
              "a wall-clock budget: " + ", ".join(failures), file=sys.stderr)
        return 1
    print(f"\nperf gate passed: no row more than {(threshold - 1):.0%} "
          "slower (host-normalised)"
          + (f", {len(budgets)} wall-clock budget(s) met" if budgets else ""))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail CI when tracked perf rows regress beyond a "
                    "host-normalised threshold.")
    parser.add_argument("--current", required=True,
                        help="BENCH_simulator.json from this CI run "
                             "(produced with --quick --repeat 3)")
    parser.add_argument("--baseline",
                        default="benchmarks/perf/baseline_quick.json",
                        help="frozen quick-mode baseline document")
    parser.add_argument("--threshold", type=float, default=1.20,
                        help="max normalised slowdown per row (default 1.20 "
                             "= 20%% over the host-speed median)")
    parser.add_argument("--budget", action="append", default=[],
                        metavar="KEY=SECONDS",
                        help="hard wall-clock ceiling for one row, e.g. "
                             "ring_sweep/p1024=10.0 (repeatable; raw host "
                             "seconds, not normalised — a scaling canary)")
    args = parser.parse_args(argv)
    if args.threshold <= 1.0:
        print("error: --threshold must be > 1.0", file=sys.stderr)
        return 2
    budgets: dict[str, float] = {}
    for spec in args.budget:
        key, sep, secs = spec.partition("=")
        try:
            budgets[key] = float(secs)
        except ValueError:
            sep = ""
        if not sep or not key or budgets.get(key, -1.0) <= 0:
            print(f"error: --budget must look like KEY=SECONDS with positive "
                  f"seconds, got {spec!r}", file=sys.stderr)
            return 2
    return gate(load_rows(args.current), load_rows(args.baseline),
                args.threshold, budgets)


if __name__ == "__main__":
    sys.exit(main())
