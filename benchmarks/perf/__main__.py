"""``python -m benchmarks.perf`` — run the simulator performance suite."""

import sys

from repro.perf import main

if __name__ == "__main__":
    sys.exit(main())
