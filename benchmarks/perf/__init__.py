"""Simulator-core performance harness (tracked, not pytest-benchmark).

The actual implementation lives in :mod:`repro.perf` so library users can
import it without the benchmark tree on ``sys.path``; this package is the
conventional front door next to the artefact benchmarks::

    python -m benchmarks.perf            # full suite -> BENCH_simulator.json
    python -m benchmarks.perf --quick    # CI smoke variant

Unlike the ``benchmarks/test_*`` pytest-benchmark files (which time
regeneration of the paper's tables and figures), this harness tracks the
throughput of the discrete-event simulator itself against the frozen
pre-rewrite seed numbers in :data:`repro.perf.SEED_BASELINE`.
"""

from repro.perf import (
    SEED_BASELINE,
    bench_allreduce,
    bench_hyperquicksort,
    bench_ring_sweep,
    bench_wildcard_funnel,
    main,
    render_report,
    run_suite,
    write_bench_json,
)

__all__ = [
    "SEED_BASELINE",
    "bench_allreduce",
    "bench_hyperquicksort",
    "bench_ring_sweep",
    "bench_wildcard_funnel",
    "main",
    "render_report",
    "run_suite",
    "write_bench_json",
]
