"""Extension bench — input sensitivity of the sorting algorithms.

The paper evaluates hyperquicksort only on uniform random integers.  Its
pivot (the median of one processor's block) is a *sample* statistic, so
skewed inputs unbalance the halves; sample sort's splitters come from all
processors and resist skew; bitonic sort is data-oblivious.  We sort four
input families and record runtime and the load-imbalance factor — the
robustness study a referee would have asked for.

Results → ``benchmarks/results/input_sensitivity.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_table
from repro.apps.bitonic import bitonic_sort_machine
from repro.apps.sort import hyperquicksort_machine, sample_sort_machine
from repro.machine import AP1000
from repro.machine.metrics import load_imbalance

N = 65_536
D = 4  # p = 16


def make_inputs(rng):
    uniform = rng.integers(0, 2**31, size=N).astype(np.int64)
    sorted_in = np.sort(uniform)
    skewed = (rng.zipf(1.5, size=N) % 2**31).astype(np.int64)
    dup_heavy = rng.choice([1, 2, 3, 5, 8], size=N).astype(np.int64)
    return {"uniform": uniform, "pre-sorted": sorted_in,
            "zipf-skewed": skewed, "5-distinct": dup_heavy}


@pytest.fixture(scope="module")
def results(bench_rng):
    out = {}
    for name, values in make_inputs(bench_rng).items():
        expected = np.sort(values)
        hq_out, hq = hyperquicksort_machine(values, D, spec=AP1000,
                                            include_distribution=False)
        ss_out, ss = sample_sort_machine(values, 1 << D, spec=AP1000)
        bt_out, bt = bitonic_sort_machine(values, D, spec=AP1000)
        assert np.array_equal(hq_out, expected), name
        assert np.array_equal(ss_out, expected), name
        assert np.array_equal(bt_out, expected), name
        out[name] = (hq, ss, bt)
    return out


def test_input_sensitivity_table(benchmark, bench_rng, results, results_dir):
    rows = []
    for name, (hq, ss, bt) in results.items():
        rows.append([name,
                     f"{hq.makespan:.3f}", f"{load_imbalance(hq):.2f}",
                     f"{ss.makespan:.3f}", f"{load_imbalance(ss):.2f}",
                     f"{bt.makespan:.3f}", f"{load_imbalance(bt):.2f}"])
    write_table(
        results_dir, "input_sensitivity",
        f"Input sensitivity: {N} values, p={1 << D} (simulated AP1000)",
        ["input", "hq (s)", "hq imbal", "ss (s)", "ss imbal",
         "bt (s)", "bt imbal"],
        rows,
        notes=("Hyperquicksort's single-block median pivot degrades on "
               "skewed/low-cardinality inputs (imbalance > 1); bitonic is "
               "data-oblivious (imbalance = 1 always); sample sort sits "
               "between.  The paper's uniform-random evaluation is "
               "hyperquicksort's best case."))
    values = make_inputs(bench_rng)["zipf-skewed"]
    benchmark.pedantic(
        lambda: hyperquicksort_machine(values, D, spec=AP1000,
                                       include_distribution=False),
        rounds=2, iterations=1)


def test_all_inputs_sorted_correctly(results):
    assert len(results) == 4  # correctness asserted in the fixture


def test_bitonic_immune_to_input_distribution(results):
    times = [bt.makespan for _hq, _ss, bt in results.values()]
    assert max(times) / min(times) < 1.05


def test_hyperquicksort_degrades_on_low_cardinality(results):
    hq_uniform = results["uniform"][0]
    hq_dups = results["5-distinct"][0]
    assert load_imbalance(hq_dups) > load_imbalance(hq_uniform)


def test_uniform_is_hyperquicksorts_best_case(results):
    t_uniform = results["uniform"][0].makespan
    for name, (hq, _ss, _bt) in results.items():
        assert hq.makespan >= t_uniform * 0.95, name
