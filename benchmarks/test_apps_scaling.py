"""Application-suite scaling — every machine-level app on the AP1000 model.

One table: virtual runtime vs processor count for the FFT, the N-body
ring, Cannon's multiply (on the torus), machine Jacobi, and the three
sorts, each at a representative problem size.  This is the "evaluation
the paper would have run with more space": the same machine, many
algorithm/communication patterns, each scaling until its own
communication pattern bites.

Results → ``benchmarks/results/apps_scaling.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_table
from repro.apps.bitonic import bitonic_sort_machine
from repro.apps.fft import fft_machine
from repro.apps.linalg import gauss_jordan_machine
from repro.apps.matmul import cannon_matmul_machine
from repro.apps.nbody import forces_machine
from repro.apps.sort import hyperquicksort_machine, sample_sort_machine
from repro.apps.stencil import jacobi_machine
from repro.machine import AP1000

PROCS = [1, 4, 16]


@pytest.fixture(scope="module")
def workloads(bench_rng):
    return {
        "fft": bench_rng.standard_normal(16384) + 1j * bench_rng.standard_normal(16384),
        "sortvals": bench_rng.integers(0, 2**31, size=32768).astype(np.int32),
        "bodies": (bench_rng.standard_normal((512, 3)),
                   bench_rng.uniform(0.5, 2.0, size=512)),
        "matA": bench_rng.standard_normal((64, 64)),
        "matB": bench_rng.standard_normal((64, 64)),
        "gaussA": bench_rng.standard_normal((64, 64)) + 64 * np.eye(64),
        "gaussB": bench_rng.standard_normal(64),
        "grid": np.pad(np.zeros((30, 32)), ((1, 1), (0, 0)),
                       constant_values=100.0),
    }


def _rows(workloads):
    pos, mass = workloads["bodies"]
    apps = {
        "hyperquicksort": lambda p, d: hyperquicksort_machine(
            workloads["sortvals"], d, spec=AP1000,
            include_distribution=False)[1].makespan,
        "bitonic sort": lambda p, d: bitonic_sort_machine(
            workloads["sortvals"], d, spec=AP1000)[1].makespan,
        "sample sort": lambda p, d: sample_sort_machine(
            workloads["sortvals"], p, spec=AP1000)[1].makespan,
        "FFT 16k": lambda p, d: fft_machine(
            workloads["fft"], d, spec=AP1000)[1].makespan,
        "N-body 512": lambda p, d: forces_machine(
            pos, mass, p, spec=AP1000)[1].makespan,
        "Cannon 64x64": lambda p, d: cannon_matmul_machine(
            workloads["matA"], workloads["matB"], int(round(p ** 0.5)),
            spec=AP1000)[1].makespan,
        "Gauss-Jordan 64": lambda p, d: gauss_jordan_machine(
            workloads["gaussA"], workloads["gaussB"], p,
            spec=AP1000)[1].makespan,
        "Jacobi 32x32": lambda p, d: jacobi_machine(
            workloads["grid"], p, tol=1e-2, spec=AP1000)[1].makespan,
    }
    rows = []
    series = {}
    for name, run in apps.items():
        times = []
        for p in PROCS:
            d = p.bit_length() - 1
            times.append(run(p, d))
        series[name] = times
        rows.append([name] + [f"{t:.4f}" for t in times]
                    + [f"{times[0] / times[-1]:.1f}x"])
    return rows, series


def test_apps_scaling_table(benchmark, workloads, results_dir):
    rows, series = _rows(workloads)
    write_table(
        results_dir, "apps_scaling",
        f"Application suite on the simulated {AP1000.name} "
        f"(virtual seconds, p = {PROCS})",
        ["application"] + [f"p={p}" for p in PROCS] + ["speedup@16"],
        rows,
        notes=("Every application speeds up with processors at these sizes; "
               "how much depends on its communication pattern — pairwise "
               "exchanges (sorts, FFT) scale best, per-iteration global "
               "collectives (Gauss, Jacobi) pay log-p latency each step."))
    # every app must get faster from p=1 to p=16 at these sizes
    for name, times in series.items():
        assert times[-1] < times[0], name
    benchmark.pedantic(
        lambda: fft_machine(workloads["fft"], 4, spec=AP1000),
        rounds=2, iterations=1)
