"""Baseline bench — hyperquicksort vs block bitonic sort.

The paper claims its achieved speedup "compares well with the best speedup
available for this problem"; Quinn's textbook (the hyperquicksort source
the paper cites) sets up bitonic sort as the fixed-schedule hypercube
alternative.  We run both on the simulated AP1000 with identical
base-language cost constants and pre-distributed data.

Expected shape: hyperquicksort wins on uniform random input (d exchange
rounds moving ~half a block each vs d(d+1)/2 rounds moving whole blocks),
and the gap widens with the processor count.

Results → ``benchmarks/results/baseline_bitonic.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_table
from repro.apps.bitonic import bitonic_sort_machine
from repro.apps.sort import hyperquicksort_machine
from repro.machine import AP1000

N_VALUES = 102_400  # divisible by every tested processor count
DIMS = [1, 2, 3, 4, 5]


@pytest.fixture(scope="module")
def workload(bench_rng):
    return bench_rng.integers(0, 2**31, size=N_VALUES).astype(np.int32)


@pytest.fixture(scope="module")
def comparison(workload):
    from repro.apps.sort import sample_sort_machine

    expected = np.sort(workload)
    rows = {}
    for d in DIMS:
        hq_out, hq = hyperquicksort_machine(workload, d, spec=AP1000,
                                            include_distribution=False)
        bt_out, bt = bitonic_sort_machine(workload, d, spec=AP1000)
        ss_out, ss = sample_sort_machine(workload, 1 << d, spec=AP1000)
        assert np.array_equal(hq_out, expected)
        assert np.array_equal(bt_out, expected)
        assert np.array_equal(ss_out, expected)
        rows[1 << d] = (hq, bt, ss)
    return rows


def test_baseline_table(benchmark, workload, comparison, results_dir):
    table = []
    for p, (hq, bt, ss) in sorted(comparison.items()):
        table.append([p, f"{hq.makespan:.3f}", f"{bt.makespan:.3f}",
                      f"{ss.makespan:.3f}",
                      hq.total_messages, bt.total_messages, ss.total_messages])
    write_table(
        results_dir, "baseline_bitonic",
        f"Hyperquicksort vs bitonic vs sample sort, {N_VALUES} integers "
        f"(simulated {AP1000.name}, no distribution phase)",
        ["procs", "hyperqs (s)", "bitonic (s)", "samplesort (s)",
         "hq msgs", "bitonic msgs", "ss msgs"],
        table,
        notes=("Hyperquicksort: d half-block exchanges. Bitonic: d(d+1)/2 "
               "full-block compare-splits. Sample sort: one all-to-all "
               "(p(p-1) messages) — competitive until message startups "
               "dominate at large p."))
    benchmark.pedantic(
        lambda: bitonic_sort_machine(workload, 4, spec=AP1000),
        rounds=2, iterations=1)


def test_hyperquicksort_beats_bitonic(comparison):
    for p, (hq, bt, _ss) in comparison.items():
        if p >= 4:
            assert hq.makespan < bt.makespan, f"p={p}"


def test_gap_widens_with_processors(comparison):
    ratios = [bt.makespan / hq.makespan
              for _p, (hq, bt, _ss) in sorted(comparison.items())]
    assert ratios[-1] > ratios[0]


def test_bitonic_moves_more_bytes(comparison):
    for p, (hq, bt, _ss) in comparison.items():
        if p >= 4:
            assert bt.total_bytes > hq.total_bytes


def test_samplesort_message_count_grows_quadratically(comparison):
    for p, (_hq, _bt, ss) in comparison.items():
        if p >= 4:
            assert ss.total_messages >= p * (p - 1)
