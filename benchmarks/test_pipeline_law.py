"""Extension bench — the pipeline fill/drain law, measured.

P3L-style stage pipelines (``repro.stream``) obey
``T = (m + s - 1) · t_stage`` for ``m`` items through ``s`` equal stages
on a zero-latency machine; with AP1000 communication constants the law
gains a per-hop forwarding term.  This bench sweeps both dimensions and
records the measured-vs-law agreement.

Results → ``benchmarks/results/pipeline_law.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_table
from repro.machine import AP1000, PERFECT
from repro.stream import PipelineStage, pipeline_machine

OPS = 5_000.0


def inc(x):
    return x + 1


@pytest.fixture(scope="module")
def sweep():
    t_stage = PERFECT.compute_time(OPS)
    rows = []
    for s, m in [(2, 4), (2, 32), (4, 4), (4, 32), (8, 32), (8, 128)]:
        stages = [PipelineStage(inc, ops=OPS)] * s
        _out, res = pipeline_machine(stages, list(range(m)), spec=PERFECT)
        law = (m + s - 1) * t_stage
        rows.append((s, m, res.makespan, law))
    return rows


def test_pipeline_law_table(benchmark, sweep, results_dir):
    table = [[s, m, f"{measured * 1e3:.3f}", f"{law * 1e3:.3f}",
              f"{measured / law:.4f}"]
             for s, m, measured, law in sweep]
    write_table(
        results_dir, "pipeline_law",
        f"Pipeline fill/drain law: {OPS:.0f}-op stages on the perfect machine",
        ["stages", "items", "measured (ms)", "(m+s-1)t (ms)", "ratio"],
        table,
        notes="Ratio 1.0000 everywhere: the simulator reproduces the "
              "textbook law exactly when communication is free.")
    stages = [PipelineStage(inc, ops=OPS)] * 4
    benchmark.pedantic(
        lambda: pipeline_machine(stages, list(range(64)), spec=PERFECT),
        rounds=3, iterations=1)


def test_law_exact_on_perfect_machine(sweep):
    for s, m, measured, law in sweep:
        assert measured == pytest.approx(law, rel=1e-9), (s, m)


def test_communication_adds_forwarding_cost(benchmark):
    stages = [PipelineStage(inc, ops=OPS)] * 4
    items = list(range(32))
    _o1, free = pipeline_machine(stages, items, spec=PERFECT)
    _o2, paid = pipeline_machine(stages, items, spec=AP1000,
                                 item_nbytes=1024)
    assert paid.makespan > free.makespan
    benchmark.pedantic(
        lambda: pipeline_machine(stages, items, spec=AP1000, item_nbytes=1024),
        rounds=3, iterations=1)
