"""Figure 3 — speedup of sorting 100,000 integers vs. linear speedup.

The paper plots hyperquicksort's speedup against the linear diagonal for up
to ~32 processors, noting that "linear speedup is not possible with this
problem" and that the achieved curve "compares well with the best speedup
available".  We regenerate the (p, speedup) series from the simulated
machine and assert its shape: monotonically increasing, strictly below
linear for p >= 2, efficiency declining with p.

The reproduced series (plus an ASCII rendition of the figure) is written to
``benchmarks/results/figure3.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_table
from repro.apps.sort import hyperquicksort_machine, sequential_sort_machine
from repro.machine import AP1000

N_VALUES = 100_000
DIMS = [1, 2, 3, 4, 5]


@pytest.fixture(scope="module")
def workload(bench_rng):
    return bench_rng.integers(0, 2**31, size=N_VALUES).astype(np.int32)


@pytest.fixture(scope="module")
def speedups(workload):
    _s, seq = sequential_sort_machine(workload, spec=AP1000)
    series = {}
    for d in DIMS:
        _p, par = hyperquicksort_machine(workload, d, spec=AP1000)
        series[1 << d] = seq.makespan / par.makespan
    return series


def _ascii_plot(series: dict[int, float], width: int = 34) -> str:
    lines = ["speedup (x = hyperquicksort, * = linear)"]
    for p in sorted(series):
        x = int(round(series[p]))
        row = [" "] * (width + 2)
        row[min(p, width)] = "*"
        row[min(x, width)] = "x"
        lines.append(f"p={p:2d} |" + "".join(row))
    return "\n".join(lines)


def test_figure3_series(benchmark, workload, speedups, results_dir):
    rows = [[p, f"{s:.2f}", p, f"{s / p:.0%}"] for p, s in sorted(speedups.items())]
    write_table(
        results_dir, "figure3",
        f"Figure 3: speedup of sorting {N_VALUES} integers "
        f"(simulated {AP1000.name})",
        ["procs", "speedup", "linear", "efficiency"],
        rows,
        notes=_ascii_plot(speedups))
    benchmark.extra_info["speedups"] = {str(p): s for p, s in speedups.items()}
    benchmark.pedantic(
        lambda: hyperquicksort_machine(workload, 4, spec=AP1000),
        rounds=2, iterations=1)


def test_figure3_monotone_increasing(speedups):
    ps = sorted(speedups)
    assert all(speedups[a] < speedups[b] for a, b in zip(ps, ps[1:]))


def test_figure3_below_linear(speedups):
    """The paper's central observation: the curve sits under the diagonal."""
    for p, s in speedups.items():
        assert s < p, f"speedup {s:.2f} at p={p} should be sub-linear"


def test_figure3_efficiency_declines(speedups):
    ps = sorted(speedups)
    eff = [speedups[p] / p for p in ps]
    assert all(a > b for a, b in zip(eff, eff[1:]))


def test_figure3_worthwhile_scaling(speedups):
    """'Compares well with the best speedup available': at least ~60% of
    linear at p=32 on the calibrated machine."""
    assert speedups[32] > 0.6 * 32 * 0.9  # > ~17x
