"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper's evaluation (a
table, a figure series, or an ablation of a §4 transformation).  Besides
the pytest-benchmark timing of the *host* (how long the simulation takes to
run on this machine), each benchmark writes the *reproduced* numbers — the
virtual AP1000 timings — to ``benchmarks/results/<name>.txt`` and attaches
them to ``benchmark.extra_info`` so they survive into the JSON report.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_rng() -> np.random.Generator:
    """One fixed seed for the whole benchmark session: the paper sorts a
    fixed vector of random numbers, so every p sees identical input."""
    return np.random.default_rng(19950701)


def write_table(results_dir: pathlib.Path, name: str, title: str,
                header: list[str], rows: list[list], notes: str = "") -> str:
    """Render an aligned text table, write it to results/, return it."""
    from repro.util.tables import render_table

    text = render_table(title, header, rows, notes)
    (results_dir / f"{name}.txt").write_text(text)
    print(f"\n{text}")
    return text
