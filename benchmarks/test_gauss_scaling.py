"""Extension bench — Gauss–Jordan solver scaling (the paper's §3 example 1).

The paper presents the Gauss–Jordan SCL program but evaluates only
hyperquicksort; this bench completes the picture by running the hand-
compiled Gauss–Jordan on the simulated AP1000 across processor counts,
showing the same qualitative behaviour: falling runtime with growing p
until the per-iteration pivot broadcast dominates.

Results → ``benchmarks/results/gauss_scaling.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_table
from repro.apps.linalg import gauss_jordan_machine
from repro.machine import AP1000

N = 96
PROCS = [1, 2, 4, 8, 16, 32]


@pytest.fixture(scope="module")
def system(bench_rng):
    A = bench_rng.standard_normal((N, N)) + N * np.eye(N)
    b = bench_rng.standard_normal(N)
    return A, b


def test_gauss_scaling(benchmark, system, results_dir):
    A, b = system
    x_ref = np.linalg.solve(A, b)
    rows = []
    times = {}
    for p in PROCS:
        x, res = gauss_jordan_machine(A, b, p, spec=AP1000)
        assert np.allclose(x, x_ref)
        times[p] = res.makespan
        speedup = times[1] / res.makespan
        rows.append([p, f"{res.makespan:.4f}", f"{speedup:.2f}",
                     f"{speedup / p:.0%}", res.total_messages])

    assert times[2] < times[1] and times[4] < times[2]

    write_table(
        results_dir, "gauss_scaling",
        f"Gauss-Jordan solve of a {N}x{N} system (simulated {AP1000.name})",
        ["procs", "runtime (s)", "speedup", "efficiency", "messages"],
        rows,
        notes=("Per-iteration pivot broadcast costs grow with log p while "
               "local update work shrinks as 1/p: efficiency declines, the "
               "same communication/computation trade-off as Table 1."))

    benchmark.pedantic(lambda: gauss_jordan_machine(A, b, 8, spec=AP1000),
                       rounds=2, iterations=1)


def test_gauss_efficiency_declines(system):
    A, b = system
    _x1, r1 = gauss_jordan_machine(A, b, 2, spec=AP1000)
    _x2, r2 = gauss_jordan_machine(A, b, 32, spec=AP1000)
    eff2 = r1.makespan * 2 / (r2.makespan * 32)
    assert eff2 < 1.0
