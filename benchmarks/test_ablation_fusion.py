"""Ablation A (§4) — map fusion: ``map f . map g = map (f . g)``.

The paper: map fusion "reduces the need to perform a barrier
synchronisation and provides for better load balancing" — the functional
analogue of loop fusion.  We measure it three ways:

1. predicted cost (the optimiser's model) for fused vs. unfused pipelines,
2. virtual time of the equivalent message-passing programs on the
   simulated AP1000 (each map stage ends in a dissemination barrier),
3. host wall-clock of the interpreted expressions.

Results → ``benchmarks/results/ablation_fusion.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_table
from repro.core import ParArray
from repro.machine import AP1000, Comm, Machine, collectives as C
from repro.scl import Map, compose_nodes, default_engine, estimate_cost, evaluate

N_STAGES = 6
N_ELEMS = 64


def _stage_fns():
    return [lambda x, k=k: x * 2 + k for k in range(N_STAGES)]


def _machine_pipeline_time(p: int, stages: int, barrier_per_stage: bool) -> float:
    """Virtual time of `stages` map stages, with/without inter-stage barriers."""

    def prog(env):
        comm = Comm.world(env)
        x = float(env.pid)
        for _ in range(stages):
            yield env.work(50)
            x = x * 2
            if barrier_per_stage:
                yield from C.barrier(comm)
        if not barrier_per_stage:
            yield from C.barrier(comm)
        return x

    return Machine(p, spec=AP1000).run(prog).makespan


def test_ablation_map_fusion(benchmark, results_dir):
    fns = _stage_fns()
    unfused = compose_nodes(*[Map(f) for f in fns])
    fused, steps = default_engine().rewrite(unfused)
    assert isinstance(fused, Map)
    assert len(steps) == N_STAGES - 1

    # 1. predicted cost
    c_unfused = estimate_cost(unfused, n=N_ELEMS, spec=AP1000, fn_ops=50)
    c_fused = estimate_cost(fused, n=N_ELEMS, spec=AP1000, fn_ops=50)
    assert c_fused.barriers == 1 and c_unfused.barriers == N_STAGES
    assert c_fused.seconds < c_unfused.seconds

    # 2. simulated machine: barrier per stage vs single barrier
    t_barriers = _machine_pipeline_time(N_ELEMS, N_STAGES, barrier_per_stage=True)
    t_fused = _machine_pipeline_time(N_ELEMS, N_STAGES, barrier_per_stage=False)
    assert t_fused < t_barriers

    # semantics unchanged
    pa = ParArray(list(range(N_ELEMS)))
    assert evaluate(unfused, pa) == evaluate(fused, pa)

    write_table(
        results_dir, "ablation_fusion",
        f"Ablation A: map fusion over {N_STAGES} stages, {N_ELEMS} processors",
        ["variant", "predicted (s)", "barriers", "simulated (s)"],
        [["unfused", f"{c_unfused.seconds:.3e}", c_unfused.barriers,
          f"{t_barriers:.3e}"],
         ["fused", f"{c_fused.seconds:.3e}", c_fused.barriers,
          f"{t_fused:.3e}"],
         ["ratio", f"{c_unfused.seconds / c_fused.seconds:.2f}x", "",
          f"{t_barriers / t_fused:.2f}x"]],
        notes="Fusion removes one barrier synchronisation per merged stage (§4).")

    # 3. host wall-clock of the fused interpretation
    benchmark(lambda: evaluate(fused, pa))


def test_fusion_host_wallclock_unfused(benchmark):
    pa = ParArray(list(range(N_ELEMS)))
    unfused = compose_nodes(*[Map(f) for f in _stage_fns()])
    benchmark(lambda: evaluate(unfused, pa))
