"""Sensitivity study — does the Table 1 shape survive other machines?

The paper's portability claim is that skeleton programs retarget by
re-implementing the skeletons per architecture.  Here we re-run the
Table 1 experiment on three machine models (AP1000-class, a modern
commodity cluster, and a perfect zero-cost-communication machine) and on a
latency sweep, and check the qualitative structure:

* speedup stays monotone and sub-linear on every *real* machine model,
* efficiency at p=32 tracks the machine's latency-to-compute *balance*,
  not its raw speed — the modern preset's balance is worse than the
  AP1000's, so its efficiency is lower ("networks lag cores"),
* past a latency threshold, adding processors stops paying — the
  crossover the cost-guided optimiser is built around.

Results → ``benchmarks/results/sensitivity_machine.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_table
from repro.apps.sort import hyperquicksort_machine, sequential_sort_machine
from repro.machine import AP1000, MODERN_CLUSTER, PERFECT
from repro.machine.metrics import scaling_series

N_VALUES = 50_000
SPECS = [AP1000, MODERN_CLUSTER, PERFECT]


@pytest.fixture(scope="module")
def workload(bench_rng):
    return bench_rng.integers(0, 2**31, size=N_VALUES).astype(np.int32)


@pytest.fixture(scope="module")
def sweeps(workload):
    out = {}
    for spec in SPECS:
        _s, seq = sequential_sort_machine(workload, spec=spec)
        times = {1: seq.makespan}
        for d in (1, 2, 3, 4, 5):
            _p, res = hyperquicksort_machine(workload, d, spec=spec)
            times[1 << d] = res.makespan
        out[spec.name] = scaling_series(times)
    return out


def test_sensitivity_table(benchmark, workload, sweeps, results_dir):
    rows = []
    for name, series in sweeps.items():
        for pt in series:
            rows.append([name, pt.procs, f"{pt.time:.4f}",
                         f"{pt.speedup:.2f}", f"{pt.efficiency:.0%}"])
    write_table(
        results_dir, "sensitivity_machine",
        f"Hyperquicksort ({N_VALUES} integers) across machine models",
        ["machine", "procs", "runtime (s)", "speedup", "efficiency"],
        rows,
        notes=("The Table 1 shape (monotone, sub-linear) holds on every "
               "model with non-zero communication cost.  Note the modern "
               "cluster's LOWER p=32 efficiency than the AP1000: its "
               "latency-to-compute balance (~2000 ops per message startup "
               "vs ~250) is worse — modern networks lag modern cores."))
    benchmark.pedantic(
        lambda: hyperquicksort_machine(workload, 4, spec=MODERN_CLUSTER),
        rounds=2, iterations=1)


def test_shape_holds_on_all_specs(sweeps):
    for name, series in sweeps.items():
        speeds = [pt.speedup for pt in series]
        assert all(a < b for a, b in zip(speeds, speeds[1:])), name
        for pt in series[1:]:
            if name != "perfect":
                assert pt.speedup < pt.procs, (name, pt)


def test_machine_balance_governs_efficiency(sweeps):
    """Efficiency at p=32 tracks the machine's *balance* (ops of compute
    per message latency), not its raw speed.  The modern preset speeds
    compute up 400x but latency only 50x, so its balance —
    latency/flop_time: AP1000 ≈ 250 ops, modern ≈ 2000 ops — is worse,
    and its parallel efficiency on a fixed-size problem is LOWER than the
    AP1000's (the classic "modern networks lag modern cores" effect).
    The zero-cost machine bounds both."""
    eff = {name: series[-1].efficiency for name, series in sweeps.items()}
    assert eff["modern-cluster"] < eff["AP1000"] <= eff["perfect"] + 1e-9
    assert MODERN_CLUSTER.latency / MODERN_CLUSTER.flop_time > \
        AP1000.latency / AP1000.flop_time


def test_latency_sweep_finds_crossover(benchmark, workload, results_dir):
    """Scaling from 16 to 32 processors must stop paying once per-message
    latency is large enough — the communication/computation crossover."""
    gains = {}
    for latency in (1e-4, 1e-2, 1.0):
        spec = AP1000.replace(latency=latency)
        _a, r16 = hyperquicksort_machine(workload, 4, spec=spec)
        _b, r32 = hyperquicksort_machine(workload, 5, spec=spec)
        gains[latency] = r16.makespan / r32.makespan
    assert gains[1e-4] > 1.0            # cheap network: 32 procs help
    assert gains[1.0] < 1.0             # 1s latency: 32 procs hurt
    assert gains[1e-4] > gains[1e-2] > gains[1.0]
    rows = [[f"{lat:g}", f"{g:.3f}"] for lat, g in sorted(gains.items())]
    write_table(results_dir, "sensitivity_latency",
                "Speedup of p=32 over p=16 vs per-message latency",
                ["latency (s)", "T(16)/T(32)"], rows,
                notes="Values < 1 mean doubling the machine slows the sort.")
    benchmark.pedantic(
        lambda: hyperquicksort_machine(workload, 5,
                                       spec=AP1000.replace(latency=1e-2)),
        rounds=1, iterations=1)
