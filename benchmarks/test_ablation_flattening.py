"""Ablation C (§4) — SPMD flattening of nested parallelism.

"Nested SPMD computation can be transformed into a flat data parallel
computation with a segmented global function" — the NESL-style segmented
instructions.  Hyperquicksort itself is the paper's worked example: §5
flattens the recursive divide-and-conquer into a linear iterative program
before hand-compiling it.

We measure (1) the rewrite on a synthetic nested pipeline, and (2) the real
flattening payoff on hyperquicksort: the recursive and flat renderings are
semantically identical, and on the simulated machine the flattened program
is what runs (Table 1).  Results → ``benchmarks/results/ablation_flattening.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_table
from repro.apps.sort import hyperquicksort, hyperquicksort_flat
from repro.core import Block, ParArray
from repro.scl import (
    Map,
    Rotate,
    Spmd,
    Split,
    Stage,
    compose_nodes,
    default_engine,
    estimate_cost,
    evaluate,
    pretty,
)
from repro.machine import AP1000

N = 64
GROUPS = 8


def _nested_program():
    return compose_nodes(
        Spmd((Stage(global_=Map(lambda sub: sub)),)),
        Map(Spmd((Stage(global_=Rotate(1), local=lambda x: x * 3 + 1),))),
        Split(Block(GROUPS)),
    )


def test_ablation_spmd_flattening(benchmark, results_dir):
    nested = _nested_program()
    flat, steps = default_engine().rewrite(nested)
    assert any(s.rule == "spmd-flattening" for s in steps)
    assert isinstance(flat, Spmd) and len(flat.stages) == 1

    pa = ParArray(list(range(N)))
    assert evaluate(nested, pa) == evaluate(flat, pa)

    c_nested = estimate_cost(nested, n=N, spec=AP1000, fn_ops=50)
    c_flat = estimate_cost(flat, n=N, spec=AP1000, fn_ops=50)

    write_table(
        results_dir, "ablation_flattening",
        f"Ablation C: SPMD flattening — {GROUPS} groups of {N // GROUPS}, "
        f"{N} processors",
        ["variant", "expression", "predicted (s)", "barriers"],
        [["nested", pretty(nested)[:60], f"{c_nested.seconds:.3e}",
          c_nested.barriers],
         ["flattened", pretty(flat)[:60], f"{c_flat.seconds:.3e}",
          c_flat.barriers]],
        notes=("The flattened form farms local work once over the whole flat "
               "array (one barrier per stage) instead of per nested group."))

    benchmark(lambda: evaluate(flat, pa))


def test_flattening_on_hyperquicksort(benchmark, bench_rng):
    """§5's actual flattening: recursive and iterative hyperquicksort agree,
    and the flat form is what the machine-level program compiles from."""
    vals = bench_rng.integers(0, 10**6, size=2048)
    rec = hyperquicksort(vals, 3)
    flat = benchmark.pedantic(lambda: hyperquicksort_flat(vals, 3),
                              rounds=3, iterations=1)
    assert np.array_equal(rec, flat)


def test_flattening_is_runtime_neutral_on_machine(benchmark, bench_rng,
                                                  results_dir):
    """Measured nested (recursive communicator splits) vs flattened machine
    programs: identical message counts and virtual times.  Flattening's
    value is enabling *flat SPMD code generation* (the paper targets
    Fortran+MPI without recursion), not saving messages at runtime."""
    from repro.apps.sort import (hyperquicksort_machine,
                                 hyperquicksort_machine_nested)
    from repro.machine import AP1000

    vals = bench_rng.integers(0, 2**31, size=16384).astype(np.int32)
    rows = []
    for d in (2, 3, 4):
        _a, nested = hyperquicksort_machine_nested(vals, d, spec=AP1000)
        _b, flat = hyperquicksort_machine(vals, d, spec=AP1000,
                                          include_distribution=False)
        assert nested.total_messages == flat.total_messages
        rows.append([1 << d, f"{nested.makespan:.4f}", f"{flat.makespan:.4f}",
                     nested.total_messages])
    write_table(
        results_dir, "ablation_flattening_machine",
        "Nested (recursive groups) vs flattened hyperquicksort, measured",
        ["procs", "nested (s)", "flattened (s)", "messages (both)"],
        rows,
        notes=("Identical runtimes and traffic: the transformation is "
               "runtime-neutral; it exists so the compiler can emit flat "
               "SPMD code (the paper hand-compiled exactly this way)."))
    benchmark.pedantic(
        lambda: hyperquicksort_machine_nested(vals, 4, spec=AP1000),
        rounds=2, iterations=1)


def test_flattening_host_wallclock_nested(benchmark):
    pa = ParArray(list(range(N)))
    nested = _nested_program()
    benchmark(lambda: evaluate(nested, pa))
