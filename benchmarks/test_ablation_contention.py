"""Ablation E — port contention and algorithm choice.

The base cost model is contention-free; ``single_port=True`` serialises
each processor's network port (the standard one-port full-duplex model).
This study measures what contention changes:

* a linear (root-sends-to-all) broadcast degrades from O(1) wire-times to
  O(p) under a contended root port, while the binomial tree stays O(log p)
  — the reason tree collectives exist,
* the Table 1 experiment is re-run under contention: times grow slightly
  (hyperquicksort's pairwise exchanges barely contend), the shape holds.

Results → ``benchmarks/results/ablation_contention.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_table
from repro.apps.sort import hyperquicksort_machine
from repro.machine import AP1000, Comm, Machine, MachineSpec, collectives as C

P = 16
NBYTES = 200_000
BW_SPEC = MachineSpec(name="bw", flop_time=1e-7, latency=10e-6,
                      bandwidth=5e6, send_overhead=1e-6, recv_overhead=1e-6)


def _linear_bcast(env):
    comm = Comm.world(env)
    if comm.rank == 0:
        for dst in range(1, comm.size):
            yield comm.send(dst, "v", nbytes=NBYTES)
        return "v"
    msg = yield comm.recv(0)
    return msg.payload


def _tree_bcast(env):
    comm = Comm.world(env)
    v = yield from C.bcast(comm, "v" if comm.rank == 0 else None, nbytes=NBYTES)
    return v


def test_ablation_contention(benchmark, bench_rng, results_dir):
    rows = []
    results = {}
    for single_port in (False, True):
        t_lin = Machine(P, spec=BW_SPEC, single_port=single_port)\
            .run(_linear_bcast).makespan
        t_tree = Machine(P, spec=BW_SPEC, single_port=single_port)\
            .run(_tree_bcast).makespan
        results[single_port] = (t_lin, t_tree)
        label = "single-port" if single_port else "contention-free"
        rows.append([label, f"{t_lin * 1e3:.2f}", f"{t_tree * 1e3:.2f}",
                     f"{t_lin / t_tree:.2f}x"])

    # contention-free: linear bcast overlaps all transfers, tree pays log p
    # rounds; under single-port the ranking flips decisively
    free_lin, free_tree = results[False]
    port_lin, port_tree = results[True]
    assert port_lin > free_lin
    assert port_lin / port_tree > free_lin / free_tree
    assert port_tree < port_lin

    vals = bench_rng.integers(0, 2**31, size=20_000).astype(np.int32)
    _o1, free = hyperquicksort_machine(vals, 4, spec=AP1000)
    _o2, port = hyperquicksort_machine(vals, 4, spec=AP1000, single_port=True)
    assert port.makespan >= free.makespan
    rows.append(["hyperquicksort p=16 (AP1000)", f"{free.makespan:.3f}s",
                 f"{port.makespan:.3f}s",
                 f"{port.makespan / free.makespan:.3f}x"])

    write_table(
        results_dir, "ablation_contention",
        f"Ablation E: one-port contention, {P} procs, {NBYTES // 1000} KB payloads",
        ["scenario", "linear bcast (ms)", "tree bcast (ms)", "ratio"],
        rows,
        notes=("Under a contended root port the linear broadcast serialises "
               "(~p wire-times) while the binomial tree stays ~log p: "
               "algorithm choice matters exactly when ports are scarce. "
               "Hyperquicksort row: free vs contended total runtime."))
    benchmark.pedantic(
        lambda: Machine(P, spec=BW_SPEC, single_port=True).run(_tree_bcast),
        rounds=3, iterations=1)
