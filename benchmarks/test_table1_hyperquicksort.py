"""Table 1 — hyperquicksort runtime vs. number of processors.

The paper: "The resulting code was tested on an AP1000 using a vector of
100,000 random numbers.  Table 1 shows the total execution time in seconds
as the number of processors is increased."

We run the hand-compiled message-passing program (scatter from p0, local
quicksort, d pivot/split/exchange/merge iterations, gather to p0) on the
simulated AP1000 for p = 1, 2, 4, 8, 16, 32 and report the virtual runtime.
The extracted copy of the paper lost the numeric cells of Table 1, so the
reproduction target is the documented *shape*: runtime strictly decreasing
in p with sub-linear speedup (see EXPERIMENTS.md).

The pytest-benchmark timing measures the host-side simulation cost of the
p = 32 row; the reproduced table is written to
``benchmarks/results/table1.txt``.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_table
from repro.apps.sort import hyperquicksort_machine, sequential_sort_machine
from repro.machine import AP1000

N_VALUES = 100_000
DIMS = [0, 1, 2, 3, 4, 5]  # p = 1 .. 32


@pytest.fixture(scope="module")
def workload(bench_rng):
    return bench_rng.integers(0, 2**31, size=N_VALUES).astype(np.int32)


def _run_row(values: np.ndarray, d: int):
    if d == 0:
        return sequential_sort_machine(values, spec=AP1000)
    return hyperquicksort_machine(values, d, spec=AP1000)


def test_table1_runtimes(benchmark, workload, results_dir):
    """Regenerate Table 1 and benchmark the largest simulation."""
    expected = np.sort(workload)
    rows = []
    times = {}
    for d in DIMS:
        out, res = _run_row(workload, d)
        assert np.array_equal(out, expected), f"sort incorrect at d={d}"
        times[1 << d] = res.makespan
        rows.append([1 << d, f"{res.makespan:.3f}",
                     res.total_messages, f"{res.efficiency():.0%}"])

    # monotone decrease: the paper's rows shrink as processors are added
    procs = sorted(times)
    for a, b in zip(procs, procs[1:]):
        assert times[b] < times[a], f"runtime must fall from p={a} to p={b}"

    write_table(
        results_dir, "table1",
        f"Table 1: hyperquicksort of {N_VALUES} random integers "
        f"(simulated {AP1000.name})",
        ["procs", "runtime (s)", "messages", "efficiency"],
        rows,
        notes=("Paper reports the same experiment on a real AP1000; the "
               "numeric cells were lost in text extraction, so the target "
               "is the documented shape: strictly decreasing runtime, "
               "sub-linear speedup."))
    benchmark.extra_info["virtual_times"] = {str(p): t for p, t in times.items()}

    benchmark.pedantic(
        lambda: hyperquicksort_machine(workload, 5, spec=AP1000),
        rounds=2, iterations=1)


def test_table1_shape_speedup_band(workload):
    """Speedup at p=32 lands in a plausible band around the paper's curve:
    well above half-linear breakdown, clearly below linear."""
    _s, seq = sequential_sort_machine(workload, spec=AP1000)
    _p, par = hyperquicksort_machine(workload, 5, spec=AP1000)
    speedup = seq.makespan / par.makespan
    assert 10.0 < speedup < 32.0


@pytest.mark.parametrize("d", DIMS)
def test_table1_per_processor_rows(benchmark, workload, d):
    """Host-side benchmark of each Table 1 row's simulation."""
    out, _res = benchmark.pedantic(
        lambda: _run_row(workload, d), rounds=1, iterations=1)
    assert out[0] <= out[-1]


def test_full_machine_128_extension(benchmark, workload, results_dir):
    """Extension: the AP1000 had 128 cells; the paper's table stops at 32.
    Run the full machine and record where scaling is by then."""
    rows = []
    _s, seq = sequential_sort_machine(workload, spec=AP1000)
    for d in (5, 6, 7):
        out, res = hyperquicksort_machine(workload, d, spec=AP1000)
        assert np.array_equal(out, np.sort(workload))
        sp = seq.makespan / res.makespan
        rows.append([1 << d, f"{res.makespan:.3f}", f"{sp:.2f}",
                     f"{sp / (1 << d):.0%}"])
    write_table(
        results_dir, "table1_full_machine",
        f"Extension: hyperquicksort of {N_VALUES} integers up to the "
        f"AP1000's full 128 cells",
        ["procs", "runtime (s)", "speedup", "efficiency"],
        rows,
        notes=("Efficiency keeps eroding as local blocks shrink toward the "
               "per-message latency floor — the paper's curve extrapolated "
               "to the machine it actually had."))
    benchmark.pedantic(
        lambda: hyperquicksort_machine(workload, 7, spec=AP1000),
        rounds=1, iterations=1)
