"""Tests for repro.stream.skeletons."""

from __future__ import annotations

import itertools
import operator
import threading
import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SkeletonError
from repro.runtime import ThreadExecutor
from repro.stream import stream_farm, stream_filter, stream_map, stream_reduce, stream_scan


def square(x):
    return x * x


class TestStreamMap:
    def test_sequential_matches_builtin_map(self):
        assert list(stream_map(square, range(10))) == [x * x for x in range(10)]

    def test_threaded_preserves_order(self):
        with ThreadExecutor(max_workers=4) as ex:
            out = list(stream_map(square, range(100), executor=ex, window=8))
        assert out == [x * x for x in range(100)]

    def test_order_preserved_under_variable_latency(self):
        def slow_when_even(x):
            if x % 2 == 0:
                time.sleep(0.005)
            return x

        with ThreadExecutor(max_workers=4) as ex:
            out = list(stream_map(slow_when_even, range(20), executor=ex))
        assert out == list(range(20))

    def test_lazy_consumption(self):
        consumed = []

        def source():
            for i in range(1000):
                consumed.append(i)
                yield i

        gen = stream_map(square, source(), window=4)
        assert next(gen) == 0
        # only ~window items were pulled, not the whole stream
        assert len(consumed) <= 10

    def test_empty_stream(self):
        assert list(stream_map(square, [])) == []

    def test_window_validation(self):
        with pytest.raises(SkeletonError):
            list(stream_map(square, [1], window=0))

    def test_exceptions_propagate(self):
        with ThreadExecutor(max_workers=2) as ex:
            gen = stream_map(lambda x: 1 // x, [1, 0, 2], executor=ex)
            with pytest.raises(ZeroDivisionError):
                list(gen)

    def test_runs_concurrently(self):
        barrier = threading.Barrier(3, timeout=10)

        def rendezvous(x):
            barrier.wait()
            return x

        with ThreadExecutor(max_workers=3) as ex:
            out = list(stream_map(rendezvous, range(3), executor=ex, window=3))
        assert out == [0, 1, 2]

    @given(st.lists(st.integers(), max_size=60), st.integers(1, 10))
    def test_deterministic_property(self, xs, window):
        with ThreadExecutor(max_workers=3) as ex:
            out = list(stream_map(square, xs, executor=ex, window=window))
        assert out == [x * x for x in xs]


class TestStreamFarm:
    def test_ordered_mode_is_stream_map(self):
        with ThreadExecutor(max_workers=3) as ex:
            out = list(stream_farm(square, range(20), executor=ex))
        assert out == [x * x for x in range(20)]

    def test_unordered_mode_yields_all_results(self):
        with ThreadExecutor(max_workers=4) as ex:
            out = list(stream_farm(square, range(30), executor=ex,
                                   ordered=False, window=5))
        assert sorted(out) == [x * x for x in range(30)]

    def test_unordered_sequential_fallback(self):
        out = list(stream_farm(square, range(5), ordered=False))
        assert out == [x * x for x in range(5)]

    def test_unordered_window_validation(self):
        with pytest.raises(SkeletonError):
            list(stream_farm(square, [1], ordered=False, window=0))

    def test_unordered_bounded_inflight(self):
        """Never more than `window` jobs in flight."""
        active = []
        lock = threading.Lock()
        peak = [0]

        def job(x):
            with lock:
                active.append(x)
                peak[0] = max(peak[0], len(active))
            time.sleep(0.002)
            with lock:
                active.remove(x)
            return x

        with ThreadExecutor(max_workers=8) as ex:
            list(stream_farm(job, range(40), executor=ex, ordered=False,
                             window=3))
        assert peak[0] <= 3


class TestStreamFilter:
    def test_keeps_matching_in_order(self):
        out = list(stream_filter(lambda x: x % 3 == 0, range(20)))
        assert out == [0, 3, 6, 9, 12, 15, 18]

    def test_threaded(self):
        with ThreadExecutor(max_workers=3) as ex:
            out = list(stream_filter(lambda x: x % 2 == 0, range(50),
                                     executor=ex))
        assert out == list(range(0, 50, 2))

    def test_empty(self):
        assert list(stream_filter(bool, [])) == []


class TestStreamReduceScan:
    def test_reduce(self):
        assert stream_reduce(operator.add, range(10), 0) == 45

    def test_reduce_empty_gives_initial(self):
        assert stream_reduce(operator.add, [], 99) == 99

    def test_reduce_non_commutative(self):
        assert stream_reduce(operator.add, "abc", "") == "abc"

    def test_scan(self):
        assert list(stream_scan(operator.add, [1, 2, 3], 0)) == [1, 3, 6]

    def test_scan_lazy(self):
        gen = stream_scan(operator.add, itertools.count(1), 0)
        assert [next(gen) for _ in range(4)] == [1, 3, 6, 10]

    @given(st.lists(st.integers(), max_size=50))
    def test_scan_consistent_with_reduce_property(self, xs):
        scans = list(stream_scan(operator.add, xs, 0))
        if xs:
            assert scans[-1] == stream_reduce(operator.add, xs, 0)
        else:
            assert scans == []
