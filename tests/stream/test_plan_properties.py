"""Property suite for stream plans (ISSUE 7 satellite).

Three law families, each over random streams and chunk sizes:

1. **Chunk/UnChunk round trip** — ``Chunk(n) . UnChunk`` is the
   identity on any stream, for any ``n``.
2. **Stop prefix laws** — the output of any ``Stop`` is a prefix of the
   unstopped stream; the triggering item is included; a pre-satisfied
   predicate yields the empty stream; ``take(k)`` is ``islice(k)``.
3. **Chunked == unchunked reference** — executing an expression through
   ``Chunk(n) . MapPlan(e) . UnChunk`` is element-wise identical to the
   per-chunk sequential reference, and the threaded executor is
   bit-identical to ``run_seq`` for every case, stop truncation
   included.
"""

from __future__ import annotations

import itertools
import operator

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scl import Fold, Map, Scan
from repro.stream.plan import Source, stream_plan

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False, width=32)
streams = st.lists(finite_floats, min_size=0, max_size=40)
chunk_sizes = st.integers(min_value=1, max_value=9)


@given(streams, chunk_sizes)
@settings(max_examples=60, deadline=None)
def test_chunk_unchunk_round_trip(xs, n):
    plan = stream_plan(xs).chunk(n).unchunk()
    assert list(plan.run_seq()) == xs
    assert list(plan.run()) == xs


@given(streams, chunk_sizes)
@settings(max_examples=40, deadline=None)
def test_chunk_sizes_law(xs, n):
    """Every chunk has size n except a shorter final remainder."""
    chunks = list(stream_plan(xs).chunk(n).run_seq())
    assert [len(c) for c in chunks[:-1]] == [n] * max(0, len(chunks) - 1)
    if xs:
        assert 1 <= len(chunks[-1]) <= n
    assert [x for c in chunks for x in c] == xs


@given(streams, st.integers(min_value=0, max_value=50))
@settings(max_examples=60, deadline=None)
def test_take_is_islice(xs, k):
    plan = stream_plan(xs).take(k)
    expected = list(itertools.islice(xs, k))
    assert list(plan.run_seq()) == expected
    assert list(plan.run()) == expected


@given(streams, st.floats(min_value=-100, max_value=100, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_stop_is_a_prefix_including_trigger(xs, threshold):
    plan = stream_plan(xs).stop(lambda acc, x: acc + abs(x), 0.0,
                                lambda acc: acc > threshold)
    out = list(plan.run_seq())
    assert out == xs[:len(out)]  # always a prefix
    if threshold < 0:
        # pred(init) may already hold (0.0 > negative threshold) -> empty
        assert out == []
    elif len(out) < len(xs):
        # stopped early: the trigger is included, the prefix before it
        # had not yet tripped the predicate
        assert sum(abs(x) for x in out) > threshold
        assert sum(abs(x) for x in out[:-1]) <= threshold
    assert list(plan.run()) == out


@given(streams, chunk_sizes)
@settings(max_examples=40, deadline=None)
def test_chunked_scan_matches_sequential_reference(xs, n):
    """Chunk . MapPlan(scan) . UnChunk == numpy cumsum per chunk."""
    plan = (stream_plan(xs).chunk(n)
            .map_plan(Scan(operator.add)).unchunk())
    expected = []
    for i in range(0, len(xs), n):
        expected.extend(np.cumsum(np.asarray(xs[i:i + n], dtype=float)))
    out_seq = list(plan.run_seq())
    np.testing.assert_allclose(out_seq, expected, rtol=1e-12)
    # The threaded run must be BIT-identical to the sequential one.
    assert list(plan.run()) == out_seq


@given(streams, chunk_sizes)
@settings(max_examples=30, deadline=None)
def test_chunked_fold_matches_sequential_reference(xs, n):
    plan = stream_plan(xs).chunk(n).map_plan(Fold(operator.add))
    expected = [float(np.sum(np.asarray(xs[i:i + n], dtype=float)))
                for i in range(0, len(xs), n)]
    out_seq = list(plan.run_seq())
    np.testing.assert_allclose(out_seq, expected, rtol=1e-12)
    assert list(plan.run()) == out_seq


@given(streams, chunk_sizes, st.integers(min_value=0, max_value=40))
@settings(max_examples=30, deadline=None)
def test_threaded_identical_with_stop_truncation(xs, n, k):
    """The full composition — chunk, compiled map, unchunk, stop — is
    bit-identical between the threaded and sequential executors."""
    mk = lambda: (stream_plan(xs).chunk(n)
                  .map_plan(Map(lambda v: v * 0.5)).unchunk().take(k))
    assert list(mk().run()) == list(mk().run_seq())


@given(chunk_sizes, st.integers(min_value=1, max_value=200))
@settings(max_examples=20, deadline=None)
def test_infinite_source_with_stop_terminates(n, limit):
    """Stop conditions make infinite generators terminate in both
    executors, with identical output."""
    mk = lambda: (stream_plan(Source.count(1)).chunk(n)
                  .map_plan(Fold(operator.add))
                  .stop(operator.add, 0.0, lambda acc: acc >= limit))
    out_seq = list(mk().run_seq())
    assert out_seq  # at least the triggering chunk-sum
    assert sum(out_seq) >= limit
    assert sum(out_seq[:-1]) < limit
    assert list(mk().run()) == out_seq
