"""Unit tests for repro.stream.plan — the Stream IR and its executors."""

from __future__ import annotations

import itertools
import operator

import numpy as np
import pytest

from repro.errors import SkeletonError
from repro.plan.lower import plan_cache_reset, plan_cache_stats
from repro.scl import Fold, Map, Scan, compose_nodes
from repro.stream.plan import (
    Chunk,
    MapPlan,
    MapSeq,
    Source,
    Stop,
    StreamPlan,
    StreamRunStats,
    UnChunk,
    stream_plan,
)


def add(a, b):
    return a + b


class TestSource:
    def test_of_iterable(self):
        assert list(Source.of([3, 1, 2]).items()) == [3, 1, 2]

    def test_step_unfold(self):
        src = Source(step=lambda s: (s * s, s + 1) if s < 4 else None, init=1)
        assert list(src.items()) == [1, 4, 9]

    def test_count_is_infinite(self):
        assert list(itertools.islice(Source.count(5).items(), 4)) == \
            [5, 6, 7, 8]


class TestShapeValidation:
    def test_unchunk_without_chunk_rejected(self):
        with pytest.raises(SkeletonError, match="UnChunk"):
            stream_plan([1]).unchunk()

    def test_nested_chunk_rejected(self):
        with pytest.raises(SkeletonError, match="chunked"):
            stream_plan([1]).chunk(2).chunk(2)

    def test_map_plan_needs_chunked_stream(self):
        with pytest.raises(SkeletonError, match="MapPlan"):
            stream_plan([1]).map_plan(Scan(operator.add))

    def test_reducing_map_plan_unchunks(self):
        # Fold leaves scalars, so a following unchunk must be rejected.
        plan = stream_plan([1]).chunk(2).map_plan(Fold(operator.add))
        with pytest.raises(SkeletonError, match="UnChunk"):
            plan.unchunk()

    def test_chunk_size_validated(self):
        with pytest.raises(SkeletonError, match="Chunk"):
            Chunk(0)

    def test_bad_stage_rejected(self):
        with pytest.raises(SkeletonError, match="unknown"):
            StreamPlan(Source.of([1]), ("nope",))  # type: ignore[arg-type]

    def test_bad_source_rejected(self):
        with pytest.raises(SkeletonError, match="Source"):
            StreamPlan([1, 2])  # type: ignore[arg-type]

    def test_take_negative_rejected(self):
        with pytest.raises(SkeletonError, match="take"):
            stream_plan([1]).take(-1)


class TestExecution:
    def test_chunk_unchunk_identity(self):
        plan = stream_plan(range(10)).chunk(3).unchunk()
        assert list(plan.run_seq()) == list(range(10))
        assert list(plan.run()) == list(range(10))

    def test_map_seq(self):
        plan = stream_plan([1, 2, 3]).map_seq(lambda x: x * 10)
        assert list(plan.run_seq()) == [10, 20, 30]

    def test_map_plan_scan_matches_numpy(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        plan = (stream_plan(values).chunk(4)
                .map_plan(Scan(operator.add)).unchunk())
        expected = list(np.cumsum(values[:4])) + list(np.cumsum(values[4:]))
        assert list(plan.run_seq()) == pytest.approx(expected)
        assert list(plan.run()) == pytest.approx(expected)

    def test_map_plan_fold_reduces_each_chunk(self):
        plan = (stream_plan([1.0, 2.0, 3.0, 4.0, 5.0]).chunk(2)
                .map_plan(Fold(operator.add)))
        assert list(plan.run_seq()) == pytest.approx([3.0, 7.0, 5.0])

    def test_map_plan_composition(self):
        expr = compose_nodes(Scan(operator.add), Map(lambda x: x * 2))
        plan = stream_plan([1.0, 2.0, 3.0]).chunk(3).map_plan(expr).unchunk()
        assert list(plan.run_seq()) == pytest.approx([2.0, 6.0, 12.0])

    def test_ragged_final_chunk(self):
        plan = (stream_plan([1.0] * 7).chunk(4)
                .map_plan(Scan(operator.add)).unchunk())
        assert list(plan.run_seq()) == pytest.approx(
            [1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0])

    def test_stop_truncates_infinite_source_threaded(self):
        plan = (stream_plan(Source.count(1)).chunk(4)
                .map_plan(Fold(operator.add))
                .stop(operator.add, 0.0, lambda acc: acc > 100))
        assert list(plan.run()) == list(plan.run_seq())
        out = list(plan.run())
        assert sum(out) > 100 and sum(out[:-1]) <= 100

    def test_take(self):
        plan = stream_plan(Source.count()).take(5)
        assert list(plan.run_seq()) == [0, 1, 2, 3, 4]
        assert list(plan.run()) == [0, 1, 2, 3, 4]

    def test_take_zero_is_empty(self):
        plan = stream_plan(Source.count()).take(0)
        assert list(plan.run_seq()) == []
        assert list(plan.run()) == []

    def test_stop_emits_triggering_item(self):
        plan = stream_plan([1, 2, 3, 4]).stop(
            operator.add, 0, lambda acc: acc >= 3)
        assert list(plan.run_seq()) == [1, 2]

    def test_no_stages_pass_through(self):
        stats = StreamRunStats()
        assert list(stream_plan([7, 8]).run_seq(stats=stats)) == [7, 8]
        assert stats.items_in == 2 and stats.items_out == 2

    def test_plans_are_reusable(self):
        plan = stream_plan([1, 2, 3]).map_seq(lambda x: -x)
        assert list(plan.run_seq()) == [-1, -2, -3]
        assert list(plan.run_seq()) == [-1, -2, -3]


class TestPlanCacheAmortization:
    def test_one_lowering_many_chunks(self):
        # Counter deltas only — keep any warm plans (a warm cache just
        # turns the first chunk's miss into a hit; both bounds hold).
        plan_cache_reset()
        expr = Scan(operator.add)
        plan = (stream_plan([float(i) for i in range(64)]).chunk(8)
                .map_plan(expr).unchunk())
        list(plan.run_seq())
        stats = plan_cache_stats()
        # 8 equal-size chunks: one miss (first chunk), hits after.
        assert stats["misses"] <= 2  # auto-opt may lower raw + optimized
        assert stats["hits"] >= 7

    def test_stats_counters(self):
        stats = StreamRunStats()
        plan = (stream_plan([1.0] * 10).chunk(4)
                .map_plan(Scan(operator.add)).unchunk())
        out = list(plan.run_seq(stats=stats))
        assert len(out) == 10
        assert stats.items_in == 10
        assert stats.items_out == 10
        assert stats.chunks == 3
        assert stats.plan_runs == 3
        assert stats.sim_events > 0
        assert stats.virtual_seconds > 0

    def test_threaded_stats_match_sequential(self):
        seq_stats, thr_stats = StreamRunStats(), StreamRunStats()
        mk = lambda: (stream_plan([float(i) for i in range(20)]).chunk(4)
                      .map_plan(Scan(operator.add)).unchunk())
        seq = list(mk().run_seq(stats=seq_stats))
        thr = list(mk().run(stats=thr_stats))
        assert seq == thr
        assert dataclass_tuple(seq_stats) == dataclass_tuple(thr_stats)


def dataclass_tuple(stats: StreamRunStats):
    return (stats.items_in, stats.items_out, stats.chunks, stats.plan_runs,
            stats.sim_events, stats.sim_messages, stats.virtual_seconds)


class TestMapPlanValidation:
    def test_expr_must_be_node(self):
        with pytest.raises(SkeletonError, match="expression"):
            MapPlan(lambda x: x)  # type: ignore[arg-type]

    def test_topology_validated(self):
        with pytest.raises(SkeletonError, match="topology"):
            MapPlan(Scan(operator.add), topology="torus")

    def test_reduces_detection(self):
        assert MapPlan(Fold(operator.add)).reduces
        assert MapPlan(compose_nodes(Fold(operator.add),
                                     Map(lambda x: x))).reduces
        assert not MapPlan(Scan(operator.add)).reduces
        assert not MapPlan(Map(lambda x: x)).reduces
