"""Tests for repro.stream.pipeline — thread pipelines and the machine model."""

from __future__ import annotations

import time

import pytest

from repro.errors import SkeletonError
from repro.machine import AP1000, PERFECT
from repro.stream import PipelineStage, pipeline, pipeline_machine


def inc(x):
    return x + 1


def dbl(x):
    return x * 2


class TestThreadPipeline:
    def test_matches_sequential_composition(self):
        run = pipeline([inc, dbl, inc])
        assert list(run(range(10))) == [dbl(inc(x)) + 1 for x in range(10)]

    def test_empty_stage_list_is_identity(self):
        assert list(pipeline([])(range(5))) == list(range(5))

    def test_single_stage(self):
        assert list(pipeline([dbl])([1, 2, 3])) == [2, 4, 6]

    def test_order_preserved(self):
        run = pipeline([inc, inc, inc, inc])
        assert list(run(range(200))) == [x + 4 for x in range(200)]

    def test_empty_stream(self):
        assert list(pipeline([inc])([])) == []

    def test_stages_overlap_in_time(self):
        """With 3 stages of ~5ms on 9 items, a pipeline takes ~(9+2)*5ms,
        far less than the sequential 27*5ms."""
        def slow(x):
            time.sleep(0.005)
            return x

        items = list(range(9))
        start = time.perf_counter()
        list(pipeline([slow, slow, slow])(items))
        piped = time.perf_counter() - start
        sequential_estimate = 27 * 0.005
        assert piped < sequential_estimate * 0.8

    def test_stage_objects_accepted(self):
        run = pipeline([PipelineStage(fn=inc, ops=5, name="inc")])
        assert list(run([1])) == [2]

    def test_bad_stage_rejected(self):
        with pytest.raises(SkeletonError):
            pipeline(["not callable"])  # type: ignore[list-item]

    def test_bad_buffer_rejected(self):
        with pytest.raises(SkeletonError):
            pipeline([inc], buffer=0)

    def test_stage_exception_propagates(self):
        run = pipeline([inc, lambda x: 1 // (x - 3), inc])
        with pytest.raises(ZeroDivisionError):
            list(run(range(10)))

    def test_producer_exception_propagates(self):
        def bad_source():
            yield 1
            raise ValueError("source broke")

        with pytest.raises(ValueError, match="source broke"):
            list(pipeline([inc])(bad_source()))

    def test_backpressure_bounds_memory(self):
        """A slow consumer must throttle the producer via bounded queues."""
        produced = []

        def source():
            for i in range(1000):
                produced.append(i)
                yield i

        gen = pipeline([inc], buffer=4)(source())
        next(gen)
        time.sleep(0.02)
        # producer ran ahead only by the queue capacities, not the stream
        assert len(produced) < 50
        for _ in gen:
            pass


class TestFailureSemantics:
    """The PR-7 failure contract: poison propagates immediately, the
    earliest failure by stage order wins, and infinite inputs always
    terminate once a stage fails."""

    def test_poison_stops_downstream_promptly(self):
        """Items submitted after a mid-stream failure never reach the
        stages below it."""
        seen = []

        def record(x):
            seen.append(x)
            return x

        def boom(x):
            if x == 5:
                raise RuntimeError("boom at 5")
            time.sleep(0.001)
            return x

        with pytest.raises(RuntimeError, match="boom at 5"):
            list(pipeline([boom, record], buffer=2)(range(1000)))
        # The recorder saw at most the healthy prefix plus whatever was
        # already buffered — nowhere near the full input.
        assert len(seen) < 50

    def test_earliest_stage_failure_wins(self):
        """When two stages fail concurrently, the exception raised is the
        upstream one — deterministically, regardless of thread timing."""
        import threading

        first_failed = threading.Event()

        def early(x):
            if x == 3:
                first_failed.set()
                raise ValueError("early stage")
            return x

        def late(x):
            if x >= 1:
                # Fail only after the upstream failure has happened, so
                # both failures are in flight together.
                first_failed.wait(timeout=5)
                raise KeyError("late stage")
            return x

        for _ in range(5):
            with pytest.raises(ValueError, match="early stage"):
                list(pipeline([early, late])(range(10)))

    def test_source_failure_beats_stage_failure(self):
        def bad_source():
            yield 1
            raise OSError("source broke")

        def always_fail(x):
            raise LookupError("stage broke")

        # Both fail; the source is stage -1 and must win.
        with pytest.raises((OSError, LookupError)) as excinfo:
            list(pipeline([always_fail])(bad_source()))
        # The stage consumed item 1 before the source raised, so either
        # order is *possible* at runtime — but whenever both failures are
        # recorded, the source's must be the one raised.  Run a variant
        # where the stage failure definitely lands first:
        del excinfo

        def fail_fast(x):
            raise LookupError("stage broke first")

        def slow_bad_source():
            yield 1
            time.sleep(0.05)
            raise OSError("source broke later")

        with pytest.raises(OSError, match="source broke later"):
            list(pipeline([fail_fast])(slow_bad_source()))

    def test_infinite_input_failure_terminates(self):
        """A failing stage fed by an infinite generator must cancel the
        feeder rather than hang (the seed code deadlocked here)."""
        import itertools

        def boom(x):
            if x == 20:
                raise RuntimeError("stop")
            return x

        start = time.perf_counter()
        with pytest.raises(RuntimeError, match="stop"):
            list(pipeline([boom], buffer=4)(itertools.count()))
        assert time.perf_counter() - start < 10

    def test_consumer_abandonment_cancels_feeder(self):
        """Closing the output generator early cancels the pipeline."""
        import itertools

        gen = pipeline([inc], buffer=4)(itertools.count())
        assert next(gen) == 1
        gen.close()  # must not hang


class TestMachinePipeline:
    def test_results_match_composition(self):
        out, _res = pipeline_machine([inc, dbl], list(range(10)))
        assert out == [dbl(inc(x)) for x in range(10)]

    def test_single_stage(self):
        out, res = pipeline_machine([dbl], [1, 2, 3])
        assert out == [2, 4, 6]
        assert res.total_messages == 0

    def test_empty_stage_list_rejected(self):
        with pytest.raises(SkeletonError):
            pipeline_machine([], [1])

    def test_message_count(self):
        s, m = 4, 10
        _out, res = pipeline_machine([PipelineStage(inc, ops=5)] * s,
                                     list(range(m)), spec=PERFECT)
        assert res.total_messages == (s - 1) * m

    def test_fill_drain_law(self):
        """T ≈ (m + s - 1) · t_stage on a zero-latency machine with equal
        stages — the textbook pipeline formula."""
        ops = 1000.0
        t_stage = PERFECT.compute_time(ops)
        for s, m in [(2, 5), (4, 10), (3, 1)]:
            stages = [PipelineStage(inc, ops=ops)] * s
            _out, res = pipeline_machine(stages, list(range(m)), spec=PERFECT)
            expected = (m + s - 1) * t_stage
            assert res.makespan == pytest.approx(expected, rel=1e-9), (s, m)

    def test_bottleneck_stage_dominates(self):
        """Throughput is set by the slowest stage."""
        m = 20
        fast = PipelineStage(inc, ops=10)
        slow = PipelineStage(inc, ops=10_000)
        _out, res = pipeline_machine([fast, slow, fast], list(range(m)),
                                     spec=PERFECT)
        t_slow = PERFECT.compute_time(10_000)
        assert res.makespan >= m * t_slow

    def test_pipeline_beats_single_processor_for_long_streams(self):
        ops = 5000.0
        stages = [PipelineStage(inc, ops=ops)] * 4
        m = 50
        _out, piped = pipeline_machine(stages, list(range(m)), spec=AP1000)
        sequential = 4 * m * AP1000.compute_time(ops)
        assert piped.makespan < sequential

    def test_ap1000_communication_charged(self):
        _out, free = pipeline_machine([inc, inc], list(range(10)), spec=PERFECT)
        _out, paid = pipeline_machine([inc, inc], list(range(10)), spec=AP1000)
        assert paid.makespan > free.makespan
