"""Smoke tests for the simulator performance harness (quick mode only).

These don't assert on host timings — those are environment-dependent — only
that the harness runs, the JSON schema is stable, the virtual-time results
embedded in the records are exact, and both CLI entry points reach it.
"""

from __future__ import annotations

import json

import pytest

from repro import perf


@pytest.fixture(scope="module")
def quick_suite():
    return perf.run_suite(quick=True)


class TestRunSuite:
    def test_covers_all_workloads_and_sizes(self, quick_suite):
        expected = {f"{w}/p{p}"
                    for w in ("ring_sweep", "wildcard_funnel", "allreduce",
                              "hyperquicksort", "compiled_hyperquicksort",
                              "compiled_hyperquicksort_noopt",
                              "trace_overhead")
                    for p in perf.QUICK_PROCS}
        expected |= {f"ring_sweep/p{perf.QUICK_LARGE_RING}",
                     f"compiled_gauss_jordan/p{perf.GAUSS_PROCS}",
                     f"compiled_gauss_jordan_noopt/p{perf.GAUSS_PROCS}"}
        expected |= {f"service_sustained/p{c}"
                     for c in perf.QUICK_SERVICE_CONCURRENCY}
        expected |= {f"stream_chunked/p{ch}"
                     for ch in perf.QUICK_STREAM_CHUNKS}
        expected |= {f"metrics_overhead/p{mp}"
                     for mp in perf.METRICS_PROCS}
        expected |= {f"parallel_hyperquicksort/p{pp}"
                     for pp in perf.PARALLEL_QUICK_PROCS}
        tp = 1 << perf.QUICK_TUNED_DIM
        expected |= {f"tuned_hyperquicksort/p{tp}",
                     f"tuned_hyperquicksort_greedy/p{tp}"}
        assert set(quick_suite) == expected

    def test_filter_restricts_the_suite(self):
        only = perf.run_suite(quick=True, only="allreduce")
        assert set(only) == {f"allreduce/p{p}" for p in perf.QUICK_PROCS}

    def test_optimized_rows_pair_with_their_noopt_twins(self, quick_suite):
        for key, rec in quick_suite.items():
            if key.startswith(("compiled_hyperquicksort/",
                               "compiled_gauss_jordan/")):
                twin = quick_suite[key.replace("/", "_noopt/")]
                assert rec["speedup_vs_noopt"] == round(
                    twin["host_seconds"] / rec["host_seconds"], 2)
                # optimization must not change the simulated run
                assert rec["makespan"] == twin["makespan"]
                assert rec["messages"] == twin["messages"]

    def test_median_merge_picks_consistent_records(self, quick_suite):
        import copy

        other = copy.deepcopy(quick_suite)
        for rec in other.values():
            rec["host_seconds"] *= 3  # a uniformly slower repeat
        merged = perf.median_merge([quick_suite, other])
        assert set(merged) == set(quick_suite)
        key = f"ring_sweep/p{perf.QUICK_PROCS[0]}"
        # median_low of two values is the lower one
        assert merged[key]["host_seconds"] == quick_suite[key]["host_seconds"]

    def test_records_have_the_tracked_fields(self, quick_suite):
        for key, rec in quick_suite.items():
            assert rec["host_seconds"] > 0, key
            assert rec["events"] > 0, key
            assert rec["events_per_sec"] > 0, key
            assert rec["makespan"] > 0, key

    def test_virtual_time_is_deterministic(self, quick_suite):
        # host_seconds may wobble; the simulated makespan must not
        again = perf.bench_ring_sweep(32, rounds=30)
        assert again["makespan"] == quick_suite["ring_sweep/p32"]["makespan"]

    def test_events_counted_from_stats(self, quick_suite):
        # ring sweep: every proc sends and receives `rounds` messages
        rec = quick_suite["ring_sweep/p32"]
        assert rec["events"] == 2 * 32 * 30


class TestServiceRows:
    def test_service_sustained_fields(self, quick_suite):
        key = f"service_sustained/p{perf.QUICK_SERVICE_CONCURRENCY[0]}"
        rec = quick_suite[key]
        assert rec["requests"] == 200
        assert rec["throughput_rps"] > 0
        assert 0 < rec["p50_ms"] <= rec["p99_ms"]
        # Steady state: the lowering cache absorbs ~every request.
        assert rec["cache_hit_rate"] > 0.9

    def test_service_events_deterministic(self, quick_suite):
        """Workload content is seeded per request index, so total sim
        events must not depend on thread interleaving."""
        key = f"service_sustained/p{perf.QUICK_SERVICE_CONCURRENCY[0]}"
        again = perf.bench_service_sustained(
            perf.QUICK_SERVICE_CONCURRENCY[0], requests=200)
        assert again["events"] == quick_suite[key]["events"]
        assert again["makespan"] == pytest.approx(
            quick_suite[key]["makespan"])

    def test_stream_chunked_fields(self, quick_suite):
        key = f"stream_chunked/p{perf.QUICK_STREAM_CHUNKS[0]}"
        rec = quick_suite[key]
        assert rec["items"] == 256
        assert rec["chunks"] == rec["plan_runs"]
        assert rec["chunks"] == 256 // perf.QUICK_STREAM_CHUNKS[0]
        assert rec["items_per_sec"] > 0

    def test_stream_chunked_deterministic_virtual_time(self, quick_suite):
        key = f"stream_chunked/p{perf.QUICK_STREAM_CHUNKS[0]}"
        again = perf.bench_stream_chunked(perf.QUICK_STREAM_CHUNKS[0],
                                          items=256, repeats=1)
        assert again["events"] == quick_suite[key]["events"]
        assert again["makespan"] == pytest.approx(
            quick_suite[key]["makespan"])


class TestMetricsOverhead:
    def test_reports_both_arms(self, quick_suite):
        key = f"metrics_overhead/p{perf.METRICS_PROCS[0]}"
        rec = quick_suite[key]
        assert rec["requests"] == 120
        assert rec["host_seconds"] > 0            # metrics disabled
        assert rec["host_seconds_metrics"] > 0    # live registry + SLO
        assert rec["overhead_metrics"] > 0
        assert rec["events"] > 0

    def test_arms_run_the_identical_workload(self):
        # Seeded content + an unreachable SLO target: both arms admit
        # and complete the same requests, so events are arm-identical
        # (bench_metrics_overhead itself asserts off == on; two calls
        # prove the whole row is deterministic).
        a = perf.bench_metrics_overhead(perf.METRICS_PROCS[0],
                                        requests=60, repeats=1)
        b = perf.bench_metrics_overhead(perf.METRICS_PROCS[0],
                                        requests=60, repeats=1)
        assert a["events"] == b["events"]


class TestTunedRows:
    def test_search_row_pairs_with_its_greedy_twin(self, quick_suite):
        tp = 1 << perf.QUICK_TUNED_DIM
        search = quick_suite[f"tuned_hyperquicksort/p{tp}"]
        greedy = quick_suite[f"tuned_hyperquicksort_greedy/p{tp}"]
        assert search["strategy"] == "search"
        assert greedy["strategy"] == "greedy"
        assert search["speedup_vs_greedy"] == round(
            greedy["makespan"] / search["makespan"], 3)
        # the acceptance claim the harness tracks: on the engineered
        # workload the searched plan strictly beats greedy's fixpoint
        assert search["makespan"] < greedy["makespan"]
        # search declined greedy's traffic-concentrating fetch fusions
        assert search["rules_applied"] < greedy["rules_applied"]

    def test_tuned_cache_flag_recorded(self, quick_suite):
        tp = 1 << perf.QUICK_TUNED_DIM
        rec = quick_suite[f"tuned_hyperquicksort/p{tp}"]
        assert "search_was_cached" in rec


class TestParallelRows:
    def test_three_arms_and_speedup_columns(self, quick_suite):
        key = f"parallel_hyperquicksort/p{perf.PARALLEL_QUICK_PROCS[0]}"
        rec = quick_suite[key]
        assert rec["host_seconds"] > 0          # pool, workers=N
        assert rec["host_seconds_w1"] > 0       # pool, workers=1
        assert rec["host_seconds_vexec"] > 0    # no pool at all
        assert rec["speedup_workers"] == pytest.approx(
            rec["host_seconds_w1"] / rec["host_seconds"], rel=0.02)
        assert rec["speedup_vs_vexec"] == pytest.approx(
            rec["host_seconds_vexec"] / rec["host_seconds"], rel=0.02)
        assert rec["workers"] >= 1
        assert rec["host_cpus"] >= 1

    def test_bench_asserts_equivalence_itself(self):
        # The bench raises if any arm's values or virtual costs diverge;
        # a clean return at a small size is the equivalence check.
        rec = perf.bench_parallel_hyperquicksort(128, n=1 << 14,
                                                 workers=2, repeats=1)
        assert rec["makespan"] > 0
        assert rec["messages"] > 0


class TestTraceOverhead:
    def test_reports_all_three_modes(self, quick_suite):
        rec = quick_suite["trace_overhead/p32"]
        assert rec["host_seconds"] > 0  # untraced
        assert rec["host_seconds_memory_trace"] > 0
        assert rec["host_seconds_jsonl_sink"] > 0
        assert rec["overhead_memory_trace"] > 0
        assert rec["overhead_jsonl_sink"] > 0

    def test_untraced_makespan_matches_compiled_workload(self, quick_suite):
        # identical workload and seed: the virtual run must be the same
        assert (quick_suite["trace_overhead/p32"]["makespan"]
                == quick_suite["compiled_hyperquicksort/p32"]["makespan"])


class TestBenchJson:
    def test_write_and_reload(self, quick_suite, tmp_path):
        out = tmp_path / "BENCH_simulator.json"
        doc = perf.write_bench_json(str(out), quick_suite, quick=True)
        loaded = json.loads(out.read_text())
        assert loaded == doc
        assert loaded["schema"] == 1
        assert loaded["quick"] is True
        assert set(loaded["current"]) == set(quick_suite)
        assert loaded["baseline"]  # frozen seed numbers travel with the file

    def test_quick_mode_omits_seed_speedups(self, quick_suite, tmp_path):
        # quick runs use different workload sizes than the frozen baseline,
        # so a ratio against it would be meaningless
        out = tmp_path / "bench.json"
        doc = perf.write_bench_json(str(out), quick_suite, quick=True)
        assert doc["speedup_vs_seed"] == {}

    def test_render_report_mentions_workloads(self, quick_suite, tmp_path):
        doc = perf.write_bench_json(str(tmp_path / "b.json"), quick_suite,
                                    quick=True)
        text = perf.render_report(doc)
        assert "hyperquicksort" in text and "events/s" in text


class TestEntryPoints:
    def test_perf_main_quick(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert perf.main(["--quick", "--output", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_repro_cli_delegates(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        out = tmp_path / "bench.json"
        assert cli_main(["perf", "--quick", "--output", str(out)]) == 0
        assert out.exists()

    def test_benchmarks_package_layout(self):
        # benchmarks.perf is only importable with the repo root on sys.path
        # (as in CI), so check the module layout rather than importing it
        import pathlib

        pkg = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "perf"
        assert (pkg / "__init__.py").exists()
        assert (pkg / "__main__.py").exists()
