"""Tests for repro.runtime.executor."""

from __future__ import annotations

import threading

import pytest

from repro.errors import SkeletonError
from repro.runtime.executor import (
    Executor,
    ProcessExecutor,
    SequentialExecutor,
    ThreadExecutor,
    get_executor,
)


def square(x):
    return x * x


class TestSequentialExecutor:
    def test_map_preserves_order(self):
        ex = SequentialExecutor()
        assert ex.map(square, [3, 1, 2]) == [9, 1, 4]

    def test_starmap_unpacks(self):
        ex = SequentialExecutor()
        assert ex.starmap(lambda a, b: a - b, [(5, 2), (1, 1)]) == [3, 0]

    def test_empty_input(self):
        assert SequentialExecutor().map(square, []) == []

    def test_exceptions_propagate(self):
        with pytest.raises(ZeroDivisionError):
            SequentialExecutor().map(lambda x: 1 // x, [1, 0])

    def test_context_manager(self):
        with SequentialExecutor() as ex:
            assert ex.map(square, [2]) == [4]


class TestThreadExecutor:
    def test_map_preserves_order(self):
        with ThreadExecutor(max_workers=4) as ex:
            assert ex.map(square, range(32)) == [x * x for x in range(32)]

    def test_actually_uses_multiple_threads(self):
        seen = set()
        barrier = threading.Barrier(2, timeout=10)

        def record(_x):
            barrier.wait()
            seen.add(threading.get_ident())
            return None

        with ThreadExecutor(max_workers=2) as ex:
            ex.map(record, [1, 2])
        assert len(seen) == 2

    def test_close_is_idempotent(self):
        ex = ThreadExecutor(max_workers=1)
        ex.map(square, [1])
        ex.close()
        ex.close()

    def test_pool_recreated_after_close(self):
        ex = ThreadExecutor(max_workers=1)
        assert ex.map(square, [2]) == [4]
        ex.close()
        assert ex.map(square, [3]) == [9]
        ex.close()

    def test_rejects_bad_worker_count(self):
        with pytest.raises(SkeletonError):
            ThreadExecutor(max_workers=0)


class TestProcessExecutor:
    def test_map_with_picklable_function(self):
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.map(square, [1, 2, 3]) == [1, 4, 9]


class TestGetExecutor:
    def test_none_gives_sequential(self):
        assert isinstance(get_executor(None), SequentialExecutor)

    def test_string_specs(self):
        assert isinstance(get_executor("sequential"), SequentialExecutor)
        assert isinstance(get_executor("threads"), ThreadExecutor)
        assert isinstance(get_executor("processes"), ProcessExecutor)

    def test_instance_passes_through(self):
        ex = SequentialExecutor()
        assert get_executor(ex) is ex

    def test_unknown_spec_rejected(self):
        with pytest.raises(SkeletonError):
            get_executor("gpu")

    def test_executor_is_abstract(self):
        with pytest.raises(TypeError):
            Executor()  # type: ignore[abstract]
