"""Tests for repro.runtime.chunking."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SkeletonError
from repro.runtime.chunking import chunk_evenly, chunk_indices


class TestChunkIndices:
    def test_even_division(self):
        assert chunk_indices(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_division_front_loads_extras(self):
        assert chunk_indices(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_parts_than_items_gives_empty_spans(self):
        spans = chunk_indices(2, 5)
        assert len(spans) == 5
        assert spans[:2] == [(0, 1), (1, 2)]
        assert all(lo == hi for lo, hi in spans[2:])

    def test_zero_items(self):
        assert chunk_indices(0, 3) == [(0, 0), (0, 0), (0, 0)]

    def test_rejects_non_positive_parts(self):
        with pytest.raises(SkeletonError):
            chunk_indices(4, 0)

    def test_rejects_negative_n(self):
        with pytest.raises(SkeletonError):
            chunk_indices(-1, 2)

    @given(st.integers(0, 500), st.integers(1, 64))
    def test_spans_partition_the_range(self, n, parts):
        spans = chunk_indices(n, parts)
        assert len(spans) == parts
        assert spans[0][0] == 0 and spans[-1][1] == n
        for (_, a_hi), (b_lo, _) in zip(spans, spans[1:]):
            assert a_hi == b_lo

    @given(st.integers(0, 500), st.integers(1, 64))
    def test_sizes_differ_by_at_most_one(self, n, parts):
        sizes = [hi - lo for lo, hi in chunk_indices(n, parts)]
        assert max(sizes) - min(sizes) <= 1


class TestChunkEvenly:
    def test_round_trip(self):
        items = list(range(11))
        chunks = chunk_evenly(items, 3)
        assert [x for c in chunks for x in c] == items

    def test_string_sequences(self):
        assert chunk_evenly("abcdef", 2) == ["abc", "def"]
