"""Simulator-level fault injection: hooks, counters, crashes, timeouts.

Also covers the two machine-layer satellites: ``Comm`` errors that name
the group / crashed peer, and ``metrics.fault_counters`` staying zero in
fault-free runs.
"""

from __future__ import annotations

import pytest

from repro.errors import MachineError
from repro.faults.models import Corrupted, FaultInjector, FaultSpec
from repro.machine import AP1000, Machine, Comm
from repro.machine.cost import PERFECT
from repro.machine.events import ANY
from repro.machine.metrics import fault_counters


def _pingpong(env):
    """p0 <-> p1 ping-pong with a trailing ANY-wildcard receive on p0."""
    if env.pid == 0:
        yield env.send(1, "ping", tag=1)
        msg = yield env.recv(1, tag=2)
        yield env.work(100)
        any_msg = yield env.recv(ANY, tag=ANY)
        return (msg.payload, any_msg.payload)
    yield env.recv(0, tag=1)
    yield env.send(0, "pong", tag=2)
    yield env.work(50)
    yield env.send(0, "tail", tag=3)
    return None


class TestZeroRateIdentity:
    def test_zero_rate_injector_is_bit_identical(self):
        plain = Machine(2, spec=AP1000, record_trace=True).run(_pingpong)
        injected = Machine(2, spec=AP1000, record_trace=True,
                           faults=FaultInjector(FaultSpec())).run(_pingpong)
        assert injected.makespan == plain.makespan
        assert injected.values == plain.values
        assert list(injected.trace) == list(plain.trace)
        for sa, sb in zip(injected.stats, plain.stats):
            assert sa == sb
        assert injected.crashed == []
        assert fault_counters(injected) == {"retransmits": 0, "timeouts": 0,
                                            "dropped": 0, "crashed": 0}

    def test_fault_free_counters_zero(self):
        res = Machine(2, spec=AP1000).run(_pingpong)
        assert fault_counters(res) == {"retransmits": 0, "timeouts": 0,
                                       "dropped": 0, "crashed": 0}
        for st in res.stats:
            assert st.retransmits == st.timeouts == st.msgs_dropped == 0


class TestDropInjection:
    def test_certain_drop_times_out_receiver(self):
        def prog(env):
            if env.pid == 0:
                yield env.send(1, "lost", tag=1)
                return "sent"
            msg = yield env.recv(0, tag=1, timeout=0.01)
            return "got" if msg is not None else "timed-out"

        res = Machine(2, spec=AP1000, record_trace=True,
                      faults=FaultInjector(FaultSpec(drop_rate=1.0))
                      ).run(prog)
        assert res.values == ["sent", "timed-out"]
        assert res.stats[0].msgs_dropped == 1
        assert res.stats[1].timeouts == 1
        kinds = [ev.kind for ev in res.trace]
        assert "drop" in kinds and "timeout" in kinds

    def test_duplicate_delivery(self):
        def prog(env):
            if env.pid == 0:
                yield env.send(1, "x", tag=1)
                return None
            a = yield env.recv(0, tag=1)
            b = yield env.recv(0, tag=1)
            return (a.payload, b.payload)

        res = Machine(2, spec=AP1000,
                      faults=FaultInjector(FaultSpec(dup_rate=1.0,
                                                     delay_seconds=0.001))
                      ).run(prog)
        assert res.values[1] == ("x", "x")

    def test_corruption_wraps_payload(self):
        def prog(env):
            if env.pid == 0:
                yield env.send(1, [1, 2], tag=1)
                return None
            msg = yield env.recv(0, tag=1)
            return msg.payload

        res = Machine(2, spec=AP1000,
                      faults=FaultInjector(FaultSpec(corrupt_rate=1.0))
                      ).run(prog)
        assert isinstance(res.values[1], Corrupted)
        assert res.values[1].original == [1, 2]


class TestDegradation:
    def test_slow_node_stretches_compute(self):
        def prog(env):
            yield env.compute(0.1)
            return None

        base = Machine(2, spec=AP1000).run(prog)
        slow = Machine(2, spec=AP1000,
                       faults=FaultInjector(FaultSpec(slow_nodes={1: 3.0}))
                       ).run(prog)
        assert slow.stats[0].compute_seconds == base.stats[0].compute_seconds
        assert slow.stats[1].compute_seconds == pytest.approx(0.3)

    def test_link_slowdown_stretches_wire_time(self):
        def prog(env):
            if env.pid == 0:
                yield env.send(1, b"x" * 100_000, tag=1)
                return None
            yield env.recv(0, tag=1)
            return None

        base = Machine(2, spec=AP1000).run(prog)
        slow = Machine(2, spec=AP1000,
                       faults=FaultInjector(FaultSpec(link_slowdown=4.0))
                       ).run(prog)
        assert slow.makespan > base.makespan


class TestCrash:
    def test_crash_kills_processor_at_time(self):
        def prog(env):
            for _ in range(100):
                yield env.compute(0.01)
            return "finished"

        res = Machine(2, spec=AP1000, record_trace=True,
                      faults=FaultInjector(FaultSpec(crash_at={1: 0.105}))
                      ).run(prog)
        assert res.crashed == [1]
        assert res.survivors == [0]
        assert res.values[0] == "finished"
        assert res.values[1] is None
        assert res.stats[1].finish_time == pytest.approx(0.105)
        assert any(ev.kind == "crash" and ev.pid == 1 for ev in res.trace)

    def test_send_to_crashed_peer_is_dropped(self):
        def prog(env):
            if env.pid == 0:
                yield env.compute(0.2)   # outlive the peer
                yield env.send(1, "into the void", tag=1)
                return env.crashed_pids
            while True:
                yield env.compute(0.01)

        res = Machine(2, spec=AP1000, record_trace=True,
                      faults=FaultInjector(FaultSpec(crash_at={1: 0.05}))
                      ).run(prog)
        assert res.values[0] == frozenset({1})
        assert res.stats[0].msgs_dropped == 1
        assert any(ev.kind == "drop" for ev in res.trace)

    def test_crash_while_blocked_in_recv(self):
        def prog(env):
            if env.pid == 0:
                yield env.recv(1, tag=1)    # never satisfied
                return "unreachable"
            yield env.compute(0.5)
            yield env.send(0, "late", tag=1)
            return "sent"

        res = Machine(2, spec=AP1000,
                      faults=FaultInjector(FaultSpec(crash_at={0: 0.1}))
                      ).run(prog)
        assert res.crashed == [0]
        assert res.values[1] == "sent"   # send to the corpse is swallowed


class TestRecvTimeoutWithoutFaults:
    def test_timeout_fires_in_fault_free_engine(self):
        def prog(env):
            if env.pid == 0:
                msg = yield env.recv(1, tag=1, timeout=0.05)
                return "none" if msg is None else msg.payload
            yield env.compute(0.2)
            return None

        res = Machine(2, spec=AP1000).run(prog)
        assert res.values[0] == "none"
        assert res.stats[0].timeouts == 1
        assert res.stats[0].idle_seconds == pytest.approx(0.05)

    def test_message_beats_timeout(self):
        def prog(env):
            if env.pid == 0:
                msg = yield env.recv(1, tag=1, timeout=10.0)
                return "none" if msg is None else msg.payload
            yield env.send(0, "quick", tag=1)
            return None

        res = Machine(2, spec=AP1000).run(prog)
        assert res.values[0] == "quick"
        assert res.stats[0].timeouts == 0


class TestCommSatellite:
    def test_out_of_range_rank_names_group(self):
        def prog(env):
            comm = Comm.world(env)
            with pytest.raises(MachineError, match=r"members"):
                comm.send(5, "x")
            yield env.compute(0)
            return None

        Machine(2, spec=PERFECT).run(prog)

    def test_send_to_crashed_rank_is_clear(self):
        def prog(env):
            comm = Comm.world(env)
            if env.pid == 0:
                yield env.compute(0.2)
                with pytest.raises(MachineError, match=r"crashed"):
                    comm.send(1, "x")
                return "checked"
            while True:
                yield env.compute(0.01)

        res = Machine(2, spec=AP1000,
                      faults=FaultInjector(FaultSpec(crash_at={1: 0.05}))
                      ).run(prog)
        assert res.values[0] == "checked"
