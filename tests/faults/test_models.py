"""Tests for repro.faults.models (FaultSpec / FaultInjector / hashing)."""

from __future__ import annotations

import pytest

from repro.errors import MachineError
from repro.faults.models import Corrupted, FaultInjector, FaultSpec, _u01


class TestHash:
    def test_pure_function_of_inputs(self):
        assert _u01(7, 1, 0, 1, 3, 42) == _u01(7, 1, 0, 1, 3, 42)

    def test_in_unit_interval(self):
        for seq in range(200):
            u = _u01(123, 1, 0, 1, 0, seq)
            assert 0.0 <= u < 1.0

    def test_sensitive_to_every_part(self):
        base = _u01(7, 1, 0, 1, 3, 42)
        assert base != _u01(8, 1, 0, 1, 3, 42)   # seed
        assert base != _u01(7, 2, 0, 1, 3, 42)   # decision kind
        assert base != _u01(7, 1, 5, 1, 3, 42)   # src
        assert base != _u01(7, 1, 0, 2, 3, 42)   # dst
        assert base != _u01(7, 1, 0, 1, 4, 42)   # tag
        assert base != _u01(7, 1, 0, 1, 3, 43)   # seq

    def test_roughly_uniform(self):
        draws = [_u01(99, 1, 0, 1, 0, s) for s in range(2000)]
        below = sum(1 for u in draws if u < 0.5)
        assert 800 < below < 1200


class TestFaultSpec:
    def test_default_is_identity(self):
        assert FaultSpec().is_identity

    @pytest.mark.parametrize("field", ["drop_rate", "dup_rate",
                                       "delay_rate", "corrupt_rate"])
    def test_rate_validation(self, field):
        with pytest.raises(MachineError):
            FaultSpec(**{field: 1.5})
        with pytest.raises(MachineError):
            FaultSpec(**{field: -0.1})

    def test_delay_and_slowdown_validation(self):
        with pytest.raises(MachineError):
            FaultSpec(delay_seconds=-1.0)
        with pytest.raises(MachineError):
            FaultSpec(link_slowdown=0.5)
        with pytest.raises(MachineError):
            FaultSpec(slow_nodes={0: 0.5})
        with pytest.raises(MachineError):
            FaultSpec(crash_at={0: -1.0})

    def test_non_identity_fields(self):
        assert not FaultSpec(drop_rate=0.1).is_identity
        assert not FaultSpec(link_slowdown=2.0).is_identity
        assert not FaultSpec(slow_nodes={1: 2.0}).is_identity
        assert not FaultSpec(crash_at={1: 0.5}).is_identity

    def test_replace(self):
        spec = FaultSpec(seed=3, drop_rate=0.1)
        assert spec.replace(drop_rate=0.0) == FaultSpec(seed=3)


class TestFaultInjector:
    def test_rejects_non_spec(self):
        with pytest.raises(MachineError):
            FaultInjector({"drop_rate": 0.5})

    def test_zero_spec_is_clean_delivery(self):
        inj = FaultInjector(FaultSpec())
        for seq in range(50):
            assert inj.deliveries(0, 1, 0, 100, seq) == ((0.0, False),)

    def test_certain_drop(self):
        inj = FaultInjector(FaultSpec(drop_rate=1.0))
        assert inj.deliveries(0, 1, 0, 100, 1) == ()

    def test_certain_duplicate_trails_by_delay_quantum(self):
        inj = FaultInjector(FaultSpec(dup_rate=1.0, delay_seconds=0.5))
        out = inj.deliveries(0, 1, 0, 100, 1)
        assert len(out) == 2
        assert out[0] == (0.0, False)
        assert out[1] == (0.5, False)   # never independently corrupted

    def test_certain_delay_and_corruption(self):
        inj = FaultInjector(FaultSpec(delay_rate=1.0, delay_seconds=0.25,
                                      corrupt_rate=1.0))
        assert inj.deliveries(0, 1, 0, 100, 1) == ((0.25, True),)

    def test_decisions_deterministic_and_seq_local(self):
        inj = FaultInjector(FaultSpec(seed=11, drop_rate=0.3, dup_rate=0.2))
        a = [inj.deliveries(0, 1, 5, 64, s) for s in range(100)]
        b = [inj.deliveries(0, 1, 5, 64, s) for s in range(100)]
        assert a == b
        # a different seed reshuffles at least one decision
        other = FaultInjector(FaultSpec(seed=12, drop_rate=0.3, dup_rate=0.2))
        assert a != [other.deliveries(0, 1, 5, 64, s) for s in range(100)]

    def test_link_factor_all_links(self):
        inj = FaultInjector(FaultSpec(link_slowdown=3.0))
        assert inj.link_factor(0, 1) == 3.0
        assert inj.link_factor(4, 2) == 3.0

    def test_link_factor_specific_links(self):
        inj = FaultInjector(FaultSpec(link_slowdown=3.0,
                                      slow_links=frozenset({(0, 1)})))
        assert inj.link_factor(0, 1) == 3.0
        assert inj.link_factor(1, 0) == 1.0

    def test_node_schedules(self):
        inj = FaultInjector(FaultSpec(slow_nodes={2: 4.0},
                                      crash_at={1: 0.5}))
        assert inj.compute_factor(2) == 4.0
        assert inj.compute_factor(0) == 1.0
        assert inj.crash_time(1) == 0.5
        assert inj.crash_time(0) is None

    def test_begin_run_validates_pids(self):
        inj = FaultInjector(FaultSpec(crash_at={9: 0.5}))
        with pytest.raises(MachineError):
            inj.begin_run(4)
        inj2 = FaultInjector(FaultSpec(slow_nodes={9: 2.0}))
        with pytest.raises(MachineError):
            inj2.begin_run(4)

    def test_corrupt_payload_wraps(self):
        inj = FaultInjector(FaultSpec())
        wrapped = inj.corrupt_payload([1, 2, 3])
        assert isinstance(wrapped, Corrupted)
        assert wrapped.original == [1, 2, 3]
        assert "Corrupted" in repr(wrapped)
