"""Fault-tolerant skeleton runtime: reassignment, checkpoint/restart, apps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.computational import farm
from repro.core.pararray import ParArray
from repro.errors import SkeletonError
from repro.faults.apps import ft_hyperquicksort_machine
from repro.faults.models import FaultSpec
from repro.faults.runtime import CheckpointStore, ft_map_machine
from repro.apps.sort import hyperquicksort_machine


class TestCheckpointStore:
    def test_idempotent_commits(self):
        store = CheckpointStore()
        store.record(3, "first")
        store.record(3, "second")
        assert store.result(3) == "first"
        assert store.completed() == {3}
        assert len(store) == 1


class TestFtMapMachine:
    def test_fault_free_map(self):
        items = list(range(23))
        results, runs = ft_map_machine(items, lambda x: x * x, nprocs=4)
        assert results == [x * x for x in items]
        assert len(runs) == 1
        assert runs[0].crashed == []

    def test_worker_crash_reassigns_without_restart(self):
        items = list(range(30))
        spec = FaultSpec(seed=1, crash_at={2: 0.002, 3: 0.004})
        results, runs = ft_map_machine(items, lambda x: x + 100, nprocs=4,
                                       faults=spec,
                                       cost_fn=lambda x: 5000.0)
        assert results == [x + 100 for x in items]
        assert len(runs) == 1          # no restart needed: master survived
        assert runs[0].crashed == [2, 3]

    def test_master_crash_restarts_from_checkpoint(self):
        items = list(range(30))
        store = CheckpointStore()
        spec = FaultSpec(seed=1, crash_at={0: 0.01})
        results, runs = ft_map_machine(items, lambda x: x * 2, nprocs=4,
                                       faults=spec, checkpoint=store,
                                       cost_fn=lambda x: 5000.0)
        assert results == [x * 2 for x in items]
        assert len(runs) >= 2          # the crashed attempt plus the restart
        assert runs[0].crashed == [0]
        assert len(store) == len(items)

    def test_restart_skips_checkpointed_jobs(self):
        calls = []

        def fn(x):
            calls.append(x)
            return x

        items = list(range(12))
        store = CheckpointStore()
        for i in range(6):
            store.record(i, i)         # half the work already committed
        results, runs = ft_map_machine(items, fn, nprocs=4, checkpoint=store)
        assert results == items
        assert not any(c < 6 for c in calls)

    def test_everyone_dead_master_computes_locally(self):
        items = list(range(8))
        spec = FaultSpec(seed=1, crash_at={1: 0.0, 2: 0.0, 3: 0.0})
        results, runs = ft_map_machine(items, lambda x: -x, nprocs=4,
                                       faults=spec)
        assert results == [-x for x in items]
        assert runs[0].crashed == [1, 2, 3]


class TestFtHyperquicksort:
    def test_matches_plain_version_fault_free(self):
        values = np.random.default_rng(11).integers(0, 10_000, size=2_000)
        plain, _ = hyperquicksort_machine(values, 3)
        ft, res = ft_hyperquicksort_machine(values, 3)
        assert np.array_equal(plain, ft)
        assert res.total_retransmits == 0

    def test_sorts_under_drops_with_retransmits(self):
        values = np.random.default_rng(11).integers(0, 10_000, size=2_000)
        out, res = ft_hyperquicksort_machine(
            values, 3, faults=FaultSpec(seed=7, drop_rate=0.05))
        assert np.array_equal(out, np.sort(values))
        assert res.total_retransmits > 0
        assert res.total_dropped > 0

    def test_sorts_under_mixed_faults(self):
        values = np.random.default_rng(4).integers(0, 10_000, size=1_000)
        spec = FaultSpec(seed=13, drop_rate=0.02, dup_rate=0.02,
                         delay_rate=0.05, delay_seconds=0.001)
        out, _ = ft_hyperquicksort_machine(values, 2, faults=spec)
        assert np.array_equal(out, np.sort(values))


class TestFarmRetriesSatellite:
    def test_transient_failure_retried(self):
        attempts = {}

        def flaky(env, x):
            attempts[x] = attempts.get(x, 0) + 1
            if attempts[x] == 1:
                raise RuntimeError("transient")
            return x * env

        out = farm(flaky, 10, ParArray([1, 2, 3]), retries=1)
        assert list(out) == [10, 20, 30]
        assert all(n == 2 for n in attempts.values())

    def test_persistent_failure_propagates(self):
        def broken(env, x):
            raise RuntimeError("permanent")

        with pytest.raises(RuntimeError, match="permanent"):
            farm(broken, 0, ParArray([1]), retries=2)

    def test_negative_retries_rejected(self):
        with pytest.raises(SkeletonError):
            farm(lambda e, x: x, 0, ParArray([1]), retries=-1)
