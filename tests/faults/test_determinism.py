"""Determinism: same seed + same fault spec => identical runs.

The satellite requirement: makespan, traces, and survivor sets must be
bit-identical across repeated runs — including programs built on
ANY-wildcard receives (the farm master receives with ``src=ANY``), where
nondeterministic tie-breaking would first show up.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.faults import chaos
from repro.faults.apps import ft_hyperquicksort_machine
from repro.faults.models import FaultSpec
from repro.faults.runtime import CheckpointStore, ft_map_machine
from repro.machine import AP1000


def _sort_run(seed):
    values = np.random.default_rng(3).integers(0, 10_000, size=1_500)
    return ft_hyperquicksort_machine(
        values, 3, faults=FaultSpec(seed=seed, drop_rate=0.05, dup_rate=0.02),
        record_trace=True)


class TestSameSeedSameRun:
    def test_hyperquicksort_identical_twice(self):
        out_a, res_a = _sort_run(7)
        out_b, res_b = _sort_run(7)
        assert np.array_equal(out_a, out_b)
        assert res_a.makespan == res_b.makespan
        assert list(res_a.trace) == list(res_b.trace)
        assert res_a.crashed == res_b.crashed
        for sa, sb in zip(res_a.stats, res_b.stats):
            assert sa == sb

    def test_different_seed_different_faults(self):
        _, res_a = _sort_run(7)
        _, res_b = _sort_run(8)
        # both sort correctly, but the injected fault pattern differs
        ca = [(s.msgs_dropped, s.retransmits) for s in res_a.stats]
        cb = [(s.msgs_dropped, s.retransmits) for s in res_b.stats]
        assert ca != cb

    def test_any_wildcard_farm_identical_twice(self):
        # the farm master receives with src=ANY; crash two workers so the
        # run exercises suspicion, requeue, and reassignment paths
        spec = FaultSpec(seed=5, drop_rate=0.02, crash_at={2: 0.003})

        def run():
            results, runs = ft_map_machine(
                list(range(24)), lambda x: x * 3, nprocs=4, faults=spec,
                cost_fn=lambda x: 4000.0, checkpoint=CheckpointStore(),
                record_trace=True)
            return results, runs

        results_a, runs_a = run()
        results_b, runs_b = run()
        assert results_a == results_b == [x * 3 for x in range(24)]
        assert len(runs_a) == len(runs_b)
        for ra, rb in zip(runs_a, runs_b):
            assert ra.makespan == rb.makespan
            assert ra.crashed == rb.crashed
            assert list(ra.trace) == list(rb.trace)


class TestChaosHarness:
    def _args(self, **kw):
        base = dict(app="hyperquicksort", p=4, n=800, seed=7,
                    drop_rate=[0.05], dup_rate=0.0, delay_rate=0.0,
                    delay_seconds=0.002, corrupt_rate=0.0, crash=[],
                    crash_master=False, spec=AP1000, out=None)
        base.update(kw)
        return argparse.Namespace(**base)

    def test_sweep_reproducible(self):
        rows_a = chaos.run_sweep(self._args())
        rows_b = chaos.run_sweep(self._args())
        assert rows_a == rows_b
        assert all(r["ok"] for r in rows_a)
        faulty = [r for r in rows_a if r["drop_rate"] > 0]
        assert faulty and all(r["retransmits"] > 0 for r in faulty)

    def test_sweep_includes_baseline(self):
        rows = chaos.run_sweep(self._args())
        assert rows[0]["drop_rate"] == 0.0
        assert rows[0]["overhead"] == 1.0

    def test_mapreduce_crash_scenario(self):
        args = self._args(app="mapreduce", crash=["2@0.002"],
                          drop_rate=[0.01])
        rows = chaos.run_sweep(args)
        assert all(r["ok"] for r in rows)
        assert rows[1]["crashed"] == 1

    def test_cli_chaos_exit_code(self, capsys):
        from repro.cli import main
        rc = main(["chaos", "--app", "hyperquicksort", "--p", "4",
                   "-n", "800", "--drop-rate", "0.02", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Chaos sweep" in out
        assert "ok" in out

    def test_out_artifact_written(self, tmp_path, capsys):
        from repro.cli import main
        out_file = tmp_path / "survival.json"
        rc = main(["chaos", "--app", "hyperquicksort", "--p", "4",
                   "-n", "400", "--drop-rate", "0.02", "--seed", "3",
                   "--out", str(out_file)])
        assert rc == 0
        import json
        artifact = json.loads(out_file.read_text())
        assert artifact["app"] == "hyperquicksort"
        assert len(artifact["rows"]) == 2
