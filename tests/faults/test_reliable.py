"""Reliable channel and crash-aware collectives under injected faults."""

from __future__ import annotations

import pytest

from repro.errors import FaultError, MachineError
from repro.faults.models import FaultInjector, FaultSpec
from repro.machine import AP1000, Machine, Comm, ReliableChannel
from repro.machine import collectives_ft as cft


def _run(nprocs, prog, spec=None, **machine_kw):
    faults = FaultInjector(spec if spec is not None else FaultSpec())
    return Machine(nprocs, spec=AP1000, faults=faults, **machine_kw).run(prog)


class TestSendRecv:
    def test_roundtrip_clean(self):
        def prog(env):
            chan = ReliableChannel(env)
            if env.pid == 0:
                yield from chan.send(1, {"k": 1}, tag=4)
                return None
            return (yield from chan.recv(0, tag=4))

        assert _run(2, prog).values[1] == {"k": 1}

    def test_survives_heavy_drops(self):
        def prog(env):
            chan = ReliableChannel(env)
            if env.pid == 0:
                for i in range(5):
                    yield from chan.send(1, i, tag=1)
                return None
            got = []
            for _ in range(5):
                got.append((yield from chan.recv(0, tag=1)))
            return got

        res = _run(2, prog, FaultSpec(seed=3, drop_rate=0.3))
        assert res.values[1] == [0, 1, 2, 3, 4]
        assert res.total_retransmits > 0
        assert res.total_dropped > 0

    def test_deduplicates_under_duplication(self):
        def prog(env):
            chan = ReliableChannel(env)
            if env.pid == 0:
                for i in range(5):
                    yield from chan.send(1, i, tag=1)
                return None
            got = []
            for _ in range(5):
                got.append((yield from chan.recv(0, tag=1)))
            return got

        res = _run(2, prog, FaultSpec(seed=3, dup_rate=1.0,
                                      delay_seconds=0.0005))
        assert res.values[1] == [0, 1, 2, 3, 4]

    def test_corruption_forces_retransmit(self):
        def prog(env):
            # corruption hits acks too, so each attempt needs both
            # directions clean: give the channel a deep retry budget
            chan = ReliableChannel(env, max_retries=16)
            if env.pid == 0:
                yield from chan.send(1, "precious", tag=1)
                return None
            got = yield from chan.recv(0, tag=1)
            # linger: the ack we just sent may arrive corrupted, and the
            # sender can only be re-acked while we are still receiving
            try:
                yield from chan.recv(0, tag=9,
                                     timeout=chan.worst_case_send_seconds())
            except FaultError:
                pass
            return got

        res = _run(2, prog, FaultSpec(seed=5, corrupt_rate=0.4))
        assert res.values[1] == "precious"
        assert res.total_retransmits > 0

    def test_total_corruption_presumes_peer_dead(self):
        def prog(env):
            chan = ReliableChannel(env, max_retries=2)
            if env.pid == 0:
                try:
                    yield from chan.send(1, "x", tag=1)
                except FaultError as exc:
                    return exc.kind
                return "delivered"
            try:
                yield from chan.recv(0, tag=1,
                                     timeout=chan.worst_case_send_seconds())
            except FaultError:
                return None
            return None

        res = _run(2, prog, FaultSpec(corrupt_rate=1.0))
        assert res.values[0] == "peer-dead"

    def test_recv_timeout_raises_structured(self):
        def prog(env):
            chan = ReliableChannel(env)
            if env.pid == 0:
                yield env.compute(0.01)
                return None
            try:
                yield from chan.recv(0, tag=1, timeout=0.02)
            except FaultError as exc:
                return (exc.kind, exc.pid)
            return "no-error"

        assert _run(2, prog).values[1] == ("timeout", 0)

    def test_rejects_out_of_range_tag(self):
        def prog(env):
            chan = ReliableChannel(env)
            with pytest.raises(MachineError, match="tag"):
                list(chan.send(0, "x", tag=10**7))
            yield env.compute(0)
            return None

        _run(1, prog)


class TestExchange:
    def test_symmetric_swap_under_drops(self):
        def prog(env):
            chan = ReliableChannel(env)
            peer = env.pid ^ 1
            mine = f"from-{env.pid}"
            theirs = yield from chan.exchange(peer, mine, tag=2)
            return theirs

        res = _run(2, prog, FaultSpec(seed=9, drop_rate=0.3))
        assert res.values == ["from-1", "from-0"]

    def test_consecutive_exchanges_keep_order(self):
        def prog(env):
            chan = ReliableChannel(env)
            peer = env.pid ^ 1
            out = []
            for rnd in range(4):
                out.append((yield from chan.exchange(
                    peer, (env.pid, rnd), tag=2)))
            return out

        res = _run(2, prog, FaultSpec(seed=2, drop_rate=0.2, dup_rate=0.2))
        assert res.values[0] == [(1, r) for r in range(4)]
        assert res.values[1] == [(0, r) for r in range(4)]


class TestCollectivesFT:
    def test_bcast_and_gather_clean(self):
        def prog(env):
            chan = ReliableChannel(env)
            comm = Comm.world(env)
            value = yield from cft.ft_bcast(chan, comm, "v" if env.pid == 0
                                            else None, root=0)
            gathered = yield from cft.ft_gather(chan, comm, env.pid, root=0)
            return (value, gathered)

        res = _run(4, prog)
        assert all(v[0] == "v" for v in res.values)
        assert res.values[0][1] == [0, 1, 2, 3]

    def test_gather_degrades_to_survivors(self):
        def prog(env):
            chan = ReliableChannel(env, max_retries=2)
            comm = Comm.world(env)
            if env.pid == 2:
                while True:   # crashes at t=0.001
                    yield env.compute(0.01)
            gathered = yield from cft.ft_gather(chan, comm, env.pid, root=0)
            return gathered

        res = _run(4, prog, FaultSpec(crash_at={2: 0.001}))
        assert res.crashed == [2]
        assert res.values[0] == [0, 1, None, 3]

    def test_reduce_over_survivors(self):
        def prog(env):
            chan = ReliableChannel(env, max_retries=2)
            comm = Comm.world(env)
            if env.pid == 1:
                while True:
                    yield env.compute(0.01)
            total = yield from cft.ft_reduce(chan, comm, env.pid + 1,
                                             lambda a, b: a + b, root=0)
            return total

        res = _run(4, prog, FaultSpec(crash_at={1: 0.001}))
        # survivors contribute 1 + 3 + 4
        assert res.values[0] == 8

    def test_dead_root_raises_root_dead(self):
        def prog(env):
            chan = ReliableChannel(env, max_retries=1)
            comm = Comm.world(env)
            if env.pid == 0:
                while True:
                    yield env.compute(0.01)
            try:
                yield from cft.ft_bcast(chan, comm, root=0)
            except FaultError as exc:
                return exc.kind
            return "no-error"

        res = _run(3, prog, FaultSpec(crash_at={0: 0.001}))
        assert res.values[1] == res.values[2] == "root-dead"

    def test_barrier_clean(self):
        def prog(env):
            chan = ReliableChannel(env)
            comm = Comm.world(env)
            yield env.compute(0.001 * env.pid)   # desynchronise
            yield from cft.ft_barrier(chan, comm, root=0)
            return env.now

        res = _run(3, prog)
        # everyone leaves the barrier at (nearly) the same virtual time:
        # no one before the slowest member entered it
        assert min(res.values) >= 0.002
