"""Grammar-driven fuzzing of the textual SCL front end.

Random programs are generated *from the grammar* as text, parsed, and
checked against the equivalent directly-constructed expression: the parser
must agree with the AST builders on every sentence of its language.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ParArray
from repro.lang import parse_scl
from repro.scl import (
    Fetch,
    Map,
    Rotate,
    compose_nodes,
    evaluate,
)

N = 6

#: one shared environment — fragments compare by identity, so every parse
#: must resolve to the same objects
FRAG_ENV = {
    "f1": lambda x: x + 1,
    "f2": lambda x: x * 2,
    "f3": lambda x: x - 3,
    "add": lambda a, b: a + b,
    "idx1": lambda i: (i + 1) % N,
    "idx2": lambda i: (i * 5) % N,
}


def frag_env():
    return FRAG_ENV


@st.composite
def term_pair(draw):
    """One (source text, expected node) pair."""
    env = frag_env()
    kind = draw(st.sampled_from(
        ["map", "rotate", "fetch", "id", "paren_rotate"]))
    if kind == "map":
        name = draw(st.sampled_from(["f1", "f2", "f3"]))
        return f"map {name}", Map(env[name])
    if kind == "rotate":
        k = draw(st.integers(-9, 9))
        return f"rotate {k}", Rotate(k)
    if kind == "fetch":
        name = draw(st.sampled_from(["idx1", "idx2"]))
        return f"fetch {name}", Fetch(env[name])
    if kind == "paren_rotate":
        k = draw(st.integers(0, 5))
        return f"(rotate {k} . rotate {k})", compose_nodes(Rotate(k), Rotate(k))
    return "id", None  # dropped by compose_nodes


class TestGrammarFuzz:
    @settings(max_examples=60)
    @given(st.lists(term_pair(), min_size=1, max_size=6))
    def test_parse_agrees_with_direct_construction(self, pairs):
        src = " . ".join(text for text, _node in pairs)
        expected = compose_nodes(*[n for _t, n in pairs if n is not None])
        prog = parse_scl(src, frag_env())
        # structural equality for everything except opaque lambdas, which
        # compare by identity — the env functions are shared, so this holds
        assert prog == expected

    @settings(max_examples=40)
    @given(st.lists(term_pair(), min_size=1, max_size=6),
           st.lists(st.integers(-50, 50), min_size=N, max_size=N))
    def test_parsed_programs_evaluate(self, pairs, xs):
        src = " . ".join(text for text, _node in pairs)
        prog = parse_scl(src, frag_env())
        pa = ParArray(xs)
        expected_node = compose_nodes(*[n for _t, n in pairs if n is not None])
        assert evaluate(prog, pa) == evaluate(expected_node, pa)

    @settings(max_examples=30)
    @given(st.lists(st.integers(-3, 3), min_size=1, max_size=4),
           st.sampled_from(["block(2)", "cyclic(3)", "block(6)"]))
    def test_wrapped_in_split_combine(self, rotations, pattern_text):
        """Rotation pipelines placed inside groups parse and evaluate;
        group-local rotations preserve the value multiset."""
        inner = " . ".join(f"rotate {k}" for k in rotations)
        src = f"combine . map ({inner}) . split {pattern_text}"
        prog = parse_scl(src, frag_env())
        pa = ParArray(list(range(N)))
        out = evaluate(prog, pa)
        assert sorted(out.to_list()) == list(range(N))

    @settings(max_examples=30)
    @given(st.lists(term_pair(), min_size=1, max_size=5))
    def test_whitespace_and_comments_invariant(self, pairs):
        src = " . ".join(text for text, _node in pairs)
        noisy = src.replace(" . ", "\n  .  -- stage\n  ")
        assert parse_scl(noisy, frag_env()) == parse_scl(src, frag_env())

    @settings(max_examples=30)
    @given(st.lists(term_pair(), min_size=2, max_size=5))
    def test_let_binding_equivalent_to_inline(self, pairs):
        first_text, _ = pairs[0]
        rest = " . ".join(t for t, _n in pairs[1:])
        bound = f"let head = {first_text} in head . {rest}"
        inline = f"{first_text} . {rest}"
        assert parse_scl(bound, frag_env()) == parse_scl(inline, frag_env())
