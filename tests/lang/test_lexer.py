"""Tests for repro.lang.lexer."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.lang.lexer import tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def texts(src):
    return [t.text for t in tokenize(src) if t.kind != "eof"]


class TestTokenize:
    def test_empty_input_gives_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "eof"

    def test_identifiers(self):
        assert texts("map square") == ["map", "square"]

    def test_numbers_including_negative(self):
        assert texts("rotate -3") == ["rotate", "-3"]
        assert tokenize("42")[0].kind == "number"

    def test_punctuation(self):
        assert texts("( ) [ ] , .") == ["(", ")", "[", "]", ",", "."]

    def test_composition_program(self):
        assert texts("fold add . map square") == \
            ["fold", "add", ".", "map", "square"]

    def test_whitespace_ignored(self):
        assert texts("  map\t\nf  ") == ["map", "f"]

    def test_comments_stripped(self):
        assert texts("map f -- apply f\n. rotate 1") == \
            ["map", "f", ".", "rotate", "1"]

    def test_positions_tracked(self):
        toks = tokenize("map f\n. rotate 2")
        dot = next(t for t in toks if t.text == ".")
        assert (dot.line, dot.col) == (2, 1)
        two = next(t for t in toks if t.text == "2")
        assert (two.line, two.col) == (2, 10)

    def test_underscores_in_identifiers(self):
        assert texts("row_col_block") == ["row_col_block"]

    def test_invalid_character_rejected(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("map @f")

    def test_describe(self):
        assert tokenize("x")[0].describe() == "'x'"
        assert tokenize("")[0].describe() == "end of input"
