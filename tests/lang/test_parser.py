"""Tests for repro.lang.parser — textual SCL → expressions → execution."""

from __future__ import annotations

import operator

import pytest

from repro.core import Block, Cyclic, ParArray, RowColBlock
from repro.errors import ParseError
from repro.lang import parse_scl
from repro.scl import (
    Brdcast,
    Combine,
    Compose,
    Fetch,
    Fold,
    Id,
    Map,
    PermSend,
    Rotate,
    SendNode,
    Split,
    Spmd,
    compose_nodes,
    default_engine,
    evaluate,
)


def square(x):
    return x * x


ENV = {
    "add": operator.add,
    "square": square,
    "inc": lambda x: x + 1,
    "double": lambda x: x * 2,
    "addidx": lambda i, x: x + i,
    "next": lambda i: (i + 1) % 8,
    "tozero": lambda k: [0],
    "perm": lambda k: (k + 1) % 8,
    "p": 4,
    "envval": {"shared": True},
    "worker": lambda env, x: x if env is None else x + 1,
}

PA = ParArray([3, 1, 4, 1, 5, 9, 2, 6])


class TestParsedStructure:
    def test_id(self):
        assert parse_scl("id") == Id()

    def test_single_skeleton(self):
        assert parse_scl("rotate 3") == Rotate(3)

    def test_negative_rotate(self):
        assert parse_scl("rotate -2") == Rotate(-2)

    def test_map_of_named_fragment(self):
        assert parse_scl("map square", ENV) == Map(square)

    def test_composition_order(self):
        prog = parse_scl("fold add . map square", ENV)
        assert prog == compose_nodes(Fold(operator.add), Map(square))

    def test_parentheses_group(self):
        prog = parse_scl("map square . (rotate 1 . rotate 2)", ENV)
        assert isinstance(prog, Compose)
        assert prog.steps == (Map(square), Rotate(1), Rotate(2))

    def test_map_of_subpipeline_is_nested(self):
        prog = parse_scl("map (rotate 1 . map inc)", ENV)
        assert prog == Map(compose_nodes(Rotate(1), Map(ENV["inc"])))

    def test_split_patterns(self):
        assert parse_scl("split block(4)") == Split(Block(4))
        assert parse_scl("split cyclic(2)") == Split(Cyclic(2))
        assert parse_scl("split row_col_block(2, 3)") == Split(RowColBlock(2, 3))

    def test_pattern_size_from_env(self):
        assert parse_scl("split block(p)", ENV) == Split(Block(4))

    def test_send_variants(self):
        assert parse_scl("send perm", ENV) == PermSend(ENV["perm"])
        assert parse_scl("sendv tozero", ENV) == SendNode(ENV["tozero"])

    def test_brdcast_value_from_env(self):
        assert parse_scl("brdcast envval", ENV) == Brdcast(ENV["envval"])

    def test_brdcast_literal_int(self):
        assert parse_scl("brdcast 7") == Brdcast(7)

    def test_spmd_stages(self):
        prog = parse_scl("SPMD [(rotate 1, inc), (id, double)]", ENV)
        assert isinstance(prog, Spmd)
        assert len(prog.stages) == 2
        assert prog.stages[0].global_ == Rotate(1)
        assert prog.stages[0].local is ENV["inc"]
        assert prog.stages[1].global_ is None

    def test_spmd_empty(self):
        assert parse_scl("SPMD []") == Spmd(())

    def test_iter_for(self):
        prog = parse_scl("iterFor 3 (rotate 1)")
        assert prog.n == 3
        assert prog.body(0) == Rotate(1)

    def test_combine(self):
        assert parse_scl("combine") == Combine()

    def test_fetch(self):
        assert parse_scl("fetch next", ENV) == Fetch(ENV["next"])

    def test_comments_allowed(self):
        prog = parse_scl("""
            fold add        -- reduce
            . map square    -- transform
        """, ENV)
        assert prog == compose_nodes(Fold(operator.add), Map(square))


class TestParsedEvaluation:
    def test_sum_of_squares(self):
        prog = parse_scl("fold add . map square", ENV)
        assert evaluate(prog, PA) == sum(x * x for x in PA.to_list())

    def test_rotate_pipeline(self):
        prog = parse_scl("rotate 1 . rotate 2", ENV)
        assert evaluate(prog, PA) == evaluate(Rotate(3), PA)

    def test_spmd_program(self):
        prog = parse_scl("SPMD [(rotate 1, double)]", ENV)
        assert evaluate(prog, ParArray([1, 2, 3])).to_list() == [4, 6, 2]

    def test_nested_split_program(self):
        prog = parse_scl("combine . map (rotate 1) . split block(2)", ENV)
        out = evaluate(prog, ParArray([0, 1, 2, 3]))
        assert out.to_list() == [1, 0, 3, 2]

    def test_farm(self):
        env = dict(ENV, nothing=None)
        prog = parse_scl("farm worker nothing", env)
        assert evaluate(prog, PA) == PA

    def test_imap(self):
        prog = parse_scl("imap addidx", ENV)
        assert evaluate(prog, ParArray([10, 10])).to_list() == [10, 11]

    def test_parsed_program_rewrites(self):
        prog = parse_scl("map inc . map double . rotate 1 . rotate -1", ENV)
        optimised, steps = default_engine().rewrite(prog)
        assert {s.rule for s in steps} == {"map-fusion", "rotate-fusion"}
        assert evaluate(prog, PA) == evaluate(optimised, PA)

    def test_parsed_program_compiles_to_machine(self):
        from repro.machine import Machine, Hypercube, AP1000
        from repro.scl import run_expression

        prog = parse_scl("fetch next . map square", ENV)
        want = evaluate(prog, PA)
        got, _res = run_expression(prog, PA, Machine(Hypercube(3), spec=AP1000))
        assert got == want

    def test_paper_gauss_skeleton_shape(self):
        """The paper's gauss skeleton parses (with opaque fragments)."""
        env = {"UPDATE": lambda pv: pv, "PARTIALPIVOT": lambda b: b, "n": 4}
        prog = parse_scl(
            "iterFor n (map UPDATE . applybrdcast PARTIALPIVOT 0)", env)
        assert prog.n == 4


class TestParseErrors:
    def test_unknown_skeleton(self):
        with pytest.raises(ParseError, match="unknown skeleton"):
            parse_scl("frobnicate f", ENV)

    def test_missing_fragment(self):
        with pytest.raises(ParseError, match="not defined"):
            parse_scl("map missing", ENV)

    def test_non_callable_fragment(self):
        with pytest.raises(ParseError, match="non-callable"):
            parse_scl("map p", ENV)

    def test_keyword_as_fragment(self):
        with pytest.raises(ParseError, match="keyword"):
            parse_scl("map fold", ENV)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="after program"):
            parse_scl("rotate 1 extra", ENV)

    def test_missing_int(self):
        with pytest.raises(ParseError, match="integer"):
            parse_scl("rotate x", ENV)

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_scl("(rotate 1", ENV)

    def test_bad_pattern(self):
        with pytest.raises(ParseError, match="partition pattern"):
            parse_scl("split weird(3)", ENV)

    def test_unclosed_spmd(self):
        with pytest.raises(ParseError):
            parse_scl("SPMD [(id, inc)", ENV)

    def test_error_reports_position(self):
        with pytest.raises(ParseError, match=r"line 2"):
            parse_scl("rotate 1\n. frobnicate", ENV)

    def test_dangling_dot(self):
        with pytest.raises(ParseError):
            parse_scl("rotate 1 .", ENV)


class TestPartitionGatherTerms:
    def test_partition_term(self):
        from repro.scl import Partition

        assert parse_scl("partition block(3)") == Partition(Block(3))

    def test_gather_bare(self):
        from repro.scl import Gather

        assert parse_scl("gather") == Gather()

    def test_gather_with_pattern(self):
        from repro.scl import Gather

        assert parse_scl("gather cyclic(2)") == Gather(Cyclic(2))

    def test_whole_program_parses_and_runs(self):
        import collections

        env = {"count": collections.Counter,
               "merge": lambda a, b: collections.Counter(a) + collections.Counter(b)}
        prog = parse_scl("fold merge . map count . partition block(4)", env)
        words = ["a", "b", "a", "c", "a", "b"]
        out = evaluate(prog, words)
        assert out == collections.Counter(words)

    def test_round_trip_program(self):
        env = dict(ENV, double_block=lambda blk: [x * 2 for x in blk])
        prog = parse_scl("gather . map double_block . partition block(3)", env)
        assert evaluate(prog, [1, 2, 3, 4, 5]) == [2, 4, 6, 8, 10]

    def test_elimination_fires_on_parsed_text(self):
        from repro.scl import Id

        prog = parse_scl("gather . partition cyclic(4)")
        out, steps = default_engine().rewrite(prog)
        assert out == Id()
        assert steps[0].rule == "gather-partition-elimination"


class TestLetBindings:
    def test_single_binding(self):
        prog = parse_scl("let shift = rotate 1 . rotate 2 in shift . shift")
        assert prog == compose_nodes(Rotate(1), Rotate(2), Rotate(1), Rotate(2))

    def test_binding_used_inside_map(self):
        prog = parse_scl("let body = rotate 1 in combine . map (body) . split block(2)")
        from repro.scl import Split, Combine

        assert prog == compose_nodes(Combine(), Map(Rotate(1)), Split(Block(2)))

    def test_multiple_bindings(self):
        src = """
            let first = rotate 1 in
            let second = first . rotate 2 in
            second . first
        """
        prog = parse_scl(src)
        # second = first . rotate 2 = (rotate 1 . rotate 2)
        assert prog == compose_nodes(Rotate(1), Rotate(2), Rotate(1))

    def test_paper_style_hypersort_skeleton(self):
        """The paper's hypersort shape with named phases, parsed whole."""
        env = {
            "SEQ_QUICKSORT": lambda b: sorted(b),
            "MERGE": lambda pair: sorted(list(pair[0]) + list(pair[1])),
        }
        src = """
            let prepare = map SEQ_QUICKSORT . partition block(2) in
            gather . prepare
        """
        prog = parse_scl(src, env)
        out = evaluate(prog, [5, 3, 8, 1])
        assert out == [3, 5, 1, 8]  # per-block sorted, block order kept

    def test_binding_evaluates(self):
        prog = parse_scl("let twice = map double in twice . twice", ENV)
        out = evaluate(prog, ParArray([1, 2]))
        assert out.to_list() == [4, 8]

    def test_binding_name_cannot_be_keyword(self):
        with pytest.raises(ParseError, match="binding name"):
            parse_scl("let map = rotate 1 in map")

    def test_missing_in_rejected(self):
        with pytest.raises(ParseError):
            parse_scl("let x = rotate 1 x")

    def test_missing_equals_rejected(self):
        with pytest.raises(ParseError):
            parse_scl("let x rotate 1 in x")

    def test_unbound_name_still_unknown(self):
        with pytest.raises(ParseError, match="unknown skeleton"):
            parse_scl("let x = rotate 1 in y")


class TestIndexedStageLocals:
    def test_imap_marker_sets_indexed(self):
        prog = parse_scl("SPMD [(id, imap addidx)]", ENV)
        assert prog.stages[0].indexed is True
        assert prog.stages[0].local is ENV["addidx"]

    def test_indexed_stage_evaluates(self):
        prog = parse_scl("SPMD [(id, imap addidx)]", ENV)
        assert evaluate(prog, ParArray([10, 10, 10])).to_list() == [10, 11, 12]

    def test_plain_local_not_indexed(self):
        prog = parse_scl("SPMD [(id, double)]", ENV)
        assert prog.stages[0].indexed is False
