"""Tests for repro.scl.nodes — construction and structural laws."""

from __future__ import annotations

import pytest

from repro.core import Block, ParArray
from repro.errors import RewriteError
from repro.scl import (
    Compose,
    Fetch,
    Id,
    Map,
    Rotate,
    Spmd,
    Split,
    Stage,
    compose_nodes,
)


def inc(x):
    return x + 1


class TestComposeNodes:
    def test_empty_is_id(self):
        assert compose_nodes() == Id()

    def test_single_passes_through(self):
        assert compose_nodes(Rotate(1)) == Rotate(1)

    def test_flattens_nested(self):
        inner = compose_nodes(Rotate(1), Rotate(2))
        outer = compose_nodes(Map(inc), inner)
        assert outer == Compose((Map(inc), Rotate(1), Rotate(2)))

    def test_drops_identity(self):
        assert compose_nodes(Id(), Rotate(1), Id()) == Rotate(1)

    def test_structural_associativity(self):
        a, b, c = Map(inc), Rotate(1), Fetch(inc)
        assert compose_nodes(compose_nodes(a, b), c) == \
            compose_nodes(a, compose_nodes(b, c))

    def test_all_ids_collapse_to_id(self):
        assert compose_nodes(Id(), Id()) == Id()

    def test_non_node_rejected(self):
        with pytest.raises(RewriteError):
            compose_nodes(Rotate(1), "nope")  # type: ignore[arg-type]


class TestNodeCallable:
    def test_node_call_evaluates(self):
        pa = ParArray([1, 2, 3])
        assert Map(inc)(pa).to_list() == [2, 3, 4]

    def test_compose_applies_right_to_left(self):
        pa = ParArray([1, 2, 3])
        prog = compose_nodes(Map(lambda x: x * 10), Rotate(1))
        assert prog(pa).to_list() == [20, 30, 10]

    def test_id_is_identity(self):
        pa = ParArray([1])
        assert Id()(pa) is pa


class TestChildren:
    def test_leaf_has_no_children(self):
        assert Rotate(3).children() == ()

    def test_compose_children_are_steps(self):
        c = Compose((Map(inc), Rotate(1)))
        assert c.children() == (Map(inc), Rotate(1))

    def test_compose_replace_children_renormalises(self):
        c = Compose((Map(inc), Rotate(1)))
        replaced = c.replace_children((Id(), Rotate(2)))
        assert replaced == Rotate(2)

    def test_map_of_node_exposes_child(self):
        m = Map(Rotate(1))
        assert m.children() == (Rotate(1),)
        assert m.replace_children((Rotate(5),)) == Map(Rotate(5))

    def test_map_of_callable_has_no_children(self):
        assert Map(inc).children() == ()

    def test_leaf_replace_children_validates(self):
        with pytest.raises(RewriteError):
            Rotate(1).replace_children((Id(),))

    def test_spmd_children_are_stages(self):
        s = Spmd((Stage(global_=Rotate(1)), Stage(local=inc)))
        assert len(s.children()) == 2

    def test_spmd_replace_children_type_checked(self):
        s = Spmd((Stage(local=inc),))
        with pytest.raises(RewriteError):
            s.replace_children((Rotate(1),))

    def test_stage_child_is_global(self):
        st = Stage(global_=Rotate(1), local=inc)
        assert st.children() == (Rotate(1),)
        new = st.replace_children((Rotate(2),))
        assert new.global_ == Rotate(2) and new.local is inc

    def test_spmd_rejects_non_stage(self):
        with pytest.raises(RewriteError):
            Spmd((Rotate(1),))  # type: ignore[arg-type]


class TestEquality:
    def test_structural_equality(self):
        assert Rotate(2) == Rotate(2)
        assert Rotate(2) != Rotate(3)
        assert Map(inc) == Map(inc)

    def test_opaque_functions_compare_by_identity(self):
        assert Map(lambda x: x) != Map(lambda x: x)

    def test_split_compares_patterns(self):
        assert Split(Block(2)) == Split(Block(2))
        assert Split(Block(2)) != Split(Block(3))

    def test_nodes_are_frozen(self):
        with pytest.raises(Exception):
            Rotate(1).k = 2  # type: ignore[misc]
