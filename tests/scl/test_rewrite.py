"""Tests for repro.scl.rewrite — the engine mechanics."""

from __future__ import annotations

import pytest

from repro.errors import RewriteError
from repro.scl import Id, Map, Rotate, Spmd, Stage, compose_nodes
from repro.scl.rewrite import (
    RewriteBudgetExhausted,
    RewriteEngine,
    RewriteStep,
    Rule,
)
from repro.scl.rules import MAP_FUSION, ROTATE_FUSION


class TestRule:
    def test_window_size_mismatch_returns_none(self):
        assert MAP_FUSION.try_apply((Rotate(1),)) is None

    def test_non_matching_window_returns_none(self):
        assert MAP_FUSION.try_apply((Rotate(1), Rotate(2))) is None

    def test_repr(self):
        assert "map-fusion" in repr(MAP_FUSION)

    def test_law_is_documented(self):
        assert "map" in MAP_FUSION.law


class TestEngine:
    def test_no_rules_is_identity(self):
        prog = compose_nodes(Map(lambda x: x), Map(lambda x: x))
        out, steps = RewriteEngine([]).rewrite(prog)
        assert out == prog and steps == []

    def test_fixpoint_reached(self):
        prog = compose_nodes(*[Rotate(1) for _ in range(6)])
        out, steps = RewriteEngine([ROTATE_FUSION]).rewrite(prog)
        assert out == Rotate(6)
        assert len(steps) == 5

    def test_empty_replacement_collapses_to_id(self):
        prog = compose_nodes(Rotate(4), Rotate(-4))
        out, _ = RewriteEngine([ROTATE_FUSION]).rewrite(prog)
        assert out == Id()

    def test_rewrites_inside_map_of_node(self):
        prog = Map(compose_nodes(Rotate(1), Rotate(2)))
        out, steps = RewriteEngine([ROTATE_FUSION]).rewrite(prog)
        assert out == Map(Rotate(3))
        assert len(steps) == 1

    def test_rewrites_inside_spmd_stage_globals(self):
        prog = Spmd((Stage(global_=compose_nodes(Rotate(1), Rotate(1))),))
        out, _ = RewriteEngine([ROTATE_FUSION]).rewrite(prog)
        assert out == Spmd((Stage(global_=Rotate(2)),))

    def test_steps_record_before_and_after(self):
        prog = compose_nodes(Rotate(1), Rotate(2))
        _out, steps = RewriteEngine([ROTATE_FUSION]).rewrite(prog)
        (step,) = steps
        assert isinstance(step, RewriteStep)
        assert step.before == (Rotate(1), Rotate(2))
        assert step.after == (Rotate(3),)
        assert "rotate-fusion" in str(step)

    def test_divergent_rule_detected(self):
        ping = Rule("ping", 1, lambda w: (Rotate(w[0].k + 1),)
                    if isinstance(w[0], Rotate) else None)
        with pytest.raises(RewriteError, match="diverging"):
            RewriteEngine([ping], max_passes=10).rewrite(Rotate(0))

    def test_invalid_max_passes(self):
        with pytest.raises(RewriteError):
            RewriteEngine([], max_passes=0)

    def test_rule_priority_is_list_order(self):
        """The first rule in the list wins when several match."""
        to_id = Rule("kill", 2, lambda w: ()
                     if all(isinstance(n, Rotate) for n in w) else None)
        out, steps = RewriteEngine([to_id, ROTATE_FUSION]).rewrite(
            compose_nodes(Rotate(1), Rotate(2)))
        assert out == Id()
        assert steps[0].rule == "kill"

    def test_window_slides_across_long_chain(self):
        prog = compose_nodes(Map(lambda x: x), Rotate(1), Rotate(2),
                             Map(lambda x: x))
        out, steps = RewriteEngine([ROTATE_FUSION]).rewrite(prog)
        assert len(steps) == 1
        assert Rotate(3) in out.steps


class TestBudgetExhaustion:
    # a terminating-but-slow rule: counts a rotation down one step at a
    # time, so the budget can run out mid-flight without divergence
    countdown = Rule("countdown", 1,
                     lambda w: (Rotate(w[0].k - 1),)
                     if isinstance(w[0], Rotate) and w[0].k > 0 else None)

    def test_warn_mode_returns_partial_rewrite(self):
        engine = RewriteEngine([self.countdown], max_passes=3,
                               on_exhausted="warn")
        with pytest.warns(RewriteBudgetExhausted):
            out, steps = engine.rewrite(Rotate(10))
        assert out == Rotate(7)  # 3 of the 10 applications happened
        assert len(steps) == 3

    def test_warning_is_structured_not_just_text(self):
        engine = RewriteEngine([self.countdown], max_passes=3,
                               on_exhausted="warn")
        with pytest.warns(RewriteBudgetExhausted) as caught:
            engine.rewrite(Rotate(10))
        (record,) = caught.list
        assert record.message.max_passes == 3
        assert record.message.applied == 3
        assert "max_passes=3" in str(record.message)

    def test_warn_mode_is_silent_when_fixpoint_fits(self):
        import warnings

        engine = RewriteEngine([self.countdown], max_passes=50,
                               on_exhausted="warn")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out, steps = engine.rewrite(Rotate(10))
        assert out == Rotate(0)
        assert len(steps) == 10

    def test_default_mode_still_raises(self):
        engine = RewriteEngine([self.countdown], max_passes=3)
        with pytest.raises(RewriteError, match="diverging"):
            engine.rewrite(Rotate(10))

    def test_invalid_on_exhausted_rejected(self):
        with pytest.raises(RewriteError, match="on_exhausted"):
            RewriteEngine([], on_exhausted="ignore")


class TestApplications:
    def test_enumerates_every_window_position(self):
        prog = compose_nodes(Rotate(1), Rotate(2), Rotate(3))
        neighbours = RewriteEngine([ROTATE_FUSION]).applications(prog)
        exprs = [e for e, _ in neighbours]
        assert exprs == [compose_nodes(Rotate(3), Rotate(3)),
                         compose_nodes(Rotate(1), Rotate(5))]

    def test_input_is_not_modified(self):
        prog = compose_nodes(Rotate(1), Rotate(2))
        RewriteEngine([ROTATE_FUSION]).applications(prog)
        assert prog == compose_nodes(Rotate(1), Rotate(2))

    def test_steps_carry_provenance(self):
        prog = compose_nodes(Rotate(1), Rotate(2))
        ((expr, step),) = RewriteEngine([ROTATE_FUSION]).applications(prog)
        assert expr == Rotate(3)
        assert step.rule == "rotate-fusion"
        assert step.before == (Rotate(1), Rotate(2))

    def test_nothing_applied_transitively(self):
        # one application only: the chain of four fuses pairwise, never
        # all the way to Rotate(4) in a single neighbour
        prog = compose_nodes(*[Rotate(1) for _ in range(4)])
        neighbours = RewriteEngine([ROTATE_FUSION]).applications(prog)
        assert all(Rotate(4) != e for e, _ in neighbours)
        assert len(neighbours) == 3

    def test_descends_into_children_without_duplicates(self):
        prog = Map(compose_nodes(Rotate(1), Rotate(2)))
        neighbours = RewriteEngine([ROTATE_FUSION]).applications(prog)
        assert [e for e, _ in neighbours] == [Map(Rotate(3))]

    def test_budget_is_not_consumed(self):
        engine = RewriteEngine([ROTATE_FUSION], max_passes=1)
        prog = compose_nodes(*[Rotate(1) for _ in range(8)])
        # 7 adjacent windows enumerated despite max_passes=1
        assert len(engine.applications(prog)) == 7

    def test_no_rules_no_neighbours(self):
        prog = compose_nodes(Rotate(1), Rotate(2))
        assert RewriteEngine([]).applications(prog) == []
