"""Soundness of every §4 transformation rule.

The paper claims the rules are meaning-preserving.  We verify that claim
behaviourally: for randomised programs and inputs, the rewritten expression
must evaluate to exactly the same value as the original.
"""

from __future__ import annotations

import operator

from hypothesis import given
from hypothesis import strategies as st

from repro.core import Block, Cyclic, ParArray
from repro.scl import (
    FETCH_FUSION,
    MAP_DISTRIBUTION,
    MAP_FUSION,
    ROTATE_FUSION,
    SEND_FUSION,
    SPMD_FLATTENING,
    SPMD_STAGE_MERGE,
    Fetch,
    Fold,
    FoldrFused,
    Id,
    Map,
    PermSend,
    Rotate,
    Spmd,
    Split,
    Stage,
    compose_nodes,
    default_engine,
    evaluate,
)
from repro.scl.rewrite import RewriteEngine

ints = st.lists(st.integers(-1000, 1000), min_size=1, max_size=24)


def rewrite_with(rule, prog):
    return RewriteEngine([rule]).rewrite(prog)


class TestMapFusion:
    def test_fires_on_adjacent_maps(self):
        prog = compose_nodes(Map(lambda x: x), Map(lambda x: x))
        out, steps = rewrite_with(MAP_FUSION, prog)
        assert isinstance(out, Map)
        assert [s.rule for s in steps] == ["map-fusion"]

    def test_chain_of_maps_fuses_to_one(self):
        prog = compose_nodes(*[Map(lambda x, k=k: x + k) for k in range(5)])
        out, steps = rewrite_with(MAP_FUSION, prog)
        assert isinstance(out, Map)
        assert len(steps) == 4

    def test_does_not_fire_across_other_nodes(self):
        prog = compose_nodes(Map(lambda x: x), Rotate(1), Map(lambda x: x))
        out, steps = rewrite_with(MAP_FUSION, prog)
        assert steps == []

    def test_mixed_node_and_callable_not_fused(self):
        prog = compose_nodes(Map(Rotate(1)), Map(lambda x: x))
        _out, steps = rewrite_with(MAP_FUSION, prog)
        assert steps == []

    def test_node_maps_fuse_structurally(self):
        prog = compose_nodes(Map(Rotate(1)), Map(Rotate(2)))
        out, _ = rewrite_with(MAP_FUSION, prog)
        assert out == Map(compose_nodes(Rotate(1), Rotate(2)))

    @given(ints, st.integers(-20, 20), st.integers(-20, 20))
    def test_sound_property(self, xs, a, b):
        f = lambda x: x * a
        g = lambda x: x + b
        prog = compose_nodes(Map(f), Map(g))
        out, _ = rewrite_with(MAP_FUSION, prog)
        pa = ParArray(xs)
        assert evaluate(prog, pa) == evaluate(out, pa)


class TestMapDistribution:
    def test_fires_when_associativity_asserted(self):
        prog = FoldrFused(operator.add, lambda x: x, op_associative=True)
        out, steps = rewrite_with(MAP_DISTRIBUTION, prog)
        assert out == compose_nodes(Fold(operator.add), Map(out.steps[1].f))
        assert [s.rule for s in steps] == ["map-distribution"]

    def test_blocked_without_assertion(self):
        prog = FoldrFused(operator.sub, lambda x: x)
        _out, steps = rewrite_with(MAP_DISTRIBUTION, prog)
        assert steps == []

    @given(ints, st.integers(-10, 10))
    def test_sound_for_associative_ops_property(self, xs, b):
        g = lambda x: x * 2 + b
        prog = FoldrFused(operator.add, g, op_associative=True)
        out, _ = rewrite_with(MAP_DISTRIBUTION, prog)
        pa = ParArray(xs)
        assert evaluate(prog, pa) == evaluate(out, pa)

    @given(st.lists(st.text(max_size=3), min_size=1, max_size=15))
    def test_sound_for_noncommutative_concat_property(self, xs):
        prog = FoldrFused(operator.add, lambda s: s + "!", op_associative=True)
        out, _ = rewrite_with(MAP_DISTRIBUTION, prog)
        pa = ParArray(xs)
        assert evaluate(prog, pa) == evaluate(out, pa)


class TestFetchFusion:
    def test_fires(self):
        prog = compose_nodes(Fetch(lambda i: i), Fetch(lambda i: i))
        out, steps = rewrite_with(FETCH_FUSION, prog)
        assert isinstance(out, Fetch)
        assert len(steps) == 1

    @given(ints, st.integers(1, 97), st.integers(0, 97))
    def test_sound_property(self, xs, mult, shift):
        n = len(xs)
        f = lambda i: (i * mult) % n
        g = lambda i: (i + shift) % n
        prog = compose_nodes(Fetch(f), Fetch(g))
        out, _ = rewrite_with(FETCH_FUSION, prog)
        pa = ParArray(xs)
        assert evaluate(prog, pa) == evaluate(out, pa)

    def test_direction_of_composition(self):
        """fetch f . fetch g must compose as g∘f, not f∘g."""
        xs = ParArray([10, 20, 30, 40])
        f = lambda i: (i + 1) % 4
        g = lambda i: (2 * i) % 4
        prog = compose_nodes(Fetch(f), Fetch(g))
        out, _ = rewrite_with(FETCH_FUSION, prog)
        assert evaluate(out, xs) == evaluate(prog, xs)
        wrong = Fetch(lambda i: f(g(i)))
        assert evaluate(wrong, xs) != evaluate(prog, xs)


class TestSendFusion:
    def test_fires_on_perm_sends(self):
        prog = compose_nodes(PermSend(lambda k: k), PermSend(lambda k: k))
        out, steps = rewrite_with(SEND_FUSION, prog)
        assert isinstance(out, PermSend) and len(steps) == 1

    @given(ints, st.integers(0, 30), st.integers(0, 30))
    def test_sound_for_rotation_permutations_property(self, xs, a, b):
        n = len(xs)
        f = lambda k: (k + a) % n
        g = lambda k: (k + b) % n
        prog = compose_nodes(PermSend(f), PermSend(g))
        out, _ = rewrite_with(SEND_FUSION, prog)
        pa = ParArray(xs)
        assert evaluate(prog, pa) == evaluate(out, pa)

    @given(st.permutations(list(range(8))), st.permutations(list(range(8))))
    def test_sound_for_arbitrary_permutations_property(self, p1, p2):
        prog = compose_nodes(PermSend(lambda k: p1[k]), PermSend(lambda k: p2[k]))
        out, _ = rewrite_with(SEND_FUSION, prog)
        pa = ParArray(list(range(8)))
        assert evaluate(prog, pa) == evaluate(out, pa)


class TestRotateFusion:
    def test_sums_distances(self):
        out, _ = rewrite_with(ROTATE_FUSION, compose_nodes(Rotate(2), Rotate(3)))
        assert out == Rotate(5)

    def test_annihilation_to_identity(self):
        out, _ = rewrite_with(ROTATE_FUSION, compose_nodes(Rotate(2), Rotate(-2)))
        assert out == Id()

    @given(ints, st.integers(-30, 30), st.integers(-30, 30))
    def test_sound_property(self, xs, j, k):
        prog = compose_nodes(Rotate(j), Rotate(k))
        out, _ = rewrite_with(ROTATE_FUSION, prog)
        pa = ParArray(xs)
        assert evaluate(prog, pa) == evaluate(out, pa)


class TestSpmdStageMerge:
    def test_stage_order_preserved(self):
        s1 = Stage(local=lambda x: x + "a")
        s2 = Stage(local=lambda x: x + "b")
        # Compose((Spmd([s1]), Spmd([s2]))) applies s2 first
        prog = compose_nodes(Spmd((s1,)), Spmd((s2,)))
        out, _ = rewrite_with(SPMD_STAGE_MERGE, prog)
        assert out == Spmd((s2, s1))

    @given(ints)
    def test_sound_property(self, xs):
        s1 = Stage(local=lambda x: x * 3, global_=Rotate(1))
        s2 = Stage(local=lambda x: x - 1)
        prog = compose_nodes(Spmd((s1,)), Spmd((s2,)))
        out, _ = rewrite_with(SPMD_STAGE_MERGE, prog)
        pa = ParArray(xs)
        assert evaluate(prog, pa) == evaluate(out, pa)


class TestSpmdFlattening:
    def _nested(self, lf, gf1=None, gf2=Rotate(1), pattern=Block(2),
                indexed=False):
        return compose_nodes(
            Spmd((Stage(global_=gf1 or Map(lambda s: s)),)),
            Map(Spmd((Stage(global_=gf2, local=lf, indexed=indexed),))),
            Split(pattern),
        )

    def test_fires(self):
        prog = self._nested(lambda x: x * 2)
        out, steps = rewrite_with(SPMD_FLATTENING, prog)
        assert [s.rule for s in steps] == ["spmd-flattening"]
        assert isinstance(out, Spmd)
        assert len(out.stages) == 1
        assert out.stages[0].local is not None

    def test_blocked_for_indexed_locals(self):
        prog = self._nested(lambda i, x: x, indexed=True)
        _out, steps = rewrite_with(SPMD_FLATTENING, prog)
        assert steps == []

    def test_blocked_when_outer_has_local(self):
        prog = compose_nodes(
            Spmd((Stage(global_=Map(lambda s: s), local=lambda x: x),)),
            Map(Spmd((Stage(global_=Rotate(1), local=lambda x: x),))),
            Split(Block(2)),
        )
        _out, steps = rewrite_with(SPMD_FLATTENING, prog)
        assert steps == []

    @given(st.lists(st.integers(-100, 100), min_size=4, max_size=24),
           st.integers(1, 4))
    def test_sound_property(self, xs, groups):
        if groups > len(xs):
            groups = len(xs)
        lf = lambda x: x * 2 + 1
        prog = self._nested(lf, pattern=Block(groups))
        out, _ = rewrite_with(SPMD_FLATTENING, prog)
        pa = ParArray(xs)
        assert evaluate(prog, pa) == evaluate(out, pa)

    @given(st.lists(st.integers(-100, 100), min_size=4, max_size=24))
    def test_sound_with_cyclic_split_property(self, xs):
        prog = self._nested(lambda x: x - 5, pattern=Cyclic(2))
        out, _ = rewrite_with(SPMD_FLATTENING, prog)
        pa = ParArray(xs)
        assert evaluate(prog, pa) == evaluate(out, pa)

    def test_sound_with_inner_global_none(self):
        prog = compose_nodes(
            Spmd((Stage(global_=Map(lambda s: s)),)),
            Map(Spmd((Stage(global_=None, local=lambda x: x + 1),))),
            Split(Block(2)),
        )
        out, steps = rewrite_with(SPMD_FLATTENING, prog)
        assert len(steps) == 1
        pa = ParArray([1, 2, 3, 4])
        assert evaluate(prog, pa) == evaluate(out, pa)


class TestFullEngine:
    def test_all_rules_together_on_mixed_program(self):
        prog = compose_nodes(
            Map(lambda x: x * 2),
            Map(lambda x: x + 1),
            Rotate(3),
            Rotate(-1),
            Fetch(lambda i: (i + 1) % 6),
            Fetch(lambda i: (5 * i) % 6),
        )
        engine = default_engine()
        out, steps = engine.rewrite(prog)
        names = {s.rule for s in steps}
        assert names == {"map-fusion", "rotate-fusion", "fetch-fusion"}
        pa = ParArray([1, 2, 3, 4, 5, 6])
        assert evaluate(prog, pa) == evaluate(out, pa)
        # 6 steps collapsed to 3
        assert len(out.steps) == 3

    @given(st.data())
    def test_random_pipelines_preserved_property(self, data):
        """Random compositions of maps/rotates/fetches rewrite soundly."""
        n = data.draw(st.integers(2, 12), label="n")
        depth = data.draw(st.integers(1, 6), label="depth")
        steps = []
        for _ in range(depth):
            kind = data.draw(st.sampled_from(["map", "rotate", "fetch"]))
            if kind == "map":
                a = data.draw(st.integers(-5, 5))
                steps.append(Map(lambda x, a=a: x + a))
            elif kind == "rotate":
                steps.append(Rotate(data.draw(st.integers(-10, 10))))
            else:
                m = data.draw(st.integers(1, 20))
                steps.append(Fetch(lambda i, m=m, n=n: (i * m + 1) % n))
        prog = compose_nodes(*steps)
        out, _ = default_engine().rewrite(prog)
        xs = data.draw(st.lists(st.integers(-100, 100), min_size=n, max_size=n))
        pa = ParArray(xs)
        assert evaluate(prog, pa) == evaluate(out, pa)


class TestRotateRowColFusion:
    def grid(self, m=4, n=5):
        from repro.core import ParArray

        return ParArray([[i * n + j for j in range(n)] for i in range(m)],
                        shape=(m, n))

    def test_row_fusion_fires(self):
        from repro.scl import ROTATE_ROW_FUSION, RotateRow

        prog = compose_nodes(RotateRow(lambda i: i), RotateRow(lambda i: 1))
        out, steps = rewrite_with(ROTATE_ROW_FUSION, prog)
        assert isinstance(out, RotateRow)
        assert [s.rule for s in steps] == ["rotate-row-fusion"]
        g = self.grid()
        assert evaluate(prog, g) == evaluate(out, g)

    def test_col_fusion_fires(self):
        from repro.scl import ROTATE_COL_FUSION, RotateCol

        prog = compose_nodes(RotateCol(lambda j: 2), RotateCol(lambda j: j))
        out, steps = rewrite_with(ROTATE_COL_FUSION, prog)
        assert isinstance(out, RotateCol)
        g = self.grid()
        assert evaluate(prog, g) == evaluate(out, g)

    def test_row_and_col_do_not_cross_fuse(self):
        from repro.scl import RotateCol, RotateRow, default_engine

        prog = compose_nodes(RotateRow(lambda i: 1), RotateCol(lambda j: 1))
        out, steps = default_engine().rewrite(prog)
        assert steps == []
        g = self.grid()
        assert evaluate(prog, g) == evaluate(out, g)

    @given(st.integers(1, 5), st.integers(1, 5),
           st.integers(-5, 5), st.integers(-5, 5))
    def test_row_fusion_sound_property(self, m, n, a, b):
        from repro.core import ParArray
        from repro.scl import ROTATE_ROW_FUSION, RotateRow

        g = ParArray([[i * n + j for j in range(n)] for i in range(m)],
                     shape=(m, n))
        prog = compose_nodes(RotateRow(lambda i: a * i), RotateRow(lambda i: b))
        out, _ = rewrite_with(ROTATE_ROW_FUSION, prog)
        assert evaluate(prog, g) == evaluate(out, g)

    def test_cannon_rotation_chain_collapses(self):
        """Cannon's per-step rotations fuse into one skewed rotation."""
        from repro.scl import ROTATE_ROW_FUSION, RotateRow, RewriteEngine

        chain = compose_nodes(*[RotateRow(lambda i: 1) for _ in range(4)])
        out, steps = RewriteEngine([ROTATE_ROW_FUSION]).rewrite(chain)
        assert isinstance(out, RotateRow)
        assert len(steps) == 3
        g = self.grid()
        assert evaluate(chain, g) == evaluate(out, g)


class TestGatherPartitionElimination:
    def test_fires_on_matching_patterns(self):
        from repro.scl import GATHER_PARTITION_ELIM, Gather, Partition

        prog = compose_nodes(Gather(), Partition(Block(4)))
        out, steps = rewrite_with(GATHER_PARTITION_ELIM, prog)
        assert out == Id()
        assert [s.rule for s in steps] == ["gather-partition-elimination"]

    def test_fires_on_explicit_matching_pattern(self):
        from repro.scl import GATHER_PARTITION_ELIM, Gather, Partition

        prog = compose_nodes(Gather(Block(4)), Partition(Block(4)))
        out, _ = rewrite_with(GATHER_PARTITION_ELIM, prog)
        assert out == Id()

    def test_blocked_on_mismatched_patterns(self):
        from repro.scl import GATHER_PARTITION_ELIM, Gather, Partition

        prog = compose_nodes(Gather(Cyclic(4)), Partition(Block(4)))
        _out, steps = rewrite_with(GATHER_PARTITION_ELIM, prog)
        assert steps == []

    def test_wrong_order_not_matched(self):
        from repro.scl import GATHER_PARTITION_ELIM, Gather, Partition

        prog = compose_nodes(Partition(Block(4)), Gather())
        _out, steps = rewrite_with(GATHER_PARTITION_ELIM, prog)
        assert steps == []

    @given(st.lists(st.integers(), min_size=1, max_size=40), st.integers(1, 6))
    def test_sound_property(self, xs, parts):
        from repro.scl import GATHER_PARTITION_ELIM, Gather, Partition

        for pattern in (Block(parts), Cyclic(parts)):
            prog = compose_nodes(Gather(), Partition(pattern))
            out, _ = rewrite_with(GATHER_PARTITION_ELIM, prog)
            assert evaluate(prog, xs) == evaluate(out, xs)

    def test_redundant_round_trip_removed(self):
        """A distribute-then-immediately-collect round trip between two
        phases is eliminated, saving a full redistribution."""
        from repro.scl import Gather, Map, Partition, default_engine

        prog = compose_nodes(
            Gather(),
            Map(lambda b: [x * 2 for x in b]),
            Partition(Block(3)),
            Gather(),             # <- redundant collect...
            Partition(Block(3)),  # <- ...of an immediately prior distribute
            Gather(),
            Map(lambda b: [x + 1 for x in b]),
            Partition(Block(3)),
        )
        out, steps = default_engine().rewrite(prog)
        assert any(s.rule == "gather-partition-elimination" for s in steps)
        assert len(out.steps) == len(prog.steps) - 2
        xs = list(range(9))
        assert evaluate(prog, xs) == evaluate(out, xs)

    def test_partition_gather_direction_not_eliminated(self):
        """`partition P . gather` (library-boundary order) is NOT eliminated:
        its soundness depends on intermediate stages preserving block
        lengths, which is not statically checkable."""
        from repro.scl import Gather, Map, Partition, default_engine

        lib1 = compose_nodes(Gather(), Map(lambda b: list(b) + [0]),  # grows!
                             Partition(Block(3)))
        lib2 = compose_nodes(Gather(), Map(lambda b: list(b)),
                             Partition(Block(3)))
        prog = compose_nodes(lib2, lib1)
        _out, steps = default_engine().rewrite(prog)
        assert not any(s.rule == "gather-partition-elimination" for s in steps)
