"""Tests for repro.scl.optimize — the cost model and optimisation driver."""

from __future__ import annotations

import operator

import pytest

from repro.machine import AP1000, PERFECT
from repro.scl import (
    Brdcast,
    Fetch,
    Fold,
    FoldrFused,
    Id,
    IterFor,
    Map,
    Rotate,
    Scan,
    compose_nodes,
    estimate_cost,
    optimize,
)
from repro.scl.optimize import ExprCost
from repro.scl.rewrite import Rule


class TestExprCost:
    def test_addition(self):
        a = ExprCost(1.0, 2, 3)
        b = ExprCost(0.5, 1, 1)
        assert a + b == ExprCost(1.5, 3, 4)

    def test_scaling(self):
        assert ExprCost(1.0, 2, 1).scaled(3) == ExprCost(3.0, 6, 3)


class TestEstimateCost:
    def test_id_is_free(self):
        assert estimate_cost(Id(), n=8) == ExprCost(0.0, 0, 0)

    def test_map_has_one_barrier(self):
        c = estimate_cost(Map(lambda x: x), n=8, spec=AP1000)
        assert c.barriers == 1 and c.messages == 0

    def test_fused_map_cheaper_than_two_maps(self):
        from repro.util.functional import Composed

        f = lambda x: x
        g = lambda x: x
        two = estimate_cost(compose_nodes(Map(f), Map(g)), n=32, spec=AP1000)
        one = estimate_cost(Map(Composed(f, g)), n=32, spec=AP1000)
        assert one.seconds < two.seconds
        assert one.barriers == 1 and two.barriers == 2

    def test_communication_nodes_count_messages(self):
        c = estimate_cost(Rotate(1), n=16, spec=AP1000)
        assert c.messages == 16

    def test_fused_fetch_halves_messages(self):
        two = estimate_cost(compose_nodes(Fetch(id), Fetch(id)), n=16, spec=AP1000)
        one = estimate_cost(Fetch(id), n=16, spec=AP1000)
        assert one.messages == two.messages // 2

    def test_foldr_fused_scales_linearly(self):
        small = estimate_cost(FoldrFused(operator.add, id), n=16, spec=AP1000)
        big = estimate_cost(FoldrFused(operator.add, id), n=64, spec=AP1000)
        assert big.seconds == pytest.approx(small.seconds * 4)

    def test_fold_scales_logarithmically(self):
        c16 = estimate_cost(Fold(operator.add), n=16, spec=AP1000)
        c256 = estimate_cost(Fold(operator.add), n=256, spec=AP1000)
        assert c256.seconds < c16.seconds * 3

    def test_parallel_fold_beats_sequential_foldr_at_scale(self):
        # per-element work must dominate the latency of the log-n combine
        # rounds for parallelisation to pay — fn_ops=50 models a real
        # base-language fragment rather than one machine op
        seq = estimate_cost(FoldrFused(operator.add, id), n=4096, spec=AP1000,
                            fn_ops=50)
        par = estimate_cost(compose_nodes(Fold(operator.add), Map(id)),
                            n=4096, spec=AP1000, fn_ops=50)
        assert par.seconds < seq.seconds

    def test_sequential_foldr_wins_for_trivial_ops_on_slow_network(self):
        """The dual: with one-op elements, AP1000 latency makes the
        sequential fold cheaper — the cost guard exists for this reason."""
        seq = estimate_cost(FoldrFused(operator.add, id), n=256, spec=AP1000,
                            fn_ops=1)
        par = estimate_cost(compose_nodes(Fold(operator.add), Map(id)),
                            n=256, spec=AP1000, fn_ops=1)
        assert seq.seconds < par.seconds

    def test_brdcast_counts_tree_messages(self):
        c = estimate_cost(Brdcast(1), n=8, spec=AP1000)
        assert c.messages == 7

    def test_iter_for_scales_body(self):
        body = Map(lambda x: x)
        one = estimate_cost(body, n=8, spec=AP1000)
        ten = estimate_cost(IterFor(10, lambda i: body), n=8, spec=AP1000)
        assert ten.seconds == pytest.approx(one.seconds * 10)

    def test_scan_costs_like_fold(self):
        f = estimate_cost(Fold(operator.add), n=64, spec=AP1000)
        s = estimate_cost(Scan(operator.add), n=64, spec=AP1000)
        assert s.seconds == pytest.approx(f.seconds)

    def test_perfect_machine_maps_are_compute_only(self):
        c = estimate_cost(Map(lambda x: x), n=8, spec=PERFECT)
        assert c.seconds == pytest.approx(PERFECT.flop_time)


class TestOptimize:
    def test_accepts_improving_rewrite(self):
        # greedy oracle: prices the raw lowering, where map fusion shows
        # up as a barrier saved (search's pipeline cost recovers the
        # fusion via plan.opt, so there the two forms tie on cost and
        # the rewrite is taken on expression size instead)
        prog = compose_nodes(Map(lambda x: x), Map(lambda x: x))
        rep = optimize(prog, n=64, spec=AP1000, strategy="greedy")
        assert rep.accepted
        assert rep.speedup > 1.0
        assert rep.cost_after.barriers < rep.cost_before.barriers

    def test_search_takes_cost_invisible_fusion_for_size(self):
        prog = compose_nodes(Map(lambda x: x), Map(lambda x: x))
        rep = optimize(prog, n=64, spec=AP1000, strategy="search")
        assert rep.accepted
        assert rep.speedup == pytest.approx(1.0)
        assert "map-fusion" in {s.rule for s in rep.steps}

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            optimize(Rotate(1), n=8, strategy="annealing")

    def test_noop_when_nothing_matches(self):
        prog = Rotate(1)
        rep = optimize(prog, n=8, spec=AP1000)
        assert rep.optimized == prog
        assert rep.cost_after == rep.cost_before

    def test_rejects_worsening_rule_set(self):
        """A (terminating) rule that splits one rotation into many must be
        rejected by the cost guard."""
        unfuse = Rule("unfuse", 1, lambda w: (Rotate(w[0].k - 1), Rotate(1))
                      if isinstance(w[0], Rotate) and w[0].k > 1 else None)
        rep = optimize(Rotate(4), n=8, spec=AP1000, rules=[unfuse])
        assert not rep.accepted
        assert rep.optimized == Rotate(4)

    def test_report_is_printable(self):
        prog = compose_nodes(Map(lambda x: x), Map(lambda x: x), Rotate(1),
                             Rotate(-1))
        text = str(optimize(prog, n=16, spec=AP1000))
        assert "map-fusion" in text and "predicted" in text

    def test_speedup_of_identity_rewrite_is_one(self):
        rep = optimize(Rotate(2), n=4, spec=AP1000)
        assert rep.speedup == pytest.approx(1.0)

    def test_map_distribution_accepted_at_scale(self):
        prog = FoldrFused(operator.add, lambda x: x, op_associative=True)
        rep = optimize(prog, n=4096, spec=AP1000, fn_ops=50)
        assert rep.accepted and rep.speedup > 1.0

    def test_map_distribution_rejected_when_latency_dominates(self):
        prog = FoldrFused(operator.add, lambda x: x, op_associative=True)
        rep = optimize(prog, n=256, spec=AP1000, fn_ops=1)
        assert not rep.accepted


class TestPartitionGatherCosts:
    def test_partition_priced_as_redistribution(self):
        from repro.scl import Partition
        from repro.core import Block

        c = estimate_cost(Partition(Block(8)), n=64, spec=AP1000)
        assert c.seconds > 0
        assert c.messages == 63
        assert c.barriers == 1

    def test_gather_cost_grows_with_n(self):
        from repro.scl import Gather

        small = estimate_cost(Gather(), n=16, spec=AP1000, element_bytes=1024)
        big = estimate_cost(Gather(), n=256, spec=AP1000, element_bytes=1024)
        assert big.seconds > small.seconds

    def test_eliminated_round_trip_predicts_cheaper(self):
        from repro.core import Block
        from repro.scl import Gather, Partition

        wasteful = compose_nodes(Gather(), Partition(Block(8)))
        rep = optimize(wasteful, n=64, spec=AP1000)
        assert rep.accepted
        assert rep.optimized == Id()
        assert rep.cost_after.seconds < rep.cost_before.seconds
