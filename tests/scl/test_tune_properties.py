"""Search soundness properties: same values, never a simulated regression.

The cost-driven rewrite search's contract, stated over randomly
generated expressions and a sweep of machine shapes (the PR-5
property-suite pattern, applied to the *pre-lowering* optimizer):

1. **Bit-identical results** — the searched winner computes the same
   values as the original expression, element for element.
2. **Predicted never worse** — the winner's lexicographic cost key is
   bounded by the original's (by construction: the original stays in
   the candidate pool), so search never *predicts* a regression.
3. **Simulated never worse** — on the single-port machine the search
   priced for, the winner's simulated makespan (tiny float slack for
   re-associated compute charges) and message count are bounded by the
   original's.  This is the model-fidelity half of the contract: a
   predicted improvement must not be a simulated regression.
4. **beam=1 never loses to greedy** — hill-climbing on the unified
   pipeline cost matches the old greedy fixpoint wherever greedy's
   package is genuinely improving, and prices no worse everywhere.  On
   the random space below the two agree exactly (every random ``Fetch``
   is a bijective shift, so fusion can never concentrate traffic);
   where they *can* diverge, search wins — the deterministic anchor at
   the bottom pins the engineered case where greedy's all-or-nothing
   package fuses sparse fetches into a traffic funnel and search
   declines it.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pararray import ParArray
from repro.machine import AP1000, Machine, PERFECT
from repro.machine.topology import FullyConnected, Hypercube, Ring
from repro.scl import (
    Brdcast,
    Fetch,
    Fold,
    IMap,
    IterFor,
    Map,
    Rotate,
    Scan,
    compose_nodes,
)
from repro.scl.compile import base_fragment, run_expression
from repro.scl.optimize import optimize
from repro.tune import score_expression, tune_expression

SLACK = 1 + 1e-9  # fused compute charges re-associate float additions

SPECS = {"ap1000": AP1000, "perfect": PERFECT}
TOPOLOGIES = {
    "ring": Ring,
    "full": FullyConnected,
    "hypercube": Hypercube.of_size,
}


@base_fragment(ops=40.0)
def _inc(x):
    return x + 1


@base_fragment(ops=60.0)
def _dbl(x):
    return x * 2


@base_fragment(ops=20.0)
def _collapse(pair):
    # Brdcast pairs the broadcast value with each component; fold the
    # pair back to a number so any numeric leaf can follow.
    a, x = pair
    return a + x


@st.composite
def programs(draw):
    """Random flat chains over every §4-relevant skeleton family."""
    p = draw(st.sampled_from([2, 3, 4, 8]))
    leaf = st.one_of(
        st.sampled_from([Map(_inc), Map(_dbl),
                         IMap(lambda i, x: x + i),
                         compose_nodes(Map(_collapse), Brdcast(17.0))]),
        st.integers(min_value=-4, max_value=4).map(Rotate),
        st.integers(min_value=0, max_value=p - 1).map(
            lambda s: Fetch(lambda r, s=s: (r + s) % p)),
        st.just(Scan(lambda a, b: a + b)),
        st.integers(min_value=1, max_value=3).map(
            lambda k: IterFor(k, lambda i: compose_nodes(
                Map(_inc), Rotate(i + 1)))),
    )
    steps = draw(st.lists(leaf, min_size=1, max_size=5))
    # a trailing Fold is legal (scalar plans), anywhere else it is not
    if draw(st.booleans()):
        steps.insert(0, Fold(lambda a, b: a + b))
    return p, compose_nodes(*steps)


def _values(x):
    return list(x) if isinstance(x, ParArray) else x


@settings(max_examples=40, deadline=None)
@given(prog=programs(),
       topo_name=st.sampled_from(sorted(TOPOLOGIES)),
       spec_name=st.sampled_from(sorted(SPECS)))
def test_searched_winner_is_bit_identical_and_never_regresses(
        prog, topo_name, spec_name):
    p, expr = prog
    if topo_name == "hypercube" and p & (p - 1):
        p = 4  # hypercubes need a power of two
    spec = SPECS[spec_name]
    res = tune_expression(expr, nprocs=p, spec=spec,
                          topo=TOPOLOGIES[topo_name](p),
                          beam=2, max_rounds=8)

    # predicted: the original never leaves the pool, so the winner's
    # lexicographic key is bounded by the original's
    assert res.best.order_key() <= res.original.order_key()
    winner = res.best if res.improved else res.original

    # single_port matches plan_cost's msg x degree exchange pricing —
    # the machine the search believed it was optimising for
    def machine():
        return Machine(TOPOLOGIES[topo_name](p), spec=spec,
                       single_port=True)

    pa = ParArray([float(3 * r + 1) for r in range(p)])
    want, res_orig = run_expression(expr, pa, machine(), opt="auto")
    got, res_win = run_expression(winner.expr, pa, machine(), opt="auto")

    assert _values(got) == _values(want)
    assert res_win.total_messages <= res_orig.total_messages
    assert res_win.makespan <= res_orig.makespan * SLACK


@settings(max_examples=25, deadline=None)
@given(prog=programs(),
       spec_name=st.sampled_from(sorted(SPECS)))
def test_beam1_search_never_loses_to_greedy(prog, spec_name):
    p, expr = prog
    spec = SPECS[spec_name]
    topo = FullyConnected(p)
    rep_search = optimize(expr, n=p, spec=spec, strategy="search",
                          beam=1, topo=topo)
    rep_greedy = optimize(expr, n=p, spec=spec, strategy="greedy")

    # both strategies preserve meaning
    pa = ParArray([float(3 * r + 1) for r in range(p)])

    def machine():
        return Machine(FullyConnected(p), spec=spec, single_port=True)

    want, _ = run_expression(expr, pa, machine(), opt="auto")
    got_s, _ = run_expression(rep_search.optimized, pa, machine(),
                              opt="auto")
    got_g, _ = run_expression(rep_greedy.optimized, pa, machine(),
                              opt="auto")
    assert _values(got_s) == _values(want)
    assert _values(got_g) == _values(want)

    # priced through the one unified model, hill-climbing on pipeline
    # cost is never worse than greedy's all-or-nothing package
    cost_s, _ = score_expression(rep_search.optimized, nprocs=p, spec=spec)
    cost_g, _ = score_expression(rep_greedy.optimized, nprocs=p, spec=spec)
    assert cost_s.seconds <= cost_g.seconds * SLACK

    # on this space every Fetch is a bijective shift, so greedy's fusion
    # package never concentrates traffic and the two agree exactly
    assert rep_search.optimized == rep_greedy.optimized


class TestSearchBeatsGreedyAnchor:
    """The engineered divergence the benchmarks track: greedy's package
    fuses two sparse fetches into one degree-15 funnel (2 barriers saved
    beats the fetch penalty under its raw-lowering model), search prices
    the funnel on the single-port machine and declines it."""

    def test_search_strictly_beats_greedy_in_simulated_makespan(self):
        from repro.tune import run_tuned_hyperquicksort

        rng = np.random.default_rng(7)
        values = rng.integers(0, 2**31, size=4000).astype(np.int32)

        out_s, res_s, rep_s = run_tuned_hyperquicksort(
            values, 5, strategy="search", beam=2)
        out_g, res_g, rep_g = run_tuned_hyperquicksort(
            values, 5, strategy="greedy")

        # per-rank blocks, exactly equal (not allclose)
        assert all(np.array_equal(np.asarray(a), np.asarray(b))
                   for a, b in zip(list(out_s), list(out_g)))
        assert res_s.makespan < res_g.makespan  # strict: the trap engaged
        # search took the fusions plan.opt cannot recover but declined
        # the traffic-concentrating fetch fusion greedy bundled in
        assert len(rep_s.steps) < len(rep_g.steps)
        assert "fetch" not in " ".join(s.rule for s in rep_s.steps)
