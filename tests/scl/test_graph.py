"""Tests for repro.scl.graph — expression graph rendering."""

from __future__ import annotations

import operator

from repro.core import Block
from repro.scl import (
    Fetch,
    Fold,
    Gather,
    Map,
    Partition,
    Rotate,
    Spmd,
    Split,
    Stage,
    compose_nodes,
)
from repro.scl.graph import communication_count, node_count, to_dot, to_networkx


def sample_prog():
    return compose_nodes(Fold(operator.add), Map(lambda x: x * x), Rotate(2))


class TestToDot:
    def test_valid_digraph_syntax(self):
        dot = to_dot(sample_prog())
        assert dot.startswith("digraph scl {")
        assert dot.rstrip().endswith("}")

    def test_labels_in_scl_notation(self):
        dot = to_dot(sample_prog())
        assert "fold add" in dot
        assert "rotate 2" in dot

    def test_compose_edges_numbered_by_application_order(self):
        dot = to_dot(sample_prog())
        assert 'label="step 1"' in dot  # applied first (rightmost)
        assert 'label="step 3"' in dot

    def test_custom_name(self):
        assert to_dot(Rotate(1), name="myprog").startswith("digraph myprog")

    def test_long_labels_truncated(self):
        prog = Split(Block(123456789))
        dot = to_dot(compose_nodes(prog, prog))
        for line in dot.splitlines():
            if "label=" in line and "step" not in line:
                assert len(line) < 120

    def test_spmd_stages_are_vertices(self):
        prog = Spmd((Stage(global_=Rotate(1), local=lambda x: x),))
        dot = to_dot(prog)
        assert 'label="SPMD"' in dot
        assert 'label="stage 1"' in dot


class TestToNetworkx:
    def test_tree_shape(self):
        g = to_networkx(sample_prog())
        assert g.number_of_nodes() == 4  # compose + 3 steps
        assert g.number_of_edges() == 3
        roots = [v for v in g if g.in_degree(v) == 0]
        assert len(roots) == 1

    def test_node_attributes(self):
        g = to_networkx(Rotate(5))
        (v,) = g.nodes
        assert g.nodes[v]["label"] == "rotate 5"
        assert g.nodes[v]["kind"] == "Rotate"

    def test_nested_map_recursed(self):
        g = to_networkx(Map(compose_nodes(Rotate(1), Rotate(2))))
        kinds = {data["kind"] for _v, data in g.nodes(data=True)}
        assert kinds == {"Map", "Compose", "Rotate"}


class TestCounts:
    def test_node_count(self):
        assert node_count(Rotate(1)) == 1
        assert node_count(sample_prog()) == 4

    def test_communication_count(self):
        prog = compose_nodes(Gather(), Map(lambda x: x), Fetch(lambda i: i),
                             Rotate(1), Partition(Block(2)))
        assert communication_count(prog) == 4

    def test_map_is_not_communication(self):
        assert communication_count(Map(lambda x: x)) == 0

    def test_rewriting_reduces_communication_count(self):
        from repro.scl import default_engine

        prog = compose_nodes(Rotate(1), Rotate(1), Rotate(1))
        out, _ = default_engine().rewrite(prog)
        assert communication_count(prog) == 3
        assert communication_count(out) == 1
