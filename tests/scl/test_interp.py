"""Tests for repro.scl.interp — every node against the core semantics."""

from __future__ import annotations

import operator

import pytest

from repro.core import Block, Cyclic, ParArray
from repro.core import communication as comm
from repro.core import config as cfg
from repro.core import elementary as elem
from repro.errors import SkeletonError
from repro.scl import (
    ApplyBrdcast,
    Brdcast,
    Combine,
    Compose,
    Farm,
    Fetch,
    Fold,
    FoldrFused,
    Id,
    IMap,
    IterFor,
    Map,
    PermSend,
    Rotate,
    RotateCol,
    RotateRow,
    Scan,
    SendNode,
    Spmd,
    Split,
    Stage,
    compose_nodes,
    evaluate,
)

PA = ParArray([3, 1, 4, 1, 5, 9, 2, 6])


class TestLeafNodes:
    def test_id(self):
        assert evaluate(Id(), PA) is PA

    def test_map_matches_parmap(self):
        f = lambda x: x + 1
        assert evaluate(Map(f), PA) == elem.parmap(f, PA)

    def test_map_of_node_applies_to_subarrays(self):
        nested = cfg.split(Block(2), PA)
        out = evaluate(Map(Rotate(1)), nested)
        assert out[0] == comm.rotate(1, nested[0])

    def test_imap(self):
        f = lambda i, x: i * x
        assert evaluate(IMap(f), PA) == elem.imap(f, PA)

    def test_fold(self):
        assert evaluate(Fold(operator.add), PA) == 31

    def test_scan(self):
        assert evaluate(Scan(operator.add), PA) == elem.scan(operator.add, PA)

    def test_rotate(self):
        assert evaluate(Rotate(3), PA) == comm.rotate(3, PA)

    def test_rotate_row_col(self):
        grid = ParArray([[1, 2], [3, 4]], shape=(2, 2))
        df = lambda i: 1
        assert evaluate(RotateRow(df), grid) == comm.rotate_row(df, grid)
        assert evaluate(RotateCol(df), grid) == comm.rotate_col(df, grid)

    def test_fetch(self):
        f = lambda i: (i + 2) % 8
        assert evaluate(Fetch(f), PA) == comm.fetch(f, PA)

    def test_send_node(self):
        f = lambda k: [0]
        assert evaluate(SendNode(f), PA) == comm.send(f, PA)

    def test_brdcast(self):
        assert evaluate(Brdcast("v"), PA) == comm.brdcast("v", PA)

    def test_apply_brdcast(self):
        f = lambda x: x * 2
        assert evaluate(ApplyBrdcast(f, 3), PA) == comm.apply_brdcast(f, 3, PA)

    def test_split_combine(self):
        assert evaluate(Split(Cyclic(2)), PA) == cfg.split(Cyclic(2), PA)
        assert evaluate(Combine(), cfg.split(Block(2), PA)) == \
            cfg.combine(cfg.split(Block(2), PA))

    def test_farm(self):
        out = evaluate(Farm(lambda env, x: env + x, 100), PA)
        assert out.to_list() == [x + 100 for x in PA.to_list()]

    def test_unknown_node_rejected(self):
        class Bogus:
            pass

        with pytest.raises(SkeletonError):
            evaluate(Bogus(), PA)  # type: ignore[arg-type]


class TestPermSend:
    def test_permutation_routing(self):
        out = evaluate(PermSend(lambda k: (k + 1) % 8), PA)
        # element k lands at k+1: out[i] = PA[i-1]
        assert out == comm.rotate(-1, PA)

    def test_non_permutation_rejected(self):
        with pytest.raises(SkeletonError, match="permutation"):
            evaluate(PermSend(lambda k: 0), PA)

    def test_out_of_range_rejected(self):
        with pytest.raises(SkeletonError, match="out of range"):
            evaluate(PermSend(lambda k: k + 1), PA)

    def test_requires_1d(self):
        with pytest.raises(SkeletonError):
            evaluate(PermSend(lambda k: k), ParArray([[1]], shape=(1, 1)))


class TestFoldrFused:
    def test_sequential_right_fold(self):
        # op = sub (not associative): 3-(1-(4-(1-(5-(9-(2-6))))))
        node = FoldrFused(operator.sub, lambda x: x)
        expected = 3 - (1 - (4 - (1 - (5 - (9 - (2 - 6))))))
        assert evaluate(node, PA) == expected

    def test_g_applied_before_combine(self):
        node = FoldrFused(operator.add, lambda x: x * 10)
        assert evaluate(node, PA) == 310

    def test_single_element(self):
        node = FoldrFused(operator.add, lambda x: x + 1)
        assert evaluate(node, ParArray([5])) == 6

    def test_empty_undefined(self):
        node = FoldrFused(operator.add, lambda x: x)
        with pytest.raises(SkeletonError):
            evaluate(node, [])

    def test_accepts_plain_lists(self):
        node = FoldrFused(operator.add, lambda x: x)
        assert evaluate(node, [1, 2, 3]) == 6


class TestCompose:
    def test_right_to_left_application(self):
        prog = Compose((Map(lambda x: x * 2), Rotate(1)))
        assert evaluate(prog, ParArray([1, 2])) == \
            elem.parmap(lambda x: x * 2, comm.rotate(1, ParArray([1, 2])))

    def test_fold_as_outermost(self):
        prog = compose_nodes(Fold(operator.add), Map(lambda x: x * x))
        assert evaluate(prog, ParArray([1, 2, 3])) == 14


class TestSpmdAndIter:
    def test_spmd_stage_order(self):
        prog = Spmd((
            Stage(local=lambda x: x + 1),
            Stage(global_=Rotate(1)),
        ))
        assert evaluate(prog, ParArray([0, 1])).to_list() == [2, 1]

    def test_spmd_indexed_local(self):
        prog = Spmd((Stage(local=lambda i, x: i, indexed=True),))
        assert evaluate(prog, ParArray([9, 9])).to_list() == [0, 1]

    def test_iter_for_applies_body_n_times(self):
        prog = IterFor(3, lambda i: Map(lambda x: x + 1))
        assert evaluate(prog, ParArray([0])).to_list() == [3]

    def test_iter_for_body_sees_counter(self):
        prog = IterFor(3, lambda i: Rotate(i))
        # rotate 0 then 1 then 2 == rotate 3
        pa = ParArray(list(range(5)))
        assert evaluate(prog, pa) == comm.rotate(3, pa)

    def test_executor_threading(self):
        prog = Map(lambda x: x * 2)
        out = evaluate(prog, PA, executor="threads")
        assert out == elem.parmap(lambda x: x * 2, PA)


class TestPartitionGatherNodes:
    def test_partition_node(self):
        import numpy as np
        from repro.core import Block
        from repro.scl import Partition

        out = evaluate(Partition(Block(3)), list(range(7)))
        assert out.to_list() == [[0, 1, 2], [3, 4], [5, 6]]
        assert out.dist == Block(3)

    def test_gather_inverts_partition(self):
        from repro.core import Cyclic
        from repro.scl import Gather, Partition, compose_nodes

        prog = compose_nodes(Gather(), Partition(Cyclic(3)))
        xs = list(range(11))
        assert evaluate(prog, xs) == xs

    def test_gather_with_explicit_pattern_transposes(self):
        from repro.core import Block, Cyclic
        from repro.scl import Gather, Partition, compose_nodes

        # partition block, gather cyclic: a real data transposition
        prog = compose_nodes(Gather(Cyclic(2)), Partition(Block(2)))
        out = evaluate(prog, [0, 1, 2, 3])
        assert out == [0, 2, 1, 3]

    def test_whole_program_expression(self):
        import numpy as np
        from repro.core import Block
        from repro.scl import Gather, Map, Partition, compose_nodes

        prog = compose_nodes(Gather(),
                             Map(lambda b: np.asarray(b) * 2),
                             Partition(Block(4)))
        x = np.arange(10)
        assert np.array_equal(evaluate(prog, x), x * 2)
