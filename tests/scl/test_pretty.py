"""Tests for repro.scl.pretty."""

from __future__ import annotations

import operator

from repro.core import Block
from repro.scl import (
    ApplyBrdcast,
    Brdcast,
    Combine,
    Farm,
    Fetch,
    Fold,
    FoldrFused,
    Id,
    IMap,
    IterFor,
    Map,
    PermSend,
    Rotate,
    RotateCol,
    RotateRow,
    Scan,
    SendNode,
    Spmd,
    Split,
    Stage,
    compose_nodes,
    pretty,
)


def named(x):
    return x


class TestPretty:
    def test_id(self):
        assert pretty(Id()) == "id"

    def test_named_function_shown(self):
        assert pretty(Map(named)) == "map named"

    def test_lambda_shown_as_fn(self):
        assert pretty(Map(lambda x: x)) == "map <fn>"

    def test_compose_uses_dots(self):
        text = pretty(compose_nodes(Map(named), Rotate(2)))
        assert text == "map named . rotate 2"

    def test_fold_scan(self):
        assert pretty(Fold(operator.add)) == "fold add"
        assert pretty(Scan(operator.add)) == "scan add"

    def test_foldr_fused(self):
        assert pretty(FoldrFused(operator.add, named)) == "foldr (add . named)"

    def test_communication_nodes(self):
        assert pretty(Fetch(named)) == "fetch named"
        assert pretty(PermSend(named)) == "send named"
        assert pretty(SendNode(named)) == "send* named"
        assert pretty(RotateRow(named)) == "rotate_row named"
        assert pretty(RotateCol(named)) == "rotate_col named"

    def test_brdcast_nodes(self):
        assert pretty(Brdcast(5)) == "brdcast 5"
        assert "applybrdcast" in pretty(ApplyBrdcast(named, 0))

    def test_split_combine(self):
        assert pretty(Split(Block(4))) == "split Block(4)"
        assert pretty(Combine()) == "combine"

    def test_farm(self):
        assert pretty(Farm(named, {"e": 1})) == "farm named <env>"

    def test_spmd_stages(self):
        node = Spmd((Stage(global_=Rotate(1), local=named),))
        assert pretty(node) == "SPMD [(rotate 1, named)]"

    def test_spmd_indexed_marker(self):
        node = Spmd((Stage(local=named, indexed=True),))
        assert "imap named" in pretty(node)

    def test_spmd_empty_stage_parts(self):
        assert pretty(Spmd((Stage(),))) == "SPMD [(id, id)]"

    def test_iter_for(self):
        assert pretty(IterFor(5, lambda i: Id())) == "iterFor 5 <body>"

    def test_map_of_node_parenthesised(self):
        assert pretty(Map(Rotate(1))) == "map (rotate 1)"

    def test_composed_function_pipeline(self):
        from repro.util.functional import Composed

        assert pretty(Map(Composed(named, named))) == "map (named . named)"

    def test_imap(self):
        assert pretty(IMap(named)) == "imap named"
