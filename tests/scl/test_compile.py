"""Tests for repro.scl.compile — the SCL compiler.

The compiler's correctness statement: for every supported expression,
compiled execution on the simulated machine returns exactly what the pure
interpreter returns.  Plus: cost annotations must reach the virtual clock,
communication nodes must generate the expected traffic, and unsupported
shapes must fail loudly.
"""

from __future__ import annotations

import operator

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Block, Cyclic, ParArray
from repro.errors import SkeletonError
from repro.machine import AP1000, PERFECT, Hypercube, Machine
from repro.scl import (
    AlignFetch,
    ApplyBrdcast,
    Brdcast,
    Combine,
    CompiledProgram,
    Farm,
    Fetch,
    Fold,
    FoldrFused,
    Id,
    IMap,
    IterFor,
    Map,
    PermSend,
    Rotate,
    Scan,
    SendNode,
    Split,
    Spmd,
    Stage,
    base_fragment,
    compose_nodes,
    evaluate,
    fragment_ops,
    run_expression,
)

PA8 = ParArray([3, 1, 4, 1, 5, 9, 2, 6])


def machine8(spec=AP1000):
    return Machine(Hypercube(3), spec=spec)


def assert_agrees(expr, pa=PA8, machine=None):
    machine = machine or machine8()
    want = evaluate(expr, pa)
    got, res = run_expression(expr, pa, machine)
    assert got == want
    return res


class TestCrossValidation:
    """Compiled == interpreted, node by node."""

    def test_id(self):
        assert_agrees(Id())

    def test_map(self):
        assert_agrees(Map(lambda x: x * 2 + 1))

    def test_imap(self):
        assert_agrees(IMap(lambda i, x: x * 10 + i))

    def test_farm(self):
        assert_agrees(Farm(lambda env, x: env - x, 100))

    @pytest.mark.parametrize("k", [-5, -1, 0, 1, 3, 8, 11])
    def test_rotate(self, k):
        assert_agrees(Rotate(k))

    def test_fetch(self):
        assert_agrees(Fetch(lambda i: (i * 5) % 8))

    def test_fetch_one_to_many(self):
        assert_agrees(Fetch(lambda i: 0))

    def test_align_fetch(self):
        assert_agrees(AlignFetch(lambda i: i ^ 1))

    def test_align_fetch_self(self):
        assert_agrees(AlignFetch(lambda i: i))

    def test_perm_send(self):
        assert_agrees(PermSend(lambda k: (k + 3) % 8))

    def test_send_many_to_one(self):
        assert_agrees(SendNode(lambda k: [0]))

    def test_send_scatter_pattern(self):
        assert_agrees(SendNode(lambda k: [k % 4]))

    def test_send_empty_destinations(self):
        assert_agrees(SendNode(lambda k: []))

    def test_send_self_delivery(self):
        assert_agrees(SendNode(lambda k: [k]))

    def test_brdcast(self):
        assert_agrees(Brdcast("env"))

    def test_apply_brdcast(self):
        assert_agrees(ApplyBrdcast(lambda x: x + 100, 2))

    def test_fold(self):
        assert_agrees(Fold(operator.add))

    def test_fold_noncommutative(self):
        assert_agrees(Fold(operator.add),
                      pa=ParArray(list("abcdefgh")))

    def test_scan(self):
        assert_agrees(Scan(operator.add))

    def test_compose(self):
        assert_agrees(compose_nodes(
            Map(lambda x: x + 1), Rotate(2), Fetch(lambda i: (i + 5) % 8)))

    def test_spmd(self):
        assert_agrees(Spmd((
            Stage(local=lambda x: x * 2),
            Stage(global_=Rotate(1), local=lambda i, x: x + i, indexed=True),
        )))

    def test_iter_for(self):
        assert_agrees(IterFor(4, lambda i: Rotate(i)))

    def test_split_map_combine(self):
        assert_agrees(compose_nodes(Combine(), Map(Rotate(1)), Split(Block(2))))

    def test_split_cyclic(self):
        assert_agrees(compose_nodes(Combine(), Map(Rotate(1)), Split(Cyclic(2))))

    def test_nested_subexpression_in_groups(self):
        inner = compose_nodes(Rotate(1), Map(lambda x: -x))
        assert_agrees(compose_nodes(Combine(), Map(inner), Split(Block(4))))

    def test_fold_inside_groups(self):
        """Group-wise reduction: every member of each group gets the
        group's sum (fold broadcasts its result)."""
        expr = compose_nodes(Combine(),
                             Map(compose_nodes(Map(lambda s: s),)),
                             Split(Block(2)))
        assert_agrees(expr)

    @settings(max_examples=20)
    @given(st.lists(st.integers(-100, 100), min_size=8, max_size=8),
           st.integers(-10, 10), st.integers(0, 7))
    def test_pipeline_property(self, xs, k, shift):
        expr = compose_nodes(
            Map(lambda x: x * 2),
            Rotate(k),
            Fetch(lambda i: (i + shift) % 8),
        )
        pa = ParArray(xs)
        want = evaluate(expr, pa)
        got, _res = run_expression(expr, pa, machine8(spec=PERFECT))
        assert got == want


class TestCostCharging:
    def test_fragment_annotation_constant(self):
        @base_fragment(ops=1234)
        def f(x):
            return x

        assert fragment_ops(f, None) == 1234

    def test_fragment_annotation_dynamic(self):
        @base_fragment(ops=lambda xs: len(xs) * 2)
        def f(xs):
            return xs

        assert fragment_ops(f, [1, 2, 3]) == 6

    def test_unannotated_uses_default(self):
        assert fragment_ops(lambda x: x, None, default=7.5) == 7.5

    def test_expensive_fragments_take_longer(self):
        @base_fragment(ops=1)
        def cheap(x):
            return x

        @base_fragment(ops=1_000_000)
        def dear(x):
            return x

        _r1, fast = run_expression(Map(cheap), PA8, machine8())
        _r2, slow = run_expression(Map(dear), PA8, machine8())
        assert slow.makespan > fast.makespan

    def test_map_compute_is_parallel(self):
        """p annotated fragments run concurrently: makespan ~ one fragment."""

        @base_fragment(ops=1_000_000)
        def f(x):
            return x

        _r, res = run_expression(Map(f), PA8, machine8())
        one = AP1000.compute_time(1_000_000)
        assert res.makespan == pytest.approx(one, rel=0.01)

    def test_rotation_generates_p_messages(self):
        _r, res = run_expression(Rotate(1), PA8, machine8())
        assert res.total_messages == 8

    def test_fetch_from_self_generates_no_message(self):
        _r, res = run_expression(Fetch(lambda i: i), PA8, machine8())
        assert res.total_messages == 0

    def test_fused_pipeline_cheaper_on_machine(self):
        """The map-fusion payoff measured with compiled programs."""
        from repro.scl import default_engine

        fns = [lambda x, k=k: x + k for k in range(4)]
        unfused = compose_nodes(*[Map(f) for f in fns])
        fused, _ = default_engine().rewrite(unfused)
        _r1, r_unfused = run_expression(unfused, PA8, machine8())
        _r2, r_fused = run_expression(fused, PA8, machine8())
        assert evaluate(unfused, PA8) == evaluate(fused, PA8)
        # fused program does the same compute with no extra structure;
        # on this compiler each map is local, so times are equal — but the
        # fused one performs a single pass of fragment applications
        assert r_fused.makespan <= r_unfused.makespan + 1e-12

    def test_comm_fusion_cheaper_on_machine(self):
        from repro.scl import default_engine

        chain = compose_nodes(Rotate(1), Rotate(1), Rotate(1))
        fused, _ = default_engine().rewrite(chain)
        # opt="off": the comparison is between source-level forms; the plan
        # optimizer would fold the rotate chain itself either way.
        _r1, r_chain = run_expression(chain, PA8, machine8(), opt="off")
        _r2, r_fused = run_expression(fused, PA8, machine8(), opt="off")
        assert r_fused.total_messages == r_chain.total_messages // 3
        assert r_fused.makespan < r_chain.makespan


class TestErrors:
    def test_wrong_input_size(self):
        with pytest.raises(SkeletonError, match="processors"):
            run_expression(Id(), ParArray([1, 2]), machine8())

    def test_non_pararray_input(self):
        with pytest.raises(SkeletonError):
            run_expression(Id(), [1, 2], machine8())  # type: ignore[arg-type]

    def test_2d_input_rejected(self):
        with pytest.raises(SkeletonError):
            run_expression(Id(), ParArray([[1, 2]], shape=(1, 2)), machine8())

    def test_map_subexpression_without_split(self):
        with pytest.raises(SkeletonError, match="split"):
            run_expression(Map(Rotate(1)), PA8, machine8())

    def test_combine_without_split(self):
        with pytest.raises(SkeletonError, match="combine"):
            run_expression(Combine(), PA8, machine8())

    def test_base_map_on_groups_rejected(self):
        expr = compose_nodes(Map(lambda x: x), Split(Block(2)))
        with pytest.raises(SkeletonError, match="split configuration"):
            run_expression(expr, PA8, machine8())

    def test_unsupported_node(self):
        with pytest.raises(SkeletonError, match="does not support"):
            run_expression(FoldrFused(operator.add, lambda x: x), PA8, machine8())

    def test_bad_permutation_detected(self):
        with pytest.raises(SkeletonError, match="permutation"):
            run_expression(PermSend(lambda k: 0), PA8, machine8())

    def test_fetch_out_of_range(self):
        with pytest.raises(SkeletonError, match="out of range"):
            run_expression(Fetch(lambda i: 99), PA8, machine8())


class TestCompiledHyperquicksort:
    """The full paper pipeline: §3 program -> §5 expression -> machine."""

    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4])
    def test_sorts_correctly(self, rng, d):
        from repro.apps.sort import hyperquicksort_compiled

        vals = rng.integers(0, 10**6, size=1024).astype(np.int32)
        out, _res = hyperquicksort_compiled(vals, d)
        assert np.array_equal(out, np.sort(vals))

    def test_expression_interprets_too(self, rng):
        from repro.apps.sort import hyperquicksort_expression, seq_quicksort
        from repro.core import Block, parmap, partition

        vals = rng.integers(0, 1000, size=256)
        d, p = 3, 8
        blocks = parmap(seq_quicksort, partition(Block(p), vals))
        out = evaluate(hyperquicksort_expression(d), blocks)
        flat = np.concatenate([np.asarray(b) for b in out])
        assert np.array_equal(flat, np.sort(vals))

    def test_compiled_time_comparable_to_handwritten(self, rng):
        from repro.apps.sort import hyperquicksort_compiled, hyperquicksort_machine

        vals = rng.integers(0, 10**6, size=4096).astype(np.int32)
        _o1, compiled = hyperquicksort_compiled(vals, 4)
        _o2, hand = hyperquicksort_machine(vals, 4, include_distribution=False)
        ratio = compiled.makespan / hand.makespan
        assert 0.2 < ratio < 5.0

    def test_runtime_decreases_with_processors(self, rng):
        from repro.apps.sort import hyperquicksort_compiled

        vals = rng.integers(0, 10**6, size=8192).astype(np.int32)
        t = {}
        for d in (1, 3, 5):
            _o, res = hyperquicksort_compiled(vals, d)
            t[d] = res.makespan
        assert t[1] > t[3] > t[5]


class TestRandomPipelineFuzz:
    """Hypothesis soak: random multi-node pipelines, compiled == interpreted."""

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_random_flat_pipelines(self, data):
        n = 8
        depth = data.draw(st.integers(1, 7), label="depth")
        steps = []
        for _ in range(depth):
            kind = data.draw(st.sampled_from(
                ["map", "imap", "rotate", "fetch", "alignfetch", "permsend",
                 "brdcast", "applybrdcast"]))
            if kind == "map":
                a = data.draw(st.integers(-5, 5))
                steps.append(Map(lambda x, a=a: _flatten(x) + a))
            elif kind == "imap":
                steps.append(IMap(lambda i, x: _flatten(x) * 2 + i))
            elif kind == "rotate":
                steps.append(Rotate(data.draw(st.integers(-9, 9))))
            elif kind == "fetch":
                m = data.draw(st.integers(1, 15))
                steps.append(Fetch(lambda i, m=m: (i * m + 1) % n))
            elif kind == "alignfetch":
                s = data.draw(st.integers(0, 7))
                steps.append(AlignFetch(lambda i, s=s: (i + s) % n))
            elif kind == "permsend":
                a = data.draw(st.integers(0, 7))
                steps.append(PermSend(lambda k, a=a: (k + a) % n))
            elif kind == "brdcast":
                steps.append(Brdcast(data.draw(st.integers(-5, 5))))
            else:
                idx = data.draw(st.integers(0, n - 1))
                steps.append(ApplyBrdcast(lambda x: _flatten(x) + 1, idx))
        prog = compose_nodes(*steps)
        xs = data.draw(st.lists(st.integers(-50, 50), min_size=n, max_size=n))
        pa = ParArray(xs)
        want = evaluate(prog, pa)
        got, _res = run_expression(prog, pa, Machine(Hypercube(3), spec=PERFECT))
        assert got == want

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_random_group_pipelines(self, data):
        n = 8
        groups = data.draw(st.sampled_from([2, 4]))
        inner_steps = []
        for _ in range(data.draw(st.integers(1, 3))):
            kind = data.draw(st.sampled_from(["rotate", "map", "fetch"]))
            gsize = n // groups
            if kind == "rotate":
                inner_steps.append(Rotate(data.draw(st.integers(-3, 3))))
            elif kind == "map":
                a = data.draw(st.integers(-5, 5))
                inner_steps.append(Map(lambda x, a=a: x + a))
            else:
                m = data.draw(st.integers(1, 5))
                inner_steps.append(
                    Fetch(lambda i, m=m, g=gsize: (i * m) % g))
        prog = compose_nodes(Combine(), Map(compose_nodes(*inner_steps)),
                             Split(Block(groups)))
        xs = data.draw(st.lists(st.integers(-50, 50), min_size=n, max_size=n))
        pa = ParArray(xs)
        want = evaluate(prog, pa)
        got, _res = run_expression(prog, pa, Machine(Hypercube(3), spec=PERFECT))
        assert got == want


def _flatten(x):
    """Reduce scalar-or-tuple compiled values to a scalar for chaining."""
    while isinstance(x, tuple):
        x = x[0] if not isinstance(x[0], tuple) else x[0]
        break
    if isinstance(x, tuple):
        return _flatten(x[0])
    return x if isinstance(x, int) else _sum_leaves(x)


def _sum_leaves(x):
    if isinstance(x, tuple):
        return sum(_sum_leaves(v) for v in x)
    if isinstance(x, list):
        return sum(_sum_leaves(v) for v in x)
    return x


class TestGridCompilation:
    """2-D grid inputs: RotateRow/RotateCol compile to mesh messages."""

    def grid_pa(self, rows=3, cols=4):
        return ParArray([[i * cols + j for j in range(cols)]
                         for i in range(rows)], shape=(rows, cols))

    def grid_machine(self, rows=3, cols=4):
        from repro.machine.topology import Mesh2D

        return Machine(Mesh2D(rows, cols), spec=PERFECT)

    def assert_grid_agrees(self, expr, rows=3, cols=4):
        from repro.scl import RotateCol, RotateRow  # noqa: F401

        pa = self.grid_pa(rows, cols)
        want = evaluate(expr, pa)
        got, res = run_expression(expr, pa, self.grid_machine(rows, cols))
        assert got == want
        return res

    def test_rotate_row(self):
        from repro.scl import RotateRow

        self.assert_grid_agrees(RotateRow(lambda i: i))

    def test_rotate_col(self):
        from repro.scl import RotateCol

        self.assert_grid_agrees(RotateCol(lambda j: j + 1))

    def test_zero_distance_no_messages(self):
        from repro.scl import RotateRow

        res = self.assert_grid_agrees(RotateRow(lambda i: 0))
        assert res.total_messages == 0

    def test_cannon_style_skew_pipeline(self):
        from repro.scl import RotateCol, RotateRow

        expr = compose_nodes(RotateRow(lambda i: i), RotateCol(lambda j: j),
                             Map(lambda x: x * 2))
        self.assert_grid_agrees(expr, rows=4, cols=4)

    def test_imap_gets_tuple_index(self):
        expr = IMap(lambda ij, x: (ij, x))
        self.assert_grid_agrees(expr)

    def test_fold_over_grid_row_major(self):
        self.assert_grid_agrees(Fold(operator.add))

    def test_fused_grid_rotations_cheaper(self):
        from repro.scl import ROTATE_ROW_FUSION, RotateRow
        from repro.scl.rewrite import RewriteEngine

        chain = compose_nodes(RotateRow(lambda i: 1), RotateRow(lambda i: 1))
        fused, _ = RewriteEngine([ROTATE_ROW_FUSION]).rewrite(chain)
        pa = self.grid_pa(4, 4)
        m = self.grid_machine(4, 4)
        assert evaluate(chain, pa) == evaluate(fused, pa)
        # opt="off": the plan optimizer would merge the row rotations too.
        _o1, r_chain = run_expression(chain, pa, Machine(
            __import__("repro.machine.topology", fromlist=["Mesh2D"]).Mesh2D(4, 4),
            spec=AP1000), opt="off")
        _o2, r_fused = run_expression(fused, pa, Machine(
            __import__("repro.machine.topology", fromlist=["Mesh2D"]).Mesh2D(4, 4),
            spec=AP1000), opt="off")
        assert r_fused.total_messages == r_chain.total_messages // 2
        assert r_fused.makespan < r_chain.makespan

    def test_1d_comm_nodes_rejected_on_grid(self):
        from repro.scl import RotateRow  # noqa: F401

        pa = self.grid_pa()
        for bad in (Rotate(1), Fetch(lambda i: 0), PermSend(lambda k: k),
                    Scan(operator.add), Split(Block(2))):
            with pytest.raises(SkeletonError):
                run_expression(bad, pa, self.grid_machine())

    def test_grid_nodes_rejected_on_1d(self):
        from repro.scl import RotateCol, RotateRow

        for bad in (RotateRow(lambda i: 1), RotateCol(lambda j: 1)):
            with pytest.raises(SkeletonError, match="2-D"):
                run_expression(bad, PA8, machine8())

    def test_apply_brdcast_with_tuple_root(self):
        expr = ApplyBrdcast(lambda x: x * 100, (1, 2))
        self.assert_grid_agrees(expr)


class TestGridCompilationEdgeCases:
    def grid_pa(self, rows=2, cols=4):
        return ParArray([[i * cols + j for j in range(cols)]
                         for i in range(rows)], shape=(rows, cols))

    def grid_machine(self, rows=2, cols=4):
        from repro.machine.topology import Mesh2D

        return Machine(Mesh2D(rows, cols), spec=PERFECT)

    def test_iter_for_on_grid(self):
        from repro.scl import RotateRow

        expr = IterFor(3, lambda i: RotateRow(lambda _r: 1))
        pa = self.grid_pa()
        want = evaluate(expr, pa)
        got, _ = run_expression(expr, pa, self.grid_machine())
        assert got == want

    def test_spmd_on_grid_with_indexed_local(self):
        from repro.scl import RotateRow

        expr = Spmd((Stage(global_=RotateRow(lambda r: r),
                           local=lambda ij, x: x + ij[0] * 10 + ij[1],
                           indexed=True),))
        pa = self.grid_pa()
        want = evaluate(expr, pa)
        got, _ = run_expression(expr, pa, self.grid_machine())
        assert got == want

    def test_result_shape_preserved(self):
        got, _ = run_expression(Map(lambda x: x), self.grid_pa(),
                                self.grid_machine())
        assert got.shape == (2, 4)

    def test_fold_on_grid_returns_scalar(self):
        got, _ = run_expression(Fold(operator.add), self.grid_pa(),
                                self.grid_machine())
        assert got == sum(range(8))

    def test_3d_input_rejected(self):
        with pytest.raises(SkeletonError):
            CompiledProgram(Id(), self.grid_machine()).run("nonsense")
