"""Integration: the full tool-chain, layer by layer.

The complete SCL story is text → expression → transformation → compiled
message-passing execution, with the pure interpreter as the semantics
oracle at every step.  These tests drive whole programs through all of it.
"""

from __future__ import annotations

import operator

import numpy as np
from repro.core import ParArray
from repro.lang import parse_scl
from repro.machine import AP1000, Hypercube, Machine, PERFECT
from repro.machine.metrics import comm_fraction, load_imbalance
from repro.scl import (
    base_fragment,
    default_engine,
    estimate_cost,
    evaluate,
    optimize,
    pretty,
    run_expression,
)


class TestTextToMachine:
    """Parse textual SCL, rewrite it, compile it, compare all the way."""

    def _env(self):
        return {
            "inc": lambda x: x + 1,
            "dbl": lambda x: x * 2,
            "add": operator.add,
            "neighbour": lambda i: (i + 1) % 8,
        }

    def test_parsed_rewritten_compiled_agree(self):
        env = self._env()
        src = "map inc . map dbl . rotate 2 . rotate -1 . fetch neighbour"
        prog = parse_scl(src, env)
        optimised, steps = default_engine().rewrite(prog)
        assert steps, "expected fusions to fire"

        pa = ParArray([5, 2, 8, 1, 9, 3, 7, 4])
        reference = evaluate(prog, pa)
        assert evaluate(optimised, pa) == reference

        machine = Machine(Hypercube(3), spec=AP1000)
        # opt="off": this test isolates the *source-level* rewriter, so the
        # plan optimizer (which would fold the redundant rotates itself and
        # erase the difference) stays out of the comparison.
        got_orig, res_orig = run_expression(prog, pa, machine, opt="off")
        got_opt, res_opt = run_expression(optimised, pa, machine, opt="off")
        assert got_orig == reference and got_opt == reference
        # the optimised program must communicate strictly less
        assert res_opt.total_messages < res_orig.total_messages
        assert res_opt.makespan < res_orig.makespan
        # ...and the plan optimizer closes the gap on its own: the raw
        # program compiled with passes on does at least as well as the
        # source rewriter (§4 at the plan level — here strictly better,
        # since it also composes the remaining rotate with the fetch).
        got_planopt, res_planopt = run_expression(prog, pa, machine)
        assert got_planopt == reference
        assert res_planopt.total_messages <= res_opt.total_messages

    def test_cost_model_ranking_matches_simulation(self):
        """estimate_cost's ranking of original vs optimised must agree with
        the simulator's measured makespans."""
        env = self._env()
        prog = parse_scl("map inc . map dbl . rotate 1 . rotate 1", env)
        optimised, _ = default_engine().rewrite(prog)
        pa = ParArray(list(range(8)))
        machine = Machine(Hypercube(3), spec=AP1000)
        _o1, r1 = run_expression(prog, pa, machine)
        _o2, r2 = run_expression(optimised, pa, machine)
        c1 = estimate_cost(prog, n=8, spec=AP1000)
        c2 = estimate_cost(optimised, n=8, spec=AP1000)
        assert (c2.seconds < c1.seconds) == (r2.makespan < r1.makespan)

    def test_nested_text_program_on_machine(self):
        env = self._env()
        src = "combine . map (rotate 1 . map inc) . split block(2)"
        prog = parse_scl(src, env)
        pa = ParArray([10, 20, 30, 40, 50, 60, 70, 80])
        want = evaluate(prog, pa)
        got, _res = run_expression(prog, pa, Machine(Hypercube(3), spec=PERFECT))
        assert got == want

    def test_reduction_program_end_to_end(self):
        env = self._env()
        prog = parse_scl("fold add . map dbl", env)
        pa = ParArray(list(range(8)))
        want = evaluate(prog, pa)
        got, _res = run_expression(prog, pa, Machine(Hypercube(3), spec=AP1000))
        assert got == want == 2 * sum(range(8))


class TestCostAnnotatedPipeline:
    def test_fragment_costs_shape_the_timing(self):
        @base_fragment(ops=500_000)
        def heavy(x):
            return x + 1

        @base_fragment(ops=5)
        def light(x):
            return x + 1

        from repro.scl import Map

        pa = ParArray(list(range(8)))
        machine = Machine(Hypercube(3), spec=AP1000)
        _o1, heavy_res = run_expression(Map(heavy), pa, machine)
        _o2, light_res = run_expression(Map(light), pa, machine)
        assert heavy_res.makespan > light_res.makespan * 100
        # heavy maps are compute-bound, light ones are not
        assert comm_fraction(heavy_res) < 0.01

    def test_imbalanced_fragments_show_in_metrics(self):
        @base_fragment(ops=lambda x: 1_000_000 if x == 0 else 10)
        def skewed(x):
            return x

        from repro.scl import Map

        pa = ParArray(list(range(8)))
        _o, res = run_expression(Map(skewed), pa,
                                 Machine(Hypercube(3), spec=PERFECT))
        assert load_imbalance(res) > 5.0


class TestOptimizerEndToEnd:
    def test_optimize_report_round_trip(self):
        env = {"f": lambda x: x + 1, "g": lambda x: x * 3}
        prog = parse_scl("map f . map g . rotate 2 . rotate -2", env)
        rep = optimize(prog, n=32, spec=AP1000)
        assert rep.accepted
        assert "map-fusion" in str(rep)
        pa = ParArray(list(range(32)))
        assert evaluate(rep.original, pa) == evaluate(rep.optimized, pa)

    def test_pretty_of_every_layer(self):
        env = {"f": lambda x: x}
        prog = parse_scl("SPMD [(rotate 1, f)] . split block(2) ", env)
        text = pretty(prog)
        assert "SPMD" in text and "split" in text


class TestSortPipelineAllRenderings:
    """One workload through every hyperquicksort rendering in the repo."""

    def test_five_way_agreement(self, rng):
        from repro.apps.sort import (
            hyperquicksort,
            hyperquicksort_compiled,
            hyperquicksort_flat,
            hyperquicksort_machine,
            seq_quicksort,
        )

        vals = rng.integers(0, 10**6, size=512).astype(np.int64)
        expected = np.sort(vals)
        assert np.array_equal(seq_quicksort(vals), expected)
        assert np.array_equal(hyperquicksort(vals, 3), expected)
        assert np.array_equal(hyperquicksort_flat(vals, 3), expected)
        m, _ = hyperquicksort_machine(vals, 3)
        assert np.array_equal(m, expected)
        c, _ = hyperquicksort_compiled(vals, 3)
        assert np.array_equal(c, expected)
