"""Integration tests: the paper's §3 programs written exactly as composed
skeleton pipelines, exercised end-to-end across core + scl + apps layers."""

from __future__ import annotations

import operator

import numpy as np
import pytest

from repro.core import (
    Block,
    ColBlock,
    ParArray,
    align,
    apply_brdcast,
    fold,
    gather,
    imap,
    iter_for,
    parmap,
    partition,
    scan,
    spmd,
)
from repro.scl import (
    Fold,
    Map,
    Rotate,
    Scan,
    compose_nodes,
    default_engine,
    evaluate,
    optimize,
)


class TestPaperGaussStructure:
    """The §3 Gauss program as literally composed skeletons."""

    def test_gauss_via_raw_skeletons(self, rng):
        n, p = 8, 3
        A = rng.standard_normal((n, n)) + n * np.eye(n)
        b = rng.standard_normal(n)
        aug = np.hstack([A, b.reshape(-1, 1)])
        pattern = ColBlock(p)
        da = partition(pattern, aug)

        def elim_pivot(i, x):
            (owner,), (_r, lcol) = pattern.index_map((0, i), aug.shape)

            def partial_pivot(block):
                col = np.array(np.asarray(block)[:, lcol])
                r = i + int(np.argmax(np.abs(col[i:])))
                col[[i, r]] = col[[r, i]]
                return r, col

            def update(pv, block):
                r, c = pv
                blk = np.array(np.asarray(block))
                blk[[i, r], :] = blk[[r, i], :]
                blk[i, :] /= c[i]
                m = c.copy()
                m[i] = 0.0
                return blk - np.outer(m, blk[i, :])

            return parmap(lambda pv_blk: update(pv_blk[0], pv_blk[1]),
                          apply_brdcast(partial_pivot, owner, x))

        result = iter_for(n, elim_pivot, da)
        solved = np.asarray(gather(ParArray(result.to_list(), dist=pattern)))
        assert np.allclose(solved[:, -1], np.linalg.solve(A, b))


class TestSpmdPipelines:
    """SPMD composition as the paper uses it for multi-phase programs."""

    def test_two_phase_pipeline(self):
        # phase 1: local square, then rotate; phase 2: add index
        from repro.core import rotate

        prog = spmd([
            (lambda c: rotate(1, c), lambda _i, x: x * x),
            (None, lambda i, x: x + i),
        ])
        out = prog(ParArray([1, 2, 3]))
        assert out.to_list() == [4, 10, 3]

    def test_spmd_pipeline_with_reduction_finish(self):
        conf = ParArray(list(range(8)))
        staged = spmd([(None, lambda _i, x: x + 1)])(conf)
        assert fold(operator.add, staged) == 36


class TestExpressionPipelineEndToEnd:
    """Write a program as an scl expression, optimise it, run both forms."""

    def test_optimised_pipeline_identical_results(self, rng):
        xs = rng.integers(-100, 100, size=32).tolist()
        prog = compose_nodes(
            Fold(operator.add),
            Map(lambda x: x * x),
            Map(lambda x: x + 1),
            Rotate(3),
            Rotate(-3),
        )
        # greedy oracle: prices the raw lowering, where the folded
        # rotations and fused maps show up as fewer barriers (the search
        # strategy's pipeline cost recovers both via plan.opt, so there
        # the before/after barrier counts tie)
        rep = optimize(prog, n=32, strategy="greedy")
        pa = ParArray(xs)
        assert evaluate(prog, pa) == evaluate(rep.optimized, pa)
        assert rep.cost_after.barriers < rep.cost_before.barriers

    def test_scan_pipeline(self, rng):
        xs = rng.integers(0, 50, size=16).tolist()
        prog = compose_nodes(Scan(operator.add), Map(lambda x: x * 2))
        out = evaluate(prog, ParArray(xs))
        expected = np.cumsum([x * 2 for x in xs]).tolist()
        assert out.to_list() == expected

    def test_rewritten_program_runs_on_executor(self, rng):
        xs = rng.integers(0, 100, size=64).tolist()
        prog = compose_nodes(Map(lambda x: x + 1), Map(lambda x: x * 3))
        rewritten, _ = default_engine().rewrite(prog)
        a = evaluate(prog, ParArray(xs), executor="threads")
        b = evaluate(rewritten, ParArray(xs), executor="threads")
        assert a == b


class TestDataParallelReductions:
    def test_distributed_dot_product(self, rng):
        """map (*) over aligned partitions, then fold (+): the canonical
        two-array configuration workout."""
        x = rng.standard_normal(100)
        y = rng.standard_normal(100)
        conf = align(partition(Block(8), x), partition(Block(8), y))
        partials = parmap(lambda xy: float(np.dot(xy[0], xy[1])), conf)
        assert fold(operator.add, partials) == pytest.approx(float(np.dot(x, y)))

    def test_distributed_prefix_sums(self, rng):
        """Block-local scans + scan of block totals == global scan."""
        xs = rng.integers(0, 10, size=37).tolist()
        da = partition(Block(5), xs)
        local = parmap(lambda part: np.cumsum(list(part)).tolist(), da)
        totals = parmap(lambda c: c[-1] if c else 0, local)
        offsets = scan(operator.add, totals)
        shifted = imap(
            lambda i, c: [v + (offsets[i - 1] if i > 0 else 0) for v in c],
            local)
        out = [v for part in shifted for v in part]
        assert out == np.cumsum(xs).tolist()
