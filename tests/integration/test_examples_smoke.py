"""Every example script must run clean (small workloads).

The examples are the library's public face; this module executes each one
in a subprocess so API drift anywhere in the package breaks CI, not a
user's first five minutes.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent.parent / "examples"

#: script -> small-workload argv (keep the suite fast)
CASES = {
    "quickstart.py": [],
    "hyperquicksort.py": ["4096"],
    "fault_tolerant_sort.py": ["4096"],
    "gauss_jordan.py": ["24"],
    "cannon_matmul.py": ["8", "2"],
    "jacobi.py": ["16", "2"],
    "transformations.py": [],
    "scl_language.py": [],
    "nbody_ring.py": ["96"],
    "pipeline_stream.py": [],
    "wordcount_mapreduce.py": [],
}


def test_every_example_has_a_case():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(CASES), (
        f"examples/ and the smoke matrix diverged: "
        f"missing={on_disk - set(CASES)}, stale={set(CASES) - on_disk}")


@pytest.mark.parametrize("script,args", sorted(CASES.items()))
def test_example_runs_clean(script, args):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}")
    assert proc.stdout.strip(), f"{script} produced no output"
