"""Integration: the simulated machine must agree with the pure semantics.

The machine layer (messages, collectives) and the ParArray layer (skeleton
semantics) implement the same operations; these tests pin them together —
the property that makes the Table 1 experiment a faithful execution of the
§3 program rather than a separate re-implementation.
"""

from __future__ import annotations

import operator

import numpy as np
import pytest

from repro.apps.sort import hyperquicksort, hyperquicksort_flat, hyperquicksort_machine
from repro.core import Block, ParArray, fold, gather, parmap, partition, scan
from repro.machine import AP1000, Comm, Machine, PERFECT, collectives as C


class TestReductionAgreement:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_machine_reduce_equals_fold(self, rng, n):
        values = rng.integers(-100, 100, size=n).tolist()

        def prog(env):
            comm = Comm.world(env)
            total = yield from C.reduce(comm, values[comm.rank], operator.add)
            return total

        machine_result = Machine(n, spec=PERFECT).run(prog).values[0]
        skeleton_result = fold(operator.add, ParArray(values))
        assert machine_result == skeleton_result

    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_machine_scan_equals_scan(self, rng, n):
        values = rng.integers(-100, 100, size=n).tolist()

        def prog(env):
            comm = Comm.world(env)
            s = yield from C.scan(comm, values[comm.rank], operator.add)
            return s

        machine_result = Machine(n, spec=PERFECT).run(prog).values
        skeleton_result = scan(operator.add, ParArray(values)).to_list()
        assert machine_result == skeleton_result

    def test_noncommutative_agreement(self):
        values = ["a", "b", "c", "d", "e"]

        def prog(env):
            comm = Comm.world(env)
            s = yield from C.reduce(comm, values[comm.rank], operator.add)
            return s

        machine_result = Machine(5, spec=PERFECT).run(prog).values[0]
        assert machine_result == fold(operator.add, ParArray(values))


class TestGatherAgreement:
    @pytest.mark.parametrize("n", [1, 3, 8])
    def test_machine_gather_equals_config_gather(self, rng, n):
        xs = rng.integers(0, 100, size=25).tolist()
        da = partition(Block(n), xs)

        def prog(env):
            comm = Comm.world(env)
            parts = yield from C.gather(comm, list(da[comm.rank]))
            if comm.rank == 0:
                flat = []
                for p in parts:
                    flat.extend(p)
                return flat
            return None

        machine_result = Machine(n, spec=PERFECT).run(prog).values[0]
        assert machine_result == gather(da)


class TestSortAgreement:
    """All three hyperquicksort renderings must produce identical output."""

    @pytest.mark.parametrize("d", [0, 1, 2, 3])
    def test_three_way_agreement(self, rng, d):
        vals = rng.integers(0, 10**6, size=777).astype(np.int64)
        recursive = hyperquicksort(vals, d)
        flat = hyperquicksort_flat(vals, d)
        machine, _res = hyperquicksort_machine(vals, d, spec=AP1000)
        assert np.array_equal(recursive, flat)
        assert np.array_equal(flat, machine)

    def test_per_processor_contents_agree(self, rng):
        """The machine run must leave the same block on each processor as
        the ParArray semantics (before the final gather)."""
        vals = rng.integers(0, 1000, size=256).astype(np.int64)
        d = 3
        _out, res = hyperquicksort_machine(vals, d, include_distribution=False)
        # reconstruct per-processor contents from the semantics-level run
        from repro.apps.sort import midvalue, seq_quicksort, split_by_pivot, merge_sorted
        from repro.core import align, fetch, imap, iter_for

        p = 1 << d
        da = parmap(seq_quicksort, partition(Block(p), vals))

        def step(i, x):
            dim = d - i
            sub = 1 << dim
            half = sub >> 1
            pivots = fetch(lambda j: (j // sub) * sub, parmap(midvalue, x))
            lh = parmap(lambda pv: split_by_pivot(pv[0], pv[1]), align(pivots, x))
            kept = imap(lambda j, t: t[0] if j & half == 0 else t[1], lh)
            sent = imap(lambda j, t: t[1] if j & half == 0 else t[0], lh)
            recv = fetch(lambda j: j ^ half, sent)
            return parmap(lambda kr: merge_sorted(kr[0], kr[1]), align(kept, recv))

        expected = iter_for(d, step, da)
        # machine returned per-processor arrays (no final gather)
        flat_machine = np.concatenate([np.asarray(v) for v in res.values])
        flat_semantics = np.concatenate([np.asarray(x) for x in expected])
        assert np.array_equal(flat_machine, flat_semantics)


class TestTimingSanity:
    def test_perfect_machine_speedup_is_superlinear_free(self, rng):
        """On a zero-latency machine, hyperquicksort time is dominated by the
        max local partition; with balanced pivots speedup approaches and can
        exceed p only through the reduced log factor."""
        vals = rng.integers(0, 2**31, size=4096).astype(np.int32)
        from repro.apps.sort import sequential_sort_machine

        _s, seq = sequential_sort_machine(vals, spec=PERFECT)
        _p, par = hyperquicksort_machine(vals, 3, spec=PERFECT)
        assert par.makespan < seq.makespan

    def test_ap1000_slower_than_modern(self, rng):
        from repro.machine import MODERN_CLUSTER

        vals = rng.integers(0, 2**31, size=2048).astype(np.int32)
        _a, old = hyperquicksort_machine(vals, 3, spec=AP1000)
        _b, new = hyperquicksort_machine(vals, 3, spec=MODERN_CLUSTER)
        assert old.makespan > new.makespan * 10
