"""Tests for repro.apps.sort — all four hyperquicksort renderings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.sort import (
    SortCostParams,
    hyperquicksort,
    hyperquicksort_flat,
    hyperquicksort_machine,
    hyperquicksort_trace,
    merge_sorted,
    midvalue,
    sample_sort,
    seq_quicksort,
    sequential_sort_machine,
    split_by_pivot,
)
from repro.machine import MODERN_CLUSTER


class TestBaseFragments:
    def test_seq_quicksort(self):
        assert np.array_equal(seq_quicksort(np.array([3, 1, 2])), [1, 2, 3])

    def test_midvalue_of_sorted(self):
        assert midvalue(np.array([1, 5, 9])) == 5
        assert midvalue(np.array([1, 5, 9, 12])) == 9

    def test_midvalue_empty_is_zero(self):
        assert midvalue(np.array([])) == 0.0

    def test_split_by_pivot_inclusive_left(self):
        low, high = split_by_pivot(5, np.array([1, 5, 5, 7]))
        assert list(low) == [1, 5, 5] and list(high) == [7]

    def test_split_by_pivot_all_low(self):
        low, high = split_by_pivot(99, np.array([1, 2]))
        assert list(low) == [1, 2] and high.size == 0

    def test_merge_sorted(self):
        out = merge_sorted(np.array([1, 4]), np.array([2, 3]))
        assert list(out) == [1, 2, 3, 4]

    def test_merge_with_empty(self):
        assert list(merge_sorted(np.array([]), np.array([5]))) == [5]
        assert list(merge_sorted(np.array([5]), np.array([]))) == [5]

    @given(st.lists(st.integers(-100, 100)), st.lists(st.integers(-100, 100)))
    def test_merge_property(self, a, b):
        out = merge_sorted(np.sort(np.array(a, dtype=int)),
                           np.sort(np.array(b, dtype=int)))
        assert list(out) == sorted(a + b)


class TestParArrayLevelSorts:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4])
    def test_recursive_sorts_correctly(self, rng, d):
        vals = rng.integers(0, 1000, size=512)
        assert np.array_equal(hyperquicksort(vals, d), np.sort(vals))

    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4])
    def test_flat_sorts_correctly(self, rng, d):
        vals = rng.integers(0, 1000, size=512)
        assert np.array_equal(hyperquicksort_flat(vals, d), np.sort(vals))

    def test_recursive_and_flat_agree(self, rng):
        """The §5 flattening transformation must not change results."""
        vals = rng.integers(0, 10**6, size=256)
        assert np.array_equal(hyperquicksort(vals, 3),
                              hyperquicksort_flat(vals, 3))

    def test_duplicates(self):
        vals = np.array([5] * 16 + [3] * 16)
        assert np.array_equal(hyperquicksort(vals, 2), np.sort(vals))

    def test_already_sorted(self):
        vals = np.arange(64)
        assert np.array_equal(hyperquicksort_flat(vals, 3), vals)

    def test_reverse_sorted(self):
        vals = np.arange(64)[::-1]
        assert np.array_equal(hyperquicksort_flat(vals, 3), np.arange(64))

    def test_fewer_values_than_processors(self):
        vals = np.array([3, 1])
        assert np.array_equal(hyperquicksort(vals, 3), [1, 3])

    def test_with_thread_executor(self, rng):
        vals = rng.integers(0, 100, size=128)
        out = hyperquicksort(vals, 2, executor="threads")
        assert np.array_equal(out, np.sort(vals))

    def test_floats(self, rng):
        vals = rng.standard_normal(200)
        assert np.allclose(hyperquicksort_flat(vals, 2), np.sort(vals))

    @settings(max_examples=25)
    @given(st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=300),
           st.integers(0, 3))
    def test_sorts_anything_property(self, xs, d):
        assert np.array_equal(hyperquicksort_flat(np.array(xs), d),
                              np.sort(np.array(xs)))


class TestMachineLevelSort:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4, 5])
    def test_sorts_correctly(self, rng, d):
        vals = rng.integers(0, 2**31, size=2048).astype(np.int32)
        out, _res = hyperquicksort_machine(vals, d)
        assert np.array_equal(out, np.sort(vals))

    def test_runtime_decreases_with_processors(self, rng):
        """The Table 1 property: more processors, less virtual time."""
        vals = rng.integers(0, 2**31, size=8192).astype(np.int32)
        times = []
        for d in range(0, 5):
            _out, res = hyperquicksort_machine(vals, d)
            times.append(res.makespan)
        assert all(t1 > t2 for t1, t2 in zip(times, times[1:]))

    def test_speedup_is_sublinear(self, rng):
        """The Figure 3 property: below the linear diagonal."""
        vals = rng.integers(0, 2**31, size=16384).astype(np.int32)
        _s, seq = sequential_sort_machine(vals)
        _p, par = hyperquicksort_machine(vals, 4)
        speedup = seq.makespan / par.makespan
        assert 1.0 < speedup < 16.0

    def test_modern_cluster_also_sorts(self, rng):
        vals = rng.integers(0, 1000, size=1024).astype(np.int32)
        out, res = hyperquicksort_machine(vals, 3, spec=MODERN_CLUSTER)
        assert np.array_equal(out, np.sort(vals))
        assert res.makespan < 1.0  # modern machines are fast

    def test_without_distribution_phase(self, rng):
        vals = rng.integers(0, 1000, size=1024).astype(np.int32)
        out, res_no = hyperquicksort_machine(vals, 3, include_distribution=False)
        assert np.array_equal(out, np.sort(vals))
        _out2, res_with = hyperquicksort_machine(vals, 3)
        assert res_no.makespan < res_with.makespan

    def test_custom_cost_params_scale_runtime(self, rng):
        vals = rng.integers(0, 1000, size=4096).astype(np.int32)
        cheap = SortCostParams(sort_ops_per_cmp=1.0)
        dear = SortCostParams(sort_ops_per_cmp=100.0)
        _a, fast = hyperquicksort_machine(vals, 2, params=cheap)
        _b, slow = hyperquicksort_machine(vals, 2, params=dear)
        assert slow.makespan > fast.makespan

    def test_trace_recording(self, rng):
        vals = rng.integers(0, 100, size=256).astype(np.int32)
        _out, res = hyperquicksort_machine(vals, 2, record_trace=True)
        assert res.trace is not None
        assert res.trace.message_count() == res.total_messages

    def test_sequential_machine_has_no_messages(self, rng):
        vals = rng.integers(0, 100, size=128)
        _out, res = sequential_sort_machine(vals)
        assert res.total_messages == 0

    def test_deterministic_makespan(self, rng):
        vals = rng.integers(0, 1000, size=1024).astype(np.int32)
        _o1, r1 = hyperquicksort_machine(vals, 3)
        _o2, r2 = hyperquicksort_machine(vals, 3)
        assert r1.makespan == r2.makespan


class TestTrace:
    def test_figure2_stage_structure(self, rng):
        """The (a)-(h) progression of Figure 2 on the paper's exact setup:
        32 values, a 2-dimensional hypercube."""
        vals = rng.integers(0, 100, size=32)
        snaps = hyperquicksort_trace(vals, 2)
        labels = [s.label for s in snaps]
        assert labels == [
            "initial-on-p0", "distributed-sorted",
            "iter0-exchanged", "iter0-merged",
            "iter1-exchanged", "iter1-merged",
            "gathered-on-p0",
        ]

    def test_every_stage_preserves_the_multiset(self, rng):
        vals = rng.integers(0, 100, size=32)
        expected = sorted(vals.tolist())
        for snap in hyperquicksort_trace(vals, 2):
            assert sorted(x for part in snap.contents for x in part) == expected

    def test_initial_and_final_on_p0(self, rng):
        vals = rng.integers(0, 100, size=32)
        snaps = hyperquicksort_trace(vals, 2)
        assert snaps[0].sizes()[1:] == (0, 0, 0)
        assert snaps[-1].sizes()[1:] == (0, 0, 0)
        assert list(snaps[-1].contents[0]) == sorted(vals.tolist())

    def test_after_first_iteration_halves_are_separated(self, rng):
        """After iteration 0, every value in the lower half-cube must be
        <= every value in the upper half-cube (Fig. 2 (e))."""
        vals = rng.integers(0, 1000, size=64)
        snaps = hyperquicksort_trace(vals, 2)
        merged0 = next(s for s in snaps if s.label == "iter0-merged")
        low = [x for part in merged0.contents[:2] for x in part]
        high = [x for part in merged0.contents[2:] for x in part]
        assert not low or not high or max(low) <= min(high)

    def test_final_stage_locally_sorted_and_globally_ordered(self, rng):
        vals = rng.integers(0, 1000, size=64)
        snaps = hyperquicksort_trace(vals, 2)
        last_merge = next(s for s in snaps if s.label == "iter1-merged")
        flat = []
        for part in last_merge.contents:
            assert list(part) == sorted(part)
            flat.extend(part)
        assert flat == sorted(flat)


class TestSampleSort:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 7, 8])
    def test_sorts_correctly(self, rng, p):
        vals = rng.integers(0, 10**6, size=1000)
        assert np.array_equal(sample_sort(vals, p), np.sort(vals))

    def test_empty_input(self):
        assert sample_sort(np.array([]), 4).size == 0

    def test_small_input_many_processors(self, rng):
        vals = rng.integers(0, 10, size=5)
        assert np.array_equal(sample_sort(vals, 8), np.sort(vals))

    def test_all_equal_values(self):
        vals = np.full(100, 7)
        assert np.array_equal(sample_sort(vals, 4), vals)

    def test_invalid_p(self):
        from repro.errors import SkeletonError

        with pytest.raises(SkeletonError):
            sample_sort(np.array([1]), 0)

    @settings(max_examples=20)
    @given(st.lists(st.integers(-1000, 1000), min_size=0, max_size=200),
           st.integers(1, 6))
    def test_sorts_anything_property(self, xs, p):
        out = sample_sort(np.array(xs, dtype=int), p)
        assert list(out) == sorted(xs)


class TestSampleSortMachine:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8, 16])
    def test_sorts_correctly(self, rng, p):
        from repro.apps.sort import sample_sort_machine

        vals = rng.integers(0, 2**31, size=4096).astype(np.int32)
        out, _res = sample_sort_machine(vals, p)
        assert np.array_equal(out, np.sort(vals))

    def test_all_equal_values(self):
        from repro.apps.sort import sample_sort_machine

        vals = np.full(256, 7, dtype=np.int32)
        out, _res = sample_sort_machine(vals, 4)
        assert np.array_equal(out, vals)

    def test_alltoall_message_pattern(self, rng):
        from repro.apps.sort import sample_sort_machine

        p = 6
        vals = rng.integers(0, 1000, size=600).astype(np.int32)
        _out, res = sample_sort_machine(vals, p)
        # one all-to-all for buckets (p(p-1)) + allgather of samples
        assert res.total_messages >= p * (p - 1)

    def test_runtime_decreases_with_processors(self, rng):
        from repro.apps.sort import sample_sort_machine

        vals = rng.integers(0, 2**31, size=16384).astype(np.int32)
        times = []
        for p in (1, 4, 16):
            _o, res = sample_sort_machine(vals, p)
            times.append(res.makespan)
        assert times[0] > times[1] > times[2]

    def test_invalid_p(self):
        from repro.apps.sort import sample_sort_machine
        from repro.errors import SkeletonError

        with pytest.raises(SkeletonError):
            sample_sort_machine(np.arange(4), 0)


class TestNestedMachineSort:
    """The §3 nested program on the machine via recursive Comm.split."""

    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4])
    def test_sorts_correctly(self, rng, d):
        from repro.apps.sort import hyperquicksort_machine_nested

        vals = rng.integers(0, 2**31, size=2048).astype(np.int32)
        out, _res = hyperquicksort_machine_nested(vals, d)
        assert np.array_equal(out, np.sort(vals))

    def test_flattening_is_runtime_neutral(self, rng):
        """Flat and nested renderings produce the same message pattern and
        virtual time: §4's flattening is a *compilation* enabler (flat SPMD
        code generation), not a runtime optimisation — both programs do
        exactly the same communication."""
        from repro.apps.sort import (hyperquicksort_machine,
                                     hyperquicksort_machine_nested)

        vals = rng.integers(0, 2**31, size=8192).astype(np.int32)
        _a, nested = hyperquicksort_machine_nested(vals, 4)
        _b, flat = hyperquicksort_machine(vals, 4, include_distribution=False)
        assert nested.total_messages == flat.total_messages
        assert nested.makespan == pytest.approx(flat.makespan, rel=1e-9)

    def test_group_recursion_depth(self, rng):
        """d levels of communicator splitting must occur (smoke via trace:
        message tags encode the recursion dimension)."""
        from repro.apps.sort import hyperquicksort_machine_nested

        vals = rng.integers(0, 1000, size=512).astype(np.int32)
        d = 3
        _out, res = hyperquicksort_machine_nested(vals, d)
        # one partner exchange per processor per level
        exchange_msgs = (1 << d) * d
        assert res.total_messages >= exchange_msgs
