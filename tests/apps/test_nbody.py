"""Tests for repro.apps.nbody — the systolic ring all-pairs computation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.nbody import (
    NBodyCostParams,
    forces_machine,
    forces_parallel,
    forces_seq,
    pairwise_forces,
)
from repro.errors import SkeletonError
from repro.machine import PERFECT


def cluster(rng, n):
    return rng.standard_normal((n, 3)), rng.uniform(0.5, 2.0, size=n)


class TestPairwiseForces:
    def test_two_bodies_attract(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        mass = np.array([1.0, 1.0])
        f = pairwise_forces(pos, pos, mass)
        assert f[0, 0] > 0 and f[1, 0] < 0  # pulled toward each other

    def test_newtons_third_law(self, rng):
        pos, mass = cluster(rng, 2)
        f = pairwise_forces(pos, pos, mass)
        # with equal-mass normalisation F_ij = -F_ji only when masses equal
        pos2 = pos
        m_eq = np.array([1.0, 1.0])
        f = pairwise_forces(pos2, pos2, m_eq)
        assert np.allclose(f[0], -f[1], atol=1e-9)

    def test_self_interaction_softened_to_zero(self):
        pos = np.array([[1.0, 2.0, 3.0]])
        f = pairwise_forces(pos, pos, np.array([5.0]))
        assert np.allclose(f, 0.0)

    def test_symmetric_configuration_cancels(self):
        pos = np.array([[0.0, 0, 0], [1.0, 0, 0], [-1.0, 0, 0]])
        mass = np.ones(3)
        f = pairwise_forces(pos, pos, mass)
        assert np.allclose(f[0], 0.0, atol=1e-9)

    def test_total_momentum_conserved(self, rng):
        pos, mass = cluster(rng, 20)
        f = forces_seq(pos, mass)
        # sum of m_i * a_i = sum of forces-with-mass-weighting: with our
        # normalisation (acceleration per unit target mass), weight by mass
        total = np.sum(f * mass[:, None], axis=0)
        assert np.allclose(total, 0.0, atol=1e-8)


class TestParallel:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
    def test_matches_sequential(self, rng, p):
        pos, mass = cluster(rng, 48)
        assert np.allclose(forces_parallel(pos, mass, p),
                           forces_seq(pos, mass), atol=1e-10)

    def test_uneven_block_sizes(self, rng):
        pos, mass = cluster(rng, 23)
        assert np.allclose(forces_parallel(pos, mass, 5),
                           forces_seq(pos, mass), atol=1e-10)

    def test_single_body_per_processor(self, rng):
        pos, mass = cluster(rng, 6)
        assert np.allclose(forces_parallel(pos, mass, 6),
                           forces_seq(pos, mass), atol=1e-10)

    def test_bad_shapes_rejected(self, rng):
        with pytest.raises(SkeletonError, match=r"\(n, 3\)"):
            forces_parallel(np.zeros((4, 2)), np.ones(4), 2)
        with pytest.raises(SkeletonError, match="masses"):
            forces_parallel(np.zeros((4, 3)), np.ones(3), 2)

    def test_too_many_processors_rejected(self, rng):
        pos, mass = cluster(rng, 3)
        with pytest.raises(SkeletonError):
            forces_parallel(pos, mass, 5)

    @settings(max_examples=15)
    @given(st.integers(1, 6), st.integers(0, 10**6))
    def test_any_processor_count_property(self, p, seed):
        r = np.random.default_rng(seed)
        n = p * int(r.integers(1, 5))
        pos, mass = cluster(r, n)
        assert np.allclose(forces_parallel(pos, mass, p),
                           forces_seq(pos, mass), atol=1e-9)


class TestMachine:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_matches_sequential(self, rng, p):
        pos, mass = cluster(rng, 40)
        out, _res = forces_machine(pos, mass, p)
        assert np.allclose(out, forces_seq(pos, mass), atol=1e-10)

    def test_ring_message_pattern(self, rng):
        """p procs x (p - 1) rotation rounds, one message each."""
        p = 4
        pos, mass = cluster(rng, 16)
        _out, res = forces_machine(pos, mass, p, spec=PERFECT)
        assert res.total_messages == p * (p - 1)

    def test_runtime_decreases_with_processors(self, rng):
        pos, mass = cluster(rng, 512)
        times = []
        for p in (1, 4, 16):
            _o, res = forces_machine(pos, mass, p)
            times.append(res.makespan)
        assert times[0] > times[1] > times[2]

    def test_compute_is_perfectly_balanced_when_divisible(self, rng):
        from repro.machine.metrics import load_imbalance

        pos, mass = cluster(rng, 64)
        _o, res = forces_machine(pos, mass, 8, spec=PERFECT)
        assert load_imbalance(res) == pytest.approx(1.0, abs=1e-6)

    def test_cost_params_scale(self, rng):
        pos, mass = cluster(rng, 128)
        _a, cheap = forces_machine(pos, mass, 4,
                                   params=NBodyCostParams(ops_per_interaction=1))
        _b, dear = forces_machine(pos, mass, 4,
                                  params=NBodyCostParams(ops_per_interaction=100))
        assert dear.makespan > cheap.makespan
