"""Tests for repro.apps.stencil — Jacobi iteration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.stencil import JacobiResult, jacobi_seq, jacobi_solve
from repro.errors import SkeletonError


def hot_top_grid(n=16):
    g = np.zeros((n, n))
    g[0, :] = 100.0
    return g


class TestSequential:
    def test_converges(self):
        res = jacobi_seq(hot_top_grid(), tol=1e-3)
        assert res.residual < 1e-3
        assert res.iterations > 1

    def test_boundary_unchanged(self):
        res = jacobi_seq(hot_top_grid(), tol=1e-3)
        assert np.allclose(res.grid[0, :], 100.0)
        assert np.allclose(res.grid[-1, :], 0.0)

    def test_interior_between_boundaries(self):
        res = jacobi_seq(hot_top_grid(), tol=1e-4)
        interior = res.grid[1:-1, 1:-1]
        assert np.all(interior >= 0.0) and np.all(interior <= 100.0)

    def test_monotone_decay_from_hot_edge(self):
        res = jacobi_seq(hot_top_grid(), tol=1e-5)
        mid = res.grid[:, 8]
        assert all(a >= b - 1e-9 for a, b in zip(mid, mid[1:]))

    def test_max_iter_cap(self):
        res = jacobi_seq(hot_top_grid(32), tol=0.0, max_iter=5)
        assert res.iterations == 5

    def test_uniform_grid_converges_immediately(self):
        res = jacobi_seq(np.full((8, 8), 3.0), tol=1e-6)
        assert res.iterations == 1
        assert np.allclose(res.grid, 3.0)


class TestParallel:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_matches_sequential_exactly(self, p):
        ref = jacobi_seq(hot_top_grid(), tol=1e-4)
        par = jacobi_solve(hot_top_grid(), p, tol=1e-4)
        assert par.iterations == ref.iterations
        assert np.allclose(par.grid, ref.grid, atol=1e-12)
        assert par.residual == pytest.approx(ref.residual)

    def test_single_row_blocks(self):
        """p equal to the row count: every block is one row (halo-only)."""
        ref = jacobi_seq(hot_top_grid(8), tol=1e-3)
        par = jacobi_solve(hot_top_grid(8), 8, tol=1e-3)
        assert np.allclose(par.grid, ref.grid, atol=1e-12)

    def test_empty_blocks_rejected(self):
        with pytest.raises(SkeletonError, match="empty"):
            jacobi_solve(hot_top_grid(4), 9)

    def test_small_grid_rejected(self):
        with pytest.raises(SkeletonError):
            jacobi_solve(np.zeros((2, 5)), 1)

    def test_1d_rejected(self):
        with pytest.raises(SkeletonError):
            jacobi_solve(np.zeros(10), 1)

    def test_max_iter_respected(self):
        res = jacobi_solve(hot_top_grid(), 2, tol=0.0, max_iter=3)
        assert res.iterations == 3

    def test_with_executor(self):
        ref = jacobi_seq(hot_top_grid(8), tol=1e-3)
        par = jacobi_solve(hot_top_grid(8), 2, tol=1e-3, executor="threads")
        assert np.allclose(par.grid, ref.grid, atol=1e-12)

    def test_result_type(self):
        res = jacobi_solve(hot_top_grid(8), 2, tol=1e-2)
        assert isinstance(res, JacobiResult)
        assert res.grid.shape == (8, 8)

    def test_nonuniform_block_sizes(self):
        """Rows not divisible by p: blocks differ in size, halos must align."""
        ref = jacobi_seq(hot_top_grid(10), tol=1e-3)
        par = jacobi_solve(hot_top_grid(10), 3, tol=1e-3)
        assert np.allclose(par.grid, ref.grid, atol=1e-12)


class TestMachineJacobi:
    @pytest.mark.parametrize("p", [1, 2, 4, 5])
    def test_matches_sequential_exactly(self, p):
        from repro.apps.stencil import jacobi_machine

        ref = jacobi_seq(hot_top_grid(), tol=1e-4)
        out, _res = jacobi_machine(hot_top_grid(), p, tol=1e-4)
        assert out.iterations == ref.iterations
        assert np.allclose(out.grid, ref.grid, atol=1e-12)

    def test_larger_grid_scales(self):
        from repro.apps.stencil import jacobi_machine

        g = hot_top_grid(64)
        _o1, r1 = jacobi_machine(g, 1, tol=1e-2)
        _o2, r4 = jacobi_machine(g, 4, tol=1e-2)
        assert r4.makespan < r1.makespan

    def test_tiny_grid_stops_scaling(self):
        """Per-sweep allreduce latency dominates a small problem: adding
        processors beyond a few must stop helping — the surface-to-volume
        effect."""
        from repro.apps.stencil import jacobi_machine

        g = hot_top_grid(16)
        _o1, r4 = jacobi_machine(g, 4, tol=1e-2)
        _o2, r8 = jacobi_machine(g, 8, tol=1e-2)
        assert r8.makespan > r4.makespan * 0.8  # flat or worse

    def test_convergence_agreement_across_procs(self):
        """Every processor must report the same iteration count (the
        allreduced condition is global)."""
        from repro.apps.stencil import jacobi_machine
        from repro.machine import PERFECT

        out, res = jacobi_machine(hot_top_grid(12), 3, tol=1e-3, spec=PERFECT)
        iters = {v[1] for v in res.values}
        assert len(iters) == 1

    def test_empty_blocks_rejected(self):
        from repro.apps.stencil import jacobi_machine

        with pytest.raises(SkeletonError, match="empty"):
            jacobi_machine(hot_top_grid(4), 9)

    def test_max_iter_cap(self):
        from repro.apps.stencil import jacobi_machine

        out, _res = jacobi_machine(hot_top_grid(), 2, tol=0.0, max_iter=4)
        assert out.iterations == 4

    def test_cost_params_scale(self):
        from repro.apps.stencil import JacobiCostParams, jacobi_machine

        g = hot_top_grid(12)
        _o1, cheap = jacobi_machine(g, 2, tol=1e-2,
                                    params=JacobiCostParams(stencil_ops_per_cell=1))
        _o2, dear = jacobi_machine(g, 2, tol=1e-2,
                                   params=JacobiCostParams(stencil_ops_per_cell=100))
        assert dear.makespan > cheap.makespan
