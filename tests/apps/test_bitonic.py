"""Tests for repro.apps.bitonic — the hypercube baseline sort."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.bitonic import (
    bitonic_sort,
    bitonic_sort_machine,
    bitonic_steps,
    compare_split,
)
from repro.apps.sort import hyperquicksort_machine
from repro.errors import SkeletonError
from repro.machine import AP1000, PERFECT


class TestCompareSplit:
    def test_keep_low(self):
        out = compare_split(np.array([1, 4, 9]), np.array([2, 3, 8]), True)
        assert list(out) == [1, 2, 3]

    def test_keep_high(self):
        out = compare_split(np.array([1, 4, 9]), np.array([2, 3, 8]), False)
        assert list(out) == [4, 8, 9]

    def test_halves_partition_the_union(self):
        a = np.array([1, 5, 7])
        b = np.array([2, 5, 9])
        low = compare_split(a, b, True)
        high = compare_split(a, b, False)
        assert sorted(list(low) + list(high)) == sorted(list(a) + list(b))
        assert max(low) <= min(high)

    def test_unequal_blocks_rejected(self):
        with pytest.raises(SkeletonError, match="equal"):
            compare_split(np.array([1]), np.array([1, 2]), True)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=20),
           st.lists(st.integers(-100, 100), min_size=1, max_size=20))
    def test_split_property(self, a, b):
        if len(a) != len(b):
            b = (b * len(a))[: len(a)]
        sa, sb = np.sort(np.array(a)), np.sort(np.array(b))
        low = compare_split(sa, sb, True)
        high = compare_split(sa, sb, False)
        assert list(low) == sorted(a + list(sb))[: len(a)]
        assert list(high) == sorted(a + list(sb))[len(a):]


class TestSchedule:
    def test_step_count_is_triangular(self):
        for d in range(7):
            assert len(bitonic_steps(d)) == d * (d + 1) // 2

    def test_substeps_descend(self):
        for stage, sub in bitonic_steps(5):
            assert 0 <= sub <= stage

    def test_d0_is_empty(self):
        assert bitonic_steps(0) == []


class TestParArrayLevel:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4])
    def test_sorts_correctly(self, rng, d):
        n = (1 << d) * 32
        vals = rng.integers(0, 10**6, size=n)
        assert np.array_equal(bitonic_sort(vals, d), np.sort(vals))

    def test_duplicates(self):
        vals = np.array([7, 7, 3, 3] * 8)
        assert np.array_equal(bitonic_sort(vals, 2), np.sort(vals))

    def test_reverse_sorted(self):
        vals = np.arange(64)[::-1]
        assert np.array_equal(bitonic_sort(vals, 3), np.arange(64))

    def test_indivisible_length_rejected(self, rng):
        with pytest.raises(SkeletonError, match="divisible"):
            bitonic_sort(rng.integers(0, 10, size=10), 2)

    @settings(max_examples=20)
    @given(st.integers(0, 3), st.integers(1, 16), st.integers(0, 10**6))
    def test_sorts_anything_property(self, d, per_proc, seed):
        r = np.random.default_rng(seed)
        vals = r.integers(-1000, 1000, size=(1 << d) * per_proc)
        assert np.array_equal(bitonic_sort(vals, d), np.sort(vals))


class TestMachineLevel:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4, 5])
    def test_sorts_correctly(self, rng, d):
        n = (1 << d) * 64
        vals = rng.integers(0, 2**31, size=n).astype(np.int32)
        out, _res = bitonic_sort_machine(vals, d)
        assert np.array_equal(out, np.sort(vals))

    def test_runtime_decreases_with_processors(self, rng):
        vals = rng.integers(0, 2**31, size=8192).astype(np.int32)
        times = []
        for d in (1, 2, 3, 4):
            _o, res = bitonic_sort_machine(vals, d)
            times.append(res.makespan)
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_message_count_matches_schedule(self, rng):
        d = 3
        vals = rng.integers(0, 100, size=(1 << d) * 8).astype(np.int32)
        _o, res = bitonic_sort_machine(vals, d)
        # every processor sends one block per (stage, substep)
        assert res.total_messages == (1 << d) * len(bitonic_steps(d))

    def test_perfectly_balanced_load(self, rng):
        """Blocks never change size: busy time identical on all procs."""
        from repro.machine.metrics import load_imbalance

        vals = rng.integers(0, 10**6, size=2048).astype(np.int32)
        _o, res = bitonic_sort_machine(vals, 3, spec=PERFECT)
        assert load_imbalance(res) == pytest.approx(1.0, abs=1e-9)


class TestBaselineComparison:
    """The 'who wins' result the baseline exists for."""

    def test_hyperquicksort_beats_bitonic_on_random_input(self, rng):
        vals = rng.integers(0, 2**31, size=32768).astype(np.int32)
        _b, bt = bitonic_sort_machine(vals, 4, spec=AP1000)
        _h, hq = hyperquicksort_machine(vals, 4, spec=AP1000,
                                        include_distribution=False)
        assert hq.makespan < bt.makespan

    def test_gap_grows_with_processors(self, rng):
        vals = rng.integers(0, 2**31, size=32768).astype(np.int32)
        ratios = []
        for d in (2, 4):
            _b, bt = bitonic_sort_machine(vals, d, spec=AP1000)
            _h, hq = hyperquicksort_machine(vals, d, spec=AP1000,
                                            include_distribution=False)
            ratios.append(bt.makespan / hq.makespan)
        assert ratios[1] > ratios[0]

    def test_bitonic_sends_more_data(self, rng):
        vals = rng.integers(0, 2**31, size=16384).astype(np.int32)
        _b, bt = bitonic_sort_machine(vals, 4)
        _h, hq = hyperquicksort_machine(vals, 4, include_distribution=False)
        assert bt.total_bytes > hq.total_bytes
