"""Tests for repro.apps.fft — binary-exchange parallel FFT."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.fft import FftCostParams, bit_reverse, fft_machine, fft_parallel, fft_seq
from repro.errors import SkeletonError
from repro.machine import MODERN_CLUSTER, PERFECT


class TestBitReverse:
    def test_known_values(self):
        assert bit_reverse(0b001, 3) == 0b100
        assert bit_reverse(0b110, 3) == 0b011
        assert bit_reverse(0, 4) == 0

    def test_involution(self):
        for bits in range(1, 8):
            for i in range(1 << bits):
                assert bit_reverse(bit_reverse(i, bits), bits) == i

    @given(st.integers(1, 12), st.data())
    def test_is_permutation_property(self, bits, data):
        n = 1 << bits
        outputs = {bit_reverse(i, bits) for i in range(n)}
        assert outputs == set(range(n))


class TestSequential:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 512])
    def test_matches_numpy(self, rng, n):
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(fft_seq(x), np.fft.fft(x))

    def test_real_input(self, rng):
        x = rng.standard_normal(32)
        assert np.allclose(fft_seq(x), np.fft.fft(x))

    def test_impulse(self):
        x = np.zeros(16, dtype=complex)
        x[0] = 1.0
        assert np.allclose(fft_seq(x), np.ones(16))

    def test_constant_signal(self):
        x = np.ones(8, dtype=complex)
        expected = np.zeros(8, dtype=complex)
        expected[0] = 8.0
        assert np.allclose(fft_seq(x), expected)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(SkeletonError, match="power of two"):
            fft_seq(np.zeros(12))


class TestParallel:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4])
    def test_matches_numpy(self, rng, d):
        n = max(64, 1 << d)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        assert np.allclose(fft_parallel(x, d), np.fft.fft(x))

    def test_one_coefficient_per_processor(self, rng):
        x = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        assert np.allclose(fft_parallel(x, 3), np.fft.fft(x))

    def test_matches_sequential(self, rng):
        x = rng.standard_normal(128) + 1j * rng.standard_normal(128)
        assert np.allclose(fft_parallel(x, 3), fft_seq(x))

    def test_too_few_coefficients_rejected(self, rng):
        with pytest.raises(SkeletonError, match="per processor"):
            fft_parallel(np.zeros(4, dtype=complex), 3)

    @settings(max_examples=15)
    @given(st.integers(0, 3), st.integers(3, 8), st.integers(0, 10**6))
    def test_random_signals_property(self, d, log_n, seed):
        if log_n < d:
            log_n = d
        r = np.random.default_rng(seed)
        x = r.standard_normal(1 << log_n) + 1j * r.standard_normal(1 << log_n)
        assert np.allclose(fft_parallel(x, d), np.fft.fft(x), atol=1e-8)


class TestMachine:
    @pytest.mark.parametrize("d", [0, 1, 2, 3, 4, 5])
    def test_matches_numpy(self, rng, d):
        n = max(128, 1 << d)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        out, _res = fft_machine(x, d)
        assert np.allclose(out, np.fft.fft(x))

    def test_cross_stage_message_count(self, rng):
        """d cross-processor stages, one full-block exchange each, plus the
        final tree gather (p - 1 block messages)."""
        d, n = 3, 256
        p = 1 << d
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        _out, res = fft_machine(x, d, spec=PERFECT)
        assert res.total_messages == d * p + (p - 1)

    def test_runtime_decreases_with_processors(self, rng):
        x = rng.standard_normal(8192) + 1j * rng.standard_normal(8192)
        times = []
        for d in (0, 2, 4):
            _o, res = fft_machine(x, d)
            times.append(res.makespan)
        assert times[0] > times[1] > times[2]

    def test_cost_params_scale(self, rng):
        x = rng.standard_normal(1024) + 1j * rng.standard_normal(1024)
        _a, cheap = fft_machine(x, 2, params=FftCostParams(butterfly_ops_per_elem=1))
        _b, dear = fft_machine(x, 2, params=FftCostParams(butterfly_ops_per_elem=100))
        assert dear.makespan > cheap.makespan

    def test_modern_cluster(self, rng):
        x = rng.standard_normal(512) + 1j * rng.standard_normal(512)
        out, res = fft_machine(x, 3, spec=MODERN_CLUSTER)
        assert np.allclose(out, np.fft.fft(x))
        assert res.makespan < 0.01
