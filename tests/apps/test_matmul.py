"""Tests for repro.apps.matmul — Cannon's algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.matmul import blocked_matmul_seq, cannon_matmul
from repro.errors import SkeletonError


class TestCannon:
    @pytest.mark.parametrize("q", [1, 2, 3, 4, 6, 12])
    def test_matches_numpy(self, rng, q):
        A = rng.standard_normal((12, 12))
        B = rng.standard_normal((12, 12))
        assert np.allclose(cannon_matmul(A, B, q), A @ B)

    def test_identity_times_matrix(self, rng):
        A = rng.standard_normal((8, 8))
        assert np.allclose(cannon_matmul(np.eye(8), A, 4), A)

    def test_matches_seq_baseline(self, rng):
        A = rng.standard_normal((6, 6))
        B = rng.standard_normal((6, 6))
        assert np.allclose(cannon_matmul(A, B, 3), blocked_matmul_seq(A, B))

    def test_non_commutative(self, rng):
        A = rng.standard_normal((4, 4))
        B = rng.standard_normal((4, 4))
        ab = cannon_matmul(A, B, 2)
        ba = cannon_matmul(B, A, 2)
        assert not np.allclose(ab, ba)
        assert np.allclose(ab, A @ B)
        assert np.allclose(ba, B @ A)

    def test_integer_matrices(self):
        A = np.arange(16).reshape(4, 4).astype(float)
        B = (np.arange(16)[::-1]).reshape(4, 4).astype(float)
        assert np.allclose(cannon_matmul(A, B, 2), A @ B)

    def test_indivisible_order_rejected(self, rng):
        with pytest.raises(SkeletonError, match="divisible"):
            cannon_matmul(rng.standard_normal((5, 5)),
                          rng.standard_normal((5, 5)), 2)

    def test_non_square_rejected(self, rng):
        with pytest.raises(SkeletonError, match="square"):
            cannon_matmul(rng.standard_normal((4, 6)),
                          rng.standard_normal((6, 4)), 2)

    def test_mismatched_orders_rejected(self, rng):
        with pytest.raises(SkeletonError):
            cannon_matmul(rng.standard_normal((4, 4)),
                          rng.standard_normal((6, 6)), 2)

    def test_zero_grid_rejected(self, rng):
        with pytest.raises(SkeletonError):
            cannon_matmul(rng.standard_normal((4, 4)),
                          rng.standard_normal((4, 4)), 0)

    def test_with_executor(self, rng):
        A = rng.standard_normal((8, 8))
        B = rng.standard_normal((8, 8))
        assert np.allclose(cannon_matmul(A, B, 4, executor="threads"), A @ B)

    @settings(max_examples=20)
    @given(st.integers(1, 4), st.integers(0, 10**6))
    def test_random_products_property(self, q, seed):
        r = np.random.default_rng(seed)
        n = q * r.integers(1, 4)
        A = r.standard_normal((n, n))
        B = r.standard_normal((n, n))
        assert np.allclose(cannon_matmul(A, B, q), A @ B, atol=1e-9)


class TestCannonMachine:
    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    def test_matches_numpy(self, rng, q):
        from repro.apps.matmul import cannon_matmul_machine

        n = q * 3
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        out, _res = cannon_matmul_machine(A, B, q)
        assert np.allclose(out, A @ B)

    def test_runtime_decreases_with_grid_size(self, rng):
        from repro.apps.matmul import cannon_matmul_machine

        n = 48
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        times = []
        for q in (1, 2, 4):
            _o, res = cannon_matmul_machine(A, B, q)
            times.append(res.makespan)
        assert times[0] > times[1] > times[2]

    def test_nearest_neighbour_rounds(self, rng):
        """After the skew, every round is 2 messages per processor."""
        from repro.apps.matmul import cannon_matmul_machine
        from repro.machine import PERFECT

        q, n = 3, 12
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        _o, res = cannon_matmul_machine(A, B, q, spec=PERFECT)
        p = q * q
        rounds = 2 * p * (q - 1)
        skew_max = 2 * p
        assert rounds <= res.total_messages <= rounds + skew_max

    def test_cost_params_scale(self, rng):
        from repro.apps.matmul import CannonCostParams, cannon_matmul_machine

        n = 8
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        _a, cheap = cannon_matmul_machine(A, B, 2,
                                          params=CannonCostParams(flops_per_madd=1))
        _b, dear = cannon_matmul_machine(A, B, 2,
                                         params=CannonCostParams(flops_per_madd=50))
        assert dear.makespan > cheap.makespan

    def test_indivisible_rejected(self, rng):
        from repro.apps.matmul import cannon_matmul_machine
        from repro.errors import SkeletonError

        with pytest.raises(SkeletonError):
            cannon_matmul_machine(rng.standard_normal((5, 5)),
                                  rng.standard_normal((5, 5)), 2)

    def test_torus_beats_plain_mesh(self, rng):
        """Wrap-around shifts are 1 hop on a torus but q-1 hops on a mesh:
        with per-hop latency, the torus run must be faster."""
        from repro.apps.matmul import cannon_matmul_machine
        from repro.machine import AP1000

        spec = AP1000.replace(per_hop_latency=5e-4)
        q, n = 4, 16
        A = rng.standard_normal((n, n))
        B = rng.standard_normal((n, n))
        _o1, torus = cannon_matmul_machine(A, B, q, spec=spec, torus=True)
        _o2, mesh = cannon_matmul_machine(A, B, q, spec=spec, torus=False)
        assert torus.makespan < mesh.makespan
