"""Tests for repro.apps.linalg — the Gauss–Jordan solver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.linalg import (
    GaussCostParams,
    gauss_jordan_machine,
    gauss_jordan_seq,
    gauss_jordan_solve,
)
from repro.errors import SkeletonError
from repro.machine import MODERN_CLUSTER


def well_conditioned(rng, n):
    return rng.standard_normal((n, n)) + n * np.eye(n)


class TestSequentialReference:
    def test_matches_numpy(self, rng):
        A = well_conditioned(rng, 12)
        b = rng.standard_normal(12)
        assert np.allclose(gauss_jordan_seq(A, b), np.linalg.solve(A, b))

    def test_identity_system(self):
        assert np.allclose(gauss_jordan_seq(np.eye(4), np.arange(4.0)),
                           np.arange(4.0))

    def test_requires_pivoting(self):
        """A matrix with a zero leading entry only solves with pivoting."""
        A = np.array([[0.0, 1.0], [1.0, 0.0]])
        b = np.array([2.0, 3.0])
        assert np.allclose(gauss_jordan_seq(A, b), [3.0, 2.0])

    def test_singular_matrix_detected(self):
        A = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(SkeletonError, match="singular"):
            gauss_jordan_seq(A, np.array([1.0, 2.0]))


class TestSkeletonSolver:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 8])
    def test_matches_numpy_any_processor_count(self, rng, p):
        A = well_conditioned(rng, 16)
        b = rng.standard_normal(16)
        assert np.allclose(gauss_jordan_solve(A, b, p), np.linalg.solve(A, b))

    def test_agrees_with_sequential(self, rng):
        A = well_conditioned(rng, 10)
        b = rng.standard_normal(10)
        assert np.allclose(gauss_jordan_solve(A, b, 3), gauss_jordan_seq(A, b))

    def test_more_processors_than_columns(self, rng):
        A = well_conditioned(rng, 4)
        b = rng.standard_normal(4)
        # 4x4 augmented to 5 columns over 5 processors
        assert np.allclose(gauss_jordan_solve(A, b, 5), np.linalg.solve(A, b))

    def test_pivoting_exercised(self):
        A = np.array([[0.0, 2.0, 1.0],
                      [1.0, 0.0, 0.0],
                      [3.0, 0.0, 1.0]])
        b = np.array([1.0, 2.0, 3.0])
        assert np.allclose(gauss_jordan_solve(A, b, 2), np.linalg.solve(A, b))

    def test_non_square_rejected(self, rng):
        with pytest.raises(SkeletonError, match="square"):
            gauss_jordan_solve(rng.standard_normal((3, 4)),
                               rng.standard_normal(3), 2)

    def test_mismatched_rhs_rejected(self, rng):
        with pytest.raises(SkeletonError, match="match"):
            gauss_jordan_solve(well_conditioned(rng, 4),
                               rng.standard_normal(5), 2)

    def test_with_executor(self, rng):
        A = well_conditioned(rng, 8)
        b = rng.standard_normal(8)
        out = gauss_jordan_solve(A, b, 4, executor="threads")
        assert np.allclose(out, np.linalg.solve(A, b))

    @settings(max_examples=20)
    @given(st.integers(2, 12), st.integers(1, 6), st.integers(0, 10**6))
    def test_random_systems_property(self, n, p, seed):
        r = np.random.default_rng(seed)
        A = well_conditioned(r, n)
        b = r.standard_normal(n)
        assert np.allclose(gauss_jordan_solve(A, b, p), np.linalg.solve(A, b),
                           atol=1e-8)


class TestMachineSolver:
    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_solves_correctly(self, rng, p):
        A = well_conditioned(rng, 16)
        b = rng.standard_normal(16)
        x, _res = gauss_jordan_machine(A, b, p)
        assert np.allclose(x, np.linalg.solve(A, b))

    def test_virtual_time_decreases_with_processors(self, rng):
        A = well_conditioned(rng, 48)
        b = rng.standard_normal(48)
        times = []
        for p in (1, 2, 4, 8):
            _x, res = gauss_jordan_machine(A, b, p)
            times.append(res.makespan)
        assert times[0] > times[1] > times[2]

    def test_broadcast_cost_eventually_dominates(self, rng):
        """With too many processors for a small matrix, communication wins:
        the speedup curve must flatten or reverse."""
        A = well_conditioned(rng, 12)
        b = rng.standard_normal(12)
        _x1, r1 = gauss_jordan_machine(A, b, 1)
        _x2, r12 = gauss_jordan_machine(A, b, 12)
        speedup = r1.makespan / r12.makespan
        assert speedup < 12

    def test_cost_params_scale(self, rng):
        A = well_conditioned(rng, 16)
        b = rng.standard_normal(16)
        _x, cheap = gauss_jordan_machine(A, b, 2,
                                         params=GaussCostParams(update_ops_per_entry=1))
        _y, dear = gauss_jordan_machine(A, b, 2,
                                        params=GaussCostParams(update_ops_per_entry=100))
        assert dear.makespan > cheap.makespan

    def test_modern_spec(self, rng):
        A = well_conditioned(rng, 8)
        b = rng.standard_normal(8)
        x, res = gauss_jordan_machine(A, b, 4, spec=MODERN_CLUSTER)
        assert np.allclose(x, np.linalg.solve(A, b))


class TestCompiledGauss:
    @pytest.mark.parametrize("p", [1, 2, 3, 4, 8])
    def test_matches_numpy(self, rng, p):
        from repro.apps.linalg import gauss_jordan_compiled

        A = well_conditioned(rng, 12)
        b = rng.standard_normal(12)
        x, _res = gauss_jordan_compiled(A, b, p)
        assert np.allclose(x, np.linalg.solve(A, b))

    def test_expression_interprets_too(self, rng):
        from repro.apps.linalg import gauss_jordan_expression
        from repro.core import ColBlock, partition, gather
        from repro.core.pararray import ParArray
        from repro.scl import evaluate

        n, p = 10, 3
        A = well_conditioned(rng, n)
        b = rng.standard_normal(n)
        aug = np.hstack([A, b.reshape(n, 1)])
        expr = gauss_jordan_expression(n, p, aug.shape)
        out = evaluate(expr, partition(ColBlock(p), aug))
        solved = np.asarray(gather(ParArray(out.to_list(), dist=ColBlock(p))))
        assert np.allclose(solved[:, -1], np.linalg.solve(A, b))

    def test_compiled_time_close_to_handwritten(self, rng):
        from repro.apps.linalg import gauss_jordan_compiled

        A = well_conditioned(rng, 24)
        b = rng.standard_normal(24)
        _x1, compiled = gauss_jordan_compiled(A, b, 4)
        _x2, hand = gauss_jordan_machine(A, b, 4)
        ratio = compiled.makespan / hand.makespan
        assert 0.5 < ratio < 2.0

    def test_pivoting_exercised_compiled(self):
        from repro.apps.linalg import gauss_jordan_compiled

        A = np.array([[0.0, 2.0], [1.0, 0.0]])
        b = np.array([4.0, 3.0])
        x, _res = gauss_jordan_compiled(A, b, 2)
        assert np.allclose(x, np.linalg.solve(A, b))
