"""Tests for repro.machine.topology."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.machine.topology import FullyConnected, Hypercube, Mesh2D, Ring


ALL_SMALL = [
    Hypercube(0), Hypercube(1), Hypercube(3),
    Ring(1), Ring(2), Ring(5),
    Mesh2D(2, 3), Mesh2D(3, 3, torus=False),
    FullyConnected(1), FullyConnected(6),
]


class TestTopologyContract:
    """Properties every topology must satisfy."""

    @pytest.mark.parametrize("topo", ALL_SMALL, ids=repr)
    def test_hops_zero_iff_same_node(self, topo):
        for a in range(topo.size):
            for b in range(topo.size):
                assert (topo.hops(a, b) == 0) == (a == b)

    @pytest.mark.parametrize("topo", ALL_SMALL, ids=repr)
    def test_hops_symmetric(self, topo):
        for a in range(topo.size):
            for b in range(topo.size):
                assert topo.hops(a, b) == topo.hops(b, a)

    @pytest.mark.parametrize("topo", ALL_SMALL, ids=repr)
    def test_neighbors_are_one_hop(self, topo):
        for a in range(topo.size):
            for b in topo.neighbors(a):
                assert topo.hops(a, b) == 1

    @pytest.mark.parametrize("topo", ALL_SMALL, ids=repr)
    def test_neighbor_relation_symmetric(self, topo):
        for a in range(topo.size):
            for b in topo.neighbors(a):
                assert a in topo.neighbors(b)

    @pytest.mark.parametrize("topo", ALL_SMALL, ids=repr)
    def test_triangle_inequality(self, topo):
        n = topo.size
        for a in range(n):
            for b in range(n):
                for c in range(n):
                    assert topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c)

    @pytest.mark.parametrize("topo", ALL_SMALL, ids=repr)
    def test_diameter_is_max_hops(self, topo):
        n = topo.size
        expected = max((topo.hops(a, b) for a in range(n) for b in range(n)),
                       default=0)
        assert topo.diameter() == expected

    @pytest.mark.parametrize("topo", ALL_SMALL, ids=repr)
    def test_edges_consistent_with_neighbors(self, topo):
        edge_set = set(topo.edges())
        for a, b in edge_set:
            assert a < b
            assert b in topo.neighbors(a)

    @pytest.mark.parametrize("topo", ALL_SMALL, ids=repr)
    def test_out_of_range_nodes_rejected(self, topo):
        with pytest.raises(TopologyError):
            topo.hops(0, topo.size)
        with pytest.raises(TopologyError):
            topo.neighbors(-1)


class TestHypercube:
    def test_size_is_power_of_dim(self):
        assert Hypercube(5).size == 32
        assert Hypercube(0).size == 1

    def test_of_size_round_trip(self):
        assert Hypercube.of_size(16).dim == 4

    def test_of_size_rejects_non_power(self):
        with pytest.raises(TopologyError):
            Hypercube.of_size(12)

    def test_hops_is_hamming_distance(self):
        h = Hypercube(4)
        assert h.hops(0b0000, 0b1111) == 4
        assert h.hops(0b1010, 0b1001) == 2

    def test_partner_flips_one_bit(self):
        h = Hypercube(3)
        assert h.partner(0b010, 2) == 0b110
        assert h.partner(h.partner(5, 1), 1) == 5

    def test_partner_dimension_validated(self):
        with pytest.raises(TopologyError):
            Hypercube(3).partner(0, 3)
        with pytest.raises(TopologyError):
            Hypercube(0).partner(0, 0)

    def test_degree_equals_dim(self):
        assert len(Hypercube(6).neighbors(17)) == 6

    def test_diameter_is_dim(self):
        assert Hypercube(7).diameter() == 7

    def test_negative_dim_rejected(self):
        with pytest.raises(TopologyError):
            Hypercube(-1)

    @given(st.integers(0, 7), st.integers(0, 127), st.integers(0, 127))
    def test_hamming_property(self, d, a, b):
        a %= 1 << d
        b %= 1 << d
        assert Hypercube(d).hops(a, b) == bin(a ^ b).count("1")


class TestRing:
    def test_wraps_around(self):
        r = Ring(10)
        assert r.hops(0, 9) == 1
        assert r.hops(0, 5) == 5

    def test_single_node_has_no_neighbors(self):
        assert Ring(1).neighbors(0) == ()

    def test_two_nodes_single_edge(self):
        assert Ring(2).neighbors(0) == (1,)
        assert list(Ring(2).edges()) == [(0, 1)]

    def test_diameter(self):
        assert Ring(8).diameter() == 4
        assert Ring(7).diameter() == 3


class TestMesh2D:
    def test_coords_round_trip(self):
        m = Mesh2D(3, 4)
        for node in range(m.size):
            r, c = m.coords(node)
            assert m.node_at(r, c) == node

    def test_torus_wraps(self):
        m = Mesh2D(4, 4, torus=True)
        assert m.hops(m.node_at(0, 0), m.node_at(3, 3)) == 2

    def test_mesh_does_not_wrap(self):
        m = Mesh2D(4, 4, torus=False)
        assert m.hops(m.node_at(0, 0), m.node_at(3, 3)) == 6

    def test_manhattan_distance(self):
        m = Mesh2D(5, 5, torus=False)
        assert m.hops(m.node_at(1, 1), m.node_at(3, 4)) == 5

    def test_interior_degree_four(self):
        m = Mesh2D(3, 3, torus=False)
        assert len(m.neighbors(m.node_at(1, 1))) == 4
        assert len(m.neighbors(m.node_at(0, 0))) == 2

    def test_torus_degree_always_four(self):
        m = Mesh2D(3, 3, torus=True)
        assert all(len(m.neighbors(v)) == 4 for v in range(m.size))

    def test_degenerate_1x1(self):
        m = Mesh2D(1, 1)
        assert m.neighbors(0) == ()

    def test_invalid_dims_rejected(self):
        with pytest.raises(TopologyError):
            Mesh2D(0, 3)
        with pytest.raises(TopologyError):
            Mesh2D(3, -1)

    def test_node_at_validates(self):
        with pytest.raises(TopologyError):
            Mesh2D(2, 2).node_at(2, 0)


class TestFullyConnected:
    def test_everything_one_hop(self):
        f = FullyConnected(5)
        assert all(f.hops(a, b) == 1 for a in range(5) for b in range(5) if a != b)

    def test_neighbors_is_everyone_else(self):
        assert FullyConnected(4).neighbors(2) == (0, 1, 3)

    def test_invalid_size_rejected(self):
        with pytest.raises(TopologyError):
            FullyConnected(0)


class TestNetworkx:
    def test_to_networkx_matches_edges(self):
        g = Mesh2D(3, 3, torus=False).to_networkx()
        assert g.number_of_nodes() == 9
        assert g.number_of_edges() == 12


class TestHopRows:
    """The simulator's routing fast path: cached per-source hop rows."""

    @pytest.mark.parametrize("topo", ALL_SMALL, ids=repr)
    def test_hop_row_matches_hops(self, topo):
        for src in range(topo.size):
            assert topo.hop_row(src) == [topo.hops(src, d) for d in range(topo.size)]

    @pytest.mark.parametrize("topo", ALL_SMALL, ids=repr)
    def test_hop_row_is_cached(self, topo):
        assert topo.hop_row(0) is topo.hop_row(0)

    def test_hop_row_validates_source(self):
        with pytest.raises(TopologyError):
            Ring(4).hop_row(4)
        with pytest.raises(TopologyError):
            Hypercube(2).hop_row(-1)

    @pytest.mark.parametrize("make", [
        lambda: Hypercube(3),
        lambda: Ring(6),
        lambda: FullyConnected(5),
        lambda: Mesh2D(3, 4, torus=True),
        lambda: Mesh2D(3, 4, torus=False),
    ])
    def test_rows_shared_across_equal_instances(self, make):
        a, b = make(), make()
        assert a.hop_row(1) is b.hop_row(1)

    def test_rows_not_shared_across_different_parameters(self):
        assert Ring(4).hop_row(0) != Ring(5).hop_row(0)
        # the torus flag is part of the cache key: same size, different rows
        t = Mesh2D(4, 4, torus=True)
        m = Mesh2D(4, 4, torus=False)
        assert t.hop_row(0) is not m.hop_row(0)
        assert t.hop_row(0)[15] == 2 and m.hop_row(0)[15] == 6


class TestDiameterClosedForms:
    """diameter() has a closed form per topology; verify against brute force."""

    @pytest.mark.parametrize("dims", [(1, 1), (1, 7), (4, 4), (3, 5), (5, 3), (2, 6)])
    @pytest.mark.parametrize("torus", [True, False])
    def test_mesh2d_closed_form(self, dims, torus):
        m = Mesh2D(*dims, torus=torus)
        brute = max((m.hops(a, b) for a in range(m.size) for b in range(m.size)),
                    default=0)
        assert m.diameter() == brute

    def test_known_values(self):
        assert Mesh2D(4, 6, torus=True).diameter() == 5
        assert Mesh2D(4, 6, torus=False).diameter() == 8
        assert Ring(9).diameter() == 4
        assert Hypercube(10).diameter() == 10
        assert FullyConnected(2).diameter() == 1
        assert FullyConnected(1).diameter() == 0

    def test_diameter_repeat_calls_consistent(self):
        m = Mesh2D(3, 3, torus=True)
        assert m.diameter() == m.diameter() == 2
