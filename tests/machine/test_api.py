"""Tests for repro.machine.api (communicators)."""

from __future__ import annotations

import pytest

from repro.errors import MachineError
from repro.machine.api import Comm
from repro.machine.cost import PERFECT
from repro.machine.simulator import Machine


def run_collect(nprocs, body):
    """Run `body(env, comm)` (a generator fn) on a world comm; return values."""

    def prog(env):
        comm = Comm.world(env)
        result = yield from body(env, comm)
        return result

    return Machine(nprocs, spec=PERFECT).run(prog).values


class TestCommBasics:
    def test_world_rank_equals_pid(self):
        def body(env, comm):
            yield env.compute(0)
            return (comm.rank, comm.size)

        assert run_collect(4, body) == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_rank_relative_messaging(self):
        def body(env, comm):
            if comm.rank == 0:
                yield comm.send(comm.size - 1, "hello")
                return None
            if comm.rank == comm.size - 1:
                msg = yield comm.recv(0)
                return msg.payload
            yield env.compute(0)
            return None

        assert run_collect(3, body)[2] == "hello"

    def test_pid_of_and_rank_of_pid(self):
        def body(env, comm):
            yield env.compute(0)
            if env.pid in (0, 2):
                sub = comm.subgroup([2, 0])
                return (sub.pid_of(0), sub.pid_of(1), sub.rank_of_pid(env.pid))
            return None

        values = run_collect(3, body)
        assert values[0] == (2, 0, 1)
        assert values[2] == (2, 0, 0)

    def test_nonmember_cannot_construct(self):
        def prog(env):
            Comm(env, members=[0])  # pid 1 is not a member
            yield env.compute(0)

        with pytest.raises(MachineError, match="not a member"):
            Machine(2, spec=PERFECT).run([lambda env: _noop(env), prog])

    def test_duplicate_members_rejected(self):
        def prog(env):
            Comm(env, members=[0, 0])
            yield env.compute(0)

        with pytest.raises(MachineError, match="duplicate"):
            Machine(1, spec=PERFECT).run(prog)

    def test_rank_out_of_range_rejected(self):
        def prog(env):
            comm = Comm.world(env)
            comm.pid_of(5)
            yield env.compute(0)

        with pytest.raises(MachineError, match="out of range"):
            Machine(2, spec=PERFECT).run(prog)

    def test_repr(self):
        def body(env, comm):
            yield env.compute(0)
            return repr(comm)

        assert "Comm(rank=0/2" in run_collect(2, body)[0]


class TestSplit:
    def test_split_by_parity(self):
        def body(env, comm):
            sub = comm.split(lambda r: r % 2)
            yield env.compute(0)
            return (sub.size, sub.rank, sub.members)

        values = run_collect(4, body)
        assert values[0] == (2, 0, (0, 2))
        assert values[1] == (2, 0, (1, 3))
        assert values[2] == (2, 1, (0, 2))
        assert values[3] == (2, 1, (1, 3))

    def test_split_with_key_reorders(self):
        def body(env, comm):
            sub = comm.split(lambda r: 0, key_fn=lambda r: -r)
            yield env.compute(0)
            return sub.members

        assert run_collect(3, body)[0] == (2, 1, 0)

    def test_hypercube_halving_split(self):
        """The hyperquicksort sub-cube split: colour = rank // half."""

        def body(env, comm):
            half = comm.size // 2
            sub = comm.split(lambda r: r // half)
            yield env.compute(0)
            return sub.members

        values = run_collect(8, body)
        assert values[0] == (0, 1, 2, 3)
        assert values[7] == (4, 5, 6, 7)

    def test_messaging_within_subgroup(self):
        def body(env, comm):
            sub = comm.split(lambda r: r % 2)
            if sub.rank == 0:
                yield sub.send(1, f"from {env.pid}")
                return None
            msg = yield sub.recv(0)
            return msg.payload

        values = run_collect(4, body)
        assert values[2] == "from 0"
        assert values[3] == "from 1"


def _noop(env):
    yield env.compute(0)
    return None
