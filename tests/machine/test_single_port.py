"""Tests for the single-port contention model.

With ``single_port=True`` each processor transmits one message at a time
and receives one at a time — the standard one-port full-duplex model of
collective-algorithm analysis.  These tests check the phenomena the model
exists to expose: serialisation at hot receivers/senders, the linear-vs-
tree broadcast gap, and that the Table 1 shape survives contention.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import AP1000, Comm, Machine, MachineSpec, collectives as C

BW_SPEC = MachineSpec(name="bw", flop_time=1e-7, latency=1e-6,
                      bandwidth=1e6, per_hop_latency=0.0,
                      send_overhead=0.0, recv_overhead=0.0, word_bytes=8)
NBYTES = 100_000  # 0.1 s of wire time on BW_SPEC


class TestSenderSerialisation:
    def test_fan_out_serialises_on_sender_port(self):
        """p0 sending to 4 receivers back-to-back: with one port the last
        arrival is ~4 wire-times; without, all overlap."""

        def prog(env):
            if env.pid == 0:
                for dst in range(1, 5):
                    yield env.send(dst, None, nbytes=NBYTES)
                return None
            msg = yield env.recv(0)
            return env.now

        wire = NBYTES / BW_SPEC.bandwidth
        free = Machine(5, spec=BW_SPEC).run(prog)
        port = Machine(5, spec=BW_SPEC, single_port=True).run(prog)
        assert free.makespan == pytest.approx(wire, rel=0.01)
        assert port.makespan == pytest.approx(4 * wire, rel=0.01)


class TestReceiverSerialisation:
    def test_fan_in_serialises_on_receiver_port(self):
        def prog(env):
            if env.pid == 0:
                for _ in range(1, env.nprocs):
                    yield env.recv()
                return env.now
            yield env.send(0, None, nbytes=NBYTES)
            return None

        wire = NBYTES / BW_SPEC.bandwidth
        free = Machine(5, spec=BW_SPEC).run(prog)
        port = Machine(5, spec=BW_SPEC, single_port=True).run(prog)
        assert free.values[0] == pytest.approx(wire, rel=0.01)
        assert port.values[0] == pytest.approx(4 * wire, rel=0.01)


class TestBroadcastAlgorithms:
    def _linear(self, env):
        comm = Comm.world(env)
        if comm.rank == 0:
            for dst in range(1, comm.size):
                yield comm.send(dst, "v", nbytes=NBYTES)
            return "v"
        msg = yield comm.recv(0)
        return msg.payload

    def _tree(self, env):
        comm = Comm.world(env)
        v = yield from C.bcast(comm, "v" if comm.rank == 0 else None,
                               nbytes=NBYTES)
        return v

    def test_tree_beats_linear_under_contention(self):
        p = 8
        linear = Machine(p, spec=BW_SPEC, single_port=True).run(self._linear)
        tree = Machine(p, spec=BW_SPEC, single_port=True).run(self._tree)
        assert all(v == "v" for v in linear.values)
        assert all(v == "v" for v in tree.values)
        assert tree.makespan < linear.makespan
        # linear is ~(p-1) serial wires; tree is ~log2(p) rounds
        wire = NBYTES / BW_SPEC.bandwidth
        assert linear.makespan == pytest.approx(7 * wire, rel=0.05)
        assert tree.makespan < 4 * wire * 1.1

    def test_models_agree_without_contention_pressure(self):
        """A single small message: both models give the same timing."""

        def prog(env):
            if env.pid == 0:
                yield env.send(1, "x", nbytes=8)
            else:
                yield env.recv(0)

        free = Machine(2, spec=AP1000).run(prog)
        port = Machine(2, spec=AP1000, single_port=True).run(prog)
        assert free.makespan == pytest.approx(port.makespan)


class TestContentionNeverSpeedsUp:
    @pytest.mark.parametrize("nprocs", [2, 4, 8])
    def test_single_port_makespan_dominates(self, nprocs, rng):
        """For any exchange pattern, contention can only add time."""
        payloads = rng.integers(1, 50_000, size=8).tolist()

        def prog(env):
            comm = Comm.world(env)
            for t, nb in enumerate(payloads):
                dst = (comm.rank + t + 1) % comm.size
                src = (comm.rank - t - 1) % comm.size
                if dst == comm.rank:
                    continue
                yield comm.send(dst, None, tag=t, nbytes=int(nb))
                yield comm.recv(src, tag=t)
            return None

        free = Machine(nprocs, spec=BW_SPEC).run(prog)
        port = Machine(nprocs, spec=BW_SPEC, single_port=True).run(prog)
        assert port.makespan >= free.makespan - 1e-12


class TestTable1UnderContention:
    def test_shape_survives_single_port(self, rng):
        from repro.apps.sort import hyperquicksort_machine

        vals = rng.integers(0, 2**31, size=8192).astype(np.int32)
        expected = np.sort(vals)
        times = {}
        for d in (1, 3, 5):
            out, res = hyperquicksort_machine(vals, d, spec=AP1000,
                                              single_port=True)
            assert np.array_equal(out, expected)
            times[d] = res.makespan
        assert times[1] > times[3] > times[5]

    def test_contention_adds_time_to_the_sort(self, rng):
        from repro.apps.sort import hyperquicksort_machine

        vals = rng.integers(0, 2**31, size=8192).astype(np.int32)
        _o1, free = hyperquicksort_machine(vals, 4, spec=AP1000)
        _o2, port = hyperquicksort_machine(vals, 4, spec=AP1000,
                                           single_port=True)
        assert port.makespan >= free.makespan
