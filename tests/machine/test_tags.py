"""The central tag registry: disjoint reservations, enforced ranges.

The regression behind this module: the PR-2 SCL compiler hard-coded its
exchange tag to ``900_001`` — the same integer ``ft_bcast`` uses — so a
compiled expression run over the reliable channel could consume a
broadcast frame as user data.  The registry makes that class of bug an
import-time error, and this suite pins the global layout.
"""

from __future__ import annotations

import pytest

from repro.errors import MachineError
from repro.machine import reliable, tags

# Importing every tag-owning subsystem populates the registry.
import repro.faults.plan_exec  # noqa: F401
import repro.faults.runtime  # noqa: F401
import repro.machine.collectives_ft  # noqa: F401
import repro.machine.plan_exec  # noqa: F401


class TestGlobalLayout:
    def test_all_reserved_tags_are_disjoint(self):
        holders = tags.reserved()
        by_tag: dict[int, list[str]] = {}
        for name, tag in holders.items():
            by_tag.setdefault(tag, []).append(name)
        dupes = {t: ns for t, ns in by_tag.items() if len(ns) > 1}
        assert not dupes, f"tag collisions: {dupes}"

    def test_every_reservation_is_a_legal_user_tag(self):
        for name, tag in tags.reserved().items():
            assert 0 < tag < tags.MAX_USER_TAG, (name, tag)

    def test_every_reservation_sits_in_its_subsystem_range(self):
        for name, tag in tags.reserved().items():
            subsystem = name.split(".", 1)[0]
            lo, hi = tags.SUBSYSTEM_RANGES[subsystem]
            assert lo <= tag < hi, (name, tag)

    def test_subsystem_ranges_and_infra_blocks_are_disjoint(self):
        spans = sorted({**tags.SUBSYSTEM_RANGES, **tags.INFRA_BLOCKS}.items(),
                       key=lambda kv: kv[1])
        for (name_a, (_, hi_a)), (name_b, (lo_b, _)) in zip(spans, spans[1:]):
            assert hi_a <= lo_b, f"{name_a} overlaps {name_b}"

    def test_subsystem_ranges_stay_below_the_user_ceiling(self):
        for name, (lo, hi) in tags.SUBSYSTEM_RANGES.items():
            assert 0 < lo < hi <= tags.MAX_USER_TAG, name

    def test_reliable_frames_of_any_user_tag_stay_in_their_blocks(self):
        data_lo, data_hi = tags.INFRA_BLOCKS["reliable-data"]
        ack_lo, ack_hi = tags.INFRA_BLOCKS["reliable-ack"]
        for name, tag in tags.reserved().items():
            assert data_lo <= reliable.DATA_TAG_BASE + tag < data_hi, name
            assert ack_lo <= reliable.ACK_TAG_BASE + tag < ack_hi, name

    def test_reliable_reexports_the_registry_ceiling(self):
        assert reliable.MAX_USER_TAG is tags.MAX_USER_TAG

    def test_the_pr2_collision_is_fixed(self):
        # The plan executor's exchange tag and ft_bcast's tag used to both
        # be 900_001; they must now live in different subsystem ranges.
        from repro.machine.collectives_ft import _TAG_FT_BCAST
        from repro.machine.plan_exec import EXCHANGE_TAG

        assert EXCHANGE_TAG != _TAG_FT_BCAST
        assert tags.subsystem_of(EXCHANGE_TAG) == "plan"
        assert tags.subsystem_of(_TAG_FT_BCAST) == "collectives-ft"


class TestReserve:
    def test_reserve_returns_range_base_plus_offset(self):
        lo, _hi = tags.SUBSYSTEM_RANGES["ft-apps"]
        assert tags.reserve("ft-apps", "test-probe", 90) == lo + 90

    def test_reserve_is_idempotent_for_the_same_triple(self):
        first = tags.reserve("ft-apps", "test-probe-idem", 91)
        assert tags.reserve("ft-apps", "test-probe-idem", 91) == first

    def test_unknown_subsystem_rejected(self):
        with pytest.raises(MachineError, match="unknown tag subsystem"):
            tags.reserve("no-such-subsystem", "x", 0)

    def test_offset_outside_range_rejected(self):
        with pytest.raises(MachineError, match="out of range"):
            tags.reserve("ft-apps", "too-big", 10_000)

    def test_two_names_cannot_share_a_tag(self):
        tags.reserve("ft-apps", "test-holder", 92)
        with pytest.raises(MachineError, match="already reserved"):
            tags.reserve("ft-apps", "test-usurper", 92)

    def test_one_name_cannot_hold_two_tags(self):
        tags.reserve("ft-apps", "test-mover", 93)
        with pytest.raises(MachineError, match="already holds"):
            tags.reserve("ft-apps", "test-mover", 94)


class TestSubsystemOf:
    def test_maps_tags_to_their_owners(self):
        assert tags.subsystem_of(1) == "ft-apps"
        assert tags.subsystem_of(800_001) == "ft-runtime"
        assert tags.subsystem_of(900_001) == "collectives-ft"
        assert tags.subsystem_of(910_001) == "plan"
        assert tags.subsystem_of(2_500_000) == "reliable-data"

    def test_unowned_tags_map_to_none(self):
        assert tags.subsystem_of(0) is None
        assert tags.subsystem_of(500_000) is None
