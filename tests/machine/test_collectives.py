"""Tests for repro.machine.collectives — correctness on every group size.

Collectives are the machine-level counterparts of the elementary skeletons,
so correctness here underwrites the Table 1 experiment.  Each collective is
checked on power-of-two and odd sizes, with every possible root, and with
non-commutative operators where order matters.
"""

from __future__ import annotations

import operator

import pytest

from repro.errors import MachineError
from repro.machine import collectives as C
from repro.machine.api import Comm
from repro.machine.cost import AP1000, PERFECT
from repro.machine.simulator import Machine
from repro.machine.topology import Hypercube

SIZES = [1, 2, 3, 4, 5, 7, 8, 16]


def run_world(nprocs, body, spec=PERFECT):
    def prog(env):
        comm = Comm.world(env)
        result = yield from body(comm)
        return result

    return Machine(nprocs, spec=spec).run(prog)


class TestBcast:
    @pytest.mark.parametrize("n", SIZES)
    def test_all_receive_root_value(self, n):
        def body(comm):
            v = yield from C.bcast(comm, "payload" if comm.rank == 0 else None)
            return v

        assert run_world(n, body).values == ["payload"] * n

    @pytest.mark.parametrize("root", [0, 1, 2])
    def test_any_root(self, root):
        def body(comm):
            v = yield from C.bcast(comm, comm.rank if comm.rank == root else None,
                                   root=root)
            return v

        assert run_world(3, body).values == [root] * 3

    def test_bcast_message_count_is_p_minus_1(self):
        def body(comm):
            v = yield from C.bcast(comm, 1 if comm.rank == 0 else None)
            return v

        res = run_world(8, body)
        assert res.total_messages == 7

    def test_invalid_root_rejected(self):
        def body(comm):
            v = yield from C.bcast(comm, 1, root=9)
            return v

        with pytest.raises(MachineError):
            run_world(2, body)


class TestReduce:
    @pytest.mark.parametrize("n", SIZES)
    def test_sum(self, n):
        def body(comm):
            total = yield from C.reduce(comm, comm.rank + 1, operator.add)
            return total

        values = run_world(n, body).values
        assert values[0] == n * (n + 1) // 2
        assert all(v is None for v in values[1:])

    @pytest.mark.parametrize("n", SIZES)
    def test_non_commutative_op_combined_in_rank_order(self, n):
        def body(comm):
            s = yield from C.reduce(comm, f"<{comm.rank}>", operator.add)
            return s

        assert run_world(n, body).values[0] == "".join(f"<{r}>" for r in range(n))

    @pytest.mark.parametrize("root", [0, 1, 2, 4])
    def test_nonzero_root(self, root):
        def body(comm):
            s = yield from C.reduce(comm, [comm.rank], operator.add, root=root)
            return s

        values = run_world(5, body).values
        assert values[root] == [0, 1, 2, 3, 4]


class TestAllreduce:
    @pytest.mark.parametrize("n", SIZES)
    def test_everyone_gets_total(self, n):
        def body(comm):
            total = yield from C.allreduce(comm, comm.rank, operator.add)
            return total

        assert run_world(n, body).values == [n * (n - 1) // 2] * n

    def test_max_operator(self):
        def body(comm):
            m = yield from C.allreduce(comm, (comm.rank * 7) % 5, max)
            return m

        values = run_world(5, body).values
        assert all(v == 4 for v in values)


class TestScan:
    @pytest.mark.parametrize("n", SIZES)
    def test_inclusive_prefix_sums(self, n):
        def body(comm):
            s = yield from C.scan(comm, comm.rank + 1, operator.add)
            return s

        expected = [sum(range(1, r + 2)) for r in range(n)]
        assert run_world(n, body).values == expected

    @pytest.mark.parametrize("n", SIZES)
    def test_non_commutative_concat(self, n):
        def body(comm):
            s = yield from C.scan(comm, str(comm.rank), operator.add)
            return s

        expected = ["".join(str(i) for i in range(r + 1)) for r in range(n)]
        assert run_world(n, body).values == expected


class TestGatherScatter:
    @pytest.mark.parametrize("n", SIZES)
    def test_gather_rank_order(self, n):
        def body(comm):
            g = yield from C.gather(comm, comm.rank * 10)
            return g

        values = run_world(n, body).values
        assert values[0] == [r * 10 for r in range(n)]
        assert all(v is None for v in values[1:])

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("root", [0, 1])
    def test_scatter_delivers_per_rank(self, n, root):
        if root >= n:
            pytest.skip("root out of range for this size")

        def body(comm):
            data = [f"item{r}" for r in range(comm.size)] if comm.rank == root else None
            item = yield from C.scatter(comm, data, root=root)
            return item

        assert run_world(n, body).values == [f"item{r}" for r in range(n)]

    @pytest.mark.parametrize("n", SIZES)
    def test_scatter_gather_round_trip(self, n):
        def body(comm):
            data = list(range(100, 100 + comm.size)) if comm.rank == 0 else None
            item = yield from C.scatter(comm, data)
            g = yield from C.gather(comm, item)
            return g

        assert run_world(n, body).values[0] == list(range(100, 100 + n))

    def test_scatter_wrong_length_rejected(self):
        def body(comm):
            item = yield from C.scatter(comm, [1, 2, 3])  # size is 2
            return item

        with pytest.raises(MachineError, match="exactly"):
            run_world(2, body)


class TestAllgatherAlltoall:
    @pytest.mark.parametrize("n", SIZES)
    def test_allgather(self, n):
        def body(comm):
            g = yield from C.allgather(comm, comm.rank ** 2)
            return g

        expected = [r ** 2 for r in range(n)]
        assert run_world(n, body).values == [expected] * n

    @pytest.mark.parametrize("n", SIZES)
    def test_alltoall_transpose(self, n):
        def body(comm):
            out = yield from C.alltoall(
                comm, [(comm.rank, dst) for dst in range(comm.size)])
            return out

        values = run_world(n, body).values
        for r, got in enumerate(values):
            assert got == [(src, r) for src in range(n)]

    def test_alltoall_wrong_length_rejected(self):
        def body(comm):
            out = yield from C.alltoall(comm, [1])
            return out

        with pytest.raises(MachineError, match="needs"):
            run_world(3, body)


class TestBarrier:
    @pytest.mark.parametrize("n", SIZES)
    def test_no_process_leaves_before_all_enter(self, n):
        """Rank r computes r*10ms before the barrier; everyone must leave at
        a time >= the slowest entry."""

        def prog(env):
            comm = Comm.world(env)
            yield env.compute(0.01 * comm.rank)
            yield from C.barrier(comm)
            return env.now

        spec = PERFECT
        res = Machine(n, spec=spec).run(prog)
        slowest_entry = 0.01 * (n - 1)
        assert all(t >= slowest_entry - 1e-12 for t in res.values)

    def test_barrier_on_singleton_is_noop(self):
        def prog(env):
            comm = Comm.world(env)
            yield from C.barrier(comm)
            return env.now

        assert Machine(1, spec=PERFECT).run(prog).values == [0.0]


class TestSubgroupCollectives:
    def test_collectives_within_split_groups(self):
        """Even and odd ranks reduce independently."""

        def prog(env):
            comm = Comm.world(env)
            sub = comm.split(lambda r: r % 2)
            total = yield from C.allreduce(sub, comm.rank, operator.add)
            return total

        res = Machine(8, spec=PERFECT).run(prog)
        assert res.values == [0 + 2 + 4 + 6, 1 + 3 + 5 + 7] * 4

    def test_hypercube_subcube_bcast(self):
        """Broadcast within each half-cube, as hyperquicksort's pivot step."""

        def prog(env):
            comm = Comm.world(env)
            half = comm.size // 2
            cube = comm.split(lambda r: r // half)
            v = yield from C.bcast(cube, env.pid if cube.rank == 0 else None)
            return v

        res = Machine(Hypercube(3), spec=AP1000).run(prog)
        assert res.values == [0, 0, 0, 0, 4, 4, 4, 4]


class TestCollectiveCostScaling:
    def test_bcast_time_grows_logarithmically(self):
        """Binomial broadcast should cost ~log2(p) rounds, not p."""

        def body(comm):
            v = yield from C.bcast(comm, 1 if comm.rank == 0 else None, nbytes=8)
            return v

        t8 = run_world(8, body, spec=AP1000).makespan
        t64 = run_world(64, body, spec=AP1000).makespan
        # log2(64)/log2(8) = 2: allow generous slack but rule out linear (8x)
        assert t64 < t8 * 3.5

    def test_reduce_cheaper_than_sequential_collection(self):
        def tree(comm):
            v = yield from C.reduce(comm, 1, operator.add)
            return v

        def linear(comm):
            if comm.rank == 0:
                total = 1
                for src in range(1, comm.size):
                    msg = yield comm.recv(src)
                    total += msg.payload
                return total
            yield comm.send(0, 1)
            return None

        t_tree = run_world(32, tree, spec=AP1000).makespan
        t_linear = run_world(32, linear, spec=AP1000).makespan
        assert t_tree < t_linear
