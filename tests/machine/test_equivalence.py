"""Equivalence of the optimised engine and the retained seed engine.

The O(log p) simulator core (heap scheduler, indexed mailboxes, cached
routing) must be an *observationally identical* replacement for the seed
O(p)-scan engine kept in :mod:`repro.machine._reference` — identical
per-processor return values, identical stats to the bit, identical
makespans and identical traces, on programs that exercise every matching
path: concrete FIFO receives, ANY-source/ANY-tag races where small
messages overtake big ones, direct hand-off, and the single-port
contention model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import AP1000, Machine, collectives, Comm
from repro.machine._reference import ReferenceMachine
from repro.machine.events import ANY
from repro.machine.topology import FullyConnected, Hypercube


def _values_equal(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (type(a) is type(b) and len(a) == len(b)
                and all(_values_equal(x, y) for x, y in zip(a, b)))
    return a == b


def _assert_same_result(res_a, res_b, *, check_trace=True):
    assert res_a.makespan == res_b.makespan
    assert len(res_a.stats) == len(res_b.stats)
    for sa, sb in zip(res_a.stats, res_b.stats):
        assert sa == sb, f"stats diverge on pid {sa.pid}: {sa} != {sb}"
    assert len(res_a.values) == len(res_b.values)
    for pid, (va, vb) in enumerate(zip(res_a.values, res_b.values)):
        assert _values_equal(va, vb), f"values diverge on pid {pid}"
    if check_trace:
        ta = None if res_a.trace is None else list(res_a.trace)
        tb = None if res_b.trace is None else list(res_b.trace)
        assert ta == tb


class TestHyperquicksortEquivalence:
    def test_p32_end_to_end(self, monkeypatch):
        import repro.apps.sort as sort_mod

        values = np.random.default_rng(7).integers(0, 10_000, size=4_000)
        out_new, res_new = sort_mod.hyperquicksort_machine(
            values, 5, record_trace=True)

        monkeypatch.setattr(sort_mod, "Machine", ReferenceMachine)
        out_ref, res_ref = sort_mod.hyperquicksort_machine(
            values, 5, record_trace=True)

        assert np.array_equal(out_new, out_ref)
        _assert_same_result(res_new, res_ref)

    def test_p32_single_port(self, monkeypatch):
        import repro.apps.sort as sort_mod

        values = np.random.default_rng(11).integers(0, 10_000, size=2_000)
        out_new, res_new = sort_mod.hyperquicksort_machine(
            values, 5, single_port=True)
        monkeypatch.setattr(sort_mod, "Machine", ReferenceMachine)
        out_ref, res_ref = sort_mod.hyperquicksort_machine(
            values, 5, single_port=True)
        assert np.array_equal(out_new, out_ref)
        _assert_same_result(res_new, res_ref, check_trace=False)


class TestFftEquivalence:
    def test_p16_end_to_end(self, monkeypatch):
        import repro.apps.fft as fft_mod

        x = np.random.default_rng(3).normal(size=512) \
            + 1j * np.random.default_rng(4).normal(size=512)
        out_new, res_new = fft_mod.fft_machine(x, 4)
        monkeypatch.setattr(fft_mod, "Machine", ReferenceMachine)
        out_ref, res_ref = fft_mod.fft_machine(x, 4)
        assert np.array_equal(out_new, out_ref)
        _assert_same_result(res_new, res_ref)


def _wildcard_stress(env):
    """Many-to-one with mixed wildcard patterns and overtaking messages.

    Every non-zero processor sends three tagged messages whose sizes are
    chosen so later sends can arrive earlier (small message overtakes a
    big one on the wire).  Processor 0 drains the traffic through a mix of
    ``(ANY, tag)``, ``(src, ANY)``, ``(ANY, ANY)`` and concrete receives —
    every matching path of the mailbox.
    """
    p = env.nprocs
    if env.pid == 0:
        got = []
        for i in range(p - 1):
            msg = yield env.recv(ANY, tag=0)
            got.append((msg.src, msg.tag, msg.payload))
        for src in range(1, p):
            msg = yield env.recv(src, tag=ANY)
            got.append((msg.src, msg.tag, msg.payload))
        for i in range(p - 1):
            msg = yield env.recv(ANY, tag=ANY)
            got.append((msg.src, msg.tag, msg.payload))
        return got
    yield env.work(ops=100 * env.pid)
    # big first, then small: the small one overtakes on the wire
    yield env.send(0, ("big", env.pid), tag=0, nbytes=100_000)
    yield env.send(0, ("mid", env.pid), tag=env.pid % 3, nbytes=10)
    yield env.send(0, ("small", env.pid), tag=0, nbytes=1)
    return None


class TestWildcardStressEquivalence:
    @pytest.mark.parametrize("p", [4, 9, 16])
    def test_mixed_wildcards(self, p):
        res_new = Machine(FullyConnected(p), spec=AP1000,
                          record_trace=True).run(_wildcard_stress)
        res_ref = ReferenceMachine(FullyConnected(p), spec=AP1000,
                                   record_trace=True).run(_wildcard_stress)
        _assert_same_result(res_new, res_ref)

    def test_single_port_wildcards(self):
        res_new = Machine(FullyConnected(8), spec=AP1000,
                          single_port=True).run(_wildcard_stress)
        res_ref = ReferenceMachine(FullyConnected(8), spec=AP1000,
                                   single_port=True).run(_wildcard_stress)
        _assert_same_result(res_new, res_ref)


class TestCollectivesEquivalence:
    def test_allreduce_rounds(self):
        def program(env):
            comm = Comm.world(env)
            acc = float(env.pid)
            for _ in range(4):
                acc = yield from collectives.allreduce(
                    comm, acc, lambda a, b: a + b, nbytes=8)
            return acc

        topo = Hypercube(4)
        res_new = Machine(topo, spec=AP1000, record_trace=True).run(program)
        res_ref = ReferenceMachine(topo, spec=AP1000,
                                   record_trace=True).run(program)
        _assert_same_result(res_new, res_ref)

    def test_nonzero_root_bcast_and_scatter(self):
        def program(env):
            comm = Comm.world(env)
            v = yield from collectives.bcast(comm, env.pid * 10 or None, root=3)
            part = yield from collectives.scatter(
                comm, list(range(comm.size)) if comm.rank == 3 else None,
                root=3)
            return (v, part)

        topo = Hypercube(3)
        res_new = Machine(topo, spec=AP1000).run(program)
        res_ref = ReferenceMachine(topo, spec=AP1000).run(program)
        _assert_same_result(res_new, res_ref)


class TestBatchedEngineEquivalence:
    """Three-way equivalence: the batched drive-order engine against both
    the retained per-event engine and the seed O(p)-scan oracle.

    Tracing and single-port runs fall back to the per-event core, so the
    rows above never exercise :mod:`repro.machine.batch`; these untraced
    runs do.  Values, stats (virtual times to the bit) and makespans must
    agree across all three.
    """

    @pytest.mark.parametrize("p", [4, 9, 16])
    def test_mixed_wildcards_three_way(self, p):
        res_bat = Machine(FullyConnected(p), spec=AP1000).run(_wildcard_stress)
        res_evt = Machine(FullyConnected(p), spec=AP1000,
                          batch=False).run(_wildcard_stress)
        res_ref = ReferenceMachine(FullyConnected(p),
                                   spec=AP1000).run(_wildcard_stress)
        _assert_same_result(res_bat, res_evt)
        _assert_same_result(res_bat, res_ref)

    def test_hyperquicksort_batch_vs_reference(self, monkeypatch):
        import repro.apps.sort as sort_mod

        values = np.random.default_rng(13).integers(0, 10_000, size=2_000)
        out_bat, res_bat = sort_mod.hyperquicksort_machine(values, 4)
        monkeypatch.setattr(sort_mod, "Machine", ReferenceMachine)
        out_ref, res_ref = sort_mod.hyperquicksort_machine(values, 4)
        assert np.array_equal(out_bat, out_ref)
        _assert_same_result(res_bat, res_ref)

    def test_allreduce_batch_vs_reference(self):
        def program(env):
            comm = Comm.world(env)
            acc = float(env.pid)
            for _ in range(4):
                acc = yield from collectives.allreduce(
                    comm, acc, lambda a, b: a + b, nbytes=8)
            return acc

        topo = Hypercube(4)
        res_bat = Machine(topo, spec=AP1000).run(program)
        res_ref = ReferenceMachine(topo, spec=AP1000).run(program)
        _assert_same_result(res_bat, res_ref)


class TestErrorParity:
    def test_deadlock_detected_by_both(self):
        def program(env):
            yield env.recv(src=(env.pid + 1) % env.nprocs, tag=9)

        from repro.errors import DeadlockError

        for cls in (Machine, ReferenceMachine):
            with pytest.raises(DeadlockError):
                cls(FullyConnected(3), spec=AP1000).run(program)

    def test_unconsumed_mailbox_detected_by_both(self):
        def program(env):
            if env.pid == 0:
                yield env.send(1, "x", tag=1)
            else:
                yield env.work(ops=1)

        from repro.errors import MachineError

        for cls in (Machine, ReferenceMachine):
            with pytest.raises(MachineError, match="unconsumed"):
                cls(FullyConnected(2), spec=AP1000).run(program)

    def test_self_send_detected_by_both(self):
        def program(env):
            yield env.send(env.pid, "x")

        from repro.errors import MachineError

        for cls in (Machine, ReferenceMachine):
            with pytest.raises(MachineError, match="itself"):
                cls(FullyConnected(2), spec=AP1000).run(program)
