"""Regression guard: simulation results are a pure function of the input.

Two runs of the same program on the same machine must agree bit-for-bit —
values, stats, makespan and the full trace — even when the program contains
ANY-wildcard races whose outcome a real machine would leave to chance.
The simulator resolves those races deterministically (earliest delivered
candidate, ties by send sequence), so any run-to-run divergence means
hidden mutable state leaked into the engine.
"""

from __future__ import annotations

import numpy as np

from repro.machine import AP1000, Machine
from repro.machine.events import ANY
from repro.machine.topology import FullyConnected, Hypercube


def _racy_funnel(env):
    """All-to-one ANY/ANY traffic with arrival-order inversions."""
    if env.pid == 0:
        out = []
        for _ in range(2 * (env.nprocs - 1)):
            msg = yield env.recv(ANY, tag=ANY)
            out.append((msg.src, msg.tag, msg.seq))
        return out
    yield env.work(ops=37 * env.pid)
    yield env.send(0, "bulk", tag=1, nbytes=50_000)
    yield env.send(0, "probe", tag=2, nbytes=2)
    return None


def _run_twice(machine_factory, program):
    r1 = machine_factory().run(program)
    r2 = machine_factory().run(program)
    assert r1.makespan == r2.makespan
    assert r1.values == r2.values
    assert r1.stats == r2.stats
    t1 = None if r1.trace is None else list(r1.trace)
    t2 = None if r2.trace is None else list(r2.trace)
    assert t1 == t2
    return r1


class TestDeterminism:
    def test_wildcard_races_with_trace(self):
        res = _run_twice(
            lambda: Machine(FullyConnected(9), spec=AP1000, record_trace=True),
            _racy_funnel)
        # the ANY/ANY drain really did see interleaved sources
        assert len(res.values[0]) == 16

    def test_wildcard_races_single_port(self):
        _run_twice(
            lambda: Machine(FullyConnected(6), spec=AP1000, single_port=True,
                            record_trace=True),
            _racy_funnel)

    def test_hyperquicksort_double_run(self):
        from repro.apps.sort import hyperquicksort_machine

        values = np.random.default_rng(23).integers(0, 5_000, size=2_000)
        out1, res1 = hyperquicksort_machine(values, 4, record_trace=True)
        out2, res2 = hyperquicksort_machine(values, 4, record_trace=True)
        assert np.array_equal(out1, out2)
        assert res1.makespan == res2.makespan
        assert res1.stats == res2.stats
        assert list(res1.trace) == list(res2.trace)

    def test_fresh_machine_instances_agree(self):
        """Same topology parameters on fresh objects give identical runs
        (guards the shared hop-row caches against cross-run leakage)."""

        def program(env):
            dst = (env.pid + 3) % env.nprocs
            src = (env.pid - 3) % env.nprocs
            yield env.send(dst, env.pid, tag=1, nbytes=64)
            msg = yield env.recv(src, tag=1)
            return msg.payload

        r1 = Machine(Hypercube(4), spec=AP1000).run(program)
        r2 = Machine(Hypercube(4), spec=AP1000).run(program)
        assert r1.makespan == r2.makespan
        assert r1.values == r2.values
        assert r1.stats == r2.stats
