"""Tests for repro.machine.simulator — the discrete-event core."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, MachineError
from repro.machine.cost import PERFECT, MachineSpec
from repro.machine.events import ANY
from repro.machine.simulator import Machine
from repro.machine.topology import Hypercube, Ring


SPEC = MachineSpec(name="test", flop_time=1e-6, latency=1e-3, bandwidth=1e6,
                   per_hop_latency=1e-4, send_overhead=1e-5, recv_overhead=1e-5,
                   word_bytes=8)


class TestBasicExecution:
    def test_single_processor_return_value(self):
        def prog(env):
            yield env.compute(0.5)
            return env.pid * 10

        res = Machine(1, spec=SPEC).run(prog)
        assert res.values == [0]
        assert res.makespan == pytest.approx(0.5)

    def test_compute_advances_only_own_clock(self):
        def prog(env):
            yield env.compute(1.0 if env.pid == 0 else 0.25)
            return None

        res = Machine(2, spec=SPEC).run(prog)
        assert res.stats[0].finish_time == pytest.approx(1.0)
        assert res.stats[1].finish_time == pytest.approx(0.25)
        assert res.makespan == pytest.approx(1.0)

    def test_work_uses_flop_time(self):
        def prog(env):
            yield env.work(1000)

        res = Machine(1, spec=SPEC).run(prog)
        assert res.makespan == pytest.approx(1000 * SPEC.flop_time)

    def test_mpmd_different_programs(self):
        def a(env):
            yield env.compute(0.1)
            return "a"

        def b(env):
            yield env.compute(0.2)
            return "b"

        res = Machine(2, spec=SPEC).run([a, b])
        assert res.values == ["a", "b"]

    def test_extra_args_per_processor(self):
        def prog(env, base):
            yield env.compute(0.0)
            return base + env.pid

        res = Machine(3, spec=SPEC).run(prog, args=[(10,), (20,), (30,)])
        assert res.values == [10, 21, 32]

    def test_non_generator_program_rejected(self):
        def not_gen(env):
            return 42

        with pytest.raises(MachineError, match="generator"):
            Machine(1, spec=SPEC).run(not_gen)

    def test_wrong_program_count_rejected(self):
        def prog(env):
            yield env.compute(0)

        with pytest.raises(MachineError):
            Machine(3, spec=SPEC).run([prog, prog])

    def test_bad_yield_value_rejected(self):
        def prog(env):
            yield "not a request"

        with pytest.raises(MachineError, match="yielded"):
            Machine(1, spec=SPEC).run(prog)


class TestMessaging:
    def test_payload_delivered_unchanged(self):
        payload = {"data": [1, 2, 3]}

        def prog(env):
            if env.pid == 0:
                yield env.send(1, payload)
                return None
            msg = yield env.recv(0)
            return msg.payload

        res = Machine(2, spec=SPEC).run(prog)
        assert res.values[1] is payload

    def test_message_timing_includes_latency_and_bandwidth(self):
        def prog(env):
            if env.pid == 0:
                yield env.send(1, None, nbytes=1000)
            else:
                yield env.recv(0)

        res = Machine(2, spec=SPEC).run(prog)
        # sender: send_overhead; wire: latency + 1000/bw; receiver adds recv_overhead
        expected = SPEC.send_overhead + SPEC.latency + 1000 / SPEC.bandwidth + SPEC.recv_overhead
        assert res.stats[1].finish_time == pytest.approx(expected)

    def test_receiver_idle_time_accounted(self):
        def prog(env):
            if env.pid == 0:
                yield env.compute(1.0)   # make the receiver wait
                yield env.send(1, "x", nbytes=8)
            else:
                yield env.recv(0)

        res = Machine(2, spec=SPEC).run(prog)
        assert res.stats[1].idle_seconds == pytest.approx(
            1.0 + SPEC.send_overhead + SPEC.transfer_time(8))

    def test_fifo_order_between_pair(self):
        def prog(env):
            if env.pid == 0:
                for i in range(5):
                    yield env.send(1, i, tag=3)
                return None
            got = []
            for _ in range(5):
                msg = yield env.recv(0, tag=3)
                got.append(msg.payload)
            return got

        res = Machine(2, spec=SPEC).run(prog)
        assert res.values[1] == [0, 1, 2, 3, 4]

    def test_tag_filtering(self):
        def prog(env):
            if env.pid == 0:
                yield env.send(1, "wrong", tag=1)
                yield env.send(1, "right", tag=2)
                return None
            msg = yield env.recv(0, tag=2)
            msg2 = yield env.recv(0, tag=1)
            return (msg.payload, msg2.payload)

        res = Machine(2, spec=SPEC).run(prog)
        assert res.values[1] == ("right", "wrong")

    def test_any_source_receive(self):
        def prog(env):
            if env.pid == 2:
                a = yield env.recv(ANY)
                b = yield env.recv(ANY)
                return sorted([a.payload, b.payload])
            yield env.send(2, env.pid)
            return None

        res = Machine(3, spec=SPEC).run(prog)
        assert res.values[2] == [0, 1]

    def test_hops_increase_transfer_time(self):
        def prog(env):
            if env.pid == 0:
                yield env.send(env.nprocs - 1, None, nbytes=0)
            elif env.pid == env.nprocs - 1:
                yield env.recv(0)

        ring = Machine(Ring(8), spec=SPEC).run(prog)   # 0 -> 7 is 1 hop on ring
        far_spec = SPEC
        # on a ring, 0->4 is 4 hops
        def prog2(env):
            if env.pid == 0:
                yield env.send(4, None, nbytes=0)
            elif env.pid == 4:
                yield env.recv(0)

        mid = Machine(Ring(8), spec=far_spec).run(prog2)
        assert mid.stats[4].finish_time > ring.stats[7].finish_time

    def test_self_send_rejected(self):
        def prog(env):
            yield env.send(env.pid, None)

        with pytest.raises(MachineError, match="itself"):
            Machine(2, spec=SPEC).run(prog)

    def test_send_to_invalid_node_rejected(self):
        def prog(env):
            yield env.send(99, None)

        with pytest.raises(Exception):
            Machine(2, spec=SPEC).run(prog)


class TestAccounting:
    def test_message_counters(self):
        def prog(env):
            if env.pid == 0:
                yield env.send(1, None, nbytes=100)
                yield env.send(1, None, nbytes=50)
                return None
            yield env.recv(0)
            yield env.recv(0)

        res = Machine(2, spec=SPEC).run(prog)
        assert res.stats[0].msgs_sent == 2
        assert res.stats[0].bytes_sent == 150
        assert res.stats[1].msgs_received == 2
        assert res.stats[1].bytes_received == 150
        assert res.total_messages == 2
        assert res.total_bytes == 150

    def test_efficiency_of_pure_compute_is_one(self):
        def prog(env):
            yield env.compute(1.0)

        res = Machine(4, spec=PERFECT).run(prog)
        assert res.efficiency() == pytest.approx(1.0)

    def test_summary_mentions_procs(self):
        def prog(env):
            yield env.compute(0.0)

        assert "2 procs" in Machine(2, spec=SPEC).run(prog).summary()

    def test_trace_recorded_when_enabled(self):
        def prog(env):
            if env.pid == 0:
                yield env.compute(0.1)
                yield env.send(1, "x")
            else:
                yield env.recv(0)

        m = Machine(2, spec=SPEC, record_trace=True)
        res = m.run(prog)
        kinds = res.trace.kind_counts()
        assert kinds["compute"] == 1
        assert kinds["send"] == 1
        assert kinds["recv"] == 1


class TestErrorModes:
    def test_deadlock_detected(self):
        def prog(env):
            yield env.recv((env.pid + 1) % env.nprocs)

        with pytest.raises(DeadlockError, match="deadlock"):
            Machine(2, spec=SPEC).run(prog)

    def test_partial_deadlock_detected(self):
        def prog(env):
            if env.pid == 0:
                yield env.compute(1.0)
                return None
            yield env.recv(0)  # never satisfied

        with pytest.raises(DeadlockError):
            Machine(2, spec=SPEC).run(prog)

    def test_unconsumed_message_is_an_error(self):
        def prog(env):
            if env.pid == 0:
                yield env.send(1, "orphan")
            else:
                yield env.compute(0.0)

        with pytest.raises(MachineError, match="unconsumed"):
            Machine(2, spec=SPEC).run(prog)

    def test_message_to_finished_processor_is_an_error(self):
        def prog(env):
            if env.pid == 1:
                yield env.compute(0.0)
                return None
            yield env.compute(1.0)
            yield env.send(1, "too late")

        with pytest.raises(MachineError, match="finished"):
            Machine(2, spec=SPEC).run(prog)

    def test_program_exceptions_propagate(self):
        def prog(env):
            yield env.compute(0.0)
            raise ValueError("user bug")

        with pytest.raises(ValueError, match="user bug"):
            Machine(1, spec=SPEC).run(prog)


class TestDeterminism:
    def test_identical_runs_identical_timings(self):
        def prog(env):
            comm_peer = env.pid ^ 1
            yield env.compute(0.01 * (env.pid + 1))
            yield env.send(comm_peer, env.pid, nbytes=64)
            msg = yield env.recv(comm_peer)
            yield env.compute(0.001)
            return msg.payload

        m = Machine(Hypercube(2), spec=SPEC)
        r1 = m.run(prog)
        r2 = m.run(prog)
        assert r1.values == r2.values
        assert [s.finish_time for s in r1.stats] == [s.finish_time for s in r2.stats]
        assert r1.makespan == r2.makespan


class TestProcEnv:
    def test_env_properties(self):
        captured = {}

        def prog(env):
            captured["nprocs"] = env.nprocs
            captured["spec"] = env.spec
            captured["repr"] = repr(env)
            yield env.compute(0.25)
            captured["now"] = env.now
            return None

        Machine(2, spec=SPEC).run(prog)
        assert captured["nprocs"] == 2
        assert captured["spec"] is SPEC
        assert "ProcEnv" in captured["repr"]
        assert captured["now"] == pytest.approx(0.25)
