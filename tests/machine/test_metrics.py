"""Tests for repro.machine.metrics."""

from __future__ import annotations

import pytest

from repro.errors import MachineError
from repro.machine import Machine, PERFECT, AP1000
from repro.machine.metrics import (
    ScalingPoint,
    comm_fraction,
    load_imbalance,
    per_proc_table,
    scaling_series,
)


def run_with_work(work_by_pid, spec=PERFECT):
    def prog(env):
        yield env.compute(work_by_pid[env.pid])

    return Machine(len(work_by_pid), spec=spec).run(prog)


class TestLoadImbalance:
    def test_balanced_run_is_one(self):
        res = run_with_work([1.0, 1.0, 1.0, 1.0])
        assert load_imbalance(res) == pytest.approx(1.0)

    def test_single_straggler(self):
        res = run_with_work([1.0, 1.0, 1.0, 5.0])
        assert load_imbalance(res) == pytest.approx(5.0 / 2.0)

    def test_all_idle_is_one(self):
        res = run_with_work([0.0, 0.0])
        assert load_imbalance(res) == 1.0


class TestCommFraction:
    def test_pure_compute_is_zero(self):
        res = run_with_work([1.0, 1.0])
        assert comm_fraction(res) == pytest.approx(0.0)

    def test_messaging_increases_fraction(self):
        def prog(env):
            if env.pid == 0:
                yield env.send(1, b"x" * 100_000, nbytes=100_000)
                yield env.compute(0.0001)
            else:
                yield env.recv(0)
                yield env.compute(0.0001)

        res = Machine(2, spec=AP1000).run(prog)
        assert comm_fraction(res) > 0.5

    def test_empty_run(self):
        res = run_with_work([0.0])
        assert comm_fraction(res) == 0.0


class TestPerProcTable:
    def test_contains_every_processor(self):
        res = run_with_work([0.5, 0.25, 0.125])
        table = per_proc_table(res)
        for pid in range(3):
            assert f"\n{pid:>4}  " in "\n" + table

    def test_has_header(self):
        table = per_proc_table(run_with_work([0.1]))
        assert "compute" in table and "idle" in table


class TestScalingSeries:
    def test_with_explicit_p1(self):
        pts = scaling_series({1: 10.0, 2: 6.0, 4: 4.0})
        assert pts[0] == ScalingPoint(1, 10.0, 1.0, 1.0)
        assert pts[1].speedup == pytest.approx(10.0 / 6.0)
        assert pts[2].efficiency == pytest.approx(10.0 / 16.0)

    def test_without_p1_extrapolates_baseline(self):
        pts = scaling_series({2: 5.0, 4: 3.0})
        assert pts[0].speedup == pytest.approx(2.0)

    def test_explicit_baseline(self):
        pts = scaling_series({4: 2.0}, baseline=8.0)
        assert pts[0].speedup == pytest.approx(4.0)
        assert pts[0].efficiency == pytest.approx(1.0)

    def test_accepts_pairs(self):
        pts = scaling_series([(2, 4.0), (1, 6.0)])
        assert [p.procs for p in pts] == [1, 2]

    def test_invalid_points_rejected(self):
        with pytest.raises(MachineError):
            scaling_series({0: 1.0})
        with pytest.raises(MachineError):
            scaling_series({1: -1.0})
        with pytest.raises(MachineError):
            scaling_series({})
