"""Tests for repro.machine.metrics."""

from __future__ import annotations

import pytest

from repro.errors import MachineError
from repro.machine import Machine, PERFECT, AP1000
from repro.machine.metrics import (
    ScalingPoint,
    comm_fraction,
    fault_counters,
    load_imbalance,
    per_proc_table,
    scaling_series,
)


def run_with_work(work_by_pid, spec=PERFECT):
    def prog(env):
        yield env.compute(work_by_pid[env.pid])

    return Machine(len(work_by_pid), spec=spec).run(prog)


class TestLoadImbalance:
    def test_balanced_run_is_one(self):
        res = run_with_work([1.0, 1.0, 1.0, 1.0])
        assert load_imbalance(res) == pytest.approx(1.0)

    def test_single_straggler(self):
        res = run_with_work([1.0, 1.0, 1.0, 5.0])
        assert load_imbalance(res) == pytest.approx(5.0 / 2.0)

    def test_all_idle_is_undefined(self):
        res = run_with_work([0.0, 0.0])
        with pytest.raises(MachineError, match="all-idle"):
            load_imbalance(res)


class TestCommFraction:
    def test_pure_compute_is_zero(self):
        res = run_with_work([1.0, 1.0])
        assert comm_fraction(res) == pytest.approx(0.0)

    def test_messaging_increases_fraction(self):
        def prog(env):
            if env.pid == 0:
                yield env.send(1, b"x" * 100_000, nbytes=100_000)
                yield env.compute(0.0001)
            else:
                yield env.recv(0)
                yield env.compute(0.0001)

        res = Machine(2, spec=AP1000).run(prog)
        assert comm_fraction(res) > 0.5

    def test_zero_makespan_run_is_undefined(self):
        res = run_with_work([0.0])
        with pytest.raises(MachineError, match="undefined"):
            comm_fraction(res)


class TestPerProcTable:
    def test_contains_every_processor(self):
        res = run_with_work([0.5, 0.25, 0.125])
        table = per_proc_table(res)
        for pid in range(3):
            assert f"\n{pid:>4}  " in "\n" + table

    def test_has_header(self):
        table = per_proc_table(run_with_work([0.1]))
        assert "compute" in table and "idle" in table


class TestFaultCounters:
    def test_fault_free_run_is_all_zero(self):
        counters = fault_counters(run_with_work([1.0, 2.0]))
        assert counters == {"retransmits": 0, "timeouts": 0,
                            "dropped": 0, "crashed": 0}

    def test_chaos_run_counts_drops_and_retransmits(self):
        from repro.faults.models import FaultInjector, FaultSpec
        from repro.machine import ReliableChannel

        def prog(env):
            chan = ReliableChannel(env)
            if env.pid == 0:
                for i in range(5):
                    yield from chan.send(1, i, tag=1)
                return None
            got = []
            for _ in range(5):
                got.append((yield from chan.recv(0, tag=1)))
            return got

        faults = FaultInjector(FaultSpec(seed=3, drop_rate=0.3))
        res = Machine(2, spec=AP1000, faults=faults).run(prog)
        counters = fault_counters(res)
        assert counters["dropped"] > 0
        assert counters["retransmits"] > 0
        assert counters["crashed"] == 0


class TestScalingSeries:
    def test_with_explicit_p1(self):
        pts = scaling_series({1: 10.0, 2: 6.0, 4: 4.0})
        assert pts[0] == ScalingPoint(1, 10.0, 1.0, 1.0)
        assert pts[1].speedup == pytest.approx(10.0 / 6.0)
        assert pts[2].efficiency == pytest.approx(10.0 / 16.0)

    def test_without_p1_extrapolates_baseline(self):
        pts = scaling_series({2: 5.0, 4: 3.0})
        assert pts[0].speedup == pytest.approx(2.0)

    def test_explicit_baseline(self):
        pts = scaling_series({4: 2.0}, baseline=8.0)
        assert pts[0].speedup == pytest.approx(4.0)
        assert pts[0].efficiency == pytest.approx(1.0)

    def test_accepts_pairs(self):
        pts = scaling_series([(2, 4.0), (1, 6.0)])
        assert [p.procs for p in pts] == [1, 2]

    def test_invalid_points_rejected(self):
        with pytest.raises(MachineError):
            scaling_series({0: 1.0})
        with pytest.raises(MachineError):
            scaling_series({1: -1.0})
        with pytest.raises(MachineError):
            scaling_series({})

    def test_speedup_monotone_when_times_shrink(self):
        # strictly improving runtimes -> strictly increasing speedup,
        # sorted by processor count regardless of input order
        pts = scaling_series({8: 2.0, 1: 10.0, 4: 3.5, 2: 6.0})
        assert [p.procs for p in pts] == [1, 2, 4, 8]
        speedups = [p.speedup for p in pts]
        assert speedups == sorted(speedups)
        assert all(b > a for a, b in zip(speedups, speedups[1:]))

    def test_efficiency_never_exceeds_one_for_sublinear(self):
        pts = scaling_series({1: 10.0, 2: 6.0, 4: 4.0, 8: 3.0})
        assert all(0.0 < p.efficiency <= 1.0 for p in pts)
        # sub-linear scaling: efficiency decays as p grows
        effs = [p.efficiency for p in pts]
        assert all(b < a for a, b in zip(effs, effs[1:]))

    def test_single_point_baseline_is_itself(self):
        (pt,) = scaling_series({1: 7.5})
        assert pt == ScalingPoint(1, 7.5, 1.0, 1.0)
