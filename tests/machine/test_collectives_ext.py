"""Tests for repro.machine.collectives_ext — the bandwidth-optimal family."""

from __future__ import annotations

import operator

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine import AP1000, Comm, Machine, PERFECT
from repro.machine import collectives as C
from repro.machine import collectives_ext as CX

SIZES = [1, 2, 3, 4, 5, 8]


def run_world(nprocs, body, spec=PERFECT):
    def prog(env):
        comm = Comm.world(env)
        result = yield from body(comm)
        return result

    return Machine(nprocs, spec=spec).run(prog)


class TestReduceScatter:
    @pytest.mark.parametrize("n", SIZES)
    def test_each_rank_gets_its_chunk_sum(self, n):
        def body(comm):
            # member r contributes chunks [r*10 + c for c in range(n)]
            mine = [comm.rank * 10 + c for c in range(comm.size)]
            out = yield from CX.reduce_scatter(comm, mine, operator.add)
            return out

        values = run_world(n, body).values
        # rank r holds the sum over members of chunk (r + 1) % n
        total_member_part = sum(r * 10 for r in range(n))
        for r, got in enumerate(values):
            c = (r + 1) % n
            assert got == total_member_part + n * c

    def test_numpy_vector_chunks(self):
        n = 4

        def body(comm):
            mine = [np.full(3, float(comm.rank + 1)) for _ in range(comm.size)]
            out = yield from CX.reduce_scatter(comm, mine, operator.add)
            return out

        values = run_world(n, body).values
        for got in values:
            assert np.allclose(got, 1 + 2 + 3 + 4)

    def test_wrong_chunk_count_rejected(self):
        def body(comm):
            out = yield from CX.reduce_scatter(comm, [1], operator.add)
            return out

        with pytest.raises(MachineError, match="chunks"):
            run_world(3, body)

    def test_message_rounds(self):
        n = 6

        def body(comm):
            out = yield from CX.reduce_scatter(
                comm, [1] * comm.size, operator.add, nbytes=8)
            return out

        res = run_world(n, body)
        assert res.total_messages == n * (n - 1)


class TestRingAllreduce:
    @pytest.mark.parametrize("n", SIZES)
    def test_matches_tree_allreduce(self, n):
        def ring(comm):
            mine = [(comm.rank + 1) * (c + 1) for c in range(comm.size)]
            out = yield from CX.ring_allreduce(comm, mine, operator.add)
            return out

        def tree(comm):
            mine = [(comm.rank + 1) * (c + 1) for c in range(comm.size)]
            out = []
            for c in range(comm.size):
                v = yield from C.allreduce(comm, mine[c], operator.add)
                out.append(v)
            return out

        ring_vals = run_world(n, ring).values
        tree_vals = run_world(n, tree).values
        assert ring_vals == tree_vals
        assert all(v == ring_vals[0] for v in ring_vals)

    def test_vector_semantics(self):
        n = 4

        def body(comm):
            chunks = [np.arange(2) + comm.rank for _ in range(comm.size)]
            out = yield from CX.ring_allreduce(comm, chunks, operator.add)
            return np.concatenate(out)

        values = run_world(n, body).values
        expected = np.concatenate(
            [sum(np.arange(2) + r for r in range(n)) for _ in range(n)])
        for v in values:
            assert np.allclose(v, expected)

    def test_bandwidth_advantage_for_large_payloads(self):
        """Ring allreduce must beat tree reduce+bcast once the payload is
        big enough — the crossover the algorithm exists for."""
        n = 8
        big = 10_000_000  # bytes per chunk

        def ring(comm):
            out = yield from CX.ring_allreduce(
                comm, [1] * comm.size, operator.add, nbytes=big // comm.size)
            return out

        def tree(comm):
            v = yield from C.allreduce(comm, 1, operator.add, nbytes=big)
            return v

        t_ring = run_world(n, ring, spec=AP1000).makespan
        t_tree = run_world(n, tree, spec=AP1000).makespan
        assert t_ring < t_tree

    def test_tree_wins_for_tiny_payloads(self):
        n = 8

        def ring(comm):
            out = yield from CX.ring_allreduce(
                comm, [1] * comm.size, operator.add, nbytes=1)
            return out

        def tree(comm):
            v = yield from C.allreduce(comm, 1, operator.add, nbytes=1)
            return v

        t_ring = run_world(n, ring, spec=AP1000).makespan
        t_tree = run_world(n, tree, spec=AP1000).makespan
        assert t_tree < t_ring


class TestPipelinedBcast:
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("chunks", [1, 3, 8])
    def test_delivers_value_everywhere(self, n, chunks):
        def body(comm):
            v = yield from CX.pipelined_bcast(
                comm, "payload" if comm.rank == 0 else None,
                chunks=chunks, nbytes=4096)
            return v

        assert run_world(n, body).values == ["payload"] * n

    def test_nonzero_root(self):
        def body(comm):
            v = yield from CX.pipelined_bcast(
                comm, "x" if comm.rank == 2 else None, root=2, nbytes=64)
            return v

        assert run_world(5, body).values == ["x"] * 5

    def test_invalid_params(self):
        def bad_root(comm):
            v = yield from CX.pipelined_bcast(comm, 1, root=9)
            return v

        with pytest.raises(MachineError):
            run_world(2, bad_root)

        def bad_chunks(comm):
            v = yield from CX.pipelined_bcast(comm, 1, chunks=0)
            return v

        with pytest.raises(MachineError):
            run_world(2, bad_chunks)

    def test_pipelining_beats_tree_for_large_payloads(self):
        n = 8
        big = 50_000_000

        def pipe(comm):
            v = yield from CX.pipelined_bcast(
                comm, 1 if comm.rank == 0 else None, chunks=16, nbytes=big)
            return v

        def tree(comm):
            v = yield from C.bcast(comm, 1 if comm.rank == 0 else None,
                                   nbytes=big)
            return v

        t_pipe = run_world(n, pipe, spec=AP1000).makespan
        t_tree = run_world(n, tree, spec=AP1000).makespan
        assert t_pipe < t_tree

    def test_tree_beats_pipelining_for_small_payloads(self):
        n = 16

        def pipe(comm):
            v = yield from CX.pipelined_bcast(
                comm, 1 if comm.rank == 0 else None, chunks=4, nbytes=8)
            return v

        def tree(comm):
            v = yield from C.bcast(comm, 1 if comm.rank == 0 else None,
                                   nbytes=8)
            return v

        t_pipe = run_world(n, pipe, spec=AP1000).makespan
        t_tree = run_world(n, tree, spec=AP1000).makespan
        assert t_tree < t_pipe

    def test_singleton(self):
        def body(comm):
            v = yield from CX.pipelined_bcast(comm, 42)
            return v

        assert run_world(1, body).values == [42]


class TestSmartBcast:
    def _run(self, kind, nbytes, n=16):
        def prog(env):
            comm = Comm.world(env)
            if kind == "smart":
                v = yield from CX.smart_bcast(
                    comm, "v" if comm.rank == 0 else None, nbytes=nbytes)
            elif kind == "tree":
                v = yield from C.bcast(
                    comm, "v" if comm.rank == 0 else None, nbytes=nbytes)
            else:
                v = yield from CX.pipelined_bcast(
                    comm, "v" if comm.rank == 0 else None, chunks=8,
                    nbytes=nbytes)
            return v

        res = run_world(n, prog if False else None, spec=AP1000) \
            if False else Machine(n, spec=AP1000).run(prog)
        assert all(v == "v" for v in res.values)
        return res.makespan

    @pytest.mark.parametrize("nbytes", [8, 1024, 20_000])
    def test_small_payload_picks_tree(self, nbytes):
        assert self._run("smart", nbytes) == pytest.approx(
            self._run("tree", nbytes))

    def test_huge_payload_picks_pipeline(self):
        nbytes = 50_000_000
        assert self._run("smart", nbytes) == pytest.approx(
            self._run("pipe", nbytes))

    @pytest.mark.parametrize("nbytes", [8, 4096, 1_000_000, 50_000_000])
    def test_never_worse_than_either(self, nbytes):
        t_smart = self._run("smart", nbytes)
        assert t_smart <= min(self._run("tree", nbytes),
                              self._run("pipe", nbytes)) * 1.01

    def test_size_agreement_without_explicit_nbytes(self):
        """Members must agree on the algorithm even when only the root
        knows the payload size (one extra small broadcast)."""
        import numpy as np

        def prog(env):
            comm = Comm.world(env)
            payload = np.zeros(1000) if comm.rank == 0 else None
            v = yield from CX.smart_bcast(comm, payload)
            return np.asarray(v).size

        res = Machine(8, spec=AP1000).run(prog)
        assert res.values == [1000] * 8

    def test_singleton(self):
        def prog(env):
            comm = Comm.world(env)
            v = yield from CX.smart_bcast(comm, 42)
            return v

        assert Machine(1, spec=AP1000).run(prog).values == [42]
