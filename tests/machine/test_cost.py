"""Tests for repro.machine.cost."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.machine.cost import AP1000, MODERN_CLUSTER, PERFECT, MachineSpec, estimate_nbytes


class TestMachineSpec:
    def test_transfer_time_is_latency_plus_bandwidth_term(self):
        spec = MachineSpec(latency=1e-3, bandwidth=1e6, per_hop_latency=0.0)
        assert spec.transfer_time(1000) == pytest.approx(1e-3 + 1e-3)

    def test_per_hop_latency_charged_beyond_first_hop(self):
        spec = MachineSpec(latency=0.0, bandwidth=1e9, per_hop_latency=1e-6)
        assert spec.transfer_time(0, hops=1) == pytest.approx(0.0)
        assert spec.transfer_time(0, hops=4) == pytest.approx(3e-6)

    def test_compute_time_scales_with_ops(self):
        spec = MachineSpec(flop_time=2e-7)
        assert spec.compute_time(1e6) == pytest.approx(0.2)

    def test_words_uses_word_bytes(self):
        assert MachineSpec(word_bytes=4).words(10) == 40

    def test_replace_changes_one_field(self):
        spec = AP1000.replace(latency=1e-6)
        assert spec.latency == 1e-6
        assert spec.bandwidth == AP1000.bandwidth

    @pytest.mark.parametrize("field,value", [
        ("flop_time", -1.0),
        ("latency", float("nan")),
        ("bandwidth", 0.0),
        ("bandwidth", -5.0),
        ("word_bytes", 0),
        ("send_overhead", -1e-9),
    ])
    def test_invalid_constants_rejected(self, field, value):
        with pytest.raises(MachineError):
            MachineSpec(**{field: value})

    def test_negative_nbytes_rejected(self):
        with pytest.raises(MachineError):
            AP1000.transfer_time(-1)

    def test_zero_hops_rejected(self):
        with pytest.raises(MachineError):
            AP1000.transfer_time(10, hops=0)

    def test_negative_ops_rejected(self):
        with pytest.raises(MachineError):
            AP1000.compute_time(-1)

    @given(st.integers(0, 10**9), st.integers(1, 16))
    def test_transfer_time_monotone_in_size_and_hops(self, nbytes, hops):
        t = AP1000.transfer_time(nbytes, hops)
        assert t >= AP1000.transfer_time(nbytes, 1) or hops == 1
        assert AP1000.transfer_time(nbytes + 1024, hops) >= t


class TestPresets:
    def test_ap1000_is_slower_than_modern(self):
        assert AP1000.flop_time > MODERN_CLUSTER.flop_time
        assert AP1000.latency > MODERN_CLUSTER.latency
        assert AP1000.bandwidth < MODERN_CLUSTER.bandwidth

    def test_perfect_communication_is_free(self):
        assert PERFECT.transfer_time(10**9) == pytest.approx(0.0, abs=1e-15)
        assert PERFECT.send_overhead == 0.0

    def test_presets_are_named(self):
        assert AP1000.name == "AP1000"
        assert PERFECT.name == "perfect"


class TestEstimateNbytes:
    def test_numpy_arrays_exact(self):
        a = np.zeros(100, dtype=np.float64)
        assert estimate_nbytes(a) == 800

    def test_scalars_cost_one_word(self):
        assert estimate_nbytes(5, word_bytes=8) == 8
        assert estimate_nbytes(3.14, word_bytes=4) == 4
        assert estimate_nbytes(True) == 8
        assert estimate_nbytes(None) == 8

    def test_sequences_sum_elements(self):
        assert estimate_nbytes([1, 2, 3], word_bytes=8) == 24
        assert estimate_nbytes((1, [2, 3]), word_bytes=8) == 24

    def test_strings_by_length(self):
        assert estimate_nbytes("hello") == 5
        assert estimate_nbytes(b"") == 1

    def test_dicts_count_keys_and_values(self):
        assert estimate_nbytes({"a": 1}, word_bytes=8) == 9  # len("a") + 8

    def test_opaque_objects_cost_one_word(self):
        assert estimate_nbytes(object(), word_bytes=8) == 8

    def test_empty_list_costs_one_word(self):
        assert estimate_nbytes([], word_bytes=8) == 8


class TestEstimateNbytesBuffers:
    """The buffer-protocol payloads report their exact byte size."""

    def test_bytearray_by_length(self):
        assert estimate_nbytes(bytearray(b"\x00" * 37)) == 37
        assert estimate_nbytes(bytearray()) == 1  # floor of one byte

    def test_memoryview_by_buffer_size(self):
        assert estimate_nbytes(memoryview(b"abcdef")) == 6
        assert estimate_nbytes(memoryview(bytearray(100))) == 100
        assert estimate_nbytes(memoryview(b"")) == 1

    def test_memoryview_of_typed_array(self):
        arr = np.arange(10, dtype=np.float64)
        assert estimate_nbytes(memoryview(arr)) == 80

    def test_ndarray_exact_nbytes(self):
        assert estimate_nbytes(np.zeros((4, 4), dtype=np.int32)) == 64


class TestEstimateNbytesFlatFastPath:
    """Homogeneous flat lists/tuples are costed without per-element recursion,
    with a result identical to the recursive definition."""

    def test_flat_int_list(self):
        assert estimate_nbytes([1, 2, 3], word_bytes=8) == 24

    def test_flat_float_tuple(self):
        assert estimate_nbytes((0.5, 1.5), word_bytes=4) == 8

    def test_flat_numpy_scalar_list(self):
        xs = [np.float64(x) for x in range(5)]
        assert estimate_nbytes(xs, word_bytes=8) == 40

    def test_mixed_types_still_one_word_each(self):
        # int + float mix misses the fast path but the recursive cost agrees
        assert estimate_nbytes([1, 2.0, 3], word_bytes=8) == 24

    def test_nested_lists_recurse(self):
        assert estimate_nbytes([[1, 2], [3]], word_bytes=8) == 24

    def test_list_of_arrays_sums_buffers(self):
        payload = [np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int64)]
        assert estimate_nbytes(payload) == 40

    def test_sets_cost_one_word_per_element(self):
        assert estimate_nbytes({1, 2, 3}, word_bytes=8) == 24
        assert estimate_nbytes(frozenset(), word_bytes=8) == 8

    @given(st.lists(st.integers(-10**6, 10**6), max_size=50),
           st.sampled_from([4, 8]))
    def test_fast_path_matches_recursive_definition(self, xs, wb):
        expected = max(wb, sum(estimate_nbytes(x, wb) for x in xs)) if xs else wb
        assert estimate_nbytes(xs, word_bytes=wb) == expected
