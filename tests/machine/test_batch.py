"""Batch-engine edge conditions: epochs, wildcards, fallback, faults.

The batched drive-order engine (:mod:`repro.machine.batch`) must be
observationally identical to the per-event engine it accelerates —
``Machine(..., batch=False)`` runs the same program through the retained
per-event core, so every test here is a paired run.  The cases target
exactly the places where batching could diverge: ANY-wildcard arrival
ordering *inside one flush epoch*, zero-latency machines (the PERFECT
spec collapses all arrivals onto the send clock), timeouts racing
hand-offs at quiescence, and the transparent per-event fallback for
crash-fault runs and desynchronised (non-yielding) programs.
"""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, MachineError
from repro.faults import FaultInjector, FaultSpec
from repro.machine import AP1000, Machine
from repro.machine.cost import PERFECT
from repro.machine.events import ANY
from repro.machine.topology import FullyConnected, Hypercube, Ring


def _paired(program, topo_factory, *, spec=AP1000, **kw):
    """Run ``program`` on the batched and the per-event engine; both must
    agree on values, stats (bit-exact virtual times included), makespan
    and event count."""
    res_b = Machine(topo_factory(), spec=spec, **kw).run(program)
    res_e = Machine(topo_factory(), spec=spec, batch=False, **kw).run(program)
    assert res_b.makespan == res_e.makespan
    assert res_b.values == res_e.values
    assert res_b.stats == res_e.stats
    assert res_b.events == res_e.events
    assert res_b.crashed == res_e.crashed
    return res_b


class TestWildcardEpochOrdering:
    def test_any_ordering_inside_one_epoch(self):
        """All senders flush in one epoch; the drain's ANY picks must
        follow arrival order (with send-key tie-breaks), not flush order.

        ``msg.seq`` is deliberately not compared across engines: it is an
        engine-internal ordering token (per-event core: global send order;
        batched core: delivery order — see DESIGN.md), so the contract is
        its *invariants* — unique, 1..n, consistent with arrival order —
        checked separately below."""

        def program(env):
            p = env.nprocs
            if env.pid == 0:
                out = []
                for _ in range(3 * (p - 1)):
                    msg = yield env.recv(ANY, tag=ANY)
                    out.append((msg.src, msg.tag, msg.arrival))
                return out
            # Big first, small later: the later sends overtake on the wire,
            # so arrival order inverts program order inside the epoch.
            yield env.send(0, "big", tag=1, nbytes=200_000)
            yield env.send(0, "mid", tag=2, nbytes=5_000)
            yield env.send(0, "small", tag=3, nbytes=1)
            return None

        res = _paired(program, lambda: FullyConnected(9))
        got = res.values[0]
        # Every send is drained exactly once.  (Pick *order* is the
        # engines' business — the first pick is a direct hand-off of the
        # earliest *delivered* message, which the later small sends
        # overtake on the wire — and _paired above proved both engines
        # agree on it bit-exactly, arrivals included.)
        assert len(got) == 24 == len(set(got))
        assert {tag for (_, tag, _) in got} == {1, 2, 3}
        assert {src for (src, _, _) in got} == set(range(1, 9))

        def seq_program(env):
            p = env.nprocs
            if env.pid == 0:
                seqs = []
                for _ in range(3 * (p - 1)):
                    msg = yield env.recv(ANY, tag=ANY)
                    seqs.append(msg.seq)
                return seqs
            yield env.send(0, "big", tag=1, nbytes=200_000)
            yield env.send(0, "mid", tag=2, nbytes=5_000)
            yield env.send(0, "small", tag=3, nbytes=1)
            return None

        for batch in (True, False):
            seqs = Machine(FullyConnected(9), spec=AP1000,
                           batch=batch).run(seq_program).values[0]
            # Every send got exactly one token and the drain saw each once.
            assert sorted(seqs) == list(range(1, len(seqs) + 1))

    def test_mixed_patterns_after_wildcard_takes(self):
        """Concrete receives interleaved with ANY takes exercise the
        taken-row skipping of both stream heads and solo views."""

        def program(env):
            p = env.nprocs
            if env.pid == 0:
                out = []
                for _ in range(p - 1):
                    msg = yield env.recv(ANY, tag=0)
                    out.append((msg.src, msg.payload))
                for src in range(1, p):
                    msg = yield env.recv(src, tag=ANY)
                    out.append((msg.src, msg.payload))
                return out
            yield env.work(ops=50 * env.pid)
            yield env.send(0, ("a", env.pid), tag=0, nbytes=50_000)
            yield env.send(0, ("b", env.pid), tag=env.pid % 2 + 1, nbytes=4)
            return None

        _paired(program, lambda: FullyConnected(7))


class TestPerfectMachine:
    def test_zero_latency_wildcards(self):
        """PERFECT spec: every arrival equals its send time, so the epoch
        is one big virtual instant and ordering rests entirely on the
        (time, pid, ordinal) send-key tie-breaks."""

        def program(env):
            p = env.nprocs
            if env.pid == 0:
                out = []
                for _ in range(2 * (p - 1)):
                    msg = yield env.recv(ANY, tag=ANY)
                    out.append((msg.src, msg.tag, msg.payload))
                return out
            yield env.send(0, env.pid, tag=0, nbytes=1_000)
            yield env.send(0, -env.pid, tag=1, nbytes=1)
            return None

        res = _paired(program, lambda: FullyConnected(8), spec=PERFECT)
        # PERFECT has zero latency/overhead but finite (1e30) bandwidth,
        # so the makespan is epsilon-sized, not exactly zero.
        assert res.makespan < 1e-20

    def test_zero_latency_ring(self):
        def program(env):
            right = (env.pid + 1) % env.nprocs
            left = (env.pid - 1) % env.nprocs
            for r in range(5):
                yield env.send(right, r, tag=1)
                msg = yield env.recv(left, tag=1)
                assert msg.payload == r
            return env.pid

        _paired(program, lambda: Ring(6), spec=PERFECT)


class TestTimeouts:
    def test_timeout_vs_late_message_race(self):
        """A timeout deadline racing a hand-off: the later sender's message
        arrives after the receiver's deadline, so the receive times out
        and the message must be drained by the follow-up receive."""

        def program(env):
            if env.pid == 0:
                first = yield env.recv(ANY, tag=ANY, timeout=1e-6)
                second = yield env.recv(ANY, tag=ANY, timeout=None)
                return (first is None, second.src)
            yield env.work(ops=10_000_000)  # 4 virtual seconds on AP1000
            yield env.send(0, "late", tag=0)
            return None

        res = _paired(program, lambda: FullyConnected(2))
        assert res.values[0] == (True, 1)

    def test_timeout_never_fires_when_message_beats_it(self):
        def program(env):
            if env.pid == 0:
                msg = yield env.recv(1, tag=7, timeout=100.0)
                return msg.payload
            yield env.send(0, "quick", tag=7)
            return None

        res = _paired(program, lambda: FullyConnected(2))
        assert res.values[0] == "quick"
        assert res.stats[0].timeouts == 0


class TestQuiescenceDecisions:
    def test_non_solo_wildcard_decided_by_bounds(self):
        """Two receivers block at once; each wildcard pick must be decided
        by the conservative lookahead bounds (neither is the last live
        processor, so the solo snapshot path cannot apply)."""

        def program(env):
            p = env.nprocs
            if env.pid < 2:
                got = []
                for _ in range((p - 2) // 2):
                    msg = yield env.recv(ANY, tag=env.pid)
                    got.append(msg.src)
                return got
            yield env.work(ops=99 * env.pid)
            yield env.send(env.pid % 2, env.pid, tag=env.pid % 2, nbytes=16)
            return None

        _paired(program, lambda: FullyConnected(10))


class TestFallbacks:
    def test_crash_faults_take_per_event_path(self):
        """Seeded crash faults force the per-event engine; the batched
        default must transparently produce the identical faulted run."""

        def program(env):
            if env.pid == 0:
                first = yield env.recv(1, tag=0, timeout=5.0)
                second = yield env.recv(1, tag=1, timeout=0.5)
                return (first and first.payload, second and second.payload)
            yield env.send(0, "pre-crash", tag=0)
            yield env.work(ops=50_000_000)  # dies mid-compute
            yield env.send(0, "post-crash", tag=1)
            return None

        def run(batch):
            return Machine(
                FullyConnected(2), spec=AP1000, batch=batch,
                faults=FaultInjector(FaultSpec(seed=3, crash_at={1: 1.0})),
            ).run(program)

        res_b, res_e = run(True), run(False)
        assert res_b.crashed == res_e.crashed == [1]
        assert res_b.values == res_e.values
        assert res_b.values[0] == ("pre-crash", None)
        assert res_b.makespan == res_e.makespan
        assert res_b.stats == res_e.stats

    def test_desync_program_falls_back_to_per_event_semantics(self):
        """A program that calls ``env.send`` without yielding the request
        desynchronises the batch engine's immediate effects; the run must
        restart on the per-event engine, where an unyielded request is
        simply discarded (no message is ever sent)."""

        def program(env):
            if env.pid == 0:
                env.send(1, "never-yielded", tag=0)  # deliberately not yielded
                yield env.work(ops=10)
                return "sender-done"
            msg = yield env.recv(0, tag=0, timeout=1.0)
            return "got" if msg is not None else "timed-out"

        res = _paired(program, lambda: FullyConnected(2))
        assert res.values == ["sender-done", "timed-out"]

    def test_error_parity_self_send(self):
        def program(env):
            yield env.send(env.pid, "x")

        for batch in (True, False):
            with pytest.raises(MachineError, match="itself"):
                Machine(FullyConnected(2), spec=AP1000, batch=batch).run(program)

    def test_error_parity_deadlock(self):
        def program(env):
            yield env.recv(src=(env.pid + 1) % env.nprocs, tag=9)

        for batch in (True, False):
            with pytest.raises(DeadlockError):
                Machine(FullyConnected(3), spec=AP1000, batch=batch).run(program)


class TestBatchedFlushPaths:
    def test_multi_destination_vectorised_flush(self):
        """A fan-out bigger than the vectorisation threshold with many
        distinct destinations exercises the hop-array gather path."""

        def program(env):
            p = env.nprocs
            for d in range(p):
                if d != env.pid:
                    yield env.send(d, (env.pid, d), tag=2, nbytes=24)
            total = 0
            for d in range(p):
                if d != env.pid:
                    msg = yield env.recv(d, tag=2)
                    total += msg.payload[0]
            return total

        _paired(program, lambda: Hypercube(5))

    def test_single_stream_bulk_flush(self):
        """All sends of an epoch target one (dst, tag): the whole-batch
        C-level append path."""

        def program(env):
            if env.pid == 0:
                acc = 0
                for _ in range(40 * (env.nprocs - 1)):
                    msg = yield env.recv(ANY, tag=5)
                    acc += msg.payload
                return acc
            for i in range(40):
                yield env.send(0, i, tag=5, nbytes=8)
            return None

        res = _paired(program, lambda: FullyConnected(4))
        assert res.values[0] == 3 * sum(range(40))
