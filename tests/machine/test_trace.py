"""Tests for repro.machine.trace."""

from __future__ import annotations

from repro.machine.trace import Trace, TraceEvent


def make_trace():
    t = Trace()
    t.record(0, "compute", 0.0, 1.0)
    t.record(0, "send", 1.0, 1.1, dst=1, nbytes=100)
    t.record(1, "recv", 0.0, 1.5, src=0, nbytes=100)
    t.record(1, "compute", 1.5, 2.0)
    return t


class TestTrace:
    def test_len_and_iter(self):
        t = make_trace()
        assert len(t) == 4
        assert all(isinstance(e, TraceEvent) for e in t)

    def test_filter_by_pid(self):
        assert len(make_trace().events(pid=0)) == 2

    def test_filter_by_kind(self):
        assert len(make_trace().events(kind="compute")) == 2

    def test_filter_combined(self):
        events = make_trace().events(pid=1, kind="recv")
        assert len(events) == 1 and events[0].detail["src"] == 0

    def test_kind_counts(self):
        counts = make_trace().kind_counts()
        assert counts == {"compute": 2, "send": 1, "recv": 1}

    def test_message_count_and_bytes(self):
        t = make_trace()
        assert t.message_count() == 1
        assert t.bytes_sent() == 100

    def test_event_duration(self):
        e = TraceEvent(0, "compute", 1.0, 3.5)
        assert e.duration == 2.5

    def test_busy_intervals_sorted(self):
        t = Trace()
        t.record(0, "compute", 5.0, 6.0)
        t.record(0, "compute", 1.0, 2.0)
        assert t.busy_intervals(0) == [(1.0, 2.0), (5.0, 6.0)]

    def test_zero_duration_events_not_busy(self):
        t = Trace()
        t.record(0, "send", 1.0, 1.0)
        assert t.busy_intervals(0) == []

    def test_gantt_renders_all_procs(self):
        g = make_trace().gantt(width=30)
        assert "p0" in g and "p1" in g
        assert "#" in g  # compute glyph

    def test_gantt_empty(self):
        assert "empty" in Trace().gantt()
