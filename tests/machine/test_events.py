"""Tests for repro.machine.events."""

from __future__ import annotations

import pytest

from repro.machine.events import ANY, Compute, Message, Recv, Send


class TestAny:
    def test_singleton(self):
        from repro.machine.events import _Any

        assert _Any() is ANY

    def test_repr(self):
        assert repr(ANY) == "ANY"


class TestCompute:
    def test_stores_seconds(self):
        assert Compute(1.5).seconds == 1.5

    def test_zero_allowed(self):
        Compute(0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Compute(-0.1)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Compute(float("nan"))


class TestRecvMatching:
    def _msg(self, src=1, tag=5):
        return Message(src=src, dst=0, tag=tag, payload=None, nbytes=0,
                       sent_at=0.0, arrival=1.0, seq=1)

    def test_exact_match(self):
        assert Recv(src=1, tag=5).matches(self._msg())

    def test_src_mismatch(self):
        assert not Recv(src=2, tag=5).matches(self._msg())

    def test_tag_mismatch(self):
        assert not Recv(src=1, tag=6).matches(self._msg())

    def test_any_src(self):
        assert Recv(src=ANY, tag=5).matches(self._msg())

    def test_any_tag(self):
        assert Recv(src=1, tag=ANY).matches(self._msg())

    def test_any_any(self):
        assert Recv().matches(self._msg())


class TestDataclasses:
    def test_send_defaults(self):
        s = Send(dst=3, payload="x")
        assert s.tag == 0 and s.nbytes is None

    def test_message_repr_contains_route(self):
        m = Message(src=1, dst=2, tag=0, payload=None, nbytes=10,
                    sent_at=0.0, arrival=0.5, seq=7)
        assert "1->2" in repr(m)

    def test_requests_are_frozen(self):
        with pytest.raises(Exception):
            Compute(1.0).seconds = 2.0  # type: ignore[misc]
