"""Property-based stress tests of the discrete-event simulator.

Random *structurally deadlock-free* programs (every send is matched by the
partner's receive in the same round) are generated and the simulator's
global invariants checked:

* determinism: identical program → identical timings and results,
* conservation: messages sent == messages received,
* causality: every receive completes at or after the matching send,
* accounting: per-processor compute+overhead+idle never exceeds its
  finish time; makespan == max finish time.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import AP1000, Machine
from repro.machine.cost import MachineSpec


def make_round_robin_program(schedule):
    """Build an SPMD program from a per-round schedule.

    ``schedule`` is a list of rounds; each round is ``("compute", seconds)``
    or ``("exchange", distance, nbytes)`` — every processor sends to
    ``(pid + distance) % n`` and receives from ``(pid - distance) % n``,
    which is always deadlock-free with asynchronous sends.
    """

    def program(env):
        n = env.nprocs
        received = 0
        for tag, step in enumerate(schedule):
            if step[0] == "compute":
                yield env.compute(step[1] * (1 + env.pid % 3))
            else:
                _kind, dist, nbytes = step
                dist = dist % n
                if dist == 0:
                    continue
                yield env.send((env.pid + dist) % n, env.pid, tag=tag,
                               nbytes=nbytes)
                msg = yield env.recv((env.pid - dist) % n, tag=tag)
                received += 1
                assert msg.payload == (env.pid - dist) % n
        return received

    return program


steps = st.lists(
    st.one_of(
        st.tuples(st.just("compute"),
                  st.floats(0, 1e-3, allow_nan=False, allow_infinity=False)),
        st.tuples(st.just("exchange"), st.integers(1, 7),
                  st.integers(1, 4096)),
    ),
    min_size=1, max_size=12,
)


class TestSimulatorInvariants:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 9), schedule=steps)
    def test_determinism(self, n, schedule):
        prog = make_round_robin_program(schedule)
        m = Machine(n, spec=AP1000)
        r1 = m.run(prog)
        r2 = m.run(prog)
        assert r1.values == r2.values
        assert [s.finish_time for s in r1.stats] == \
            [s.finish_time for s in r2.stats]

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 9), schedule=steps)
    def test_message_conservation(self, n, schedule):
        res = Machine(n, spec=AP1000).run(make_round_robin_program(schedule))
        sent = sum(s.msgs_sent for s in res.stats)
        received = sum(s.msgs_received for s in res.stats)
        assert sent == received
        assert sum(s.bytes_sent for s in res.stats) == \
            sum(s.bytes_received for s in res.stats)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(1, 9), schedule=steps)
    def test_accounting_bounds(self, n, schedule):
        res = Machine(n, spec=AP1000).run(make_round_robin_program(schedule))
        for s in res.stats:
            assert s.compute_seconds >= 0
            assert s.overhead_seconds >= 0
            assert s.idle_seconds >= -1e-12
            total = s.compute_seconds + s.overhead_seconds + s.idle_seconds
            assert total <= s.finish_time + 1e-9
        assert res.makespan == max(s.finish_time for s in res.stats)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(2, 9), schedule=steps)
    def test_causality_via_trace(self, n, schedule):
        m = Machine(n, spec=AP1000, record_trace=True)
        res = m.run(make_round_robin_program(schedule))
        sends = res.trace.events(kind="send")
        recvs = res.trace.events(kind="recv")
        # every receive ends no earlier than the earliest possible wire time
        min_wire = AP1000.latency
        for r in recvs:
            matching = [s for s in sends
                        if s.detail.get("dst") == r.pid
                        and s.detail.get("tag") == r.detail.get("tag")
                        and s.pid == r.detail.get("src")]
            assert matching, "receive without a matching send"
            earliest = min(s.start for s in matching)
            assert r.end >= earliest + min_wire - 1e-12

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 8), schedule=steps,
           flop=st.floats(1e-9, 1e-5), latency=st.floats(0, 1e-2))
    def test_invariants_across_machine_specs(self, n, schedule, flop, latency):
        spec = MachineSpec(flop_time=flop, latency=latency)
        res = Machine(n, spec=spec).run(make_round_robin_program(schedule))
        assert res.makespan >= 0
        assert res.total_messages == sum(s.msgs_received for s in res.stats)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(2, 8), schedule=steps)
    def test_slower_machine_never_faster(self, n, schedule):
        """Scaling all cost constants up cannot reduce the makespan."""
        prog = make_round_robin_program(schedule)
        fast = Machine(n, spec=AP1000).run(prog)
        slow_spec = AP1000.replace(
            flop_time=AP1000.flop_time * 10,
            latency=AP1000.latency * 10,
            bandwidth=AP1000.bandwidth / 10,
            send_overhead=AP1000.send_overhead * 10,
            recv_overhead=AP1000.recv_overhead * 10,
        )
        slow = Machine(n, spec=slow_spec).run(prog)
        assert slow.makespan >= fast.makespan - 1e-12
