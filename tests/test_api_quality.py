"""Package-wide API quality gates.

A library is adoptable when its public surface is documented and its
exports are honest.  These tests walk every ``repro`` module and enforce:

* every module has a docstring,
* every name in ``__all__`` actually exists in the module,
* every public function/class reachable through ``__all__`` has a
  docstring,
* public callables have no positional-only surprises (inspectable
  signatures).
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    m.name for m in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not m.name.endswith("__main__")
)


@pytest.mark.parametrize("modname", MODULES)
def test_module_has_docstring(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__ and mod.__doc__.strip(), f"{modname} lacks a docstring"


@pytest.mark.parametrize("modname", MODULES)
def test_all_exports_exist(modname):
    mod = importlib.import_module(modname)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{modname}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("modname", MODULES)
def test_public_symbols_documented(modname):
    mod = importlib.import_module(modname)
    undocumented = []
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{modname}: undocumented exports {undocumented}"


@pytest.mark.parametrize("modname", MODULES)
def test_public_callables_have_inspectable_signatures(modname):
    mod = importlib.import_module(modname)
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if inspect.isfunction(obj):
            inspect.signature(obj)  # raises if not inspectable


def test_top_level_all_is_complete():
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_version_is_pep440_ish():
    import re

    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
