"""Documentation accuracy: code shown in the README must actually run.

Extracts fenced ``python`` blocks from README.md and executes the ones that
are self-contained (marked by importing from ``repro``), with undefined
helper names stubbed.  A README that drifts from the API fails here.
"""

from __future__ import annotations

import pathlib
import re

import pytest

README = pathlib.Path(__file__).parent.parent / "README.md"


def python_blocks() -> list[str]:
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_examples():
    assert len(python_blocks()) >= 2


def test_quickstart_block_runs():
    blocks = [b for b in python_blocks() if "from repro import" in b]
    assert blocks, "README lost its quickstart"
    namespace: dict = {}
    exec(blocks[0], namespace)  # noqa: S102 - executing our own docs
    import numpy as np

    assert namespace["dot"] == pytest.approx(
        float(np.dot(namespace["x"], namespace["y"])))


def test_machine_block_runs():
    blocks = [b for b in python_blocks() if "Machine(Hypercube(5)" in b]
    assert blocks, "README lost its machine example"
    namespace: dict = {}
    exec(blocks[0], namespace)  # noqa: S102
    result = namespace["result"]
    assert result.makespan > 0
    assert result.values == [sum(range(32))] * 32


def test_transformation_block_runs():
    blocks = [b for b in python_blocks() if "default_engine" in b]
    assert blocks, "README lost its transformation example"
    src = blocks[0]
    namespace: dict = {"f": lambda x: x + 1, "g": lambda x: x * 2}
    exec(src, namespace)  # noqa: S102
    from repro.scl import Map, Rotate, compose_nodes

    assert namespace["optimised"] == compose_nodes(
        Map(namespace["optimised"].steps[0].f), Rotate(1))
