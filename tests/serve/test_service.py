"""Tests for repro.serve.service — registry, scheduling, admission."""

from __future__ import annotations

import operator
import threading
import time

import pytest

from repro.errors import SkeletonError
from repro.obs import MemorySink
from repro.scl import Fold, Scan
from repro.serve import (
    AdmissionError,
    MetricsRegistry,
    PlanEndpoint,
    PyEndpoint,
    Service,
    SloMonitor,
    StreamEndpoint,
)
from repro.stream.plan import Chunk, MapPlan


def make_service(**kwargs):
    svc = Service(**kwargs)
    svc.register(PlanEndpoint("scan-add", Scan(operator.add), nprocs=4))
    svc.register(PlanEndpoint("fold-add", Fold(operator.add), nprocs=4))
    return svc


class TestRegistry:
    def test_register_and_list(self):
        svc = make_service()
        assert svc.endpoints == ["fold-add", "scan-add"]

    def test_duplicate_name_rejected(self):
        svc = make_service()
        with pytest.raises(SkeletonError, match="scan-add"):
            svc.register(PyEndpoint("scan-add", lambda p: p))

    def test_unknown_endpoint_lookup(self):
        with pytest.raises(SkeletonError, match="nope"):
            make_service().endpoint("nope")

    def test_endpoint_validation(self):
        with pytest.raises(SkeletonError, match="nprocs"):
            PlanEndpoint("x", Scan(operator.add), nprocs=0)
        with pytest.raises(SkeletonError, match="topology"):
            PlanEndpoint("x", Scan(operator.add), nprocs=2, topology="star")


class TestExecution:
    def test_plan_endpoint_result(self):
        with make_service() as svc:
            ticket = svc.submit("scan-add", [1.0, 2.0, 3.0, 4.0])
            assert ticket.result(timeout=30) == pytest.approx(
                [1.0, 3.0, 6.0, 10.0])
            assert ticket.done()
            assert ticket.record["status"] == "ok"
            assert ticket.record["events"] > 0

    def test_fold_endpoint_scalar(self):
        with make_service() as svc:
            assert svc.submit("fold-add", [1.0, 2.0, 3.0, 4.0]).result(
                timeout=30) == pytest.approx(10.0)

    def test_stream_endpoint(self):
        svc = Service(workers=2)
        svc.register(StreamEndpoint(
            "s", (Chunk(2), MapPlan(Fold(operator.add)))))
        with svc:
            out = svc.submit("s", [1.0, 2.0, 3.0]).result(timeout=30)
        assert out == pytest.approx([3.0, 3.0])

    def test_wrong_payload_size_is_error_completion(self):
        with make_service() as svc:
            ticket = svc.submit("scan-add", [1.0, 2.0])  # needs 4
            with pytest.raises(SkeletonError):
                ticket.result(timeout=30)
            assert ticket.record["status"] == "error"
        assert svc.summary()["errors"] == 1

    def test_default_payload_round_trip(self):
        import numpy as np

        with make_service() as svc:
            endpoint = svc.endpoint("scan-add")
            payload = endpoint.default_payload(np.random.default_rng(0))
            assert len(payload) == 4
            assert svc.submit("scan-add", payload).result(timeout=30)

    def test_results_independent_across_requests(self):
        with make_service(workers=4) as svc:
            tickets = [(i, svc.submit("fold-add",
                                      [float(i)] * 4)) for i in range(32)]
            for i, ticket in tickets:
                assert ticket.result(timeout=30) == pytest.approx(4.0 * i)


class TestAdmissionControl:
    def test_not_running_rejected(self):
        svc = make_service()
        with pytest.raises(AdmissionError) as excinfo:
            svc.submit("scan-add", [1.0] * 4)
        assert excinfo.value.rejection.reason == "not-running"

    def test_unknown_endpoint_rejected(self):
        with make_service() as svc:
            with pytest.raises(AdmissionError) as excinfo:
                svc.submit("nope")
            assert excinfo.value.rejection.reason == "unknown-endpoint"

    def test_queue_full_sheds_with_structured_rejection(self):
        release = threading.Event()
        svc = Service(workers=1, max_queue=2)
        svc.register(PyEndpoint("block", lambda p: release.wait(10)))
        with svc:
            tickets = [svc.submit("block")]  # taken by the worker
            # Fill the queue bound, then overflow it.
            deadline = time.monotonic() + 5
            shed = []
            while len(shed) < 3 and time.monotonic() < deadline:
                try:
                    tickets.append(svc.submit("block", tenant="t1"))
                except AdmissionError as exc:
                    shed.append(exc.rejection)
            release.set()
            for ticket in tickets:
                ticket.result(timeout=30)
        assert len(shed) == 3
        rejection = shed[0]
        assert rejection.reason == "queue-full"
        assert rejection.tenant == "t1"
        assert rejection.queue_depth == 2
        assert rejection.max_queue == 2
        d = rejection.to_dict()
        assert d["reason"] == "queue-full" and "request_id" in d
        assert svc.summary()["rejected_by_reason"]["queue-full"] == 3


class TestSloShedding:
    @staticmethod
    def _slow_service(**slo_kwargs):
        """One worker whose endpoint takes ~5 ms — far over the 1 ms
        target — so the rolling p99 breaches as soon as the window has
        ``min_samples`` completions."""
        slo = SloMonitor(0.001, **{"window_s": 0.5, "min_samples": 4,
                                   **slo_kwargs})
        svc = Service(workers=1, max_queue=64, slo=slo)
        svc.register(PyEndpoint("slow", lambda p: time.sleep(0.005)))
        return svc, slo

    def test_sheds_on_p99_breach_with_structured_rejection(self):
        svc, slo = self._slow_service()
        with svc:
            for _ in range(4):
                svc.submit("slow").result(timeout=30)
            with pytest.raises(AdmissionError) as excinfo:
                svc.submit("slow", tenant="t1")
        rejection = excinfo.value.rejection
        assert rejection.reason == "slo-shed"
        assert rejection.tenant == "t1"
        assert svc.summary()["rejected_by_reason"]["slo-shed"] == 1
        assert slo.breach_verdicts >= 1

    def test_recovers_once_the_window_ages_out(self):
        svc, slo = self._slow_service()
        with svc:
            for _ in range(4):
                svc.submit("slow").result(timeout=30)
            with pytest.raises(AdmissionError):
                svc.submit("slow")
            # A quiet window_s later every slow sample has aged out and
            # admission is open again (the thin window never sheds).
            time.sleep(slo.window_s + 0.05)
            ticket = svc.submit("slow")
            assert ticket.result(timeout=30) is None
        summary = svc.summary()
        assert summary["slo"]["shed"] == 1
        assert summary["completed"] == 5

    def test_thin_window_never_sheds(self):
        svc, _ = self._slow_service(min_samples=50)
        with svc:
            for _ in range(10):
                svc.submit("slow").result(timeout=30)
            svc.submit("slow").result(timeout=30)  # still admitted
        assert svc.summary()["rejected_by_reason"] == {}

    def test_summary_slo_block(self):
        svc, _ = self._slow_service()
        with svc:
            for _ in range(4):
                svc.submit("slow").result(timeout=30)
            summary = svc.summary()
        slo = summary["slo"]
        assert slo["samples"] == 4
        assert slo["p99_ms"] > slo["p99_target_ms"] == 1.0
        assert slo["breached"] is True
        assert svc.summary()["slo"] is not None
        assert make_service().summary()["slo"] is None


class TestMetricsWiring:
    def test_requests_latency_and_gauges(self):
        reg = MetricsRegistry()
        with make_service(metrics=reg) as svc:
            for _ in range(3):
                svc.submit("scan-add", [1.0] * 4,
                           tenant="pro").result(timeout=30)
            svc.submit("fold-add", [1.0] * 4).result(timeout=30)
        snap = reg.snapshot()
        assert snap.value("serve_requests_total",
                          {"endpoint": "scan-add", "tenant": "pro",
                           "status": "ok"}) == 3.0
        assert snap.value("serve_requests_total",
                          {"endpoint": "fold-add", "tenant": "default",
                           "status": "ok"}) == 1.0
        latency = [s for s in snap.series
                   if s["name"] == "serve_request_latency_seconds"
                   and s["labels"]["endpoint"] == "scan-add"]
        assert sum(s["count"] for s in latency) == 3
        assert snap.value("serve_queue_depth") == 0.0
        assert snap.value("serve_in_flight") == 0.0
        # The plan-cache gauges ride along on any instrumented service.
        assert snap.value("plan_cache_hits") is not None

    def test_rejections_are_labelled_by_reason(self):
        reg = MetricsRegistry()
        release = threading.Event()
        svc = Service(workers=1, max_queue=1, metrics=reg)
        svc.register(PyEndpoint("block", lambda p: release.wait(10)))
        with svc:
            tickets = [svc.submit("block")]
            deadline = time.monotonic() + 5
            shed = 0
            while shed < 2 and time.monotonic() < deadline:
                try:
                    tickets.append(svc.submit("block", tenant="t1"))
                except AdmissionError:
                    shed += 1
            release.set()
            for t in tickets:
                t.result(timeout=30)
        assert reg.snapshot().value(
            "serve_rejections_total",
            {"endpoint": "block", "tenant": "t1",
             "reason": "queue-full"}) == 2.0

    def test_slo_gauges_exported_when_both_given(self):
        reg = MetricsRegistry()
        slo = SloMonitor(0.001, window_s=0.5, min_samples=4)
        svc = Service(workers=1, slo=slo, metrics=reg)
        svc.register(PyEndpoint("slow", lambda p: time.sleep(0.005)))
        with svc:
            for _ in range(4):
                svc.submit("slow").result(timeout=30)
            snap = reg.snapshot()
        assert snap.value("serve_slo_p99_target_ms") == 1.0
        assert snap.value("serve_slo_rolling_p99_ms") > 1.0
        assert snap.value("serve_slo_breached") == 1.0

    def test_uninstrumented_service_keeps_plain_endpoints_working(self):
        # A 2-arg execute() (the pre-metrics protocol) must keep working
        # when the service is not instrumented.
        class Legacy:
            name = "legacy"
            nprocs = 1

            def execute(self, payload, machines):
                return payload, 0, 0.0

        svc = Service(workers=1)
        svc.register(Legacy())
        with svc:
            assert svc.submit("legacy", "x").result(timeout=30) == "x"


class TestFairScheduling:
    @staticmethod
    def _gate_service(weights):
        """One worker; the 'gate' endpoint blocks on an Event payload
        (quick no-op on None).  Holding the worker on a blocked prime
        request while the contended batch enqueues makes the dispatch
        order the pure stride schedule — fully deterministic."""
        svc = Service(workers=1, max_queue=10_000, tenants=weights)
        svc.register(PyEndpoint(
            "gate", lambda p: p.wait(10) if p is not None else None))
        return svc

    @staticmethod
    def _hold_worker(svc, tenant):
        gate = threading.Event()
        prime = svc.submit("gate", gate, tenant=tenant)
        deadline = time.monotonic() + 5
        while svc.queue_depth() > 0:  # worker has dequeued the prime
            assert time.monotonic() < deadline
            time.sleep(0.001)
        return gate, prime

    def _run_contended(self, weights, per_tenant=20):
        svc = self._gate_service(weights)
        with svc:
            gate, prime = self._hold_worker(svc, list(weights)[0])
            tickets = [svc.submit("gate", None, tenant=tenant)
                       for _ in range(per_tenant) for tenant in weights]
            gate.set()
            prime.result(timeout=30)
            for ticket in tickets:
                ticket.result(timeout=60)
        order = [rec["tenant"] for rec in svc.completions]
        return order[1:]  # drop the priming request

    def test_weighted_shares_under_contention(self):
        order = self._run_contended({"free": 1.0, "pro": 3.0})
        # Stride scheduling: pro (weight 3) gets exactly 6 of every 8
        # dispatches while both tenants are backlogged.
        window = order[:8]
        assert window.count("pro") == 6
        assert window.count("free") == 2

    def test_equal_weights_alternate(self):
        order = self._run_contended({"a": 1.0, "b": 1.0})
        window = order[:10]
        assert window.count("a") == 5
        assert window.count("b") == 5

    def test_idle_tenant_does_not_bank_credit(self):
        """A tenant that sat idle must not burst ahead of active ones
        when it returns: it resumes at the current virtual time."""
        svc = self._gate_service({"active": 1.0, "lazy": 1.0})
        with svc:
            gate, prime = self._hold_worker(svc, "active")
            first = [svc.submit("gate", None, tenant="active")
                     for _ in range(20)]
            gate.set()
            prime.result(timeout=30)
            for t in first:
                t.result(timeout=30)
            # "lazy" arrives after "active" consumed 21 dispatches; both
            # now enqueue 10 each -> dispatches must interleave 1:1, not
            # give lazy 10 catch-up dispatches first.
            gate2, prime2 = self._hold_worker(svc, "active")
            second = [svc.submit("gate", None, tenant=tenant)
                      for _ in range(10) for tenant in ("active", "lazy")]
            gate2.set()
            prime2.result(timeout=30)
            for t in second:
                t.result(timeout=30)
        tail = [r["tenant"] for r in svc.completions][22:]
        assert tail[:8].count("lazy") == 4

    def test_unknown_tenant_gets_default_weight(self):
        with make_service() as svc:
            svc.submit("fold-add", [1.0] * 4,
                       tenant="walk-in").result(timeout=30)
        assert "walk-in" in svc.summary()["by_tenant"]


class TestObservability:
    def test_sink_records_requests_and_rejections(self):
        sink = MemorySink()
        svc = Service(workers=1, max_queue=1, sink=sink)
        release = threading.Event()
        svc.register(PyEndpoint("block", lambda p: release.wait(10)))
        with svc:
            tickets = [svc.submit("block")]
            deadline = time.monotonic() + 5
            shed = 0
            while shed < 1 and time.monotonic() < deadline:
                try:
                    tickets.append(svc.submit("block"))
                except AdmissionError:
                    shed += 1
            release.set()
            for t in tickets:
                t.result(timeout=30)
        kinds = [e.kind for e in sink.events]
        assert kinds.count("request") == len(tickets)
        assert kinds.count("reject") == shed
        request_event = next(e for e in sink.events if e.kind == "request")
        assert request_event.detail["endpoint"] == "block"
        assert request_event.span.label == "block"

    def test_summary_shape(self):
        with make_service() as svc:
            for _ in range(5):
                svc.submit("scan-add", [1.0] * 4).result(timeout=30)
        summary = svc.summary()
        assert summary["completed"] == 5
        assert summary["errors"] == 0
        assert summary["latency_ms"]["count"] == 5
        assert summary["latency_ms"]["p99_ms"] >= summary["latency_ms"]["p50_ms"]
        assert "scan-add" in summary["by_endpoint"]
        assert summary["sim_events"] > 0

    def test_cache_steady_state(self):
        with make_service() as svc:
            for _ in range(25):
                svc.submit("scan-add", [1.0] * 4).result(timeout=30)
            cache = svc.cache_stats()
        assert cache["hit_rate"] > 0.9

    def test_wait_idle_and_queue_depth(self):
        with make_service() as svc:
            svc.submit("scan-add", [1.0] * 4)
            assert svc.wait_idle(timeout=30)
            assert svc.queue_depth() == 0


class TestLifecycle:
    def test_stop_drains_queued_requests(self):
        svc = make_service(workers=2)
        svc.start()
        tickets = [svc.submit("fold-add", [1.0] * 4) for _ in range(10)]
        svc.stop(drain=True)
        assert all(t.done() for t in tickets)

    def test_validation(self):
        with pytest.raises(SkeletonError, match="workers"):
            Service(workers=0)
        with pytest.raises(SkeletonError, match="max_queue"):
            Service(max_queue=0)

    def test_restart_after_stop(self):
        svc = make_service()
        with svc:
            svc.submit("fold-add", [1.0] * 4).result(timeout=30)
        with svc:
            svc.submit("fold-add", [2.0] * 4).result(timeout=30)
        assert svc.summary()["completed"] == 2
