"""Tests for ``python -m repro serve`` and its JSON latency artifact.

:func:`validate_serve_artifact` is the schema check the CI
``serve-smoke`` job runs against the uploaded artifact; keeping it here
means the schema and its validator evolve together.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.serve.cli import SCHEMA, default_mix, main, run_serve


def validate_serve_artifact(artifact: dict) -> None:
    """Assert the ``repro serve`` JSON artifact has the v3 shape."""
    assert artifact["schema"] == SCHEMA == "repro.serve.latency/v3"
    assert artifact["mode"] in ("smoke", "full")
    config = artifact["config"]
    for key in ("requests", "concurrency", "workers", "nprocs", "seed",
                "endpoints", "tenants", "burst", "slo"):
        assert key in config, f"config missing {key!r}"
    assert len(config["endpoints"]) >= 2
    assert len(config["tenants"]) >= 2

    sustained = artifact["sustained"]
    load, summary = sustained["load"], sustained["summary"]
    assert load["mode"] == "closed-loop"
    assert load["completed"] == config["requests"]
    assert load["errors"] == 0
    latency = summary["latency_ms"]
    assert latency["count"] == load["completed"]
    for field in ("p50_ms", "p90_ms", "p99_ms", "max_ms", "throughput_rps"):
        assert latency[field] > 0, f"latency_ms.{field} missing or zero"
    assert latency["p50_ms"] <= latency["p99_ms"] <= latency["max_ms"]
    # Every configured endpoint and at least two tenants saw traffic.
    assert set(summary["by_endpoint"]) == set(config["endpoints"])
    assert len(summary["by_tenant"]) >= 2
    assert summary["sim_events"] > 0
    # Steady state: the lowering cache absorbs effectively all requests,
    # and the tuned tier (v2) absorbs every tuned request after the
    # first worker's beam search.
    cache = summary["plan_cache"]
    assert cache["hit_rate"] > 0.9
    assert cache["tuned_hits"] > 0
    assert cache["tuned_hit_rate"] > 0.5

    burst = artifact["burst"]
    assert burst["load"]["mode"] == "open-loop"
    assert burst["load"]["rejected"] > 0, "burst phase must shed load"
    assert burst["summary"]["rejected_by_reason"].get("queue-full", 0) \
        == burst["load"]["rejected"]

    # v3: the SLO overload phase must show latency-aware shedding engage
    # (rolling p99 over target -> reason "slo-shed", never "queue-full")
    # and then clear (every recovery probe admitted).
    slo = artifact["slo"]
    slo_config = config["slo"]
    for key in ("requests", "rate_rps", "p99_target_ms", "window_s",
                "min_samples"):
        assert key in slo_config, f"config.slo missing {key!r}"
    assert slo["load"]["mode"] == "open-loop"
    assert slo["shed"] > 0, "slo phase must shed on the p99 breach"
    by_reason = slo["summary"]["rejected_by_reason"]
    assert by_reason.get("slo-shed", 0) >= slo["shed"]
    assert by_reason.get("queue-full", 0) == 0, \
        "slo phase queue is deep enough that only the SLO sheds"
    assert slo["summary"]["slo"]["shed"] == by_reason["slo-shed"]
    assert slo["summary"]["slo"]["p99_target_ms"] == \
        slo_config["p99_target_ms"]
    assert slo["probes"]["admitted"] == slo["probes"]["attempted"]
    assert slo["recovered"] is True, "admission must recover post-overload"


@pytest.fixture(scope="module")
def smoke_run():
    return run_serve(requests=64, concurrency=8, workers=2, nprocs=4,
                     seed=0, burst_requests=40, burst_rate=4000.0,
                     smoke=True, slo_requests=100)


@pytest.fixture(scope="module")
def smoke_artifact(smoke_run):
    return smoke_run[0]


class TestRunServe:
    def test_artifact_validates(self, smoke_artifact):
        validate_serve_artifact(smoke_artifact)

    def test_metrics_artifact_validates(self, smoke_run):
        from tests.obs.test_metrics import validate_metrics_artifact

        validate_metrics_artifact(smoke_run[1], expect_slo_shed=True)

    def test_artifact_is_json_serializable(self, smoke_artifact):
        parsed = json.loads(json.dumps(smoke_artifact, default=str))
        assert parsed["schema"] == SCHEMA

    def test_mix_covers_endpoints_and_tenants(self):
        mix = default_mix()
        assert {e for e, _ in mix} == {"scan-add", "sumsq", "sumsq-tuned",
                                       "stream-scan"}
        assert {t for _, t in mix} == {"free", "pro"}


class TestCliEntry:
    def test_main_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "latency.json"
        code = main(["--smoke", "--requests", "48", "--concurrency", "6",
                     "--workers", "2", "--out", str(out)])
        assert code == 0
        printed = capsys.readouterr().out
        assert "sustained closed-loop" in printed
        assert "by tenant" in printed
        artifact = json.loads(out.read_text())
        validate_serve_artifact(artifact)
        assert artifact["config"]["requests"] == 48

    def test_module_entry_point(self, tmp_path):
        """`python -m repro serve --smoke` end to end (the CI job)."""
        out = tmp_path / "latency.json"
        result = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--smoke",
             "--requests", "48", "--out", str(out)],
            capture_output=True, text=True, timeout=300)
        assert result.returncode == 0, result.stderr
        validate_serve_artifact(json.loads(out.read_text()))
