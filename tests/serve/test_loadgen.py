"""Tests for repro.serve.loadgen — closed- and open-loop generators."""

from __future__ import annotations

import operator
import threading
import time

import pytest

from repro.errors import SkeletonError
from repro.scl import Fold, Scan
from repro.serve import (
    PlanEndpoint,
    PyEndpoint,
    Service,
    closed_loop,
    open_loop,
)


def make_service(**kwargs):
    svc = Service(**kwargs)
    svc.register(PlanEndpoint("scan-add", Scan(operator.add), nprocs=4))
    svc.register(PlanEndpoint("fold-add", Fold(operator.add), nprocs=4))
    return svc


MIX = [("scan-add", "free"), ("fold-add", "pro")]


class TestClosedLoop:
    def test_completes_all_requests(self):
        with make_service(workers=2) as svc:
            report = closed_loop(svc, MIX, requests=40, concurrency=4)
        assert report["completed"] == 40
        assert report["ok"] == 40
        assert report["rejected"] == 0
        assert report["throughput_rps"] > 0
        summary = svc.summary()
        assert summary["completed"] == 40
        assert set(summary["by_tenant"]) == {"free", "pro"}
        assert set(summary["by_endpoint"]) == {"scan-add", "fold-add"}

    def test_deterministic_workload_content(self):
        """The same seed must execute the same simulated work regardless
        of concurrency (thread interleaving changes latencies only)."""
        def run(concurrency):
            with make_service(workers=2) as svc:
                closed_loop(svc, MIX, requests=30, seed=7,
                            concurrency=concurrency)
            return (svc.summary()["sim_events"],
                    sorted((r["endpoint"], r["tenant"])
                           for r in svc.completions))

        assert run(1) == run(4)

    def test_error_completions_counted(self):
        svc = Service(workers=2)
        calls = {"n": 0}
        lock = threading.Lock()

        def sometimes(payload):
            with lock:
                calls["n"] += 1
                if calls["n"] % 3 == 0:
                    raise ValueError("flaky")

        svc.register(PyEndpoint("flaky", sometimes))
        with svc:
            report = closed_loop(svc, [("flaky", "default")], requests=30,
                                 concurrency=2)
        assert report["errors"] == 10
        assert report["ok"] == 20
        assert report["completed"] == 30

    def test_validation(self):
        svc = make_service()
        with pytest.raises(SkeletonError):
            closed_loop(svc, MIX, requests=0, concurrency=1)
        with pytest.raises(SkeletonError):
            closed_loop(svc, [], requests=1, concurrency=1)


class TestOpenLoop:
    def test_sheds_when_offered_exceeds_capacity(self):
        svc = Service(workers=1, max_queue=2)
        svc.register(PyEndpoint("slow", lambda p: time.sleep(0.01)))
        with svc:
            report = open_loop(svc, [("slow", "default")], requests=50,
                               rate_rps=2000)
        assert report["rejected"] > 0
        assert report["accepted"] + report["rejected"] == 50
        assert report["completed"] == report["accepted"]
        assert svc.summary()["rejected_by_reason"] == {
            "queue-full": report["rejected"]}

    def test_completes_when_under_capacity(self):
        with make_service(workers=4, max_queue=64) as svc:
            report = open_loop(svc, MIX, requests=20, rate_rps=100)
        assert report["rejected"] == 0
        assert report["ok"] == 20

    def test_validation(self):
        svc = make_service()
        with pytest.raises(SkeletonError):
            open_loop(svc, MIX, requests=1, rate_rps=0)
        with pytest.raises(SkeletonError):
            open_loop(svc, [], requests=1, rate_rps=10)
