"""Tests for the ``python -m repro`` CLI driver."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.n == 100_000
        assert args.spec == "ap1000"
        assert args.max_dim == 5

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])

    def test_spec_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--spec", "cray"])


class TestCommands:
    def test_table1(self, capsys):
        code, out = run_cli(capsys, "table1", "-n", "2000", "--max-dim", "2")
        assert code == 0
        assert "Table 1" in out
        assert "procs" in out and "runtime" in out

    def test_figure3(self, capsys):
        code, out = run_cli(capsys, "figure3", "-n", "2000", "--max-dim", "2")
        assert code == 0
        assert "Figure 3" in out and "speedup" in out

    def test_figure2(self, capsys):
        code, out = run_cli(capsys, "figure2", "-n", "32")
        assert code == 0
        for panel in "abcdefgh"[:7]:
            assert f"({panel})" in out

    def test_ablations(self, capsys):
        code, out = run_cli(capsys, "ablations", "-n", "100")
        assert code == 0
        assert "map fusion" in out
        assert "rules fired" in out

    def test_baselines(self, capsys):
        code, out = run_cli(capsys, "baselines", "-n", "3200", "--max-dim", "2")
        assert code == 0
        assert "bitonic" in out

    def test_all_runs_everything(self, capsys):
        code, out = run_cli(capsys, "all", "-n", "2000", "--max-dim", "2")
        assert code == 0
        for marker in ("Table 1", "Figure 3", "Figure 2", "ablations",
                       "bitonic"):
            assert marker in out

    def test_spec_switch(self, capsys):
        _code, modern = run_cli(capsys, "table1", "-n", "2000",
                                "--max-dim", "2", "--spec", "modern")
        assert "modern-cluster" in modern

    def test_seed_changes_figure2_values(self, capsys):
        _c, a = run_cli(capsys, "figure2", "--seed", "1")
        _c, b = run_cli(capsys, "figure2", "--seed", "2")
        assert a != b

    def test_seed_reproducible(self, capsys):
        _c, a = run_cli(capsys, "figure2", "--seed", "5")
        _c, b = run_cli(capsys, "figure2", "--seed", "5")
        assert a == b

    def test_bad_max_dim(self, capsys):
        code = main(["table1", "--max-dim", "0"])
        assert code == 2

    def test_module_entry_point_exists(self):
        import importlib.util

        assert importlib.util.find_spec("repro.__main__") is not None
