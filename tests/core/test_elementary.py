"""Tests for repro.core.elementary — map/imap/fold/scan semantics."""

from __future__ import annotations

import operator

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import ParArray, fold, fold_map, imap, parmap, scan, scan_seq
from repro.errors import SkeletonError
from repro.runtime.executor import ThreadExecutor


class TestParmap:
    def test_applies_to_every_component(self):
        assert parmap(lambda x: x + 1, ParArray([1, 2, 3])).to_list() == [2, 3, 4]

    def test_preserves_shape_2d(self):
        grid = ParArray([[1, 2], [3, 4]], shape=(2, 2))
        out = parmap(lambda x: -x, grid)
        assert out.shape == (2, 2) and out[(1, 1)] == -4

    def test_preserves_dist_metadata(self):
        from repro.core import Block, partition

        pa = partition(Block(2), [1, 2, 3, 4])
        assert parmap(lambda p: p, pa).dist == Block(2)

    def test_rejects_non_pararray(self):
        with pytest.raises(SkeletonError):
            parmap(lambda x: x, [1, 2])  # type: ignore[arg-type]

    def test_with_thread_executor(self):
        with ThreadExecutor(max_workers=4) as ex:
            out = parmap(lambda x: x * x, ParArray(range(64)), executor=ex)
        assert out.to_list() == [x * x for x in range(64)]

    def test_with_string_executor_spec(self):
        out = parmap(lambda x: x, ParArray([1]), executor="sequential")
        assert out.to_list() == [1]

    @given(st.lists(st.integers(), min_size=1, max_size=40))
    def test_map_fusion_semantics_property(self, xs):
        """map f . map g == map (f . g) — the law behind §4's map fusion."""
        f = lambda x: x * 3
        g = lambda x: x - 7
        pa = ParArray(xs)
        assert parmap(f, parmap(g, pa)) == parmap(lambda x: f(g(x)), pa)


class TestImap:
    def test_1d_index_is_int(self):
        out = imap(lambda i, x: (i, x), ParArray(["a", "b"]))
        assert out.to_list() == [(0, "a"), (1, "b")]

    def test_2d_index_is_tuple(self):
        grid = ParArray([[0, 0], [0, 0]], shape=(2, 2))
        out = imap(lambda idx, _x: idx, grid)
        assert out[(1, 0)] == (1, 0)

    def test_matches_paper_definition(self):
        """imap f <x0..xn> = <f 0 x0, .., f n xn>"""
        pa = ParArray([10, 20, 30])
        assert imap(operator.mul, pa).to_list() == [0, 20, 60]


class TestFold:
    def test_sum(self):
        assert fold(operator.add, ParArray([1, 2, 3, 4])) == 10

    def test_single_element(self):
        assert fold(operator.add, ParArray([42])) == 42

    def test_empty_undefined(self):
        # a ParArray always has >= 1 component, so exercise fold's empty
        # check through a zero-component view
        with pytest.raises(SkeletonError, match="empty"):
            fold(operator.add, _EmptyView())

    def test_non_commutative_preserves_order(self):
        pa = ParArray(list("parallel"))
        assert fold(operator.add, pa) == "parallel"

    def test_matrix_product_order(self):
        rng = np.random.default_rng(0)
        mats = [rng.standard_normal((2, 2)) for _ in range(7)]
        expected = mats[0]
        for m in mats[1:]:
            expected = expected @ m
        result = fold(operator.matmul, ParArray(mats))
        assert np.allclose(result, expected)

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=64))
    def test_tree_fold_matches_sequential_property(self, xs):
        assert fold(operator.add, ParArray(xs)) == sum(xs)

    @given(st.lists(st.text(max_size=4), min_size=1, max_size=40))
    def test_associative_noncommutative_property(self, xs):
        """Tree grouping must be invisible for any associative op."""
        assert fold(operator.add, ParArray(xs)) == "".join(xs)

    def test_with_executor(self):
        with ThreadExecutor(max_workers=2) as ex:
            assert fold(operator.add, ParArray(range(100)), executor=ex) == 4950


class _EmptyView(ParArray):
    """A deliberately inconsistent view used to hit fold's empty check."""

    def __init__(self):  # noqa: D401 - bypass normal construction
        object.__setattr__(self, "_shape", (1,))
        object.__setattr__(self, "_data", {})
        object.__setattr__(self, "dist", None)

    def to_list(self):
        return []


class TestScan:
    def test_inclusive_prefix(self):
        assert scan(operator.add, ParArray([1, 2, 3, 4])).to_list() == [1, 3, 6, 10]

    def test_first_element_unchanged(self):
        assert scan(operator.add, ParArray([9]))[0] == 9

    def test_matches_paper_definition(self):
        """scan + <x0,x1,..> = <x0, x0+x1, ..>"""
        pa = ParArray([5, 1, 2])
        assert scan(operator.add, pa).to_list() == [5, 6, 8]

    def test_2d_rejected(self):
        with pytest.raises(SkeletonError):
            scan(operator.add, ParArray([[1, 2]], shape=(1, 2)))

    def test_explicit_block_counts(self):
        pa = ParArray(list(range(1, 17)))
        for blocks in (1, 2, 3, 5, 16, 32):
            assert scan(operator.add, pa, blocks=blocks).to_list() == \
                scan_seq(operator.add, list(range(1, 17)))

    @given(st.lists(st.text(max_size=3), min_size=1, max_size=50),
           st.integers(1, 12))
    def test_blocked_scan_matches_sequential_property(self, xs, blocks):
        """The parallel blocked scan must equal the sequential scan for any
        associative (here: non-commutative concat) operator."""
        out = scan(operator.add, ParArray(xs), blocks=blocks)
        assert out.to_list() == scan_seq(operator.add, xs)

    def test_with_executor(self):
        with ThreadExecutor(max_workers=3) as ex:
            out = scan(operator.add, ParArray(range(32)), executor=ex)
        assert out.to_list() == scan_seq(operator.add, list(range(32)))


class TestScanSeq:
    def test_empty(self):
        assert scan_seq(operator.add, []) == []

    def test_singleton(self):
        assert scan_seq(operator.add, [3]) == [3]

    def test_running_max(self):
        assert scan_seq(max, [2, 1, 5, 3]) == [2, 2, 5, 5]


class TestFoldMap:
    def test_equals_fold_after_map(self):
        pa = ParArray([1, 2, 3])
        assert fold_map(operator.add, lambda x: x * x, pa) == 14

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=40))
    def test_map_distribution_semantics_property(self, xs):
        """fold f . map g == the sequential foldr of the fused function —
        §4's map distribution law at the semantic level."""
        from repro.util.functional import foldr

        g = lambda x: x * 2 + 1
        pa = ParArray(xs)
        lhs = foldr(lambda x, acc: g(x) + acc, g(xs[-1]), xs[:-1])
        assert fold_map(operator.add, g, pa) == lhs
