"""Tests for repro.core.config — the Figure 1 data-distribution model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    Block,
    ColBlock,
    Cyclic,
    ParArray,
    RowBlock,
    align,
    combine,
    distribution,
    gather,
    partition,
    redistribution,
    rotate,
    split,
    unalign,
)
from repro.errors import ConfigurationError


class TestPartitionGather:
    def test_partition_requires_pattern(self):
        with pytest.raises(ConfigurationError):
            partition("block", [1, 2, 3])  # type: ignore[arg-type]

    def test_gather_uses_recorded_pattern(self):
        xs = list(range(9))
        assert gather(partition(Cyclic(2), xs)) == xs

    def test_gather_explicit_pattern_overrides(self):
        pa = ParArray([[0, 2], [1, 3]])
        assert gather(pa, Cyclic(2)) == [0, 1, 2, 3]

    def test_gather_without_pattern_concatenates(self):
        pa = ParArray([[1, 2], [3]])
        assert gather(pa) == [1, 2, 3]

    def test_gather_2d_without_pattern_rejected(self):
        pa = ParArray([[1, 2], [3, 4]], shape=(2, 2))
        with pytest.raises(ConfigurationError):
            gather(pa)


class TestAlign:
    def test_pairs_components(self):
        conf = align(ParArray([1, 2]), ParArray(["a", "b"]))
        assert conf.to_list() == [(1, "a"), (2, "b")]

    def test_three_way(self):
        conf = align(ParArray([1]), ParArray([2]), ParArray([3]))
        assert conf[0] == (1, 2, 3)

    def test_2d_alignment(self):
        a = ParArray([[1, 2], [3, 4]], shape=(2, 2))
        b = ParArray([[5, 6], [7, 8]], shape=(2, 2))
        assert align(a, b)[(1, 0)] == (3, 7)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="align"):
            align(ParArray([1, 2]), ParArray([1, 2, 3]))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            align()

    def test_non_pararray_rejected(self):
        with pytest.raises(ConfigurationError):
            align(ParArray([1]), [1])  # type: ignore[arg-type]

    def test_records_dists(self):
        a = partition(Block(2), [1, 2])
        b = partition(Cyclic(2), [3, 4])
        conf = align(a, b)
        assert conf.dist == (Block(2), Cyclic(2))


class TestUnalign:
    def test_extract_all(self):
        conf = align(ParArray([1, 2]), ParArray([3, 4]))
        da, db = unalign(conf)
        assert da.to_list() == [1, 2] and db.to_list() == [3, 4]

    def test_extract_single(self):
        conf = align(ParArray([1, 2]), ParArray([3, 4]))
        assert unalign(conf, 1).to_list() == [3, 4]

    def test_restores_dist_metadata(self):
        a = partition(Block(2), list(range(4)))
        b = partition(Cyclic(2), list(range(4)))
        da, db = unalign(align(a, b))
        assert da.dist == Block(2) and db.dist == Cyclic(2)
        assert gather(db) == list(range(4))

    def test_component_out_of_range(self):
        conf = align(ParArray([1]), ParArray([2]))
        with pytest.raises(ConfigurationError):
            unalign(conf, 5)

    def test_non_tuple_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            unalign(ParArray([1, 2]))

    def test_ragged_tuples_rejected(self):
        with pytest.raises(ConfigurationError):
            unalign(ParArray([(1, 2), (3,)]))


class TestDistribution:
    def test_matches_paper_definition(self):
        """distribution [(p,f),(q,g)] [A,B] = align (p (partition f A))
        (q (partition g B))"""
        A = np.arange(8)
        B = np.arange(8) * 10
        move = lambda pa: rotate(1, pa)
        conf = distribution([(move, Block(4)), (None, Cyclic(4))], [A, B])
        expected = align(rotate(1, partition(Block(4), A)),
                         partition(Cyclic(4), B))
        assert conf == expected

    def test_single_array_returns_plain_distribution(self):
        conf = distribution([(None, Block(2))], [np.arange(4)])
        assert conf.dist == Block(2)
        assert np.array_equal(gather(conf), np.arange(4))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            distribution([(None, Block(2))], [np.arange(4), np.arange(4)])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            distribution([], [])

    def test_bad_movement_return_rejected(self):
        with pytest.raises(ConfigurationError, match="ParArray"):
            distribution([(lambda pa: "oops", Block(2))], [np.arange(4)])


class TestRedistribution:
    def test_componentwise_movement(self):
        a = ParArray([0, 1, 2, 3])
        b = ParArray([4, 5, 6, 7])
        conf = align(a, b)
        out = redistribution([lambda da: rotate(1, da), None], conf)
        oa, ob = unalign(out)
        assert oa.to_list() == [1, 2, 3, 0]
        assert ob.to_list() == [4, 5, 6, 7]

    def test_width_1_plain_array(self):
        pa = ParArray([1, 2, 3])
        assert redistribution([lambda da: rotate(1, da)], pa).to_list() == [2, 3, 1]

    def test_wrong_operator_count_rejected(self):
        conf = align(ParArray([1]), ParArray([2]))
        with pytest.raises(ConfigurationError):
            redistribution([None], conf)

    def test_width_1_wrong_count_rejected(self):
        with pytest.raises(ConfigurationError):
            redistribution([None, None], ParArray([1, 2]))


class TestSplitCombine:
    def test_split_produces_nested(self):
        nested = split(Block(2), ParArray(list(range(6))))
        assert nested.size == 2
        assert isinstance(nested[0], ParArray)
        assert nested[0].to_list() == [0, 1, 2]

    def test_combine_inverts_block_split(self):
        flat = ParArray(list(range(8)))
        assert combine(split(Block(4), flat)) == flat

    def test_combine_inverts_cyclic_split(self):
        flat = ParArray(list(range(9)))
        assert combine(split(Cyclic(3), flat)) == flat

    def test_combine_without_pattern_concatenates(self):
        nested = ParArray([ParArray([1, 2]), ParArray([3])])
        assert combine(nested).to_list() == [1, 2, 3]

    def test_split_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            split(Block(2), ParArray([[1, 2], [3, 4]], shape=(2, 2)))

    def test_combine_non_nested_rejected(self):
        with pytest.raises(ConfigurationError):
            combine(ParArray([1, 2]))

    @given(st.integers(1, 5), st.integers(1, 40))
    def test_split_combine_roundtrip_property(self, parts, n):
        if parts > n:
            parts = n
        flat = ParArray(list(range(n)))
        for pattern in (Block(parts), Cyclic(parts)):
            nested = split(pattern, flat)
            assert combine(nested) == flat

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            split(Block(5), ParArray([1, 2]))


class TestFigure1Pipeline:
    """Structural reproduction of Fig. 1: array -> partition -> align."""

    def test_two_matrices_co_located(self):
        A = np.arange(24).reshape(4, 6).astype(float)
        B = np.arange(24).reshape(4, 6) * 2.0
        conf = distribution([(None, RowBlock(2)), (None, RowBlock(2))], [A, B])
        # each component is a tuple of co-located row blocks
        for idx in conf.indices():
            a_blk, b_blk = conf[idx]
            assert np.array_equal(np.asarray(b_blk), np.asarray(a_blk) * 2)
        da, db = unalign(conf)
        assert np.array_equal(gather(da), A)
        assert np.array_equal(gather(db), B)

    def test_mixed_row_col_distribution(self):
        A = np.arange(16).reshape(4, 4)
        conf = distribution([(None, RowBlock(2)), (None, ColBlock(2))], [A, A])
        da, db = unalign(conf)
        assert np.array_equal(gather(da), A)
        assert np.array_equal(gather(db), A)
