"""Tests for repro.core.communication — bulk data-movement skeletons."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    ParArray,
    apply_brdcast,
    brdcast,
    fetch,
    rotate,
    rotate_col,
    rotate_row,
    send,
)
from repro.errors import SkeletonError


class TestRotate:
    def test_positive_pulls_from_right(self):
        assert rotate(1, ParArray([0, 1, 2])).to_list() == [1, 2, 0]

    def test_negative_pulls_from_left(self):
        assert rotate(-1, ParArray([0, 1, 2])).to_list() == [2, 0, 1]

    def test_zero_is_identity(self):
        pa = ParArray([5, 6])
        assert rotate(0, pa) == pa

    def test_full_cycle_is_identity(self):
        pa = ParArray(list(range(7)))
        assert rotate(7, pa) == pa

    def test_wraps_modulo(self):
        pa = ParArray([0, 1, 2])
        assert rotate(5, pa) == rotate(2, pa)

    def test_2d_rejected(self):
        with pytest.raises(SkeletonError):
            rotate(1, ParArray([[1, 2]], shape=(1, 2)))

    @given(st.lists(st.integers(), min_size=1, max_size=30),
           st.integers(-50, 50), st.integers(-50, 50))
    def test_rotation_composition_property(self, xs, j, k):
        """rotate j . rotate k == rotate (j+k) — the communication-algebra
        law specialised to rotations."""
        pa = ParArray(xs)
        assert rotate(j, rotate(k, pa)) == rotate(j + k, pa)

    @given(st.lists(st.integers(), min_size=1, max_size=30), st.integers(-50, 50))
    def test_rotate_inverse_property(self, xs, k):
        pa = ParArray(xs)
        assert rotate(-k, rotate(k, pa)) == pa


class TestRotateRowCol:
    def grid(self):
        return ParArray([[1, 2, 3], [4, 5, 6]], shape=(2, 3))

    def test_rotate_row_per_row_distance(self):
        out = rotate_row(lambda i: i, self.grid())
        assert out.to_nested_list() == [[1, 2, 3], [5, 6, 4]]

    def test_rotate_col_per_col_distance(self):
        out = rotate_col(lambda j: j % 2, self.grid())
        assert out.to_nested_list() == [[1, 5, 3], [4, 2, 6]]

    def test_zero_distance_identity(self):
        g = self.grid()
        assert rotate_row(lambda i: 0, g) == g
        assert rotate_col(lambda j: 0, g) == g

    def test_row_rotation_wraps(self):
        out = rotate_row(lambda i: 4, self.grid())  # 4 mod 3 == 1
        assert out.to_nested_list() == [[2, 3, 1], [5, 6, 4]]

    def test_1d_rejected(self):
        with pytest.raises(SkeletonError):
            rotate_row(lambda i: 1, ParArray([1, 2]))
        with pytest.raises(SkeletonError):
            rotate_col(lambda j: 1, ParArray([1, 2]))

    def test_rows_independent(self):
        out = rotate_row(lambda i: 1 if i == 0 else 0, self.grid())
        assert out.to_nested_list() == [[2, 3, 1], [4, 5, 6]]

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(-9, 9))
    def test_row_col_inverse_property(self, m, n, k):
        g = ParArray([[i * n + j for j in range(n)] for i in range(m)],
                     shape=(m, n))
        assert rotate_row(lambda i: -k, rotate_row(lambda i: k, g)) == g
        assert rotate_col(lambda j: -k, rotate_col(lambda j: k, g)) == g


class TestBrdcast:
    def test_pairs_value_with_local(self):
        out = brdcast("env", ParArray([1, 2]))
        assert out.to_list() == [("env", 1), ("env", 2)]

    def test_2d(self):
        out = brdcast(0, ParArray([[1, 2]], shape=(1, 2)))
        assert out[(0, 1)] == (0, 2)

    def test_rejects_non_pararray(self):
        with pytest.raises(SkeletonError):
            brdcast(1, [1, 2])  # type: ignore[arg-type]


class TestApplyBrdcast:
    def test_matches_paper_definition(self):
        """applybrdcast f i A = brdcast (f A[i]) A"""
        pa = ParArray([10, 20, 30])
        f = lambda x: x + 1
        assert apply_brdcast(f, 1, pa) == brdcast(f(20), pa)

    def test_source_index_out_of_range(self):
        with pytest.raises(Exception):
            apply_brdcast(lambda x: x, 9, ParArray([1]))


class TestSend:
    def test_single_destination(self):
        out = send(lambda k: [(k + 1) % 3], ParArray(["a", "b", "c"]))
        assert out.to_list() == [["c"], ["a"], ["b"]]

    def test_many_to_one_accumulates_vector(self):
        out = send(lambda k: [0], ParArray([1, 2, 3]))
        assert sorted(out[0]) == [1, 2, 3]
        assert out[1] == [] and out[2] == []

    def test_one_to_many_duplicates(self):
        out = send(lambda k: [0, 1] if k == 0 else [], ParArray(["x", "y"]))
        assert out[0] == ["x"] and out[1] == ["x"]

    def test_drop_everything(self):
        out = send(lambda k: [], ParArray([1, 2]))
        assert out.to_list() == [[], []]

    def test_out_of_range_destination_rejected(self):
        with pytest.raises(SkeletonError, match="destination"):
            send(lambda k: [5], ParArray([1, 2]))

    @given(st.integers(1, 20), st.integers(0, 1000))
    def test_multiset_preservation_property(self, n, seed):
        """Whatever the index map, send never creates or destroys elements
        (arrival order is unspecified, so compare as multisets)."""
        import random

        r = random.Random(seed)
        dests = {k: [r.randrange(n) for _ in range(r.randrange(3))]
                 for k in range(n)}
        pa = ParArray(list(range(n)))
        out = send(lambda k: dests[k], pa)
        arrived = sorted(x for box in out for x in box)
        expected = sorted(k for k, ds in dests.items() for _ in ds)
        assert arrived == expected


class TestFetch:
    def test_pulls_from_source_index(self):
        out = fetch(lambda i: (i + 1) % 3, ParArray([10, 20, 30]))
        assert out.to_list() == [20, 30, 10]

    def test_one_to_many(self):
        out = fetch(lambda i: 0, ParArray([7, 8, 9]))
        assert out.to_list() == [7, 7, 7]

    def test_out_of_range_source_rejected(self):
        with pytest.raises(SkeletonError, match="source"):
            fetch(lambda i: -1, ParArray([1]))

    @given(st.lists(st.integers(), min_size=1, max_size=25),
           st.integers(0, 10**6), st.integers(0, 10**6))
    def test_fetch_fusion_property(self, xs, a, b):
        """fetch f . fetch g == fetch (g . f) — §4's communication algebra."""
        n = len(xs)
        f = lambda i: (i + a) % n
        g = lambda i: (i * (b % n + 1)) % n
        pa = ParArray(xs)
        assert fetch(f, fetch(g, pa)) == fetch(lambda i: g(f(i)), pa)

    def test_rotate_is_a_fetch(self):
        pa = ParArray(list(range(6)))
        assert fetch(lambda i: (i + 2) % 6, pa) == rotate(2, pa)
