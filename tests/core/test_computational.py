"""Tests for repro.core.computational — farm, SPMD, iteration skeletons."""

from __future__ import annotations


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    ParArray,
    SpmdStage,
    farm,
    imap,
    iter_for,
    iter_until,
    parmap,
    rotate,
    spmd,
)
from repro.errors import SkeletonError


class TestFarm:
    def test_matches_paper_definition(self):
        """farm f env = map (f env)"""
        pa = ParArray([1, 2, 3])
        f = lambda env, x: env * x
        assert farm(f, 10, pa) == parmap(lambda x: f(10, x), pa)

    def test_env_shared_across_jobs(self):
        env = {"offset": 5}
        out = farm(lambda e, x: x + e["offset"], env, ParArray([0, 1]))
        assert out.to_list() == [5, 6]

    def test_with_executor(self):
        out = farm(lambda e, x: e + x, 1, ParArray(range(16)),
                   executor="threads")
        assert out.to_list() == list(range(1, 17))


class TestSpmd:
    def test_empty_is_identity(self):
        pa = ParArray([1, 2])
        assert spmd([])(pa) == pa

    def test_single_stage_local_then_global(self):
        prog = spmd([(lambda c: rotate(1, c), lambda _i, x: x * 2)])
        assert prog(ParArray([1, 2, 3])).to_list() == [4, 6, 2]

    def test_stage_order_first_listed_first_applied(self):
        prog = spmd([
            (None, lambda _i, x: x + "a"),
            (None, lambda _i, x: x + "b"),
        ])
        assert prog(ParArray([""])).to_list() == ["ab"]

    def test_local_receives_index(self):
        prog = spmd([(None, lambda i, x: i)])
        assert prog(ParArray([9, 9, 9])).to_list() == [0, 1, 2]

    def test_global_only_stage(self):
        prog = spmd([(lambda c: rotate(1, c), None)])
        assert prog(ParArray([1, 2])).to_list() == [2, 1]

    def test_spmdstage_objects_accepted(self):
        prog = spmd([SpmdStage(global_=None, local=lambda _i, x: -x)])
        assert prog(ParArray([1])).to_list() == [-1]

    def test_bad_stage_rejected(self):
        with pytest.raises(SkeletonError):
            spmd(["nonsense"])

    def test_bad_global_return_rejected(self):
        prog = spmd([(lambda c: "oops", None)])
        with pytest.raises(SkeletonError, match="ParArray"):
            prog(ParArray([1]))

    def test_non_pararray_input_rejected(self):
        with pytest.raises(SkeletonError):
            spmd([])( [1, 2])  # type: ignore[arg-type]

    def test_composition_recursion_matches_paper(self):
        """SPMD ((gf,lf):fs) = SPMD fs . gf . imap lf"""
        gf = lambda c: rotate(1, c)
        lf = lambda i, x: x + i
        rest = [(None, lambda _i, x: x * 10)]
        combined = spmd([(gf, lf)] + rest)
        pa = ParArray([1, 2, 3])
        assert combined(pa) == spmd(rest)(gf(imap(lf, pa)))


class TestIterUntil:
    def test_condition_checked_before_first_iteration(self):
        calls = []

        def solve(x):
            calls.append(x)
            return x + 1

        out = iter_until(solve, lambda x: x, lambda x: True, 0)
        assert out == 0 and calls == []

    def test_iterates_until_condition(self):
        out = iter_until(lambda x: x * 2, lambda x: x, lambda x: x >= 100, 1)
        assert out == 128

    def test_final_solve_applied(self):
        out = iter_until(lambda x: x + 1, lambda x: f"done:{x}",
                         lambda x: x == 3, 0)
        assert out == "done:3"

    def test_max_iterations_guard(self):
        with pytest.raises(SkeletonError, match="max_iterations"):
            iter_until(lambda x: x, lambda x: x, lambda x: False, 0,
                       max_iterations=10)

    def test_unbounded_by_default_terminates_on_condition(self):
        assert iter_until(lambda x: x - 1, lambda x: x, lambda x: x == 0, 500) == 0


class TestIterFor:
    def test_counter_passed_to_solver(self):
        assert iter_for(4, lambda i, acc: acc + [i], []) == [0, 1, 2, 3]

    def test_zero_iterations(self):
        assert iter_for(0, lambda i, x: x + 1, 7) == 7

    def test_negative_rejected(self):
        with pytest.raises(SkeletonError):
            iter_for(-1, lambda i, x: x, 0)

    def test_non_int_rejected(self):
        with pytest.raises(SkeletonError):
            iter_for(2.5, lambda i, x: x, 0)  # type: ignore[arg-type]

    @given(st.integers(0, 50), st.integers(-10, 10))
    def test_equivalent_to_python_loop_property(self, n, start):
        out = iter_for(n, lambda i, x: x + i, start)
        assert out == start + sum(range(n))

    def test_works_over_pararrays(self):
        out = iter_for(3, lambda i, pa: rotate(1, pa), ParArray([1, 2, 3, 4]))
        assert out.to_list() == [4, 1, 2, 3]
