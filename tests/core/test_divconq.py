"""Tests for repro.core.divconq — the divide-and-conquer skeleton."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import divide_and_conquer
from repro.errors import SkeletonError
from repro.runtime import ThreadExecutor


def dc_mergesort(xs, **kw):
    def merge(parts):
        a, b = parts
        out = []
        i = j = 0
        while i < len(a) and j < len(b):
            if a[i] <= b[j]:
                out.append(a[i]); i += 1
            else:
                out.append(b[j]); j += 1
        return out + a[i:] + b[j:]

    return divide_and_conquer(
        trivial=lambda v: len(v) <= 1,
        solve=lambda v: list(v),
        divide=lambda v: [v[: len(v) // 2], v[len(v) // 2:]],
        combine=merge,
        problem=list(xs),
        **kw,
    )


def dc_sum(xs, **kw):
    return divide_and_conquer(
        trivial=lambda v: len(v) <= 2,
        solve=sum,
        divide=lambda v: [v[: len(v) // 2], v[len(v) // 2:]],
        combine=sum,
        problem=list(xs),
        **kw,
    )


class TestSequential:
    def test_mergesort(self):
        assert dc_mergesort([5, 3, 8, 1]) == [1, 3, 5, 8]

    def test_empty_problem(self):
        assert dc_mergesort([]) == []

    def test_singleton(self):
        assert dc_mergesort([7]) == [7]

    def test_sum(self):
        assert dc_sum(range(100)) == 4950

    def test_non_binary_division(self):
        out = divide_and_conquer(
            trivial=lambda v: len(v) <= 1,
            solve=lambda v: v[0] if v else 0,
            divide=lambda v: [v[i::3] for i in range(3)],
            combine=sum,
            problem=list(range(20)),
        )
        assert out == sum(range(20))

    @given(st.lists(st.integers(-1000, 1000), max_size=100))
    def test_mergesort_property(self, xs):
        assert dc_mergesort(xs) == sorted(xs)


class TestParallel:
    def test_results_identical_to_sequential(self):
        xs = list(np.random.default_rng(0).integers(0, 1000, size=200))
        with ThreadExecutor(max_workers=4) as ex:
            assert dc_mergesort(xs, executor=ex) == dc_mergesort(xs)

    def test_string_executor(self):
        assert dc_sum(range(64), executor="threads") == 2016

    @pytest.mark.parametrize("fork_levels", [0, 1, 2, 5])
    def test_fork_levels_do_not_change_result(self, fork_levels):
        xs = list(range(50, 0, -1))
        with ThreadExecutor(max_workers=3) as ex:
            assert dc_mergesort(xs, executor=ex,
                                fork_levels=fork_levels) == sorted(xs)

    def test_frontier_actually_parallel(self):
        """With fork_levels=2 a balanced binary division yields 4 frontier
        tasks; a 4-party barrier inside solve proves they run together."""
        barrier = threading.Barrier(4, timeout=10)

        def solve(v):
            barrier.wait()
            return sum(v)

        out = divide_and_conquer(
            trivial=lambda v: len(v) <= 4,
            solve=solve,
            divide=lambda v: [v[: len(v) // 2], v[len(v) // 2:]],
            combine=sum,
            problem=list(range(16)),
            executor=ThreadExecutor(max_workers=4),
            fork_levels=2,
        )
        assert out == sum(range(16))

    def test_no_nested_pool_starvation(self):
        """Deep recursion with a 1-worker pool must not deadlock (the
        frontier map is flat by construction)."""
        xs = list(range(64))
        with ThreadExecutor(max_workers=1) as ex:
            assert dc_sum(xs, executor=ex, fork_levels=6) == sum(xs)


class TestErrors:
    def test_negative_fork_levels(self):
        with pytest.raises(SkeletonError):
            dc_sum([1], fork_levels=-1)

    def test_non_terminating_divide_detected(self):
        with pytest.raises(SkeletonError, match="max_depth"):
            divide_and_conquer(
                trivial=lambda v: False,
                solve=lambda v: v,
                divide=lambda v: [v],
                combine=lambda rs: rs[0],
                problem=[1],
                max_depth=50,
            )

    def test_empty_division_rejected(self):
        with pytest.raises(SkeletonError, match="no sub-problems"):
            divide_and_conquer(
                trivial=lambda v: False,
                solve=lambda v: v,
                divide=lambda v: [],
                combine=lambda rs: rs,
                problem=[1, 2],
            )

    def test_non_terminating_parallel_expand_detected(self):
        with pytest.raises(SkeletonError, match="max_depth"):
            divide_and_conquer(
                trivial=lambda v: False,
                solve=lambda v: v,
                divide=lambda v: [v],
                combine=lambda rs: rs[0],
                problem=[1],
                executor="threads",
                fork_levels=100,
                max_depth=20,
            )


class TestHyperquicksortViaDc:
    """The paper's recursive hypersort *is* a divide-and-conquer instance."""

    def test_quicksort_as_dc(self, rng):
        vals = rng.integers(0, 1000, size=300).tolist()

        def divide(v):
            pivot = v[len(v) // 2]
            return ([x for x in v if x < pivot],
                    [x for x in v if x == pivot],
                    [x for x in v if x > pivot])

        out = divide_and_conquer(
            trivial=lambda v: len(v) <= 1 or len(set(v)) == 1,
            solve=lambda v: list(v),
            divide=divide,
            combine=lambda parts: parts[0] + parts[1] + parts[2],
            problem=vals,
            executor="threads",
        )
        assert out == sorted(vals)
