"""Tests for repro.core.pararray."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.pararray import ParArray, normalize_index
from repro.errors import ConfigurationError


class TestConstruction:
    def test_from_sequence_1d(self):
        pa = ParArray([10, 20, 30])
        assert pa.shape == (3,)
        assert pa.to_list() == [10, 20, 30]

    def test_from_range(self):
        assert ParArray(range(4)).to_list() == [0, 1, 2, 3]

    def test_from_nested_list_2d(self):
        pa = ParArray([[1, 2, 3], [4, 5, 6]], shape=(2, 3))
        assert pa[(1, 2)] == 6
        assert pa.to_nested_list() == [[1, 2, 3], [4, 5, 6]]

    def test_from_mapping(self):
        pa = ParArray({(0, 0): "a", (0, 1): "b"}, shape=(1, 2))
        assert pa[(0, 1)] == "b"

    def test_mapping_requires_shape(self):
        with pytest.raises(ConfigurationError, match="shape"):
            ParArray({0: "a"})

    def test_mapping_with_int_keys_normalized(self):
        pa = ParArray({0: "a", 1: "b"}, shape=(2,))
        assert pa[0] == "a"

    def test_copy_constructor_shares_data(self):
        pa = ParArray([1, 2])
        pb = ParArray(pa)
        assert pb == pa and pb.dist == pa.dist

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ParArray([[1, 2], [3]], shape=(2, 2))

    def test_missing_indices_rejected(self):
        with pytest.raises(ConfigurationError, match="missing"):
            ParArray({(0,): 1}, shape=(2,))

    def test_extra_indices_rejected(self):
        with pytest.raises(ConfigurationError, match="extra"):
            ParArray({(0,): 1, (1,): 2, (2,): 3}, shape=(2,))

    def test_invalid_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            ParArray([1], shape=(0,))

    def test_3d_sequence_rejected(self):
        with pytest.raises(ConfigurationError):
            ParArray([1], shape=(1, 1, 1))


class TestAccess:
    def test_int_and_tuple_index_equivalent(self):
        pa = ParArray([5, 6, 7])
        assert pa[1] == pa[(1,)] == 6

    def test_out_of_range_raises(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            ParArray([1, 2])[5]

    def test_bad_index_type_raises(self):
        with pytest.raises(ConfigurationError):
            ParArray([1, 2])["x"]

    def test_len_is_leading_dim(self):
        assert len(ParArray([[1], [2], [3]], shape=(3, 1))) == 3

    def test_size_is_total(self):
        assert ParArray([[1, 2], [3, 4]], shape=(2, 2)).size == 4

    def test_iteration_row_major(self):
        pa = ParArray([[1, 2], [3, 4]], shape=(2, 2))
        assert list(pa) == [1, 2, 3, 4]

    def test_indices_row_major(self):
        pa = ParArray([[1, 2], [3, 4]], shape=(2, 2))
        assert list(pa.indices()) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_contains(self):
        assert 2 in ParArray([1, 2, 3])
        assert 9 not in ParArray([1, 2, 3])

    def test_to_nested_list_on_1d(self):
        assert ParArray([1, 2]).to_nested_list() == [1, 2]


class TestImmutability:
    def test_with_items_builds_new_array(self):
        pa = ParArray([1, 2, 3])
        pb = pa.with_items(lambda idx, v: v * 10)
        assert pb.to_list() == [10, 20, 30]
        assert pa.to_list() == [1, 2, 3]

    def test_with_items_receives_indices(self):
        pa = ParArray([[0, 0], [0, 0]], shape=(2, 2))
        pb = pa.with_items(lambda idx, _v: idx)
        assert pb[(1, 0)] == (1, 0)

    def test_replace_single_component(self):
        pa = ParArray([1, 2, 3])
        pb = pa.replace(1, 99)
        assert pb.to_list() == [1, 99, 3]
        assert pa.to_list() == [1, 2, 3]

    def test_replace_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ParArray([1]).replace(4, 0)

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(ParArray([1]))


class TestEquality:
    def test_equal_arrays(self):
        assert ParArray([1, 2]) == ParArray([1, 2])

    def test_different_values(self):
        assert ParArray([1, 2]) != ParArray([1, 3])

    def test_different_shapes(self):
        assert ParArray([1, 2]) != ParArray([1, 2, 3])
        assert ParArray([[1], [2]], shape=(2, 1)) != ParArray([1, 2])

    def test_numpy_leaves_compared_by_value(self):
        a = ParArray([np.array([1, 2]), np.array([3])])
        b = ParArray([np.array([1, 2]), np.array([3])])
        assert a == b
        c = ParArray([np.array([1, 2]), np.array([4])])
        assert a != c

    def test_numpy_leaves_different_lengths(self):
        assert ParArray([np.array([1, 2])]) != ParArray([np.array([1, 2, 3])])

    def test_tuple_leaves_with_arrays(self):
        a = ParArray([(1, np.array([2]))])
        b = ParArray([(1, np.array([2]))])
        assert a == b

    def test_non_pararray_comparison(self):
        assert ParArray([1]) != [1]

    def test_nested_pararray_equality(self):
        a = ParArray([ParArray([1, 2]), ParArray([3])])
        b = ParArray([ParArray([1, 2]), ParArray([3])])
        assert a == b


class TestRepr:
    def test_small_1d_shows_contents(self):
        assert "10" in repr(ParArray([10, 20]))

    def test_large_shows_shape(self):
        assert "shape" in repr(ParArray(list(range(100))))


class TestNormalizeIndex:
    def test_int_becomes_tuple(self):
        assert normalize_index(3) == (3,)

    def test_tuple_passes_through(self):
        assert normalize_index((1, 2)) == (1, 2)

    def test_bool_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_index(True)


@given(st.lists(st.integers(), min_size=1, max_size=30))
def test_roundtrip_list_property(xs):
    assert ParArray(xs).to_list() == xs


@given(st.lists(st.integers(), min_size=1, max_size=30))
def test_with_items_identity_property(xs):
    pa = ParArray(xs)
    assert pa.with_items(lambda _i, v: v) == pa
