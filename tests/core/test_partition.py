"""Tests for repro.core.partition — every pattern, round trips, index maps."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.partition import (
    Block,
    ColBlock,
    ColCyclic,
    Cyclic,
    RowBlock,
    RowColBlock,
    RowCyclic,
)
from repro.errors import ConfigurationError

MATRIX_PATTERNS = [RowBlock(1), RowBlock(3), ColBlock(2), ColBlock(5),
                   RowColBlock(2, 2), RowColBlock(3, 2), RowCyclic(2),
                   RowCyclic(4), ColCyclic(3)]
VECTOR_PATTERNS = [Block(1), Block(3), Block(7), Cyclic(1), Cyclic(2), Cyclic(5)]


class TestBlock:
    def test_even_split(self):
        pa = Block(2).split([1, 2, 3, 4])
        assert pa.to_list() == [[1, 2], [3, 4]]

    def test_uneven_split_front_loads(self):
        pa = Block(3).split(list(range(7)))
        assert [len(part) for part in pa] == [3, 2, 2]

    def test_numpy_split_returns_views(self):
        a = np.arange(10)
        pa = Block(2).split(a)
        assert np.shares_memory(np.asarray(pa[0]), a)

    def test_unsplit_concatenates_numpy(self):
        a = np.arange(10)
        assert np.array_equal(Block(3).unsplit(Block(3).split(a)), a)

    def test_dist_metadata_recorded(self):
        assert Block(2).split([1, 2]).dist == Block(2)

    def test_index_map(self):
        # n=7, p=3 -> parts of size 3,2,2
        pat = Block(3)
        assert pat.index_map(0, (7,)) == ((0,), (0,))
        assert pat.index_map(2, (7,)) == ((0,), (2,))
        assert pat.index_map(3, (7,)) == ((1,), (0,))
        assert pat.index_map(6, (7,)) == ((2,), (1,))

    def test_index_map_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Block(2).index_map(5, (4,))

    def test_invalid_p(self):
        with pytest.raises(ConfigurationError):
            Block(0)


class TestCyclic:
    def test_round_robin(self):
        pa = Cyclic(3).split(list(range(7)))
        assert pa.to_list() == [[0, 3, 6], [1, 4], [2, 5]]

    def test_unsplit_interleaves(self):
        xs = list(range(11))
        assert Cyclic(4).unsplit(Cyclic(4).split(xs)) == xs

    def test_numpy_round_trip(self):
        a = np.arange(9) * 2
        assert np.array_equal(Cyclic(2).unsplit(Cyclic(2).split(a)), a)

    def test_index_map(self):
        pat = Cyclic(3)
        assert pat.index_map(7, (10,)) == ((1,), (2,))

    def test_shape(self):
        assert Cyclic(5).shape == (5,)
        assert Cyclic(5).nparts == 5


class TestMatrixPatterns:
    @pytest.mark.parametrize("pattern", MATRIX_PATTERNS, ids=repr)
    @pytest.mark.parametrize("shape", [(6, 6), (7, 5), (10, 3), (3, 10)])
    def test_split_unsplit_round_trip(self, pattern, shape):
        a = np.arange(shape[0] * shape[1]).reshape(shape)
        assert np.array_equal(pattern.unsplit(pattern.split(a)), a)

    @pytest.mark.parametrize("pattern", MATRIX_PATTERNS, ids=repr)
    def test_index_map_consistent_with_split(self, pattern):
        """pattern.index_map must point at exactly the element split placed."""
        a = np.arange(48).reshape(6, 8)
        pa = pattern.split(a)
        for i in range(6):
            for j in range(8):
                pidx, lidx = pattern.index_map((i, j), a.shape)
                assert np.asarray(pa[pidx])[lidx] == a[i, j], (pattern, i, j)

    def test_rowcolblock_grid_shape(self):
        pa = RowColBlock(2, 3).split(np.zeros((4, 6)))
        assert pa.shape == (2, 3)
        assert np.asarray(pa[(0, 0)]).shape == (2, 2)

    def test_rowblock_rejects_1d(self):
        with pytest.raises(ConfigurationError, match="2-D"):
            RowBlock(2).split(np.arange(4))

    def test_unsplit_wrong_shape_rejected(self):
        from repro.core.pararray import ParArray

        with pytest.raises(ConfigurationError):
            RowBlock(2).unsplit(ParArray([np.zeros((1, 2))]))


class TestVectorIndexMapProperty:
    @pytest.mark.parametrize("pattern", VECTOR_PATTERNS, ids=repr)
    @given(n=st.integers(1, 60))
    def test_index_map_consistent_with_split(self, pattern, n):
        xs = list(range(n))
        pa = pattern.split(xs)
        for i in range(n):
            pidx, lidx = pattern.index_map(i, (n,))
            assert pa[pidx][lidx[0]] == xs[i]

    @pytest.mark.parametrize("pattern", VECTOR_PATTERNS, ids=repr)
    @given(n=st.integers(0, 60))
    def test_round_trip(self, pattern, n):
        xs = list(range(n))
        assert list(pattern.unsplit(pattern.split(xs))) == xs

    @pytest.mark.parametrize("pattern", VECTOR_PATTERNS, ids=repr)
    @given(n=st.integers(1, 60))
    def test_parts_cover_everything_once(self, pattern, n):
        pa = pattern.split(list(range(n)))
        seen = [x for part in pa for x in part]
        assert sorted(seen) == list(range(n))


class TestPatternEquality:
    def test_same_pattern_equal(self):
        assert Block(3) == Block(3)
        assert hash(Block(3)) == hash(Block(3))

    def test_different_params_unequal(self):
        assert Block(3) != Block(4)

    def test_different_kind_unequal(self):
        assert Block(3) != Cyclic(3)

    def test_repr_shows_shape(self):
        assert repr(RowColBlock(2, 3)) == "RowColBlock(2, 3)"


class TestBlockCyclic:
    def test_deals_blocks_round_robin(self):
        from repro.core.partition import BlockCyclic

        pat = BlockCyclic(2, 2)
        pa = pat.split(list(range(8)))
        assert pa.to_list() == [[0, 1, 4, 5], [2, 3, 6, 7]]

    def test_b1_equals_cyclic(self):
        from repro.core.partition import BlockCyclic

        xs = list(range(11))
        assert BlockCyclic(1, 3).split(xs).to_list() == Cyclic(3).split(xs).to_list()

    def test_large_b_equals_block_for_divisible(self):
        from repro.core.partition import BlockCyclic

        xs = list(range(12))
        assert BlockCyclic(4, 3).split(xs).to_list() == \
            Block(3).split(xs).to_list()

    def test_short_final_block(self):
        from repro.core.partition import BlockCyclic

        pat = BlockCyclic(3, 2)
        pa = pat.split(list(range(7)))  # blocks [0,1,2],[3,4,5],[6]
        assert pa.to_list() == [[0, 1, 2, 6], [3, 4, 5]]

    @given(n=st.integers(0, 80), b=st.integers(1, 6), p=st.integers(1, 5))
    def test_round_trip_property(self, n, b, p):
        from repro.core.partition import BlockCyclic

        pat = BlockCyclic(b, p)
        xs = list(range(n))
        assert list(pat.unsplit(pat.split(xs))) == xs

    @given(n=st.integers(1, 80), b=st.integers(1, 6), p=st.integers(1, 5))
    def test_index_map_property(self, n, b, p):
        from repro.core.partition import BlockCyclic

        pat = BlockCyclic(b, p)
        xs = list(range(n))
        pa = pat.split(xs)
        for i in range(n):
            pidx, lidx = pat.index_map(i, (n,))
            assert pa[pidx][lidx[0]] == xs[i]

    def test_numpy_round_trip(self):
        from repro.core.partition import BlockCyclic

        a = np.arange(17) * 3
        pat = BlockCyclic(4, 3)
        assert np.array_equal(pat.unsplit(pat.split(a)), a)

    def test_equality(self):
        from repro.core.partition import BlockCyclic

        assert BlockCyclic(2, 3) == BlockCyclic(2, 3)
        assert BlockCyclic(2, 3) != BlockCyclic(3, 2)
        assert hash(BlockCyclic(2, 3)) == hash(BlockCyclic(2, 3))

    def test_invalid_params(self):
        from repro.core.partition import BlockCyclic

        with pytest.raises(ConfigurationError):
            BlockCyclic(0, 2)
        with pytest.raises(ConfigurationError):
            BlockCyclic(2, 0)
