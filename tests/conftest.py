"""Shared fixtures and hypothesis configuration for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep hypothesis deterministic-ish and fast in CI; examples are still
# random per run, which is what we want for rule-soundness checks.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed NumPy generator for reproducible test data."""
    return np.random.default_rng(12345)
