"""The paper's definitions as executable specifications.

Each test quotes one equation or definition from the paper (§2) and checks
it literally against this implementation — the tightest possible notion of
"faithful reproduction" for the parts of the paper that are formal.
"""

from __future__ import annotations

import operator

import numpy as np

from repro.core import (
    Block,
    ParArray,
    align,
    apply_brdcast,
    brdcast,
    combine,
    distribution,
    farm,
    fetch,
    fold,
    imap,
    iter_for,
    iter_until,
    parmap,
    partition,
    rotate,
    rotate_col,
    rotate_row,
    scan,
    send,
    split,
    spmd,
)

A8 = ParArray([3, 1, 4, 1, 5, 9, 2, 6])


class TestSection21ConfigurationDefinitions:
    def test_distribution_definition(self):
        """distribution <p,f> <q,g> A B = align (p (partition f A))
                                                (q (partition g B))"""
        A = np.arange(8)
        B = np.arange(8) * 2
        p = lambda da: rotate(1, da)
        q = lambda da: da
        f, g = Block(4), Block(4)
        lhs = distribution([(p, f), (q, g)], [A, B])
        rhs = align(p(partition(f, A)), q(partition(g, B)))
        assert lhs == rhs

    def test_partition_row_block_definition(self):
        """partition row_block p A: B[i] holds rows [i*l/p, (i+1)*l/p)."""
        nrows, m, p = 6, 4, 3
        A = np.arange(nrows * m).reshape(nrows, m)
        from repro.core import RowBlock

        pa = partition(RowBlock(p), A)
        for i in range(p):
            assert np.array_equal(np.asarray(pa[i]),
                                  A[i * (nrows // p): (i + 1) * (nrows // p)])

    def test_align_pairs_elementwise(self):
        """align pairs corresponding subarrays into tuples."""
        x = ParArray([1, 2])
        y = ParArray(["a", "b"])
        assert align(x, y).to_list() == [(1, "a"), (2, "b")]

    def test_redistribution_definition(self):
        """redistribution [f1..fn] (DA1..DAn) = (f1 DA1 .. fn DAn)"""
        from repro.core import redistribution

        da = ParArray([1, 2, 3])
        db = ParArray([4, 5, 6])
        f1 = lambda d: rotate(1, d)
        f2 = lambda d: rotate(2, d)
        lhs = redistribution([f1, f2], align(da, db))
        rhs = align(f1(da), f2(db))
        assert lhs == rhs

    def test_split_combine_inverse(self):
        """combine flattens what split divided."""
        assert combine(split(Block(2), A8)) == A8


class TestSection22ElementaryDefinitions:
    def test_map_definition(self):
        """map f <x0..xn> = <f x0 .. f xn>"""
        f = lambda x: x * 7
        assert parmap(f, A8).to_list() == [f(x) for x in A8.to_list()]

    def test_imap_definition(self):
        """imap f <x0..xn> = <f 0 x0 .. f n xn>"""
        f = lambda i, x: 100 * i + x
        assert imap(f, A8).to_list() == \
            [f(i, x) for i, x in enumerate(A8.to_list())]

    def test_fold_definition(self):
        """fold (+) <x0..xn> = x0 + x1 + ... + xn"""
        assert fold(operator.add, A8) == sum(A8.to_list())

    def test_scan_definition(self):
        """scan (+) <x0,x1,..> = <x0, x0+x1, x0+x1+x2, ..>"""
        xs = A8.to_list()
        expected = [sum(xs[: i + 1]) for i in range(len(xs))]
        assert scan(operator.add, A8).to_list() == expected

    def test_rotate_definition(self):
        """rotate k A = <A[(i+k) mod SIZE(A)] | i>"""
        k, n = 3, 8
        out = rotate(k, A8)
        for i in range(n):
            assert out[i] == A8[(i + k) % n]

    def test_rotate_row_definition(self):
        """rotate_row df A = <A[i, (j + df i) mod n] | i, j>"""
        m, n = 3, 4
        grid = ParArray([[i * n + j for j in range(n)] for i in range(m)],
                        shape=(m, n))
        df = lambda i: i + 1
        out = rotate_row(df, grid)
        for i in range(m):
            for j in range(n):
                assert out[(i, j)] == grid[(i, (j + df(i)) % n)]

    def test_rotate_col_definition(self):
        """rotate_col df A = <A[(i + df j) mod m, j] | i, j>"""
        m, n = 4, 3
        grid = ParArray([[i * n + j for j in range(n)] for i in range(m)],
                        shape=(m, n))
        df = lambda j: 2 * j
        out = rotate_col(df, grid)
        for i in range(m):
            for j in range(n):
                assert out[(i, j)] == grid[((i + df(j)) % m, j)]

    def test_brdcast_definition(self):
        """brdcast a A = map (align_pair a) A"""
        a = {"env": 1}
        assert brdcast(a, A8) == parmap(lambda x: (a, x), A8)

    def test_applybrdcast_definition(self):
        """applybrdcast f i A = brdcast (f A[i]) A"""
        f = lambda x: x + 1000
        i = 3
        assert apply_brdcast(f, i, A8) == brdcast(f(A8[i]), A8)

    def test_send_definition(self):
        """send f <x0..xn>: x_k arrives at every index in f(k) — the
        result accumulates a vector at each index (order unspecified)."""
        f = lambda k: [k % 3]
        out = send(f, A8)
        for i in range(8):
            expected = sorted(A8[k] for k in range(8) if i in f(k))
            assert sorted(out[i]) == expected

    def test_fetch_definition(self):
        """fetch f <x0..xn> = <x_{f(0)}, .., x_{f(n)}>"""
        f = lambda i: (3 * i) % 8
        out = fetch(f, A8)
        for i in range(8):
            assert out[i] == A8[f(i)]


class TestSection23ComputationalDefinitions:
    def test_farm_definition(self):
        """farm f env = map (f env)"""
        f = lambda env, x: env - x
        assert farm(f, 100, A8) == parmap(lambda x: f(100, x), A8)

    def test_spmd_empty_is_identity(self):
        """SPMD [] = id"""
        assert spmd([])(A8) == A8

    def test_spmd_recursion(self):
        """SPMD ((gf, lf) : fs) = SPMD fs . gf . imap lf"""
        gf = lambda c: rotate(1, c)
        lf = lambda i, x: x * i
        fs = [(None, lambda _i, x: x + 1)]
        lhs = spmd([(gf, lf)] + fs)(A8)
        rhs = spmd(fs)(gf(imap(lf, A8)))
        assert lhs == rhs

    def test_iter_until_definition(self):
        """iterUntil iterSolve finalSolve con x: con checked before each
        iteration; finalSolve applied on exit."""
        trace = []

        def solve(x):
            trace.append(x)
            return x + 1

        out = iter_until(solve, lambda x: ("done", x), lambda x: x >= 3, 0)
        assert out == ("done", 3)
        assert trace == [0, 1, 2]

    def test_iter_for_via_iter_until(self):
        """iterFor terminator iterSolve x =
           fst (iterUntil iSolve id con (x, 0))"""
        iter_solve = lambda i, x: x + [i]

        def i_solve(state):
            x, i = state
            return (iter_solve(i, x), i + 1)

        terminator = 4
        lhs = iter_for(terminator, iter_solve, [])
        rhs = iter_until(i_solve, lambda s: s,
                         lambda s: s[1] >= terminator, ([], 0))[0]
        assert lhs == rhs == [0, 1, 2, 3]


class TestSection4LawStatements:
    """The transformation laws at the semantic (core-library) level."""

    def test_map_fusion_law(self):
        """map f . map g = map (f . g)"""
        f = lambda x: x * 3
        g = lambda x: x - 1
        assert parmap(f, parmap(g, A8)) == parmap(lambda x: f(g(x)), A8)

    def test_map_distribution_law(self):
        """foldr (f . g) = fold f . map g   [f associative]"""
        from repro.util.functional import foldr

        g = lambda x: x * x
        xs = A8.to_list()
        lhs = foldr(lambda x, acc: g(x) + acc, g(xs[-1]), xs[:-1])
        rhs = fold(operator.add, parmap(g, A8))
        assert lhs == rhs

    def test_fetch_fusion_law(self):
        """fetch f . fetch g = fetch (g . f)"""
        f = lambda i: (i + 3) % 8
        g = lambda i: (5 * i) % 8
        assert fetch(f, fetch(g, A8)) == fetch(lambda i: g(f(i)), A8)

    def test_send_fusion_law_on_permutations(self):
        """send f . send g = send (f . g)   [single-destination sends]"""
        f = lambda k: (k + 2) % 8
        g = lambda k: (k + 5) % 8
        lhs = send(lambda k: [f(k)],
                   parmap(lambda box: box[0], send(lambda k: [g(k)], A8)))
        rhs = send(lambda k: [f(g(k))], A8)
        assert lhs == rhs

    def test_flattening_law(self):
        """SPMD [gf1] . map (SPMD [(gf2, lf)]) . split P
           = SPMD [(gf1 . map gf2 . split P, lf)]"""
        gf1 = lambda nested: parmap(lambda sub: rotate(0, sub), nested)
        gf2 = lambda sub: rotate(1, sub)
        lf = lambda x: x * 2
        pat = Block(2)
        lhs = parmap(lambda sub: gf2(parmap(lf, sub)), split(pat, A8))
        lhs = gf1(lhs)
        sgf = lambda conf: gf1(parmap(gf2, split(pat, conf)))
        rhs = sgf(parmap(lf, A8))
        assert lhs == rhs
