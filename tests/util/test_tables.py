"""Tests for repro.util.tables."""

from __future__ import annotations

from repro.util.tables import render_table


class TestRenderTable:
    def test_header_and_rows_aligned(self):
        text = render_table("T", ["a", "long"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        header, rule, r1, r2 = lines[3:7]
        assert len(header) == len(rule) == len(r1) == len(r2)

    def test_columns_right_justified(self):
        text = render_table("T", ["col"], [[7]])
        assert "  7" in text or text.splitlines()[-1].endswith("7")

    def test_notes_appended(self):
        text = render_table("T", ["a"], [[1]], notes="a footnote")
        assert text.rstrip().endswith("a footnote")

    def test_empty_rows(self):
        text = render_table("T", ["a", "b"], [])
        assert "a" in text and "b" in text

    def test_wide_cells_stretch_column(self):
        text = render_table("T", ["x"], [["wide-value"]])
        assert "wide-value" in text

    def test_trailing_newline(self):
        assert render_table("T", ["a"], [[1]]).endswith("\n")
