"""Tests for repro.util.functional."""

from __future__ import annotations

import operator

from hypothesis import given
from hypothesis import strategies as st

from repro.util.functional import Composed, check_associative, compose, foldr, identity


def inc(x):
    return x + 1


def dbl(x):
    return x * 2


class TestIdentity:
    def test_returns_argument(self):
        obj = object()
        assert identity(obj) is obj


class TestCompose:
    def test_empty_compose_is_identity(self):
        assert compose() is identity

    def test_single_function_passes_through(self):
        assert compose(inc) is inc

    def test_applies_right_to_left(self):
        assert compose(dbl, inc)(3) == 8  # dbl(inc(3))
        assert compose(inc, dbl)(3) == 7  # inc(dbl(3))

    def test_three_functions(self):
        assert compose(inc, dbl, inc)(1) == 5  # inc(dbl(inc(1)))

    def test_identity_is_dropped(self):
        c = compose(inc, identity, dbl)
        assert isinstance(c, Composed)
        assert c.parts == (inc, dbl)

    def test_nested_composition_flattens(self):
        c = compose(inc, compose(dbl, inc))
        assert isinstance(c, Composed)
        assert c.parts == (inc, dbl, inc)

    def test_composition_is_structurally_associative(self):
        left = compose(compose(inc, dbl), inc)
        right = compose(inc, compose(dbl, inc))
        assert left == right

    def test_equality_and_hash(self):
        assert compose(inc, dbl) == compose(inc, dbl)
        assert compose(inc, dbl) != compose(dbl, inc)
        assert hash(Composed(inc, dbl)) == hash(Composed(inc, dbl))

    def test_repr_mentions_parts(self):
        assert "inc" in repr(Composed(inc, dbl))

    @given(st.integers(min_value=-1000, max_value=1000))
    def test_composed_call_matches_manual_nesting(self, x):
        assert Composed(dbl, inc)(x) == dbl(inc(x))


class TestCheckAssociative:
    def test_addition_is_associative(self):
        assert check_associative(operator.add, [1, 2, 3, -5])

    def test_subtraction_is_not(self):
        assert not check_associative(operator.sub, [1, 2, 3])

    def test_string_concat_is_associative_but_not_commutative(self):
        assert check_associative(operator.add, ["a", "b", "c"])

    def test_float_average_is_not_associative(self):
        avg = lambda a, b: (a + b) / 2
        assert not check_associative(avg, [0.0, 1.0, 2.0])

    def test_custom_equality(self):
        close = lambda a, b: abs(a - b) < 1e-9
        assert check_associative(operator.add, [0.1, 0.2, 0.3], eq=close)

    def test_empty_samples_vacuously_true(self):
        assert check_associative(operator.sub, [])


class TestFoldr:
    def test_right_associates(self):
        # foldr (-) 0 [1,2,3] = 1 - (2 - (3 - 0)) = 2
        assert foldr(operator.sub, 0, [1, 2, 3]) == 2

    def test_empty_returns_init(self):
        assert foldr(operator.add, 42, []) == 42

    def test_cons_reconstructs_list(self):
        cons = lambda x, acc: [x] + acc
        assert foldr(cons, [], [1, 2, 3]) == [1, 2, 3]

    @given(st.lists(st.integers()))
    def test_foldr_add_matches_sum(self, xs):
        assert foldr(operator.add, 0, xs) == sum(xs)
