"""Tests for repro.util.validation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SclError
from repro.util.validation import (
    ilog2,
    is_power_of_two,
    require,
    require_positive,
    require_power_of_two,
    require_type,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(SclError, match="boom"):
            require(False, "boom")

    def test_custom_exception_type(self):
        with pytest.raises(ConfigurationError):
            require(False, "nope", ConfigurationError)


class TestRequireType:
    def test_accepts_instance(self):
        require_type(3, int, "n")
        require_type("x", (int, str), "mixed")

    def test_rejects_wrong_type(self):
        with pytest.raises(SclError, match="n must be int"):
            require_type("3", int, "n")


class TestRequirePositive:
    @pytest.mark.parametrize("bad", [0, -1, 1.5, "2", None, True])
    def test_rejects_non_positive_ints(self, bad):
        with pytest.raises(SclError):
            require_positive(bad, "n")

    def test_accepts_positive(self):
        require_positive(7, "n")


class TestPowerOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 1 << 20])
    def test_powers_accepted(self, n):
        assert is_power_of_two(n)
        require_power_of_two(n, "n")

    @pytest.mark.parametrize("bad", [0, -2, 3, 6, 12, 1.0, True])
    def test_non_powers_rejected(self, bad):
        assert not is_power_of_two(bad)
        with pytest.raises(SclError):
            require_power_of_two(bad, "n")

    @given(st.integers(min_value=0, max_value=30))
    def test_ilog2_inverts_shift(self, k):
        assert ilog2(1 << k) == k

    def test_ilog2_rejects_non_power(self):
        with pytest.raises(SclError):
            ilog2(12)
