"""Streaming sinks: JSONL / Chrome exporters, ring buffer, frozen detail."""

from __future__ import annotations

import io
import json

import pytest

from repro.machine import AP1000, Machine
from repro.machine.trace import Span, Trace, TraceEvent, frozendetail
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    TraceSink,
    event_to_dict,
    span_to_list,
)

# ---------------------------------------------------------------------------
# Minimal structural validator for the Chrome trace-event JSON Array Format
# (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
# shared by these tests and the CI trace-smoke artifact check.
# ---------------------------------------------------------------------------

_COMMON_REQUIRED = {"name", "ph", "pid", "tid"}


def validate_chrome_trace(records) -> None:
    assert isinstance(records, list) and records, "expected a JSON array"
    for rec in records:
        missing = _COMMON_REQUIRED - set(rec)
        assert not missing, f"record missing {missing}: {rec}"
        ph = rec["ph"]
        assert ph in {"X", "i", "M"}, f"unexpected phase {ph!r}"
        if ph == "X":
            assert isinstance(rec["ts"], (int, float)) and rec["ts"] >= 0
            assert isinstance(rec["dur"], (int, float)) and rec["dur"] >= 0
        elif ph == "i":
            assert isinstance(rec["ts"], (int, float))
            assert rec.get("s") in {"g", "p", "t"}
        else:  # metadata
            assert rec["name"] in {"process_name", "thread_name"}
            assert "name" in rec.get("args", {})
        if "args" in rec:
            assert isinstance(rec["args"], dict)


def sample_trace(sink=None, max_events=None):
    t = Trace(sink=sink, max_events=max_events)
    root = Span("prog")
    loop = Span("loop", instr=0, parent=root)
    t.record(0, "compute", 0.0, 1.0, span=loop)
    t.record(0, "send", 1.0, 1.1, span=loop, dst=1, tag=3, nbytes=64)
    t.record(1, "recv", 0.0, 1.5, span=loop, src=0, tag=3, nbytes=64)
    t.record(1, "crash", 2.0, 2.0, span=root)
    return t


class TestFrozenDetail:
    def test_detail_is_immutable(self):
        e = TraceEvent(0, "send", 0.0, 1.0, {"dst": 1})
        for mutate in (lambda: e.detail.__setitem__("x", 1),
                       lambda: e.detail.pop("dst"),
                       lambda: e.detail.clear(),
                       lambda: e.detail.update({"x": 1}),
                       lambda: e.detail.setdefault("x", 1)):
            with pytest.raises(TypeError):
                mutate()
        assert e.detail["dst"] == 1

    def test_detail_does_not_alias_caller_dict(self):
        d = {"dst": 1}
        e = TraceEvent(0, "send", 0.0, 1.0, d)
        d["dst"] = 99
        assert e.detail["dst"] == 1

    def test_detail_is_hashable_and_reads_like_a_dict(self):
        e = TraceEvent(0, "send", 0.0, 1.0, {"dst": 1, "tag": 2})
        assert hash(e.detail) == hash(frozendetail({"tag": 2, "dst": 1}))
        assert e.detail.get("missing") is None
        assert dict(e.detail) == {"dst": 1, "tag": 2}


class TestRingBuffer:
    def test_keeps_last_n_and_counts_dropped(self):
        t = Trace(max_events=2)
        for i in range(5):
            t.record(0, "compute", float(i), float(i) + 0.5)
        assert len(t) == 2
        assert t.dropped == 3
        assert [e.start for e in t] == [3.0, 4.0]

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            Trace(max_events=0)

    def test_unbounded_trace_never_drops(self):
        t = sample_trace()
        assert t.dropped == 0


class TestSerialisers:
    def test_span_to_list_root_first(self):
        leaf = Span("iter 0", iteration=0,
                    parent=Span("loop", instr=2, parent=Span("prog")))
        assert span_to_list(leaf) == [
            {"label": "prog"},
            {"label": "loop", "instr": 2},
            {"label": "iter 0", "iter": 0},
        ]
        assert span_to_list(None) is None

    def test_event_to_dict_omits_empty_fields(self):
        e = TraceEvent(3, "compute", 0.0, 1.0)
        assert event_to_dict(e) == {"pid": 3, "kind": "compute",
                                    "start": 0.0, "end": 1.0}


class TestMemorySink:
    def test_collects_in_record_order(self):
        sink = MemorySink()
        t = sample_trace(sink=sink)
        assert sink.events == list(t)
        sink.close()
        assert sink.closed
        assert isinstance(sink, TraceSink)


class TestJsonlSink:
    def test_roundtrip(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sample_trace(sink=sink)
        sink.close()
        lines = buf.getvalue().splitlines()
        assert len(lines) == 4 == sink.count
        recs = [json.loads(line) for line in lines]
        assert recs[0]["span"] == [{"label": "prog"},
                                   {"label": "loop", "instr": 0}]
        assert recs[1]["detail"] == {"dst": 1, "tag": 3, "nbytes": 64}

    def test_path_target(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(str(path))
        sample_trace(sink=sink)
        sink.close()
        assert len(path.read_text().splitlines()) == 4

    def test_unserialisable_payload_falls_back_to_repr(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit(TraceEvent(0, "send", 0.0, 1.0, {"payload": object()}))
        sink.close()
        rec = json.loads(buf.getvalue())
        assert "object object" in rec["detail"]["payload"]


class TestChromeTraceSink:
    def test_valid_schema_and_content(self):
        buf = io.StringIO()
        sink = ChromeTraceSink(buf)
        sample_trace(sink=sink)
        sink.close()
        recs = json.loads(buf.getvalue())
        validate_chrome_trace(recs)
        slices = [r for r in recs if r["ph"] == "X"]
        assert len(slices) == 3
        first = slices[0]
        assert first["name"] == "loop"
        assert first["cat"] == "compute"
        assert first["tid"] == 0
        assert first["ts"] == 0.0 and first["dur"] == pytest.approx(1e6)
        assert first["args"]["span"] == "prog/loop"
        # zero-length crash renders as an instant mark
        instants = [r for r in recs if r["ph"] == "i"]
        assert len(instants) == 1 and instants[0]["cat"] == "crash"
        # metadata names the process and both threads
        metas = [r for r in recs if r["ph"] == "M"]
        assert {m["name"] for m in metas} == {"process_name", "thread_name"}
        assert {m["tid"] for m in metas if m["name"] == "thread_name"} == {0, 1}

    def test_close_is_idempotent(self):
        buf = io.StringIO()
        sink = ChromeTraceSink(buf)
        sink.close()
        sink.close()
        validate_chrome_trace(json.loads(buf.getvalue()) or
                              [{"name": "process_name", "ph": "M", "pid": 0,
                                "tid": 0, "args": {"name": "x"}}])


class TestMachineIntegration:
    def test_machine_streams_to_sink_while_ring_bounded(self):
        sink = MemorySink()
        machine = Machine(2, spec=AP1000, trace_sink=sink, trace_limit=3)

        def prog(env):
            for i in range(5):
                yield env.work(ops=10)
            return None

        res = machine.run(prog)
        # sink saw every event; the in-memory trace kept only the last 3
        assert len(sink.events) == 10
        assert len(res.trace) == 3
        assert res.trace.dropped == 7

    def test_supplying_sink_implies_tracing(self):
        sink = MemorySink()
        machine = Machine(1, spec=AP1000, trace_sink=sink)
        assert machine.record_trace

        def prog(env):
            yield env.work(ops=1)
            return None

        machine.run(prog)
        assert sink.events
