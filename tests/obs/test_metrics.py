"""Tests for the live metrics plane (:mod:`repro.obs.metrics`).

:func:`validate_metrics_artifact` is the schema check the CI
``metrics-smoke`` job runs against the ``--metrics-out`` artifact of
``python -m repro serve``; keeping it here means the
``repro.obs.metrics/v1`` schema and its validator evolve together.
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    METRICS_SCHEMA,
    MetricsError,
    MetricsRegistry,
    MetricsSnapshot,
    PeriodicSnapshotter,
    SloMonitor,
    exponential_buckets,
    iter_snapshot_dicts,
    metrics_artifact,
    observe_fault_counters,
    register_plan_cache_gauges,
    render_prometheus,
)


def validate_metrics_artifact(doc: dict, *,
                              expect_slo_shed: bool = False) -> None:
    """Assert a ``repro.obs.metrics/v1`` artifact has the right shape.

    With ``expect_slo_shed`` the artifact must come from a run whose
    overload phase engaged latency-aware shedding: the final snapshot
    carries a positive ``serve_rejections_total{reason="slo-shed"}``
    total and the SLO gauges.
    """
    assert doc["schema"] == METRICS_SCHEMA == "repro.obs.metrics/v1"
    assert doc["generated_by"]
    assert doc["snapshot_count"] == len(doc["snapshots"]) >= 1
    assert doc["final"] == doc["snapshots"][-1]
    last_t = float("-inf")
    for snap in doc["snapshots"]:
        assert snap["t"] >= last_t, "snapshots must be time-ordered"
        last_t = snap["t"]
        for s in snap["series"]:
            assert s["type"] in ("counter", "gauge", "histogram"), s
            assert isinstance(s["labels"], dict)
            if s["type"] == "histogram":
                assert s["count"] >= 0 and "+Inf" in s["buckets"]
                cum = list(s["buckets"].values())
                assert cum == sorted(cum), "bucket counts must be cumulative"
                assert cum[-1] == s["count"]
            else:
                assert isinstance(s["value"], (int, float))
    if expect_slo_shed:
        final = iter_snapshot_dicts([doc["final"]])[0]
        shed = sum(s["value"] for s in final.series
                   if s["name"] == "serve_rejections_total"
                   and s["labels"].get("reason") == "slo-shed")
        assert shed > 0, "expected slo-shed rejections in the final snapshot"
        assert final.value("serve_slo_p99_target_ms") is not None
        assert final.value("serve_slo_rolling_p99_ms") is not None


class TestInstruments:
    def test_counter_accumulates_per_label_child(self):
        reg = MetricsRegistry()
        reqs = reg.counter("reqs_total", "requests", ("endpoint", "tenant"))
        reqs.labels("scan", "pro").inc()
        reqs.labels("scan", "pro").inc(2.5)
        reqs.labels("scan", "free").inc()
        assert reqs.labels("scan", "pro").value == 3.5
        assert reqs.labels("scan", "free").value == 1.0
        assert reqs.labels(endpoint="scan", tenant="pro").value == 3.5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.counter("c_total").inc(-1)

    def test_gauge_set_inc_dec_and_callback(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(7)
        g.inc(3)
        g.dec()
        assert g.labels().value == 9.0
        backing = {"v": 0.0}
        g2 = reg.gauge("live")
        g2.set_function(lambda: backing["v"])
        backing["v"] = 42.0
        assert reg.snapshot().value("live") == 42.0

    def test_labels_arity_and_kind_conflicts_raise(self):
        reg = MetricsRegistry()
        fam = reg.counter("c_total", "", ("a", "b"))
        with pytest.raises(MetricsError):
            fam.labels("only-one")
        with pytest.raises(MetricsError):
            fam.labels(a="x", wrong="y")
        # Re-registration is idempotent for the same shape...
        assert reg.counter("c_total", "", ("a", "b")) is fam
        # ...and raises on a kind or label mismatch.
        with pytest.raises(MetricsError):
            reg.gauge("c_total", "", ("a", "b"))
        with pytest.raises(MetricsError):
            reg.counter("c_total", "", ("a",))

    def test_histogram_buckets_and_quantile_estimate(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.002, 0.003, 0.05, 5.0):
            h.observe(v)
        child = h.labels()
        assert child.count == 5
        assert child.sum == pytest.approx(5.0555)
        assert child.bucket_counts() == [1, 2, 1, 1]  # +Inf last
        assert child.quantile(0.5) == 0.01
        # +Inf observations report the last finite bound.
        assert child.quantile(1.0) == 0.1
        with pytest.raises(MetricsError):
            child.quantile(0.0)

    def test_histogram_empty_quantile_is_none(self):
        reg = MetricsRegistry()
        assert reg.histogram("h_seconds").labels().quantile(0.99) is None

    def test_bad_buckets_raise(self):
        with pytest.raises(MetricsError):
            exponential_buckets(0.0, 2.0, 4)
        reg = MetricsRegistry()
        with pytest.raises(MetricsError):
            reg.histogram("h", buckets=(0.1, 0.1))

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_LATENCY_BUCKETS[-1] > 5.0
        assert list(DEFAULT_LATENCY_BUCKETS) == \
            sorted(DEFAULT_LATENCY_BUCKETS)


class TestSnapshotAndExposition:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("reqs_total", "completed requests",
                    ("endpoint",)).labels("scan").inc(3)
        reg.gauge("depth", "queue depth").set(2)
        h = reg.histogram("lat_seconds", "latency", buckets=(0.01, 0.1))
        h.observe(0.005)
        h.observe(0.05)
        return reg

    def test_snapshot_series_shapes(self):
        snap = self._registry().snapshot(t=1.5)
        assert snap.t == 1.5
        assert snap.value("reqs_total", {"endpoint": "scan"}) == 3.0
        assert snap.value("depth") == 2.0
        assert snap.value("missing") is None
        hist = next(s for s in snap.series if s["name"] == "lat_seconds")
        assert hist["count"] == 2
        assert hist["buckets"] == {"0.01": 1, "0.1": 2, "+Inf": 2}
        assert hist["p50_est"] == 0.01

    def test_snapshot_roundtrips_through_dicts(self):
        snap = self._registry().snapshot(t=1.0)
        clone = iter_snapshot_dicts([json.loads(
            json.dumps(snap.to_dict()))])[0]
        assert isinstance(clone, MetricsSnapshot)
        assert clone.t == snap.t
        assert clone.value("depth") == 2.0

    def test_prometheus_exposition_format(self):
        text = self._registry().render_prometheus()
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{endpoint="scan"} 3.0' in text
        assert "# HELP depth queue depth" in text
        assert 'lat_seconds_bucket{le="0.01"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_sum 0.055" in text
        assert "lat_seconds_count 2" in text

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "", ("who",)).labels('a"b\\c').inc()
        assert 'who="a\\"b\\\\c"' in render_prometheus(reg.snapshot())

    def test_collector_runs_at_snapshot_time(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("pulled")
        state = {"v": 1.0}
        reg.add_collector(lambda r: gauge.set(state["v"]))
        assert reg.snapshot().value("pulled") == 1.0
        state["v"] = 9.0
        assert reg.snapshot().value("pulled") == 9.0


class TestPeriodicSnapshotter:
    def test_collects_and_streams_jsonl(self):
        reg = MetricsRegistry()
        c = reg.counter("ticks_total")
        buf = io.StringIO()
        with PeriodicSnapshotter(reg, interval_s=0.02, jsonl=buf) as snapper:
            c.inc()
            time.sleep(0.08)
        # At least one interval snapshot plus the final one on stop.
        assert len(snapper.snapshots) >= 2
        assert snapper.snapshots[-1].value("ticks_total") == 1.0
        lines = [json.loads(ln) for ln in
                 buf.getvalue().splitlines() if ln]
        assert len(lines) == len(snapper.snapshots)
        assert iter_snapshot_dicts(lines)[-1].value("ticks_total") == 1.0

    def test_artifact_shape(self):
        reg = MetricsRegistry()
        reg.counter("ticks_total").inc(3)
        doc = metrics_artifact([reg.snapshot(t=0.0), reg.snapshot(t=0.1)],
                               generated_by="test", interval_s=0.1)
        validate_metrics_artifact(doc)
        assert doc["interval_s"] == 0.1

    def test_empty_artifact_raises(self):
        with pytest.raises(MetricsError):
            metrics_artifact([], generated_by="test")

    def test_bad_interval_raises(self):
        with pytest.raises(MetricsError):
            PeriodicSnapshotter(MetricsRegistry(), interval_s=0.0)


class TestSloMonitor:
    def test_breach_needs_min_samples(self):
        slo = SloMonitor(0.010, window_s=1.0, min_samples=5)
        for i in range(4):
            slo.observe(0.100, now=0.1 * i)
        assert slo.breached(0.4) is False, "thin window never sheds"
        slo.observe(0.100, now=0.5)
        assert slo.breached(0.5) is True
        assert slo.breach_verdicts == 1
        assert slo.observed == 5

    def test_breach_clears_as_window_ages_out(self):
        slo = SloMonitor(0.010, window_s=1.0, min_samples=3)
        for i in range(6):
            slo.observe(0.050, now=0.01 * i)
        assert slo.breached(0.1) is True
        # A quiet second later every slow sample has aged out.
        assert slo.breached(1.2) is False
        assert slo.rolling(1.2)["samples"] == 0

    def test_fast_traffic_never_breaches(self):
        slo = SloMonitor(0.010, window_s=1.0, min_samples=3)
        for i in range(50):
            slo.observe(0.001, now=0.01 * i)
        assert slo.breached(0.5) is False
        state = slo.rolling(0.5)
        assert state["p99_ms"] <= state["p99_target_ms"]
        assert state["breached"] is False

    def test_bind_gauges_exports_rolling_state(self):
        reg = MetricsRegistry()
        clock = {"t": 0.0}
        slo = SloMonitor(0.010, window_s=1.0, min_samples=2)
        slo.bind_gauges(reg, lambda: clock["t"])
        for i in range(5):
            slo.observe(0.080, now=0.01 * i)
        clock["t"] = 0.1
        snap = reg.snapshot()
        assert snap.value("serve_slo_p99_target_ms") == 10.0
        assert snap.value("serve_slo_rolling_p99_ms") == 80.0
        assert snap.value("serve_slo_breached") == 1.0
        clock["t"] = 5.0  # window empty -> breach cleared
        assert reg.snapshot().value("serve_slo_breached") == 0.0

    def test_bad_config_raises(self):
        with pytest.raises(MetricsError):
            SloMonitor(0.0)
        with pytest.raises(MetricsError):
            SloMonitor(0.01, window_s=-1.0)
        with pytest.raises(MetricsError):
            SloMonitor(0.01, min_samples=0)


class TestDashboardCli:
    def _doc(self) -> dict:
        reg = MetricsRegistry()
        reqs = reg.counter("serve_requests_total", "",
                           ("endpoint", "tenant", "status"))
        snaps = []
        for i in range(3):
            reqs.labels("scan", "pro", "ok").inc(10)
            snaps.append(reg.snapshot(t=0.1 * (i + 1)))
        return metrics_artifact(snaps, generated_by="test")

    def test_dashboard_renders_rates(self):
        from repro.obs.metrics_cli import dashboard

        text = dashboard(iter_snapshot_dicts(self._doc()["snapshots"]))
        assert "3/3 snapshots" in text
        # 10 completions per 0.1 s interval -> 100 rps in delta rows.
        assert "100" in text
        assert dashboard([]) == "(no snapshots)"

    def test_load_snapshots_artifact_and_jsonl(self, tmp_path):
        from repro.obs.metrics_cli import load_snapshots

        doc = self._doc()
        path = tmp_path / "m.json"
        path.write_text(json.dumps(doc))
        assert len(load_snapshots(str(path))) == 3
        jsonl = tmp_path / "m.jsonl"
        jsonl.write_text("\n".join(json.dumps(s)
                                   for s in doc["snapshots"]))
        assert len(load_snapshots(str(jsonl))) == 3
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope/v0", "snapshots": []}))
        with pytest.raises(SystemExit):
            load_snapshots(str(bad))

    def test_main_from_artifact(self, tmp_path, capsys):
        from repro.obs.metrics_cli import main

        path = tmp_path / "m.json"
        path.write_text(json.dumps(self._doc()))
        assert main(["--from", str(path), "--prom"]) == 0
        out = capsys.readouterr().out
        assert "metrics dashboard" in out
        assert "# TYPE serve_requests_total counter" in out


class TestIntegrations:
    def test_plan_cache_gauges_track_stats(self):
        from repro.plan.lower import plan_cache_stats

        reg = MetricsRegistry()
        register_plan_cache_gauges(reg)
        register_plan_cache_gauges(reg)  # idempotent: no duplicate series
        snap = reg.snapshot()
        stats = plan_cache_stats()
        for key, value in stats.items():
            matches = [s for s in snap.series
                       if s["name"] == f"plan_cache_{key}"]
            assert len(matches) == 1
            assert matches[0]["value"] == value

    def test_fault_counters_become_labelled_series(self):
        reg = MetricsRegistry()
        observe_fault_counters(
            reg, {"retransmits": 3, "timeouts": 1, "dropped": 3,
                  "crashed": 0},
            labels={"app": "hyperquicksort", "drop_rate": "0.01"})
        snap = reg.snapshot()
        assert snap.value("machine_faults_total",
                          {"kind": "retransmits", "app": "hyperquicksort",
                           "drop_rate": "0.01"}) == 3.0
        assert snap.value("machine_faults_total",
                          {"kind": "crashed", "app": "hyperquicksort",
                           "drop_rate": "0.01"}) == 0.0
