"""Property tests for the latency rollups (:mod:`repro.obs.latency`).

The nearest-rank quantile is the number every SLO decision in the
metrics plane hangs off (:class:`repro.obs.metrics.SloMonitor`,
the serve report, the perf rows), so its edge cases are pinned as
properties over random samples: membership, rank bounds at ``q`` of
0/1, monotonicity in ``q``, and the skip-don't-crash contract of
:func:`repro.obs.latency.rollup_by` on records with missing keys.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.latency import quantile, rollup_by, summarize_latencies

finite_floats = st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False)
samples = st.lists(finite_floats, min_size=1, max_size=64)
qs = st.floats(min_value=1e-9, max_value=1.0,
               allow_nan=False, allow_infinity=False)


class TestQuantileProperties:
    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    @given(q=st.floats(allow_nan=True, allow_infinity=True))
    def test_q_outside_unit_interval_raises(self, q):
        if not 0 < q <= 1:
            with pytest.raises(ValueError):
                quantile([1.0], q)

    @given(x=finite_floats, q=qs)
    def test_single_element_is_that_element(self, x, q):
        assert quantile([x], q) == x

    @given(xs=samples, q=qs)
    def test_result_is_a_sample_member(self, xs, q):
        assert quantile(xs, q) in xs

    @given(xs=samples)
    def test_q1_is_max_and_tiny_q_is_min(self, xs):
        assert quantile(xs, 1.0) == max(xs)
        assert quantile(xs, 1e-9) == min(xs)

    @given(xs=samples, q1=qs, q2=qs)
    def test_monotone_in_q(self, xs, q1, q2):
        lo, hi = sorted((q1, q2))
        assert quantile(xs, lo) <= quantile(xs, hi)

    @given(xs=samples, q=qs)
    def test_nearest_rank_definition(self, xs, q):
        ordered = sorted(xs)
        rank = math.ceil(q * len(ordered))
        assert quantile(xs, q) == ordered[rank - 1]

    @given(xs=samples, q=qs)
    def test_invariant_under_permutation(self, xs, q):
        assert quantile(list(reversed(xs)), q) == quantile(xs, q)


class TestRollupProperties:
    @given(lats=st.lists(finite_floats, max_size=32))
    def test_summary_count_matches(self, lats):
        summary = summarize_latencies(lats)
        assert summary["count"] == len(lats)
        if lats:
            assert summary["p50_ms"] <= summary["p99_ms"] \
                <= summary["max_ms"]

    @given(records=st.lists(st.fixed_dictionaries(
        {},
        optional={"endpoint": st.sampled_from(["a", "b"]),
                  "latency_s": finite_floats}),
        max_size=32))
    def test_rollup_skips_incomplete_records(self, records):
        rollups = rollup_by(records, "endpoint")
        complete = [r for r in records
                    if "endpoint" in r and "latency_s" in r]
        assert sum(s["count"] for s in rollups.values()) == len(complete)
        assert set(rollups) == {r["endpoint"] for r in complete}
        assert list(rollups) == sorted(rollups)

    def test_rollup_on_missing_key_is_empty(self):
        records = [{"latency_s": 0.1}, {"tenant": "pro"}]
        assert rollup_by(records, "endpoint") == {}
