"""``python -m repro trace`` end-to-end: report contents and artifacts."""

from __future__ import annotations

import json
import re

import pytest

from repro.obs.cli import main
from tests.obs.test_sinks import validate_chrome_trace


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    assert code == 0, out
    return out


class TestHyperquicksort:
    def test_report_structure(self, capsys):
        out = run_cli(capsys, "hyperquicksort", "-n", "512", "--dim", "2")
        assert "traced hyperquicksort" in out
        assert "per-instruction observed vs predicted" in out
        assert "predicted s" in out and "elapsed s" in out
        assert "iter 0" in out
        assert "idle time: waiting on whom" in out

    def test_critical_path_equals_makespan(self, capsys):
        out = run_cli(capsys, "hyperquicksort", "-n", "512", "--dim", "2",
                      "--critical-path")
        m = re.search(r"length (\S+) s \(makespan (\S+) s\)", out)
        assert m, out
        assert float(m.group(1)) == pytest.approx(float(m.group(2)),
                                                  rel=1e-12)
        assert "critical path by category" in out
        assert "critical-path segments" in out

    def test_chrome_artifact_valid(self, capsys, tmp_path):
        path = tmp_path / "hq.trace.json"
        out = run_cli(capsys, "hyperquicksort", "-n", "512", "--dim", "2",
                      "--sink", "chrome", "--out", str(path))
        assert "wrote" in out and str(path) in out
        recs = json.loads(path.read_text())
        validate_chrome_trace(recs)
        spans = [r["args"]["span"] for r in recs
                 if r["ph"] == "X" and "span" in r.get("args", {})]
        assert spans and all(s.startswith("hyperquicksort") for s in spans)

    def test_jsonl_artifact(self, capsys, tmp_path):
        path = tmp_path / "hq.jsonl"
        run_cli(capsys, "hyperquicksort", "-n", "512", "--dim", "2",
                "--sink", "jsonl", "--out", str(path))
        recs = [json.loads(line) for line in path.read_text().splitlines()]
        assert recs
        assert all(rec["span"][0]["label"] == "hyperquicksort"
                   for rec in recs)

    def test_ring_buffer_limit_skips_graph_analysis(self, capsys):
        out = run_cli(capsys, "hyperquicksort", "-n", "512", "--dim", "2",
                      "--limit", "10")
        assert "ring buffer kept the last 10" in out
        assert "critical path by category" not in out

    def test_bad_dim_rejected(self, capsys):
        assert main(["hyperquicksort", "--dim", "0"]) == 2


class TestGaussJordan:
    def test_report_structure(self, capsys):
        out = run_cli(capsys, "gauss-jordan", "-n", "8", "--procs", "4")
        assert "traced gauss-jordan" in out
        assert "per-instruction observed vs predicted" in out
        assert "whole run (makespan)" in out


class TestDispatch:
    def test_top_level_cli_routes_trace(self, capsys):
        from repro.cli import main as top_main

        code = top_main(["trace", "hyperquicksort", "-n", "512",
                         "--dim", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "traced hyperquicksort" in out
