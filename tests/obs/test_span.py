"""Span attribution: every traced event names the plan instruction behind it."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.sort import hyperquicksort_expression, seq_quicksort
from repro.core import parmap, partition
from repro.core.partition import Block
from repro.machine import AP1000, Hypercube, Machine
from repro.machine.trace import Span
from repro.obs.analyze import top_instruction_frame
from repro.scl.compile import run_expression


def traced_hyperquicksort(d=2, n=256, **machine_kw):
    p = 1 << d
    expr = hyperquicksort_expression(d)
    rng = np.random.default_rng(7)
    values = rng.integers(0, 2**31, size=n).astype(np.int32)
    blocks = parmap(seq_quicksort, partition(Block(p), values))
    machine = Machine(Hypercube(d), spec=AP1000, record_trace=True,
                      **machine_kw)
    out, res = run_expression(expr, blocks, machine, label="hyperquicksort")
    merged = np.concatenate([np.asarray(b) for b in out])
    assert np.array_equal(merged, np.sort(values))
    return res


class TestSpan:
    def test_frames_root_first(self):
        root = Span("prog")
        mid = Span("loop", instr=0, parent=root)
        leaf = Span("iter 1", iteration=1, parent=mid)
        assert [f.label for f in leaf.frames()] == ["prog", "loop", "iter 1"]
        assert leaf.root is root
        assert leaf.path() == "prog/loop/iter 1"
        assert str(leaf) == "prog/loop/iter 1"

    def test_single_frame(self):
        s = Span("only")
        assert s.frames() == (s,)
        assert s.root is s


class TestCompiledAttribution:
    def test_every_event_carries_an_instruction_span(self):
        res = traced_hyperquicksort()
        events = res.trace.events()
        assert events, "traced run recorded no events"
        for e in events:
            assert e.span is not None, f"unattributed event {e}"
            assert e.span.root.label == "hyperquicksort"
            frame = top_instruction_frame(e.span)
            assert frame is not None, f"no instruction frame on {e}"
            assert frame.instr is not None

    def test_loop_iterations_attributed(self):
        res = traced_hyperquicksort(d=2)
        iters = {f.iteration
                 for e in res.trace.events()
                 for f in e.span.frames() if f.iteration is not None}
        assert iters == {0, 1}  # d=2 -> two merge-split rounds

    def test_untraced_run_has_no_span_machinery(self):
        p = 4
        machine = Machine(Hypercube(2), spec=AP1000)

        def prog(env):
            assert not env.tracing
            with env.span("ignored"):  # no-op scope on untraced machines
                yield env.work(ops=10)
            return env.pid

        res = machine.run(prog)
        assert res.values == list(range(p))
        assert res.trace is None

    def test_env_span_on_raw_program(self):
        machine = Machine(2, spec=AP1000, record_trace=True)

        def prog(env):
            assert env.tracing
            with env.span("phase-a"):
                yield env.work(ops=10)
            with env.span("phase-b", instr=7):
                yield env.work(ops=10)
            return None

        res = machine.run(prog)
        for pid in (0, 1):
            computes = res.trace.events(pid=pid, kind="compute")
            assert [e.span.label for e in computes] == ["phase-a", "phase-b"]
            assert computes[1].span.instr == 7

    def test_span_restored_after_scope(self):
        machine = Machine(1, spec=AP1000, record_trace=True)

        def prog(env):
            with env.span("outer"):
                with env.span("inner"):
                    yield env.work(ops=1)
                yield env.work(ops=1)
            yield env.work(ops=1)
            return None

        res = machine.run(prog)
        paths = [e.span.path() if e.span else None
                 for e in res.trace.events(kind="compute")]
        assert paths == ["outer/inner", "outer", None]

    def test_tracing_identical_virtual_results(self):
        # span bookkeeping must not perturb the simulation itself
        res_traced = traced_hyperquicksort(d=2)
        p = 4
        expr = hyperquicksort_expression(2)
        rng = np.random.default_rng(7)
        values = rng.integers(0, 2**31, size=256).astype(np.int32)
        blocks = parmap(seq_quicksort, partition(Block(p), values))
        machine = Machine(Hypercube(2), spec=AP1000)
        _out, res_plain = run_expression(expr, blocks, machine,
                                         label="hyperquicksort")
        assert res_plain.makespan == pytest.approx(res_traced.makespan)
        assert res_plain.total_messages == res_traced.total_messages


class TestFaultTolerantAttribution:
    def test_ft_execution_tags_drain_and_instructions(self):
        from repro.faults.models import FaultInjector, FaultSpec
        from repro.faults.plan_exec import run_expression_ft

        d, n = 2, 256
        p = 1 << d
        expr = hyperquicksort_expression(d)
        rng = np.random.default_rng(7)
        values = rng.integers(0, 2**31, size=n).astype(np.int32)
        blocks = parmap(seq_quicksort, partition(Block(p), values))
        machine = Machine(Hypercube(d), spec=AP1000, record_trace=True,
                          faults=FaultInjector(FaultSpec(seed=5,
                                                         drop_rate=0.05)))
        out, res = run_expression_ft(expr, blocks, machine,
                                     label="hyperquicksort")
        merged = np.concatenate([np.asarray(b) for b in out])
        assert np.array_equal(merged, np.sort(values))
        roots = {e.span.root.label for e in res.trace.events()
                 if e.span is not None}
        assert roots <= {"hyperquicksort", "drain"}
        assert "hyperquicksort" in roots
        # fault-layer events (retransmit/timeout/drop) are attributed too
        for e in res.trace.events():
            if e.kind in ("retransmit", "timeout"):
                assert e.span is not None
