"""Critical path, rollups and idle attribution over traced runs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine import AP1000, Hypercube, Machine
from repro.machine.trace import Trace
from repro.obs import analyze
from repro.obs.report import (
    critical_path_report,
    idle_report,
    instruction_report,
    skeleton_report,
)


def traced_run(d=2, n=256):
    from repro.apps.sort import hyperquicksort_expression, seq_quicksort
    from repro.core import parmap, partition
    from repro.core.partition import Block
    from repro.plan.lower import lower
    from repro.scl.compile import run_expression

    p = 1 << d
    expr = hyperquicksort_expression(d)
    rng = np.random.default_rng(11)
    values = rng.integers(0, 2**31, size=n).astype(np.int32)
    blocks = parmap(seq_quicksort, partition(Block(p), values))
    machine = Machine(Hypercube(d), spec=AP1000, record_trace=True)
    _out, res = run_expression(expr, blocks, machine, label="hyperquicksort")
    return res, lower(expr, p)


class TestCriticalPath:
    def test_length_equals_makespan(self):
        res, _plan = traced_run()
        cp = analyze.critical_path(res.trace, spec=AP1000)
        assert cp.length == pytest.approx(res.makespan, rel=1e-12)

    def test_categories_partition_the_length(self):
        res, _plan = traced_run()
        cp = analyze.critical_path(res.trace, spec=AP1000)
        assert sum(cp.by_category().values()) == pytest.approx(cp.length)

    def test_path_is_chronological_and_connected(self):
        res, _plan = traced_run()
        cp = analyze.critical_path(res.trace, spec=AP1000)
        ends = [s.event.end for s in cp.steps]
        assert ends == sorted(ends)
        assert cp.steps[0].edge == "start"
        assert all(s.edge in ("local", "network") for s in cp.steps[1:])
        assert cp.steps[-1].event.end == pytest.approx(res.makespan)

    def test_network_edge_hops_processors(self):
        # two procs, receiver blocks on a late sender: the path must cross
        machine = Machine(2, spec=AP1000, record_trace=True)

        def prog(env):
            if env.pid == 0:
                yield env.work(ops=100_000)
                yield env.send(1, "x", tag=1, nbytes=8)
            else:
                yield env.recv(0, tag=1)
                yield env.work(ops=10)
            return None

        res = machine.run(prog)
        cp = analyze.critical_path(res.trace, spec=AP1000)
        assert cp.length == pytest.approx(res.makespan, rel=1e-12)
        edges = [s.edge for s in cp.steps]
        assert "network" in edges
        pids = {s.event.pid for s in cp.steps}
        assert pids == {0, 1}

    def test_empty_trace_rejected(self):
        with pytest.raises(MachineError):
            analyze.critical_path(Trace(), spec=AP1000)

    def test_ring_buffered_trace_rejected(self):
        t = Trace(max_events=1)
        t.record(0, "compute", 0.0, 1.0)
        t.record(0, "compute", 1.0, 2.0)
        with pytest.raises(MachineError, match="evicted"):
            analyze.critical_path(t, spec=AP1000)


class TestRollups:
    def test_by_skeleton_buckets_all_events(self):
        res, _plan = traced_run()
        rolls = analyze.by_skeleton(res.trace)
        assert set(rolls) == {"hyperquicksort"}
        assert rolls["hyperquicksort"].events == len(res.trace)

    def test_by_instruction_covers_plan(self):
        res, plan = traced_run()
        rolls = analyze.by_instruction(res.trace)
        assert None not in rolls  # every event attributed
        assert set(rolls) <= set(range(len(plan.instrs)))
        assert sum(r.events for r in rolls.values()) == len(res.trace)

    def test_rollup_counts_messages_and_bytes(self):
        res, _plan = traced_run()
        (roll,) = analyze.by_skeleton(res.trace).values()
        assert roll.messages == res.total_messages
        assert roll.bytes == res.trace.bytes_sent()
        assert roll.elapsed == pytest.approx(res.makespan, rel=1e-9)

    def test_by_iteration(self):
        res, plan = traced_run(d=2)
        loop_idx = 0  # the whole compiled sort is one top-level Loop
        iters = analyze.by_iteration(res.trace, instr=loop_idx)
        assert set(iters) <= {0, 1}
        assert all(r.events > 0 for r in iters.values())

    def test_untagged_events_grouped_separately(self):
        t = Trace()
        t.record(0, "compute", 0.0, 1.0)  # no span
        rolls = analyze.by_skeleton(t)
        assert set(rolls) == {analyze.UNTAGGED}
        assert analyze.by_instruction(t)[None].events == 1


class TestIdleAttribution:
    def test_blames_the_late_sender(self):
        machine = Machine(2, spec=AP1000, record_trace=True)

        def prog(env):
            if env.pid == 0:
                yield env.work(ops=100_000)
                yield env.send(1, "x", tag=1, nbytes=8)
            else:
                yield env.recv(0, tag=1)
            return None

        res = machine.run(prog)
        idle = analyze.idle_attribution(res.trace, spec=AP1000)
        assert (1, 0) in idle
        assert idle[(1, 0)] > 0
        assert (0, 1) not in idle  # the sender never waited

    def test_no_idle_on_compute_only_run(self):
        machine = Machine(2, spec=AP1000, record_trace=True)

        def prog(env):
            yield env.work(ops=100)
            return None

        res = machine.run(prog)
        assert analyze.idle_attribution(res.trace, spec=AP1000) == {}


class TestReports:
    def test_instruction_report_has_predicted_and_observed(self):
        res, plan = traced_run()
        text = instruction_report(res.trace, plan, spec=AP1000,
                                  element_bytes=256, makespan=res.makespan)
        assert "predicted s" in text and "elapsed s" in text
        assert "loop x2" in text
        assert "iter 0" in text and "iter 1" in text
        assert "whole run (makespan)" in text

    def test_instruction_report_without_plan(self):
        res, _plan = traced_run()
        text = instruction_report(res.trace)
        assert "observed costs" in text
        assert "predicted" not in text.split("\n")[0]

    def test_other_reports_render(self):
        res, _plan = traced_run()
        cp = analyze.critical_path(res.trace, spec=AP1000)
        assert "telescope" in critical_path_report(cp)
        assert "hyperquicksort" in skeleton_report(res.trace)
        assert "waiting on whom" in idle_report(res.trace, spec=AP1000)
