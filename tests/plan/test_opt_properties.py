"""Optimizer soundness properties: same values, never-worse cost.

The plan optimizer's whole-pipeline contract, stated over randomly
generated expressions and a sweep of machine shapes:

1. **Bit-identical results** — the optimized plan's simulated values
   equal the unoptimized plan's, element for element.
2. **Simulated cost never worse** — makespan (tiny float slack for
   re-associated compute charges) and total messages of the optimized
   run are bounded by the unoptimized run's.
3. **Predicted cost never worse** — ``plan_cost`` of the optimized plan
   is bounded by the raw plan's on the spec the passes priced with.

Plus the two deterministic application anchors the perf harness tracks:
compiled hyperquicksort and the gauss-jordan solver.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pararray import ParArray
from repro.machine import AP1000, Machine, PERFECT
from repro.machine.topology import FullyConnected, Hypercube, Ring
from repro.plan.cost import plan_cost
from repro.plan.lower import lower
from repro.plan.opt import OptConfig, optimize_plan
from repro.scl import (
    Brdcast,
    Fetch,
    Fold,
    IMap,
    IterFor,
    Map,
    Rotate,
    Scan,
    compose_nodes,
)
from repro.scl.compile import base_fragment, run_expression

SLACK = 1 + 1e-9  # fused compute charges re-associate float additions

SPECS = {"ap1000": AP1000, "perfect": PERFECT}
TOPOLOGIES = {
    "ring": Ring,
    "full": FullyConnected,
    "hypercube": Hypercube.of_size,
}


@base_fragment(ops=40.0)
def _inc(x):
    return x + 1


@base_fragment(ops=60.0)
def _dbl(x):
    return x * 2


@base_fragment(ops=20.0)
def _collapse(pair):
    # Brdcast pairs the broadcast value with each component; fold the
    # pair back to a number so any numeric leaf can follow.
    a, x = pair
    return a + x


@st.composite
def programs(draw):
    """Random flat chains over every §4-relevant skeleton family."""
    p = draw(st.sampled_from([2, 3, 4, 8]))
    leaf = st.one_of(
        st.sampled_from([Map(_inc), Map(_dbl),
                         IMap(lambda i, x: x + i),
                         compose_nodes(Map(_collapse), Brdcast(17.0))]),
        st.integers(min_value=-4, max_value=4).map(Rotate),
        st.integers(min_value=0, max_value=p - 1).map(
            lambda s: Fetch(lambda r, s=s: (r + s) % p)),
        st.just(Scan(lambda a, b: a + b)),
        st.integers(min_value=1, max_value=3).map(
            lambda k: IterFor(k, lambda i: compose_nodes(
                Map(_inc), Rotate(i + 1)))),
    )
    steps = draw(st.lists(leaf, min_size=1, max_size=5))
    # a trailing Fold is legal (scalar plans), anywhere else it is not
    if draw(st.booleans()):
        steps.insert(0, Fold(lambda a, b: a + b))
    return p, compose_nodes(*steps)


@settings(max_examples=60, deadline=None)
@given(prog=programs(),
       topo_name=st.sampled_from(sorted(TOPOLOGIES)),
       spec_name=st.sampled_from(sorted(SPECS)))
def test_optimized_runs_are_bit_identical_and_never_cost_more(
        prog, topo_name, spec_name):
    p, expr = prog
    if topo_name == "hypercube" and p & (p - 1):
        p = 4  # hypercubes need a power of two
    spec = SPECS[spec_name]
    pa = ParArray([float(3 * r + 1) for r in range(p)])

    def machine():
        return Machine(TOPOLOGIES[topo_name](p), spec=spec)

    m = machine()
    config = OptConfig.for_machine(m)
    want, res_off = run_expression(expr, pa, m, opt="off")
    got, res_opt = run_expression(expr, pa, machine(), opt=config)

    if np.isscalar(want) or not isinstance(want, ParArray):
        assert got == want
    else:
        assert list(got) == list(want)
    assert res_opt.total_messages <= res_off.total_messages
    assert res_opt.makespan <= res_off.makespan * SLACK

    raw = lower(expr, p)
    opt = optimize_plan(raw, config)
    c_raw = plan_cost(raw, spec=spec)
    c_opt = plan_cost(opt, spec=spec)
    assert c_opt.messages <= c_raw.messages
    assert c_opt.seconds <= c_raw.seconds * SLACK


@settings(max_examples=25, deadline=None)
@given(prog=programs())
def test_zero_cost_selection_still_preserves_values(prog):
    """Collective selection actually fires on the zero-cost spec; the
    switched schedules must still compute identical values."""
    import dataclasses

    p, expr = prog
    zero = dataclasses.replace(PERFECT, flop_time=0.0,
                               bandwidth=float("inf"))
    pa = ParArray([float(3 * r + 1) for r in range(p)])
    want, _ = run_expression(expr, pa,
                             Machine(FullyConnected(p), spec=zero),
                             opt="off")
    got, _ = run_expression(expr, pa,
                            Machine(FullyConnected(p), spec=zero),
                            opt=OptConfig(spec=zero))
    if np.isscalar(want) or not isinstance(want, ParArray):
        assert got == want
    else:
        assert list(got) == list(want)


class TestApplicationAnchors:
    @pytest.mark.parametrize("d", [2, 3])
    def test_hyperquicksort_bit_identical_and_never_more_traffic(self, d,
                                                                 rng):
        from repro.apps.sort import hyperquicksort_compiled

        vals = rng.integers(0, 10**6, size=1 << (d + 6)).astype(np.int64)
        want, res_off = hyperquicksort_compiled(vals, d, opt="off")
        got, res_opt = hyperquicksort_compiled(vals, d)
        assert np.array_equal(got, want)
        assert res_opt.total_messages <= res_off.total_messages
        assert res_opt.makespan <= res_off.makespan * SLACK

    def test_gauss_jordan_bit_identical(self, rng):
        from repro.apps.linalg import gauss_jordan_compiled

        n, p = 12, 4
        A = rng.normal(size=(n, n)) + n * np.eye(n)
        b = rng.normal(size=n)
        want, res_off = gauss_jordan_compiled(A, b, p, opt="off")
        got, res_opt = gauss_jordan_compiled(A, b, p)
        assert np.array_equal(got, want)  # exact, not allclose
        assert res_opt.total_messages <= res_off.total_messages
        assert res_opt.makespan <= res_off.makespan * SLACK
