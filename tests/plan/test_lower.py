"""Lowering: expression trees become flat, statically-resolved plans.

The structural half of the Plan IR contract — index functions evaluated
once into per-rank tables, shape errors raised before anything runs, one
cached plan per ``(expr, nprocs, grid)``.  The behavioural half (lowered
plans compute what the interpreter computes) lives in
``test_crosscheck.py``.
"""

from __future__ import annotations

import pytest

from repro.core.partition import Block
from repro.errors import SkeletonError
from repro.plan import ir
from repro.plan.lower import (
    clear_plan_cache,
    lower,
    plan_cache_reset,
    plan_cache_stats,
    tuned_lower,
)
from repro.scl import (
    AlignFetch,
    Brdcast,
    Combine,
    Fetch,
    Fold,
    Gather,
    Id,
    IMap,
    IterFor,
    Map,
    PermSend,
    Rotate,
    RotateRow,
    Scan,
    SendNode,
    Split,
    compose_nodes,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestStructure:
    def test_identity_lowers_to_the_empty_plan(self):
        plan = lower(Id(), 8)
        assert plan.instrs == ()
        assert plan.nprocs == 8

    def test_composition_reverses_into_execution_order(self):
        f, g = (lambda x: x + 1), (lambda x: x * 2)
        plan = lower(compose_nodes(Map(f), Map(g)), 4)
        # `map f . map g` applies g first
        assert [i.fn for i in plan.instrs] == [g, f]

    def test_rotate_index_arithmetic_is_pre_reduced(self):
        plan = lower(Rotate(-3), 8)
        (instr,) = plan.instrs
        assert isinstance(instr, ir.Rotate) and instr.k == 5

    def test_full_turn_rotation_is_elided(self):
        assert lower(Rotate(8), 8).instrs == ()
        assert lower(Rotate(0), 8).instrs == ()

    def test_fetch_tables_are_static(self):
        plan = lower(Fetch(lambda r: 0), 4)
        (instr,) = plan.instrs
        assert isinstance(instr, ir.Exchange) and instr.mode == "replace"
        assert instr.sends == ((1, 2, 3), (), (), ())
        assert instr.recvs == ((0,), (0,), (0,), (0,))

    def test_align_fetch_keeps_both_halves(self):
        plan = lower(AlignFetch(lambda r: r ^ 1), 4)
        (instr,) = plan.instrs
        assert instr.mode == "pair"
        assert instr.sends == ((1,), (0,), (3,), (2,))

    def test_send_multicast_collects_in_source_order(self):
        plan = lower(SendNode(lambda r: (0,)), 4)
        (instr,) = plan.instrs
        assert instr.mode == "collect"
        assert instr.recvs[0] == (0, 1, 2, 3)

    def test_fold_marks_the_plan_scalar(self):
        plan = lower(Fold(lambda a, b: a + b), 8)
        assert plan.returns_scalar

    def test_iterfor_expands_each_iteration(self):
        plan = lower(IterFor(3, lambda i: Rotate(i)), 8)
        (loop,) = plan.instrs
        assert isinstance(loop, ir.Loop) and len(loop.bodies) == 3
        assert loop.bodies[0] == ()  # rotate 0 elided
        assert loop.bodies[1][0].k == 1

    def test_split_groups_and_subplans(self):
        inner = compose_nodes(Rotate(1), Map(lambda x: -x))
        plan = lower(compose_nodes(Combine(), Map(inner), Split(Block(2))), 8)
        split, sub, comb = plan.instrs
        assert isinstance(split, ir.GroupSplit)
        assert split.groups == ((0, 1, 2, 3), (4, 5, 6, 7))
        assert split.group_of == (0, 0, 0, 0, 1, 1, 1, 1)
        assert isinstance(sub, ir.SubPlan) and len(sub.plans) == 2
        assert all(p.nprocs == 4 for p in sub.plans)
        assert isinstance(comb, ir.GroupCombine)


class TestLoweringErrors:
    def test_fetch_source_out_of_range(self):
        with pytest.raises(SkeletonError, match="source 9 out of range 0..7"):
            lower(Fetch(lambda r: 9), 8)

    def test_send_must_be_a_permutation(self):
        with pytest.raises(SkeletonError, match="not a permutation"):
            lower(PermSend(lambda r: 0), 4)

    def test_flat_skeleton_inside_split(self):
        expr = compose_nodes(Combine(), Map(lambda x: x), Split(Block(2)))
        with pytest.raises(SkeletonError,
                           match="cannot be applied to a split configuration"):
            lower(expr, 8)

    def test_nested_split_rejected(self):
        expr = compose_nodes(Combine(), Split(Block(2)), Split(Block(2)))
        with pytest.raises(SkeletonError, match="`combine` first"):
            lower(expr, 8)

    def test_combine_without_split(self):
        with pytest.raises(SkeletonError, match="without a preceding split"):
            lower(Combine(), 8)

    def test_map_of_subexpression_needs_a_split(self):
        with pytest.raises(SkeletonError, match="requires a split"):
            lower(Map(Rotate(1)), 8)

    def test_grid_skeleton_without_a_grid(self):
        with pytest.raises(SkeletonError, match="2-D processor grid"):
            lower(RotateRow(lambda i: 1), 8)

    def test_flat_skeleton_on_a_grid(self):
        with pytest.raises(SkeletonError, match="1-D configuration"):
            lower(Rotate(1), 8, (2, 4))

    def test_unsupported_node(self):
        with pytest.raises(SkeletonError, match="does not support Gather"):
            lower(Gather(), 8)

    def test_errors_are_raised_at_lowering_time_not_cached(self):
        # A failing lowering must not poison the cache.
        expr = Fetch(lambda r: 99)
        for _ in range(2):
            with pytest.raises(SkeletonError):
                lower(expr, 8)
        assert plan_cache_stats()["size"] == 0


class TestPlanCache:
    def test_same_key_returns_the_same_object(self):
        expr = compose_nodes(Map(lambda x: x), Rotate(1))
        assert lower(expr, 8) is lower(expr, 8)
        stats = plan_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_different_nprocs_are_different_plans(self):
        expr = Rotate(1)
        assert lower(expr, 8) is not lower(expr, 16)
        assert plan_cache_stats()["misses"] == 2

    def test_grid_is_part_of_the_key(self):
        expr = IMap(lambda i, x: (i, x))
        assert lower(expr, 8, None) is not lower(expr, 8, (2, 4))

    def test_clear_resets_everything(self):
        lower(Rotate(1), 8)
        clear_plan_cache()
        assert plan_cache_stats() == {
            "size": 0, "tuned_size": 0, "hits": 0, "misses": 0,
            "uncachable": 0, "optimized": 0,
            "tuned_hits": 0, "tuned_misses": 0}

    def test_unhashable_expressions_still_lower(self):
        # Brdcast of an unhashable value can't key the cache but must work.
        plan = lower(Brdcast([1, 2, 3]), 4)
        assert plan.instrs[0].value == [1, 2, 3]
        stats = plan_cache_stats()
        assert stats["uncachable"] == 1 and stats["size"] == 0

    def test_scan_and_fold_cache_separately(self):
        op = lambda a, b: a + b  # noqa: E731
        assert lower(Scan(op), 8) is not lower(Fold(op), 8)

    def test_reset_zeroes_counters_but_keeps_plans(self):
        expr = Rotate(1)
        plan = lower(expr, 8)
        plan_cache_reset()
        stats = plan_cache_stats()
        assert stats["hits"] == stats["misses"] == 0
        assert stats["size"] == 1, "reset must keep the warm plans"
        # The kept plan serves the next lowering: a pure counter delta.
        assert lower(expr, 8) is plan
        assert plan_cache_stats()["hits"] == 1
        assert plan_cache_stats()["misses"] == 0


def _inc(x):
    return x + 1


def _dbl(x):
    return x * 2


class TestTunedCache:
    """The tuned tier: beam-search winners memoised above the plan cache."""

    def test_hit_returns_the_same_tuned_plan(self):
        expr = compose_nodes(Map(_inc), Map(_dbl), Rotate(1), Rotate(-1))
        first = tuned_lower(expr, 8)
        stats = plan_cache_stats()
        assert stats["tuned_misses"] == 1 and stats["tuned_hits"] == 0
        assert tuned_lower(expr, 8) is first
        stats = plan_cache_stats()
        assert stats["tuned_hits"] == 1 and stats["tuned_size"] == 1

    def test_search_found_the_rewrites(self):
        expr = compose_nodes(Map(_inc), Map(_dbl), Rotate(1), Rotate(-1))
        tuned = tuned_lower(expr, 8)
        assert tuned.improved
        rules = {s.rule for s in tuned.steps}
        assert "rotate-fusion" in rules
        assert tuned.cost_after.seconds <= tuned.cost_before.seconds

    def test_beam_is_part_of_the_key(self):
        expr = compose_nodes(Map(_inc), Rotate(1), Rotate(-1))
        tuned_lower(expr, 8, beam=1)
        tuned_lower(expr, 8, beam=2)
        assert plan_cache_stats()["tuned_misses"] == 2

    def test_opt_config_is_part_of_the_key(self):
        from repro.machine.cost import AP1000
        from repro.plan.opt import OptConfig

        expr = compose_nodes(Map(_inc), Rotate(1), Rotate(-1))
        tuned_lower(expr, 8, opt=OptConfig())
        tuned_lower(expr, 8, opt=OptConfig(spec=AP1000,
                                           topo=("Ring", 8)))
        assert plan_cache_stats()["tuned_misses"] == 2

    def test_clear_drops_the_tuned_tier(self):
        expr = compose_nodes(Map(_inc), Rotate(1), Rotate(-1))
        tuned_lower(expr, 8)
        clear_plan_cache()
        stats = plan_cache_stats()
        assert stats["tuned_size"] == 0 and stats["tuned_misses"] == 0
