"""The fault-tolerant plan interpreter: same plans, lossy network.

``execute_plan_ft`` runs the identical :class:`~repro.plan.ir.Plan` the
raw interpreter runs, with every instruction's traffic on the reliable
channel.  The contract: fault-free results equal the raw compiler's
element-for-element; under message faults the values are still right and
the retransmit counters show the protocol working.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pararray import ParArray
from repro.faults.models import FaultInjector, FaultSpec
from repro.faults.plan_exec import run_expression_ft
from repro.machine import AP1000, Hypercube, Machine
from repro.machine.topology import FullyConnected
from repro.scl import (
    AlignFetch,
    Brdcast,
    Fetch,
    Fold,
    IMap,
    IterFor,
    Map,
    Rotate,
    Scan,
    SendNode,
    compose_nodes,
)
from repro.scl.compile import run_expression

PA8 = ParArray([3, 1, 4, 1, 5, 9, 2, 6])

EXPRESSIONS = [
    compose_nodes(Map(lambda x: x + 1), Rotate(3)),
    AlignFetch(lambda r: r ^ 1),             # the pair-swap fast path
    Fetch(lambda r: 0),                      # one-to-many fan-out
    SendNode(lambda r: (0,)),                # many-to-one collect
    Scan(lambda a, b: a + b),
    Brdcast(42.0),
    compose_nodes(IMap(lambda i, x: x * (i + 1)), Rotate(-2)),
    IterFor(3, lambda i: Rotate(i + 1)),
]


def _faulty_machine(p: int, spec=None) -> Machine:
    return Machine(FullyConnected(p), spec=AP1000,
                   faults=FaultInjector(spec or FaultSpec()))


class TestFaultFree:
    @pytest.mark.parametrize("expr", EXPRESSIONS)
    def test_matches_the_raw_compiler(self, expr):
        want, _ = run_expression(expr, PA8, Machine(FullyConnected(8),
                                                    spec=AP1000))
        got, res = run_expression_ft(expr, PA8, _faulty_machine(8))
        assert list(got) == list(want)
        assert res.total_retransmits == 0

    def test_fold_returns_the_scalar(self):
        want, _ = run_expression(Fold(lambda a, b: a + b), PA8,
                                 Machine(FullyConnected(8), spec=AP1000))
        got, _ = run_expression_ft(Fold(lambda a, b: a + b), PA8,
                                   _faulty_machine(8))
        assert got == want == sum(PA8.to_list())

    def test_hyperquicksort_expression_sorts(self, rng):
        from repro.apps.sort import hyperquicksort_expression, seq_quicksort
        from repro.core import parmap, partition
        from repro.core.partition import Block

        vals = rng.integers(0, 10**6, size=512).astype(np.int32)
        blocks = parmap(seq_quicksort, partition(Block(8), vals))
        out, res = run_expression_ft(hyperquicksort_expression(3), blocks,
                                     Machine(Hypercube(3), spec=AP1000,
                                             faults=FaultInjector(FaultSpec())))
        flat = np.concatenate([np.asarray(b) for b in out])
        assert np.array_equal(flat, np.sort(vals))
        assert res.total_retransmits == 0


class TestUnderMessageFaults:
    @pytest.mark.parametrize("expr", EXPRESSIONS)
    def test_values_survive_drops_and_duplicates(self, expr):
        machine = _faulty_machine(8, FaultSpec(seed=3, drop_rate=0.15,
                                               dup_rate=0.05))
        want, _ = run_expression(expr, PA8, Machine(FullyConnected(8),
                                                    spec=AP1000))
        got, _res = run_expression_ft(expr, PA8, machine)
        assert list(got) == list(want)

    def test_drops_force_retransmissions(self, rng):
        from repro.apps.sort import hyperquicksort_expression, seq_quicksort
        from repro.core import parmap, partition
        from repro.core.partition import Block

        vals = rng.integers(0, 10**6, size=512).astype(np.int32)
        blocks = parmap(seq_quicksort, partition(Block(8), vals))
        machine = Machine(Hypercube(3), spec=AP1000,
                          faults=FaultInjector(FaultSpec(seed=11,
                                                         drop_rate=0.2)))
        out, res = run_expression_ft(hyperquicksort_expression(3), blocks,
                                     machine)
        flat = np.concatenate([np.asarray(b) for b in out])
        assert np.array_equal(flat, np.sort(vals))
        assert res.total_retransmits > 0
        assert res.total_dropped > 0

    def test_same_seed_is_bit_identical(self):
        expr = EXPRESSIONS[0]

        def run():
            machine = _faulty_machine(8, FaultSpec(seed=7, drop_rate=0.1))
            return run_expression_ft(expr, PA8, machine)

        out1, res1 = run()
        out2, res2 = run()
        assert list(out1) == list(out2)
        assert res1.makespan == res2.makespan
        assert res1.total_retransmits == res2.total_retransmits
