"""``parallel=True`` is invisible to everything but host wall time.

The acceptance contract of the host-parallel data plane, end to end
through the compiler: a compiled run with the worker pool attached
produces byte-identical outputs *and* byte-identical virtual costs
(makespan, message counts) to the in-process run; runs that must not
touch the pool — ``parallel=False``, fault-injected machines, traced
machines — never even resolve it; and a pool that crashes mid-run
degrades to the in-process path with correct results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.linalg import gauss_jordan_compiled, gauss_jordan_seq
from repro.apps.sort import hyperquicksort_compiled, seq_quicksort
from repro.errors import PoolError
from repro.faults import FaultInjector, FaultSpec
from repro.machine import AP1000, Hypercube, Machine
from repro.plan import pexec
from repro.scl.compile import run_expression


@pytest.fixture(autouse=True)
def _fresh_pool():
    yield
    pexec.shutdown_pool()


def _keys(rng, n):
    return rng.integers(0, 10**6, size=n).astype(np.int64)


class TestCompiledParallelEquivalence:
    @pytest.mark.parametrize("d", [2, 3])
    def test_hyperquicksort_bit_identical(self, rng, d):
        values = _keys(rng, 4096 * (1 << d))
        seq_out, seq_res = hyperquicksort_compiled(values, d)
        par_out, par_res = hyperquicksort_compiled(values, d,
                                                   parallel=True, workers=2)
        assert np.array_equal(np.asarray(seq_out), np.asarray(par_out))
        assert np.array_equal(np.asarray(par_out), seq_quicksort(values))
        assert par_res.makespan == seq_res.makespan
        assert par_res.total_messages == seq_res.total_messages

    def test_gauss_jordan_identical(self, rng):
        n, p = 16, 4
        A = rng.normal(size=(n, n)) + n * np.eye(n)
        b = rng.normal(size=(n, 1))
        seq_out, seq_res = gauss_jordan_compiled(A, b, p)
        par_out, par_res = gauss_jordan_compiled(A, b, p,
                                                 parallel=True, workers=2)
        # Identical, not merely close: the same floating-point ops ran in
        # the same order whether or not a pool was attached.
        assert np.array_equal(seq_out, par_out)
        assert np.allclose(par_out, gauss_jordan_seq(A, b))
        assert par_res.makespan == seq_res.makespan

    def test_workers_one_still_identical(self, rng):
        values = _keys(rng, 16384)
        seq_out, seq_res = hyperquicksort_compiled(values, 2)
        par_out, par_res = hyperquicksort_compiled(values, 2,
                                                   parallel=True, workers=1)
        assert np.array_equal(np.asarray(seq_out), np.asarray(par_out))
        assert par_res.makespan == seq_res.makespan


class TestPoolGating:
    """Runs that must not touch the pool never resolve it at all."""

    @pytest.fixture
    def forbid_pool(self, monkeypatch):
        def _refuse(*a, **kw):  # pragma: no cover - failure path
            raise AssertionError("get_pool resolved on a gated run")
        monkeypatch.setattr(pexec, "get_pool", _refuse)

    def test_parallel_false_never_resolves_pool(self, rng, forbid_pool):
        values = _keys(rng, 2048)
        out, _ = hyperquicksort_compiled(values, 2)
        assert np.array_equal(np.asarray(out), seq_quicksort(values))

    def test_faulted_run_never_resolves_pool(self, rng, forbid_pool):
        from repro.apps.sort import hyperquicksort_expression
        from repro.core import parmap, partition
        from repro.core.partition import Block

        d = 2
        values = _keys(rng, 2048)
        blocks = parmap(seq_quicksort, partition(Block(1 << d), values))
        machine = Machine(Hypercube(d), spec=AP1000,
                          faults=FaultInjector(FaultSpec()))
        out, _ = run_expression(hyperquicksort_expression(d), blocks,
                                machine, parallel=True, workers=2)
        merged = np.concatenate([np.asarray(b) for b in out])
        assert np.array_equal(merged, seq_quicksort(values))

    def test_traced_run_never_resolves_pool(self, rng, forbid_pool):
        from repro.apps.sort import hyperquicksort_expression
        from repro.core import parmap, partition
        from repro.core.partition import Block

        d = 2
        values = _keys(rng, 2048)
        blocks = parmap(seq_quicksort, partition(Block(1 << d), values))
        machine = Machine(Hypercube(d), spec=AP1000, record_trace=True)
        out, _ = run_expression(hyperquicksort_expression(d), blocks,
                                machine, parallel=True, workers=2)
        merged = np.concatenate([np.asarray(b) for b in out])
        assert np.array_equal(merged, seq_quicksort(values))

    def test_faulted_run_byte_identical_to_before(self, rng, forbid_pool):
        # The fault/trace paths don't just avoid the pool — their results
        # are unchanged by the parallel flag entirely.
        from repro.apps.sort import hyperquicksort_expression
        from repro.core import parmap, partition
        from repro.core.partition import Block

        d = 2
        values = _keys(rng, 2048)
        blocks = parmap(seq_quicksort, partition(Block(1 << d), values))
        expr = hyperquicksort_expression(d)

        def run(parallel):
            machine = Machine(Hypercube(d), spec=AP1000,
                              faults=FaultInjector(FaultSpec(seed=3)))
            return run_expression(expr, blocks, machine, parallel=parallel)

        out_a, res_a = run(False)
        out_b, res_b = run(True)
        for a, b in zip(out_a, out_b):
            assert np.array_equal(np.asarray(a), np.asarray(b))
        assert res_a.makespan == res_b.makespan
        assert res_a.total_messages == res_b.total_messages


class _CrashingPool:
    """A stand-in whose first dispatch tears the pipe."""

    workers = 2

    def apply_local(self, fn, values, **kw):
        raise PoolError("synthetic mid-run crash")


class TestPoolCrashDegradation:
    def test_crashing_pool_still_correct(self, rng, monkeypatch):
        monkeypatch.setattr(pexec, "get_pool",
                            lambda *a, **kw: _CrashingPool())
        values = _keys(rng, 16384)
        seq_out, seq_res = hyperquicksort_compiled(values, 2)
        par_out, par_res = hyperquicksort_compiled(values, 2,
                                                   parallel=True, workers=2)
        assert np.array_equal(np.asarray(seq_out), np.asarray(par_out))
        assert par_res.makespan == seq_res.makespan
        assert par_res.total_messages == seq_res.total_messages
