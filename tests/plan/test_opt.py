"""The plan optimizer: §4's algebra over the lowered IR, pass by pass.

Each pass's contract is checked structurally (what the instruction stream
becomes) and behaviourally (the optimized plan computes the same values
for no more simulated cost).  The sweeping equivalence properties live in
``test_opt_properties.py``; this file pins the individual mechanisms:
fusion (including through ``Loop`` bodies), routing composition with its
hot-spot cost guard, cost-model-driven collective selection, the
opt-aware plan cache, the vectorized data plane's eligibility gate and
replay equality, and the SoA kernel registry.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.pararray import ParArray
from repro.core.partition import Block
from repro.machine import AP1000, Machine, PERFECT
from repro.machine.topology import FullyConnected, Hypercube
from repro.plan import ir, kernels, vexec
from repro.plan.lower import clear_plan_cache, lower, plan_cache_stats
from repro.plan.opt import OptConfig, optimize_plan, optimize_plan_report
from repro.scl import (
    Brdcast,
    Combine,
    Fetch,
    Fold,
    IMap,
    IterFor,
    Map,
    Rotate,
    Scan,
    SendNode,
    Split,
    compose_nodes,
)
from repro.scl.compile import run_expression

#: A spec where only message *counts* distinguish schedules: with zero
#: flop time and infinite bandwidth every predicted second is exactly 0,
#: so collective selection decides purely on the message axis.
ZERO_COST = dataclasses.replace(PERFECT, flop_time=0.0,
                                bandwidth=float("inf"))

PA8 = ParArray([3, 1, 4, 1, 5, 9, 2, 6])

#: All passes, priced on AP1000, no topology hop term.
CFG = OptConfig(spec=AP1000)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


def _interpret(plan: ir.Plan, values: list, machine: Machine):
    """Drive ``plan`` through the per-rank interpreter (no scripting)."""
    from repro.machine.api import Comm
    from repro.machine.plan_exec import execute_plan

    def program(env):
        return (yield from execute_plan(plan, env, Comm.world(env),
                                        values[env.pid]))

    return machine.run(program)


class TestFusion:
    def test_adjacent_maps_merge_into_one_fused_apply(self):
        f, g = (lambda x: x + 1), (lambda x: x * 2)
        plan = optimize_plan(lower(compose_nodes(Map(f), Map(g)), 4), CFG)
        (instr,) = plan.instrs
        assert isinstance(instr, ir.LocalApply)
        assert isinstance(instr.fn, ir.FusedKernel)
        assert instr.fn.parts == (g, f)  # execution order

    def test_fused_label_names_the_original_skeletons(self):
        plan = optimize_plan(
            lower(compose_nodes(Map(lambda x: x),
                                IMap(lambda i, x: (i, x))), 4), CFG)
        (instr,) = plan.instrs
        assert instr.label == "imap+map"
        assert instr.indexed  # any indexed constituent taints the run

    def test_fusion_reaches_loop_bodies(self):
        expr = IterFor(2, lambda i: compose_nodes(Map(lambda x: x + 1),
                                                  Map(lambda x: x * 2)))
        plan = optimize_plan(lower(expr, 4), CFG)
        (loop,) = plan.instrs
        for body in loop.bodies:
            (instr,) = body
            assert isinstance(instr.fn, ir.FusedKernel)

    def test_single_applies_are_left_alone(self):
        plan = lower(Map(lambda x: x), 4)
        assert optimize_plan(plan, CFG) is plan

    def test_fused_run_matches_unfused_bit_for_bit(self):
        expr = compose_nodes(Map(lambda x: x * 3),
                             IMap(lambda i, x: x + i),
                             Map(lambda x: x - 1))
        machine = Machine(FullyConnected(8), spec=AP1000)
        want, res_off = run_expression(expr, PA8, machine, opt="off")
        got, res_opt = run_expression(expr, PA8,
                                      Machine(FullyConnected(8), spec=AP1000),
                                      opt=CFG)
        assert list(got) == list(want)
        assert res_opt.makespan == res_off.makespan
        assert res_opt.total_messages == res_off.total_messages

    def test_apply_fused_charges_per_constituent_ops(self):
        from repro.scl.compile import base_fragment

        @base_fragment(ops=100)
        def f(x):
            return x + 1

        @base_fragment(ops=lambda v: 10 * v)
        def g(x):
            return x * 2

        plan = optimize_plan(lower(compose_nodes(Map(g), Map(f)), 2), CFG)
        (instr,) = plan.instrs
        result, ops = ir.apply_fused(instr.fn, 0, 5, 10.0)
        assert result == (5 + 1) * 2
        assert ops == 100 + 10 * 6  # g is charged on f's output


class TestCoalesce:
    def test_rotations_fold_into_one(self):
        plan = optimize_plan(lower(compose_nodes(Rotate(2), Rotate(1)), 8),
                             CFG)
        (instr,) = plan.instrs
        assert isinstance(instr, ir.Rotate) and instr.k == 3

    def test_inverse_rotations_cancel_entirely(self):
        plan = optimize_plan(lower(compose_nodes(Rotate(5), Rotate(3)), 8),
                             CFG)
        assert plan.instrs == ()

    def test_identity_fetch_is_dropped(self):
        plan, notes = optimize_plan_report(lower(Fetch(lambda r: r), 8), CFG)
        assert plan.instrs == ()
        assert any("identity" in n.detail for n in notes)

    def test_rotate_composes_with_a_fetch(self):
        # rotate then fetch = one replace-exchange round
        expr = compose_nodes(Fetch(lambda r: (r + 1) % 8), Rotate(1))
        plan, notes = optimize_plan_report(lower(expr, 8), CFG)
        (instr,) = plan.instrs
        assert isinstance(instr, ir.Exchange) and instr.mode == "replace"
        assert any(n.pass_name == "coalesce" and "merged" in n.detail
                   for n in notes)

    def test_hot_spot_composition_is_rejected_by_the_cost_guard(self):
        # Executed order: leaders fetch from 0, then everyone fetches from
        # its group leader.  Composed, all 16 ranks would fetch straight
        # from rank 0 — same total messages but a serialised fan-out of 15
        # instead of two rounds of degree 3, which the predicted-seconds
        # guard rejects.
        expr = compose_nodes(Fetch(lambda r: 4 * (r // 4)),
                             Fetch(lambda r: 0 if r % 4 == 0 else r))
        plan, notes = optimize_plan_report(lower(expr, 16), CFG)
        assert len(plan.instrs) == 2
        assert not any(n.pass_name == "coalesce" for n in notes)

    def test_coalesced_run_matches_bit_for_bit(self):
        expr = compose_nodes(Fetch(lambda r: (r + 3) % 8), Rotate(2),
                             Rotate(3))
        want, res_off = run_expression(
            expr, PA8, Machine(FullyConnected(8), spec=AP1000), opt="off")
        got, res_opt = run_expression(
            expr, PA8, Machine(FullyConnected(8), spec=AP1000), opt=CFG)
        assert list(got) == list(want)
        assert res_opt.total_messages < res_off.total_messages
        assert res_opt.makespan <= res_off.makespan


class TestCollectiveSelection:
    def test_scan_selects_the_ring_when_only_messages_matter(self):
        plan, notes = optimize_plan_report(
            lower(Scan(lambda a, b: a + b), 8), OptConfig(spec=ZERO_COST))
        assert plan.instrs[0].algo == "ring"
        assert any(n.pass_name == "select" for n in notes)

    def test_fold_selects_flat_once_the_tree_sends_more(self):
        # tree fold: rounds*n/2 = 32 msgs at p=16; flat: 2(n-1) = 30
        plan = optimize_plan(lower(Fold(lambda a, b: a + b), 16),
                             OptConfig(spec=ZERO_COST))
        assert plan.instrs[0].algo == "flat"

    def test_small_fold_keeps_the_tree(self):
        # at p=8 the tree's 12 messages beat flat's 14
        plan = optimize_plan(lower(Fold(lambda a, b: a + b), 8),
                             OptConfig(spec=ZERO_COST))
        assert plan.instrs[0].algo == "tree"

    def test_latency_dominated_specs_never_switch(self):
        # On real Hockney-model specs the binomial tree is predicted
        # fastest everywhere; the pass is deliberately conservative.
        for expr in (Scan(lambda a, b: a + b), Fold(lambda a, b: a + b)):
            for spec in (AP1000, PERFECT):
                plan = optimize_plan(lower(expr, 16), OptConfig(spec=spec))
                assert plan.instrs[0].algo == "tree"

    def test_selection_requires_a_spec(self):
        plan = optimize_plan(lower(Scan(lambda a, b: a + b), 8),
                             OptConfig(spec=None))
        assert plan.instrs[0].algo == "tree"

    @pytest.mark.parametrize("expr,algo,messages", [
        (Scan(lambda a, b: a + b), "ring", 7),       # n-1 chain hops
        (Fold(lambda a, b: a + b), "flat", 14),      # (n-1) up + (n-1) down
        (Brdcast(7.5), "flat", 7),                   # root sends n-1
        (Brdcast(7.5), "ring", 7),                   # chain forwards n-1
    ])
    def test_simulated_messages_match_the_cost_formulas(self, expr, algo,
                                                        messages):
        # Run the algo directly (bypassing selection) and cross-check the
        # simulator's message count against plan_cost's formula row.
        from repro.plan.cost import plan_cost

        raw = lower(expr, 8)
        forced = ir.Plan(
            tuple(dataclasses.replace(i, algo=algo) for i in raw.instrs),
            raw.nprocs, raw.grid, raw.returns_scalar)
        predicted = plan_cost(forced, spec=AP1000)
        res_tree = _interpret(raw, PA8.to_list(),
                              Machine(FullyConnected(8), spec=AP1000))
        res = _interpret(forced, PA8.to_list(),
                         Machine(FullyConnected(8), spec=AP1000))
        assert res.values == res_tree.values
        assert res.total_messages == predicted.messages == messages


class TestOptAwareCache:
    def test_raw_and_optimized_plans_never_alias(self):
        expr = compose_nodes(Map(lambda x: x + 1), Map(lambda x: x * 2))
        raw = lower(expr, 8)
        opt = lower(expr, 8, opt=CFG)
        assert raw is not opt
        assert isinstance(raw.instrs[0].fn, ir.FusedKernel) is False
        assert isinstance(opt.instrs[0].fn, ir.FusedKernel)
        # asking again hits the right entry each time
        assert lower(expr, 8) is raw
        assert lower(expr, 8, opt=CFG) is opt

    def test_stats_count_optimizations_and_hits(self):
        expr = compose_nodes(Rotate(1), Rotate(2))
        lower(expr, 8, opt=CFG)
        lower(expr, 8, opt=CFG)
        stats = plan_cache_stats()
        assert stats["optimized"] == 1
        assert stats["hits"] == 1
        # the opt miss lowers the raw plan too, caching both shapes
        assert stats["size"] == 2

    def test_different_configs_are_different_keys(self):
        expr = compose_nodes(Map(lambda x: x + 1), Map(lambda x: x * 2))
        a = lower(expr, 8, opt=OptConfig(spec=AP1000))
        b = lower(expr, 8, opt=OptConfig(spec=AP1000, fuse=False))
        assert a is not b
        assert len(a.instrs) == 1 and len(b.instrs) == 2


class TestVectorizedDataPlane:
    def test_group_plans_are_not_scriptable(self):
        inner = compose_nodes(Rotate(1), Map(lambda x: -x))
        expr = compose_nodes(Combine(), Map(inner), Split(Block(2)))
        plan = lower(expr, 8)
        assert not vexec.supported(plan)
        assert vexec.precompute(plan, PA8.to_list(), AP1000) is None

    def test_group_plans_still_run_via_the_interpreter(self):
        inner = compose_nodes(Rotate(1), Map(lambda x: -x))
        expr = compose_nodes(Combine(), Map(inner), Split(Block(2)))
        want, _ = run_expression(
            expr, PA8, Machine(FullyConnected(8), spec=AP1000), opt="off")
        got, _ = run_expression(
            expr, PA8, Machine(FullyConnected(8), spec=AP1000), opt=CFG)
        assert list(got) == list(want)

    @pytest.mark.parametrize("expr", [
        compose_nodes(Map(lambda x: x + 1), Rotate(3)),
        Fetch(lambda r: 0),
        SendNode(lambda r: (0,)),
        Scan(lambda a, b: a + b),
        Fold(lambda a, b: a + b),
        Brdcast(42.0),
        IterFor(3, lambda i: compose_nodes(Map(lambda x: x * 2),
                                           Rotate(i + 1))),
    ])
    def test_replay_is_bit_identical_to_the_interpreter(self, expr):
        plan = lower(expr, 8, opt=CFG)
        res_i = _interpret(plan, PA8.to_list(),
                           Machine(FullyConnected(8), spec=AP1000))
        pre = vexec.precompute(plan, PA8.to_list(), AP1000)
        assert pre is not None
        res_v = Machine(FullyConnected(8), spec=AP1000).run(
            vexec.replay_program(*pre))
        assert res_v.values == res_i.values
        assert res_v.makespan == res_i.makespan
        assert res_v.total_messages == res_i.total_messages
        assert [s.msgs_received for s in res_v.stats] \
            == [s.msgs_received for s in res_i.stats]

    def test_scripts_reuse_the_interpreters_request_types(self):
        from repro.machine.events import Compute, Recv, Send

        plan = lower(compose_nodes(Map(lambda x: x + 1), Rotate(1)), 4,
                     opt=CFG)
        scripts, finals = vexec.precompute(plan, [1, 2, 3, 4], AP1000)
        kinds = {type(req) for script in scripts for req in script}
        assert kinds == {Compute, Recv, Send}
        assert finals == [3, 4, 5, 2]  # rotated then incremented


class TestKernelRegistry:
    def test_opaque_fragments_fall_back_per_rank(self):
        fn = lambda x: x * 2  # noqa: E731
        assert kernels.batched_apply(fn, [1, 2, 3]) == [2, 4, 6]
        assert not kernels.has_batched(fn)

    def test_registered_kernel_runs_batched(self):
        calls = []

        def fn(v):  # pragma: no cover - must not be called
            raise AssertionError("batched path should have been taken")

        def batched(vals):
            calls.append(len(vals))
            return [v * 2 for v in vals]

        kernels.vectorize_fragment(fn, batched)
        assert kernels.has_batched(fn)
        assert kernels.batched_apply(fn, [1, 2, 3]) == [2, 4, 6]
        assert calls == [3]

    def test_length_mismatch_is_an_error(self):
        fn = kernels.vectorize_fragment(lambda x: x, lambda vals: vals[:-1])
        with pytest.raises(ValueError, match="returned 2 values for 3"):
            kernels.batched_apply(fn, [1, 2, 3])

    def test_stack_uniform_groups_ragged_shapes(self):
        vals = [np.ones(3), np.ones(4), 2 * np.ones(3), 2 * np.ones(4)]
        out = kernels.stack_uniform(vals, lambda b: b * 10)
        for got, v in zip(out, vals):
            assert np.array_equal(got, v * 10)

    def test_elementwise_fragment_is_bit_identical_both_ways(self):
        frag = kernels.elementwise(np.sqrt, ops_per_elem=2.0)
        vals = [np.linspace(0, 1, 5), np.linspace(1, 2, 5)]
        batched = kernels.batched_apply(frag, vals)
        for got, v in zip(batched, vals):
            assert np.array_equal(got, np.sqrt(v))
        assert ir.fragment_ops(frag, vals[0], 10.0) == 2.0 * 5


class TestFaultTolerantPath:
    def test_ft_runs_the_optimized_plan_to_the_same_values(self):
        from repro.faults.models import FaultInjector, FaultSpec
        from repro.faults.plan_exec import run_expression_ft

        expr = compose_nodes(Map(lambda x: x + 1), Rotate(3),
                             Map(lambda x: x * 2))

        def machine():
            return Machine(FullyConnected(8), spec=AP1000,
                           faults=FaultInjector(FaultSpec()))

        want, _ = run_expression_ft(expr, PA8, machine(), opt="off")
        got, _ = run_expression_ft(expr, PA8, machine(), opt="auto")
        assert list(got) == list(want)

    def test_traced_machines_skip_the_scripted_path_but_agree(self):
        expr = compose_nodes(Map(lambda x: x + 1), Rotate(1))
        plain = Machine(Hypercube(3), spec=AP1000)
        traced = Machine(Hypercube(3), spec=AP1000, record_trace=True)
        want, res_p = run_expression(expr, PA8, plain, opt=CFG)
        got, res_t = run_expression(expr, PA8, traced, opt=CFG)
        assert list(got) == list(want)
        assert res_t.makespan == res_p.makespan
        assert res_t.trace  # tracing actually happened
