"""Data-plane scripting details: payload sizing is hoisted per value.

A looped ``Rotate`` moves the *same* p array objects around for every
iteration; sizing each payload once per rank value (instead of once per
send) is PR 10's scripting-side win.  The cache is keyed by object
identity, so correctness rests on the data plane never mutating values
in place — these tests pin both the call-count win and the sizes landing
in the scripts unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.machine import AP1000
from repro.machine.events import Send
from repro.plan import ir, vexec


def _rotate_loop(p: int, iters: int) -> ir.Plan:
    body = (ir.Rotate(1),)
    return ir.Plan((ir.Loop(tuple(body for _ in range(iters))),), p)


class TestSizeHoisting:
    def test_looped_rotate_sizes_each_value_once(self, monkeypatch):
        calls = []
        real = vexec.estimate_nbytes
        monkeypatch.setattr(
            vexec, "estimate_nbytes",
            lambda v, w: calls.append(id(v)) or real(v, w))
        p, iters = 4, 6
        values = [np.arange(16, dtype=np.int64) + r for r in range(p)]
        pre = vexec.precompute(_rotate_loop(p, iters), values, AP1000)
        assert pre is not None
        # p distinct values, sized once each — not p * iters times.
        assert len(calls) == p
        assert len(set(calls)) == p

    def test_scripted_sizes_match_unhoisted(self):
        p, iters = 4, 5
        values = [np.arange(8 * (r + 1), dtype=np.float64)
                  for r in range(p)]
        scripts, finals = vexec.precompute(_rotate_loop(p, iters), values,
                                           AP1000)
        for script in scripts:
            sends = [req for req in script if type(req) is Send]
            assert len(sends) == iters
            for s in sends:
                assert s.nbytes == int(np.asarray(s.payload).nbytes)
        # The rotation itself still lands correctly after caching.
        for r, final in enumerate(finals):
            assert np.array_equal(final,
                                  values[(r + iters) % p])

    def test_exchange_uses_cached_sizes(self, monkeypatch):
        calls = []
        real = vexec.estimate_nbytes
        monkeypatch.setattr(
            vexec, "estimate_nbytes",
            lambda v, w: calls.append(id(v)) or real(v, w))
        p = 4
        # Every rank sends its value to all others ("collect" gather).
        sends = tuple(tuple(d for d in range(p) if d != r)
                      for r in range(p))
        recvs = tuple(tuple(range(p)) for _ in range(p))
        plan = ir.Plan((ir.Exchange("collect", sends, recvs),), p)
        values = [np.arange(32) + r for r in range(p)]
        pre = vexec.precompute(plan, values, AP1000)
        assert pre is not None
        # One sizing per rank value even though each value is sent p-1
        # times.
        assert len(calls) == p
