"""The ``python -m repro plan`` dumper: listing plus cost columns."""

from __future__ import annotations

import pytest

from repro.plan import cli as plan_cli


def run_cli(capsys, *argv):
    code = plan_cli.main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestPlanCommand:
    def test_hyperquicksort_dump(self, capsys):
        code, out = run_cli(capsys, "hyperquicksort", "--dim", "2",
                            "-n", "512")
        assert code == 0
        assert "plan over 4 ranks" in out
        assert "exchange align-fetch" in out
        assert "loop" in out
        assert "predicted total" in out and "simulated run" in out

    def test_predicted_messages_column_matches_simulated(self, capsys):
        code, out = run_cli(capsys, "hyperquicksort", "--dim", "3",
                            "-n", "1024")
        assert code == 0
        rows = {line.split()[0:2][0]: line.split()
                for line in out.splitlines() if "total" in line or "run" in line}
        predicted = next(line for line in out.splitlines()
                         if "predicted total" in line).split()
        simulated = next(line for line in out.splitlines()
                         if "simulated run" in line).split()
        assert predicted[-2] == simulated[-2]  # message column agrees
        assert rows  # table rendered

    def test_gauss_jordan_dump(self, capsys):
        code, out = run_cli(capsys, "gauss-jordan", "-n", "8", "--procs", "2")
        assert code == 0
        assert "gauss-jordan expression" in out
        assert "apply_bcast" in out

    def test_tables_flag_prints_per_rank_rows(self, capsys):
        code, out = run_cli(capsys, "hyperquicksort", "--dim", "2",
                            "-n", "256", "--tables")
        assert code == 0
        assert "rank 0: send->" in out

    def test_diff_prints_before_after_and_pass_notes(self, capsys):
        code, out = run_cli(capsys, "hyperquicksort", "--dim", "2",
                            "-n", "256", "--diff")
        assert code == 0
        assert "--- unoptimised plan " in out
        assert "--- optimizer passes " in out
        assert "--- optimised plan " in out
        assert "fuse" in out  # the sort's per-iteration chains merge

    def test_no_opt_skips_the_passes(self, capsys):
        code, out = run_cli(capsys, "hyperquicksort", "--dim", "2",
                            "-n", "256", "--no-opt")
        assert code == 0
        assert "optimizer passes" not in out

    def test_opt_and_no_opt_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            plan_cli.main(["hyperquicksort", "--opt", "--no-opt"])

    def test_cache_stats_line_rendered(self, capsys):
        code, out = run_cli(capsys, "hyperquicksort", "--dim", "2",
                            "-n", "256")
        assert code == 0
        assert "plan cache: size=" in out and "hits=" in out

    def test_bad_dim_rejected(self, capsys):
        assert plan_cli.main(["hyperquicksort", "--dim", "99"]) == 2

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            plan_cli.main(["quantumsort"])

    def test_repro_cli_delegates(self, capsys):
        from repro.cli import main as repro_main

        code = repro_main(["plan", "hyperquicksort", "--dim", "2", "-n", "256"])
        out = capsys.readouterr().out
        assert code == 0
        assert "plan over 4 ranks" in out


class TestSearchMode:
    def test_search_prints_frontier_and_strategy_table(self, capsys):
        code, out = run_cli(capsys, "hyperquicksort", "--search",
                            "--beam", "2", "--dim", "4", "-n", "512")
        assert code == 0
        assert "rewrite search: tuned_sort_pipeline d=4" in out
        assert "explored frontier" in out
        assert "winner" in out and "original" in out
        assert "map-fusion" in out  # rule provenance rendered
        assert "speedup_vs_greedy" in out
        assert "outputs identical: yes" in out

    def test_search_artifact_parses_and_has_the_v1_shape(self, capsys,
                                                         tmp_path):
        out_path = tmp_path / "frontier.json"
        code, out = run_cli(capsys, "hyperquicksort", "--search",
                            "--beam", "2", "--dim", "4", "-n", "512",
                            "--out", str(out_path))
        assert code == 0
        import json

        artifact = json.loads(out_path.read_text())
        assert artifact["schema"] == plan_cli.FRONTIER_SCHEMA
        assert artifact["beam"] == 2 and artifact["explored"] >= 1
        frontier = artifact["frontier"]
        assert sum(c["is_winner"] for c in frontier) == 1
        assert sum(c["is_original"] for c in frontier) == 1
        winner = next(c for c in frontier if c["is_winner"])
        original = next(c for c in frontier if c["is_original"])
        # search never predicts a regression against doing nothing
        assert winner["predicted_seconds"] <= original["predicted_seconds"]
        assert all("rules" in c and "depth" in c for c in frontier)
        sim = artifact["simulated"]
        assert sim["outputs_identical"] is True
        assert sim["speedup_vs_greedy"] > 0
        assert sim["search"]["makespan"] <= sim["greedy"]["makespan"] * 1.001

    def test_search_gauss_jordan_frontier_only(self, capsys):
        code, out = run_cli(capsys, "gauss-jordan", "--search", "-n", "8",
                            "--procs", "2")
        assert code == 0
        assert "rewrite search: gauss-jordan" in out
        assert "explored frontier" in out
        assert "speedup_vs_greedy" not in out  # no simulated phase

    def test_search_rejects_unblocked_dim(self, capsys):
        assert plan_cli.main(["hyperquicksort", "--search", "--dim", "3"]) == 2
