"""Kernel registry contracts: error paths, cost tags and SoA grouping.

The registry is the trust boundary of the vectorized data plane — a
batched implementation that silently returns the wrong shape of result
would corrupt every rank downstream, so :func:`batched_apply` must
reject malformed returns loudly; :func:`elementwise` must tag its
fragments with the exact cost the per-rank interpreter would charge; and
:func:`group_uniform` must hand backends C-contiguous stacks whatever
the stride layout of the inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.plan.ir import fragment_ops
from repro.plan.kernels import (
    batched_apply,
    elementwise,
    group_uniform,
    has_batched,
    shard_transform,
    stack_uniform,
    vectorize_fragment,
)


def _frag(v):
    return v + 1


class TestBatchedApplyErrorPaths:
    def test_wrong_length_raises(self):
        def bad(vals):
            return vals[:-1]

        fn = vectorize_fragment(lambda v: v, bad)
        with pytest.raises(ValueError, match="2 values for 3 ranks"):
            batched_apply(fn, [1, 2, 3])

    def test_non_sequence_return_raises(self):
        def bad(vals):
            return None

        fn = vectorize_fragment(lambda v: v, bad)
        with pytest.raises(ValueError, match="NoneType, not a sequence"):
            batched_apply(fn, [1, 2, 3])

    def test_scalar_return_raises(self):
        def bad(vals):
            return 42.0

        fn = vectorize_fragment(lambda v: v, bad)
        with pytest.raises(ValueError, match="float, not a sequence"):
            batched_apply(fn, [1.0, 2.0])

    def test_opaque_fallback_untouched(self):
        assert batched_apply(_frag, [1, 2, 3]) == [2, 3, 4]


class TestElementwiseCostTag:
    def test_fragment_ops_scales_with_size(self):
        frag = elementwise(np.sqrt, ops_per_elem=3.0)
        v = np.ones((8, 16))
        assert fragment_ops(frag, v, 1.0) == 3.0 * v.size
        assert fragment_ops(frag, np.ones(5), 1.0) == 15.0

    def test_registered_both_ways(self):
        frag = elementwise(np.exp, name="exp")
        assert frag.__name__ == "exp"
        assert has_batched(frag)
        # The ufunc itself doubles as the row-independent shard transform.
        assert shard_transform(frag) is np.exp


class TestGroupUniform:
    def test_groups_by_shape_and_dtype(self):
        values = [np.zeros(4), np.zeros(6), np.zeros(4, dtype=np.int32),
                  np.ones(4)]
        groups = group_uniform(values)
        assert len(groups) == 3
        covered = sorted(i for idxs, _ in groups for i in idxs)
        assert covered == [0, 1, 2, 3]

    def test_stacks_are_c_contiguous_for_strided_inputs(self):
        # Transposed views are F-ordered; the stack must still come out
        # C-contiguous (one memcpy per value, and shm-sliceable downstream).
        rng = np.random.default_rng(0)
        values = [rng.normal(size=(8, 12)).T for _ in range(3)]
        ((idxs, stacked),) = group_uniform(values)
        assert idxs == [0, 1, 2]
        assert stacked.flags["C_CONTIGUOUS"]
        assert stacked.shape == (3, 12, 8)
        for k, v in enumerate(values):
            assert np.array_equal(stacked[k], v)

    def test_stack_uniform_bit_identical_under_normalisation(self):
        # Regression: ascontiguousarray must not change results or the
        # group count relative to the per-value loop.
        rng = np.random.default_rng(1)
        values = ([rng.normal(size=(6, 4)).T ** 2 for _ in range(3)]
                  + [rng.normal(size=(4, 6)) ** 2 for _ in range(2)])
        out = stack_uniform(values, np.sqrt)
        assert len(group_uniform(values)) == 1  # all are (4, 6) float64
        for v, o in zip(values, out):
            assert np.array_equal(np.sqrt(np.asarray(v)), o)

    def test_non_numeric_values_raise_in_transform(self):
        with pytest.raises(TypeError):
            stack_uniform([object(), object()], np.sqrt)
