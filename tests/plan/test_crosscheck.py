"""Lowered plans compute exactly what the pure interpreter computes.

The compiler's correctness statement, exercised end-to-end on the two
real §3/§5 applications: lower the expression, execute the plan on the
simulated machine, and compare element-for-element against
:func:`repro.scl.interp.evaluate` on the same input.  A second set of
checks pins the *cost* side of the contract on the same plans: the plan
cost model's message count equals the simulator's actual message count,
because predictor and machine consume the identical tables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.linalg import gauss_jordan_expression
from repro.apps.sort import hyperquicksort_expression, seq_quicksort
from repro.core import parmap, partition
from repro.core.partition import Block, ColBlock
from repro.core.pararray import ParArray
from repro.machine import AP1000, Hypercube, Machine
from repro.machine.topology import FullyConnected
from repro.plan.cost import plan_cost
from repro.plan.lower import lower
from repro.scl import evaluate
from repro.scl.compile import run_expression


def _sorted_blocks(rng, n: int, p: int) -> ParArray:
    vals = rng.integers(0, 10**6, size=n).astype(np.int32)
    return parmap(seq_quicksort, partition(Block(p), vals))


def _augmented(rng, n: int) -> np.ndarray:
    A = rng.normal(size=(n, n)) + n * np.eye(n)
    b = rng.normal(size=(n, 1))
    return np.hstack([A, b])


class TestHyperquicksortCrosscheck:
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_compiled_equals_interpreted(self, rng, d):
        p = 1 << d
        expr = hyperquicksort_expression(d)
        blocks = _sorted_blocks(rng, 64 * p, p)
        want = evaluate(expr, blocks)
        got, _res = run_expression(expr, blocks, Machine(Hypercube(d), spec=AP1000))
        for w, g in zip(want, got):
            assert np.array_equal(np.asarray(w), np.asarray(g))

    @pytest.mark.parametrize("d", [2, 3])
    def test_predicted_messages_equal_simulated(self, rng, d):
        p = 1 << d
        expr = hyperquicksort_expression(d)
        blocks = _sorted_blocks(rng, 64 * p, p)
        _got, res = run_expression(expr, blocks, Machine(Hypercube(d), spec=AP1000))
        predicted = plan_cost(lower(expr, p), spec=AP1000)
        assert predicted.messages == res.total_messages


class TestGaussJordanCrosscheck:
    @pytest.mark.parametrize("n,p", [(8, 2), (12, 4), (24, 6)])
    def test_compiled_equals_interpreted(self, rng, n, p):
        aug = _augmented(rng, n)
        expr = gauss_jordan_expression(n, p, aug.shape)
        blocks = partition(ColBlock(p), aug)
        want = evaluate(expr, blocks)
        got, _res = run_expression(expr, blocks,
                                   Machine(FullyConnected(p), spec=AP1000))
        for w, g in zip(want, got):
            assert np.allclose(np.asarray(w, dtype=float),
                               np.asarray(g, dtype=float))

    def test_predicted_messages_equal_simulated(self, rng):
        n, p = 12, 4
        aug = _augmented(rng, n)
        expr = gauss_jordan_expression(n, p, aug.shape)
        blocks = partition(ColBlock(p), aug)
        _got, res = run_expression(expr, blocks,
                                   Machine(FullyConnected(p), spec=AP1000))
        predicted = plan_cost(lower(expr, p), spec=AP1000)
        assert predicted.messages == res.total_messages
