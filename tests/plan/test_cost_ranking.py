"""The cost model's rankings agree with the simulator on §4 rewrite pairs.

The optimizer keeps a rewrite only when :func:`estimate_cost` predicts it
is no slower.  Since PR 3, the prediction walks the very plan the machine
executes, so the claim is checkable: for randomly-generated expressions
and their §4-rule rewrites, whenever the model predicts an improvement
the simulated makespan must not get worse — on the same machine spec the
model priced (with function costs aligned between model and fragments).

Everything here pins ``strategy="greedy"``: these tests compare the
*raw-lowering* cost model against *unoptimised* execution, which is the
greedy oracle's world.  The search strategy prices through ``plan.opt``
instead; its counterpart lives in ``tests/scl/test_tune_properties.py``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pararray import ParArray
from repro.machine import AP1000, Machine
from repro.machine.topology import FullyConnected
from repro.scl import Map, Rotate, compose_nodes, optimize
from repro.scl.compile import base_fragment, run_expression

P = 8
FN_OPS = 50.0


@base_fragment(ops=FN_OPS)
def _inc(x):
    return x + 1


@base_fragment(ops=FN_OPS)
def _dbl(x):
    return x * 2


@st.composite
def rewrite_candidates(draw):
    """A random chain of maps and rotates — §4 fusion-rule territory."""
    steps = draw(st.lists(
        st.one_of(
            st.sampled_from([Map(_inc), Map(_dbl)]),
            st.integers(min_value=-5, max_value=5).map(Rotate),
        ),
        min_size=2, max_size=6))
    return compose_nodes(*steps)


def _simulate(expr) -> tuple[list, float]:
    # opt="off" throughout this module: these tests compare the
    # *expression-level* model against the raw compiled execution; the
    # plan optimizer would rewrite the program underneath the comparison.
    pa = ParArray(list(range(P)))
    machine = Machine(FullyConnected(P), spec=AP1000)
    out, res = run_expression(expr, pa, machine, opt="off")
    return list(out), res.makespan


@settings(max_examples=40, deadline=None)
@given(expr=rewrite_candidates())
def test_predicted_improvements_are_real(expr):
    report = optimize(expr, n=P, spec=AP1000, fn_ops=FN_OPS,
                      element_bytes=AP1000.word_bytes, strategy="greedy")
    before_out, before_s = _simulate(report.original)
    after_out, after_s = _simulate(report.optimized)
    # rewrites preserve meaning...
    assert after_out == before_out
    # ...and a predicted win must not be a simulated loss (tiny float slack)
    if report.accepted and report.cost_after.seconds < report.cost_before.seconds:
        assert after_s <= before_s * (1 + 1e-9)


@settings(max_examples=40, deadline=None)
@given(expr=rewrite_candidates())
def test_predicted_message_counts_match_simulation(expr):
    report = optimize(expr, n=P, spec=AP1000, fn_ops=FN_OPS,
                      element_bytes=AP1000.word_bytes, strategy="greedy")
    for node, cost in ((report.original, report.cost_before),
                       (report.optimized, report.cost_after)):
        _out, _ = _simulate(node)
        machine = Machine(FullyConnected(P), spec=AP1000)
        _o, res = run_expression(node, ParArray(list(range(P))), machine,
                                 opt="off")
        assert cost.messages == res.total_messages


def test_the_papers_headline_pairs_rank_correctly(rng):
    """The §4 showcase rewrites: fused forms beat unfused in both worlds."""
    pairs = [
        (compose_nodes(Map(_inc), Map(_dbl)),
         "map fusion"),
        (compose_nodes(Rotate(2), Rotate(3)),
         "rotate fusion"),
        (compose_nodes(Map(_inc), Map(_dbl), Rotate(1), Rotate(-3)),
         "mixed chain"),
    ]
    for expr, label in pairs:
        report = optimize(expr, n=P, spec=AP1000, fn_ops=FN_OPS,
                          element_bytes=AP1000.word_bytes,
                          strategy="greedy")
        assert report.accepted, label
        _out_b, before_s = _simulate(report.original)
        _out_a, after_s = _simulate(report.optimized)
        assert report.cost_after.seconds <= report.cost_before.seconds, label
        assert after_s <= before_s * (1 + 1e-9), label
