"""The host-parallel worker pool: dispatch paths, gates and lifecycle.

``WorkerPool.apply_local`` must be bit-identical to the in-process loop
on every path (shm shard, shm per-rank, pickled per-rank, every apply
mode), must *decline* (return ``None``) on the documented gates without
ever starting a worker process it doesn't need, and must raise
:class:`~repro.errors.PoolError` only on a genuine worker crash — which
the vectorized data plane then survives by retrying in-process.

Worker-shipped functions live at module level: persistent workers
resolve pickled functions by reference against the importing module, so
closures and test-local defs intentionally take the fallback path (and
one test pins exactly that).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.errors import PoolError
from repro.obs.metrics import MetricsRegistry
from repro.plan import ir, pexec
from repro.plan.kernels import batched_apply, elementwise
from repro.plan.pexec import WorkerPool, _shard_bounds

SPAWN_ONLY = "fork" not in multiprocessing.get_all_start_methods()
METHODS = ["spawn"] if SPAWN_ONLY else ["fork", "spawn"]


# ------------------------------------------------- worker-shipped kernels

#: Registered elementwise fragment → eligible for the shm shard path.
scaled_sqrt = elementwise(np.sqrt, ops_per_elem=2.0, name="scaled_sqrt")


def double(v):
    return v * 2


def rank_tag(r, v):
    return (r, float(np.sum(v)))


def grid_tag(rc, v):
    return (rc, float(np.sum(v)))


def env_scale(env, v):
    return v * env


def boom(v):
    raise RuntimeError("kernel exploded")


def square(x):
    return x * x


# ----------------------------------------------------------------- setup

def _vals(p=8, n=4096, dtype=np.float64):
    rng = np.random.default_rng(7)
    return [rng.normal(size=n).astype(dtype) ** 2 for _ in range(p)]


@pytest.fixture
def pool():
    pl = WorkerPool(2, min_dispatch_bytes=1)
    yield pl
    pl.close()


# ----------------------------------------------------------- shard bounds

class TestShardBounds:
    def test_balanced_and_contiguous(self):
        bounds = _shard_bounds(10, 4)
        assert bounds == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_never_more_shards_than_items(self):
        assert _shard_bounds(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_covers_everything_exactly_once(self):
        for n in (1, 2, 7, 16, 100):
            for s in (1, 2, 3, 8):
                bounds = _shard_bounds(n, s)
                flat = [i for lo, hi in bounds for i in range(lo, hi)]
                assert flat == list(range(n))


# -------------------------------------------------------- dispatch paths

class TestApplyLocalPaths:
    def test_shard_path_bit_identical(self, pool):
        values = _vals()
        want = batched_apply(scaled_sqrt, values)
        got = pool.apply_local(scaled_sqrt, values)
        assert got is not None
        assert pool.stats["tasks_shm"] > 0
        for w, g in zip(want, got):
            assert np.array_equal(w, g)
            assert g.dtype == w.dtype

    def test_shard_path_ragged_groups(self, pool):
        # Two (shape, dtype) groups interleaved across ranks: the scatter
        # must restore rank order within and across groups.
        rng = np.random.default_rng(3)
        values = [rng.normal(size=2048 + 512 * (r % 2)) ** 2
                  for r in range(6)]
        want = batched_apply(scaled_sqrt, values)
        got = pool.apply_local(scaled_sqrt, values)
        assert got is not None
        for w, g in zip(want, got):
            assert np.array_equal(w, g)

    def test_per_rank_shm_path(self, pool):
        values = _vals()
        got = pool.apply_local(double, values)
        assert got is not None
        assert pool.stats["tasks_shm"] > 0
        for v, g in zip(values, got):
            assert np.array_equal(v * 2, g)

    def test_per_rank_pickle_path_non_arrays(self, pool):
        values = [list(range(1000 * (r + 1))) for r in range(4)]
        got = pool.apply_local(len, values)
        assert got == [1000, 2000, 3000, 4000]
        assert pool.stats["tasks_pickle"] > 0

    def test_indexed_mode(self, pool):
        values = _vals(p=6)
        want = [rank_tag(r, v) for r, v in enumerate(values)]
        assert pool.apply_local(rank_tag, values, indexed=True) == want

    def test_indexed2d_mode(self, pool):
        values = _vals(p=6)
        want = [grid_tag(divmod(r, 3), v) for r, v in enumerate(values)]
        got = pool.apply_local(grid_tag, values, indexed=True, grid_cols=3)
        assert got == want

    def test_env_mode(self, pool):
        values = _vals(p=4)
        got = pool.apply_local(env_scale, values, farm_env=3.0)
        assert got is not None
        for v, g in zip(values, got):
            assert np.array_equal(v * 3.0, g)

    def test_transposed_inputs_normalised(self, pool):
        # Non-contiguous views must produce the same results as their
        # contiguous copies (group_uniform normalises before stacking).
        rng = np.random.default_rng(5)
        values = [np.asarray(rng.normal(size=(32, 64)) ** 2).T
                  for _ in range(4)]
        want = batched_apply(scaled_sqrt, [v.copy() for v in values])
        got = pool.apply_local(scaled_sqrt, values)
        assert got is not None
        for w, g in zip(want, got):
            assert np.array_equal(w, g)


# --------------------------------------------------------- decline gates

class TestFallbackGates:
    def test_amortize_gate_never_starts_workers(self):
        pl = WorkerPool(2)  # default 32 KiB floor
        try:
            out = pl.apply_local(double, [np.zeros(4), np.zeros(4)])
            assert out is None
            assert not pl.started
            assert pl.stats["fallbacks"] == {"amortize": 1}
        finally:
            pl.close()

    def test_small_p_gate(self, pool):
        assert pool.apply_local(double, [np.zeros(100_000)]) is None
        assert pool.stats["fallbacks"] == {"small-p": 1}

    def test_unpicklable_fn_declines_without_starting(self):
        pl = WorkerPool(2, min_dispatch_bytes=1)
        try:
            out = pl.apply_local(lambda v: v + 1,
                                 [np.zeros(4096), np.zeros(4096)])
            assert out is None
            assert not pl.started
            assert pl.stats["fallbacks"] == {"unpicklable": 1}
        finally:
            pl.close()

    def test_worker_side_error_declines(self, pool):
        out = pool.apply_local(boom, _vals(p=4))
        assert out is None
        assert pool.stats["fallbacks"] == {"task-error": 1}
        # The pool is still healthy: the error was in the kernel, not the
        # worker loop.
        assert not pool.broken
        assert pool.apply_local(double, _vals(p=4)) is not None

    def test_zero_workers_rejected(self):
        with pytest.raises(PoolError):
            WorkerPool(-1)


# ------------------------------------------------------------- lifecycle

class TestLifecycle:
    @pytest.mark.parametrize("method", METHODS)
    def test_start_methods_roundtrip(self, method):
        pl = WorkerPool(2, start_method=method, min_dispatch_bytes=1)
        try:
            values = _vals(p=4)
            got = pl.apply_local(scaled_sqrt, values)
            assert got is not None
            for w, g in zip(batched_apply(scaled_sqrt, values), got):
                assert np.array_equal(w, g)
        finally:
            pl.close()

    def test_close_then_reuse(self, pool):
        assert pool.apply_local(double, _vals(p=4)) is not None
        assert pool.started
        pool.close()
        assert not pool.started
        assert pool.apply_local(double, _vals(p=4)) is not None

    def test_crash_raises_pool_error_then_broken(self, pool):
        pool.ensure_started()
        os.kill(pool._ws[0].proc.pid, signal.SIGKILL)
        with pytest.raises(PoolError):
            pool.run_map(square, list(range(64)))
        assert pool.broken
        # A broken pool declines applies instead of raising.
        assert pool.apply_local(double, _vals(p=4)) is None
        assert pool.stats["fallbacks"] == {"broken": 1}
        # ...and close() resets it for reuse.
        pool.close()
        assert not pool.broken
        assert pool.run_map(square, [1, 2, 3]) == [1, 4, 9]

    def test_idle_reaper_retires_and_restarts(self):
        pl = WorkerPool(2, min_dispatch_bytes=1, idle_timeout_s=0.2)
        try:
            assert pl.apply_local(double, _vals(p=4)) is not None
            assert pl.started
            deadline = time.monotonic() + 5.0
            while pl.started and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not pl.started, "idle reaper never retired the workers"
            # The next dispatch restarts them transparently.
            assert pl.apply_local(double, _vals(p=4)) is not None
            assert pl.started
        finally:
            pl.close()


# ----------------------------------------------------------------- run_map

class TestRunMap:
    def test_order_preserved(self, pool):
        assert pool.run_map(square, list(range(37))) == \
            [x * x for x in range(37)]

    def test_empty(self, pool):
        assert pool.run_map(square, []) == []
        assert not pool.started

    def test_unpicklable_raises(self, pool):
        with pytest.raises(PoolError, match="pickle"):
            pool.run_map(lambda x: x, [1, 2])

    def test_task_error_raises(self, pool):
        with pytest.raises(PoolError, match="kernel exploded"):
            pool.run_map(boom, [1, 2, 3])


# --------------------------------------------------------------- metrics

class TestPoolMetrics:
    def test_gauges_and_counters_register_and_move(self):
        reg = MetricsRegistry()
        pl = WorkerPool(2, metrics=reg, min_dispatch_bytes=1)
        try:
            assert pl.apply_local(scaled_sqrt, _vals(p=4)) is not None
            assert pl.apply_local(double, [np.zeros(4)]) is None
            snap = reg.snapshot()
            assert snap.value("pexec_workers") == 2.0
            assert snap.value("pexec_workers_live") == 2.0
            assert snap.value("pexec_workers_busy") == 0.0
            assert snap.value("pexec_tasks_total", {"path": "shm"}) >= 1
            assert snap.value("pexec_fallbacks_total",
                              {"reason": "small-p"}) == 1
            assert snap.value("pexec_dispatch_seconds",
                              field="count") >= 1
        finally:
            pl.close()

    def test_no_metrics_is_fine(self, pool):
        # The guard under test: every metric touch sits behind
        # ``if ... is not None``.
        assert pool._m_tasks is None
        assert pool.apply_local(scaled_sqrt, _vals(p=4)) is not None


# ------------------------------------------------------------- singleton

class TestGetPool:
    def test_reuse_and_recreate(self):
        try:
            a = pexec.get_pool(2)
            assert pexec.get_pool(2) is a
            b = pexec.get_pool(3)
            assert b is not a
            assert b.workers == 3
        finally:
            pexec.shutdown_pool()

    def test_shutdown_is_idempotent(self):
        pexec.shutdown_pool()
        pexec.shutdown_pool()


# ------------------------------------------------- vexec fallback wiring

class _ExplodingPool:
    workers = 2

    def apply_local(self, fn, values, **kw):
        raise PoolError("synthetic crash")


class TestVexecIntegration:
    def test_pool_crash_falls_back_in_process(self):
        from repro.machine import AP1000
        from repro.plan import vexec

        plan = ir.Plan((ir.LocalApply(scaled_sqrt),), 4)
        values = _vals(p=4)
        want = vexec.precompute(plan, values, AP1000)
        got = vexec.precompute(plan, values, AP1000,
                               pool=_ExplodingPool())
        assert want is not None and got is not None
        assert want[0] == got[0]
        for w, g in zip(want[1], got[1]):
            assert np.array_equal(w, g)

    def test_real_pool_scripts_identically(self, pool):
        from repro.machine import AP1000
        from repro.plan import vexec

        plan = ir.Plan((ir.LocalApply(scaled_sqrt),
                        ir.LocalApply(rank_tag, indexed=True)), 4)
        values = _vals(p=4)
        want = vexec.precompute(plan, values, AP1000)
        got = vexec.precompute(plan, values, AP1000, pool=pool)
        assert pool.stats["dispatches"] >= 1
        assert want[0] == got[0]
        assert want[1] == got[1]
