# tests for repro.plan — the lowered program representation
