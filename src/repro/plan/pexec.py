"""Host-parallel data plane: a persistent shared-memory worker pool.

Everything before this module speeds up the *virtual* machine on one
host core: the interpreter, the SoA data plane (:mod:`repro.plan.vexec`)
and the batched simulator all run under one GIL.  ``pexec`` is the
hardware tier — a pool of long-lived OS processes that executes the
compute half of :func:`repro.plan.vexec.precompute` in true parallel
while the scripting half (cost charges, message tables, collective
generators) stays in the parent, so the simulator still replays a
bit-identical request stream.

Two dispatch paths, chosen per ``LocalApply``:

* **shm shard path** — when every rank's value is an ndarray and the
  fragment registered a row-independent *shard transform*
  (:func:`repro.plan.kernels.vectorize_fragment` ``shard=``), each
  uniform ``(shape, dtype)`` group is stacked once into a
  :class:`multiprocessing.shared_memory.SharedMemory` segment and split
  into contiguous rank shards.  Workers map zero-copy numpy views over
  their slab, run the transform, and ship the result back through a
  worker-created segment the parent copies out and unlinks.
* **pickle per-rank path** — opaque-but-picklable fragments (including
  the constituents of a :class:`~repro.plan.ir.FusedKernel` chain, which
  the data plane dispatches link by link) run the plain per-rank loop on
  a contiguous shard of ranks.  Uniform ndarray inputs still travel via
  one shared-memory stack; ragged or non-array values fall back to
  pickled chunks.

Fallback rules (``apply_local`` returns ``None`` → caller runs
in-process): unpicklable fragment, too few bytes to amortize a dispatch
(``min_dispatch_bytes``), fewer than two ranks, a worker-side exception
(the in-process retry re-raises the real error), or a broken pool.  A
crashed worker or torn pipe raises :class:`~repro.errors.PoolError`; the
vectorized data plane catches it, drops the pool and retries in-process
— parallelism is an optimisation, never a correctness dependency.

Lifecycle: workers start lazily on first dispatch (``fork`` preferred,
``spawn`` supported — select with ``start_method=`` or the
``REPRO_POOL_START_METHOD`` environment variable), an optional idle
reaper retires them after ``idle_timeout_s`` of disuse (the next
dispatch restarts them), and :func:`get_pool` maintains the process-wide
singleton that ``scl.compile`` / ``python -m repro perf --workers N``
share.  Metrics (worker/busy gauges, per-path task counters, shard-size
and dispatch-latency histograms) register on an
:class:`~repro.obs.metrics.MetricsRegistry` when one is supplied —
behind the usual ``if metrics is not None`` guard.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from typing import Any, Callable, Sequence

import multiprocessing
from multiprocessing import shared_memory

import numpy as np

from repro.errors import PoolError
from repro.plan import ir

__all__ = ["WorkerPool", "get_pool", "shutdown_pool", "PoolError"]

#: Dispatch is worth two process hops only above this many payload bytes.
DEFAULT_MIN_DISPATCH_BYTES = 1 << 15

_PROTO = pickle.HIGHEST_PROTOCOL


# ----------------------------------------------------------- worker side

def _unregister_shm(seg: shared_memory.SharedMemory) -> None:
    """Hand ownership of a worker-created segment to the parent.

    The creating process's resource tracker would otherwise unlink the
    segment when the worker exits; the parent unlinks it after copying
    the result out.
    """
    try:  # pragma: no cover - depends on CPython internals staying put
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass


def _pack_array(arr: np.ndarray) -> tuple:
    """Ship one result batch through a fresh shared-memory segment."""
    arr = np.ascontiguousarray(arr)
    seg = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    try:
        np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)[...] = arr
        _unregister_shm(seg)
    finally:
        seg.close()
    return ("ok_shm", seg.name, arr.shape, arr.dtype.str)


def _pack_results(results: list) -> tuple:
    """Uniform ndarray results ride shared memory; anything else pickles."""
    if results and all(type(r) is np.ndarray for r in results):
        r0 = results[0]
        if all(r.shape == r0.shape and r.dtype == r0.dtype
               for r in results):
            return _pack_array(np.stack(results))
    return ("ok_pick", pickle.dumps(results, protocol=_PROTO))


def _run_rows(fn, mode: str, aux, rows: list, lo: int) -> list:
    """The per-rank loop a worker runs over its shard (ranks lo..)."""
    if mode == "plain":
        return [fn(v) for v in rows]
    if mode == "indexed":
        return [fn(lo + i, v) for i, v in enumerate(rows)]
    if mode == "indexed2d":
        return [fn(divmod(lo + i, aux), v) for i, v in enumerate(rows)]
    if mode == "env":
        return [fn(aux, v) for v in rows]
    raise ValueError(f"unknown apply mode {mode!r}")


def _run_task(task: tuple) -> tuple:
    _, job_blob, inp = task
    fn, mode, aux = pickle.loads(job_blob)
    if inp[0] == "shm":
        _, name, shape, dtype, lo, hi = inp
        seg = shared_memory.SharedMemory(name=name)
        try:
            stack = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
            if mode == "shard":
                return _pack_array(fn(stack[lo:hi]))
            rows = [stack[i] for i in range(lo, hi)]
            # pack before close: results may be views over the segment
            return _pack_results(_run_rows(fn, mode, aux, rows, lo))
        finally:
            seg.close()
    _, vals_blob, lo = inp
    rows = pickle.loads(vals_blob)
    return _pack_results(_run_rows(fn, mode, aux, rows, lo))


def _worker_main(conn) -> None:
    """Long-lived worker loop: receive a task, reply, repeat."""
    import signal

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        kind = msg[0]
        if kind == "exit":
            return
        if kind == "ping":
            conn.send(("pong",))
            continue
        try:
            reply = _run_task(msg)
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            reply = ("err", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


# ----------------------------------------------------------- parent side

def _approx_nbytes(value: Any) -> int:
    """Cheap payload-size estimate for the amortization gate."""
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, (tuple, list)):
        return sum(v.nbytes if isinstance(v, np.ndarray) else 64
                   for v in value)
    return 64


def _shard_bounds(n: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``shards`` contiguous, balanced slabs."""
    shards = max(1, min(shards, n))
    base, extra = divmod(n, shards)
    bounds, lo = [], 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class _TaskFailure(Exception):
    """A worker reported an exception for one task (internal signal)."""


class _Worker:
    __slots__ = ("proc", "conn")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn


class WorkerPool:
    """A persistent pool of OS worker processes for the data plane.

    ``workers`` fixes the pool width (default: host CPU count);
    ``start_method`` selects the multiprocessing context (default:
    ``REPRO_POOL_START_METHOD`` env var, else ``fork`` where available);
    ``metrics`` (optional) receives pool gauges/counters/histograms;
    ``min_dispatch_bytes`` is the amortization floor below which
    ``apply_local`` declines; ``idle_timeout_s`` (optional) retires idle
    workers — they restart lazily on the next dispatch.
    """

    def __init__(self, workers: int | None = None, *,
                 start_method: str | None = None,
                 metrics: Any = None,
                 min_dispatch_bytes: int = DEFAULT_MIN_DISPATCH_BYTES,
                 idle_timeout_s: float | None = None):
        workers = int(workers) if workers else (os.cpu_count() or 1)
        if workers < 1:
            raise PoolError(f"workers must be positive, got {workers}")
        self.workers = workers
        method = start_method or os.environ.get("REPRO_POOL_START_METHOD")
        if method is None and \
                "fork" in multiprocessing.get_all_start_methods():
            method = "fork"
        self.start_method = method
        self.min_dispatch_bytes = int(min_dispatch_bytes)
        self.idle_timeout_s = idle_timeout_s
        self._metrics = metrics
        self._ws: list[_Worker] = []
        self._lock = threading.RLock()
        self._broken = False
        self._busy = 0
        self._last_used = time.monotonic()
        self._stop_evt = threading.Event()
        self._reaper: threading.Thread | None = None
        #: Pickled (fn, mode, aux) blobs keyed by fragment identity; the
        #: pinned fn reference keeps ids stable for the cache lifetime.
        self._job_cache: dict[tuple, tuple[bytes | None, Any]] = {}
        self.stats = {"dispatches": 0, "tasks_shm": 0, "tasks_pickle": 0,
                      "fallbacks": {}}
        self._register_metrics()

    # -- lifecycle ----------------------------------------------------------

    @property
    def started(self) -> bool:
        return bool(self._ws)

    @property
    def broken(self) -> bool:
        return self._broken

    def ensure_started(self) -> None:
        """Start the workers (idempotent; lazy callers use this)."""
        with self._lock:
            if self._broken:
                raise PoolError(
                    "worker pool is broken (a worker crashed); close() "
                    "and recreate, or run in-process")
            if self._ws:
                return
            ctx = multiprocessing.get_context(self.start_method)
            ws = []
            try:
                for _ in range(self.workers):
                    parent, child = ctx.Pipe(duplex=True)
                    proc = ctx.Process(target=_worker_main, args=(child,),
                                       daemon=True,
                                       name="repro-pexec-worker")
                    proc.start()
                    child.close()
                    ws.append(_Worker(proc, parent))
            except BaseException:
                for w in ws:
                    w.proc.terminate()
                    w.conn.close()
                raise
            self._ws = ws
            self._last_used = time.monotonic()
            if self.idle_timeout_s is not None and self._reaper is None:
                self._reaper = threading.Thread(
                    target=self._reap_loop, daemon=True,
                    name="repro-pexec-reaper")
                self._reaper.start()

    def _stop_workers(self) -> None:
        with self._lock:
            ws, self._ws = self._ws, []
            for w in ws:
                try:
                    w.conn.send(("exit",))
                except (BrokenPipeError, OSError):
                    pass
                w.conn.close()
            for w in ws:
                w.proc.join(timeout=2.0)
                if w.proc.is_alive():  # pragma: no cover - stuck worker
                    w.proc.terminate()
                    w.proc.join(timeout=2.0)

    def _mark_broken(self) -> None:
        with self._lock:
            self._broken = True
            ws, self._ws = self._ws, []
            for w in ws:
                w.proc.terminate()
                w.conn.close()
            for w in ws:
                w.proc.join(timeout=2.0)

    def close(self) -> None:
        """Stop workers and the reaper; the pool object stays reusable."""
        self._stop_evt.set()
        reaper, self._reaper = self._reaper, None
        if reaper is not None:
            reaper.join(timeout=2.0)
        self._stop_evt = threading.Event()
        self._stop_workers()
        self._broken = False

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _reap_loop(self) -> None:
        timeout = self.idle_timeout_s or 0.0
        while not self._stop_evt.wait(max(timeout / 2.0, 0.05)):
            with self._lock:
                idle = (self._ws and not self._busy
                        and time.monotonic() - self._last_used >= timeout)
                if idle:
                    self._stop_workers()

    # -- metrics ------------------------------------------------------------

    def _register_metrics(self) -> None:
        m = self._metrics
        if m is None:
            self._m_tasks = self._m_fallbacks = None
            self._m_shard_rows = self._m_dispatch_s = None
            return
        m.gauge("pexec_workers",
                "configured worker-pool width").set_function(
                    lambda: float(self.workers))
        m.gauge("pexec_workers_live",
                "worker processes currently running").set_function(
                    lambda: float(len(self._ws)))
        m.gauge("pexec_workers_busy",
                "workers with tasks in flight").set_function(
                    lambda: float(self._busy))
        self._m_tasks = m.counter(
            "pexec_tasks_total", "tasks dispatched to the pool",
            labelnames=("path",))
        self._m_fallbacks = m.counter(
            "pexec_fallbacks_total", "dispatches declined (ran in-process)",
            labelnames=("reason",))
        self._m_shard_rows = m.histogram(
            "pexec_shard_rows", "ranks per dispatched shard",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024))
        self._m_dispatch_s = m.histogram(
            "pexec_dispatch_seconds",
            "wall time of one pool dispatch (send to last reply)")

    def _fallback(self, reason: str) -> None:
        fb = self.stats["fallbacks"]
        fb[reason] = fb.get(reason, 0) + 1
        if self._m_fallbacks is not None:
            self._m_fallbacks.labels(reason=reason).inc()

    # -- dispatch core ------------------------------------------------------

    def _dumps(self, obj: Any, cache_key: tuple | None = None,
               pin: Any = None) -> bytes | None:
        if cache_key is not None:
            hit = self._job_cache.get(cache_key)
            if hit is not None:
                return hit[0]
        try:
            blob = pickle.dumps(obj, protocol=_PROTO)
        except Exception:
            blob = None
        if cache_key is not None:
            self._job_cache[cache_key] = (blob, pin)
        return blob

    def _stack_to_shm(self, arrays: Sequence[np.ndarray]
                      ) -> tuple[shared_memory.SharedMemory, tuple, str]:
        a0 = arrays[0]
        shape = (len(arrays),) + a0.shape
        nbytes = max(int(a0.nbytes) * len(arrays), 1)
        seg = shared_memory.SharedMemory(create=True, size=nbytes)
        dst = np.ndarray(shape, dtype=a0.dtype, buffer=seg.buf)
        for i, a in enumerate(arrays):
            dst[i] = a
        return seg, shape, a0.dtype.str

    def _dispatch(self, tasks: list[tuple[int, tuple]]) -> list:
        """Send ``(worker_index, task)`` pairs, return replies in order."""
        self.ensure_started()
        t0 = time.perf_counter()
        per_worker: dict[int, list[int]] = {}
        for pos, (wi, _task) in enumerate(tasks):
            per_worker.setdefault(wi, []).append(pos)
        replies: list = [None] * len(tasks)
        with self._lock:
            self._busy = len(per_worker)
            self._last_used = time.monotonic()
            self.stats["dispatches"] += 1
            try:
                for wi, task in tasks:
                    self._ws[wi].conn.send(task)
                for wi, positions in per_worker.items():
                    conn = self._ws[wi].conn
                    for pos in positions:
                        replies[pos] = conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError,
                    OSError) as exc:
                self._mark_broken()
                raise PoolError(
                    f"worker pool lost a worker mid-dispatch: {exc}"
                ) from exc
            finally:
                self._busy = 0
                self._last_used = time.monotonic()
        if self._m_dispatch_s is not None:
            self._m_dispatch_s.observe(time.perf_counter() - t0)
        return replies

    def _unpack(self, reply: tuple) -> list:
        """One reply → the per-rank result rows (unlinking shm results)."""
        kind = reply[0]
        if kind == "ok_shm":
            _, name, shape, dtype = reply
            seg = shared_memory.SharedMemory(name=name)
            try:
                arr = np.ndarray(shape, dtype=np.dtype(dtype),
                                 buffer=seg.buf)
                return [arr[i].copy() for i in range(shape[0])]
            finally:
                seg.close()
                seg.unlink()
        if kind == "ok_pick":
            return pickle.loads(reply[1])
        raise _TaskFailure(reply[1])

    def _unpack_all(self, replies: list) -> tuple[list[list] | None, str]:
        """Unpack every reply (always unlinking shm) — or the first error."""
        rows_per_task: list[list] = []
        failure = ""
        for reply in replies:
            try:
                rows_per_task.append(self._unpack(reply))
            except _TaskFailure as exc:
                failure = failure or str(exc)
        if failure:
            return None, failure
        return rows_per_task, ""

    # -- the vexec entry point ----------------------------------------------

    def apply_local(self, fn: Callable, values: Sequence[Any], *,
                    indexed: bool = False, grid_cols: int | None = None,
                    farm_env: Any = ir.NO_ENV) -> list | None:
        """Run one ``LocalApply`` over all ranks on the pool.

        Returns the per-rank results (rank order, bit-identical to the
        in-process loop) or ``None`` when dispatch is declined — the
        caller then runs in-process.  Raises :class:`PoolError` only on
        a worker crash.
        """
        p = len(values)
        if self._broken:
            self._fallback("broken")
            return None
        if p < 2:
            self._fallback("small-p")
            return None
        if sum(_approx_nbytes(v) for v in values) < self.min_dispatch_bytes:
            self._fallback("amortize")
            return None

        if indexed:
            mode, aux = ("indexed2d", grid_cols) if grid_cols is not None \
                else ("indexed", None)
        elif farm_env is not ir.NO_ENV:
            mode, aux = "env", farm_env
        else:
            mode, aux = "plain", None

        # Path 1: registered row-independent shard transform over shm.
        if mode == "plain":
            from repro.plan.kernels import shard_transform

            shard = shard_transform(fn)
            if shard is not None and \
                    all(isinstance(v, np.ndarray) for v in values):
                blob = self._dumps((shard, "shard", None),
                                   cache_key=("shard", id(fn)), pin=fn)
                if blob is not None:
                    return self._apply_groups(blob, values)
        # Path 2: per-rank loop on contiguous rank shards.
        if mode == "env":
            job = self._dumps((fn, mode, aux))
        else:
            job = self._dumps((fn, mode, aux),
                              cache_key=("rank", id(fn), mode, aux), pin=fn)
        if job is None:
            self._fallback("unpicklable")
            return None
        return self._apply_ranks(job, values)

    def _apply_groups(self, job: bytes, values: Sequence[Any]
                      ) -> list | None:
        """Shard every uniform SoA group across the workers."""
        from repro.plan.kernels import group_uniform

        out: list = [None] * len(values)
        segs: list[shared_memory.SharedMemory] = []
        tasks: list[tuple[int, tuple]] = []
        scatter: list[list[int]] = []
        try:
            wi = 0
            for idxs, stacked in group_uniform(values):
                seg = shared_memory.SharedMemory(
                    create=True, size=max(stacked.nbytes, 1))
                segs.append(seg)
                np.ndarray(stacked.shape, dtype=stacked.dtype,
                           buffer=seg.buf)[...] = stacked
                dtype = stacked.dtype.str
                for lo, hi in _shard_bounds(len(idxs), self.workers):
                    tasks.append((wi % self.workers,
                                  ("apply", job,
                                   ("shm", seg.name, stacked.shape, dtype,
                                    lo, hi))))
                    scatter.append(idxs[lo:hi])
                    wi += 1
                    if self._m_shard_rows is not None:
                        self._m_shard_rows.observe(hi - lo)
            replies = self._dispatch(tasks)
        finally:
            for seg in segs:
                seg.close()
                seg.unlink()
        rows_per_task, failure = self._unpack_all(replies)
        if rows_per_task is None:
            self._fallback("task-error")
            return None
        self.stats["tasks_shm"] += len(tasks)
        if self._m_tasks is not None:
            self._m_tasks.labels(path="shm").inc(len(tasks))
        for idxs, rows in zip(scatter, rows_per_task):
            for k, row in zip(idxs, rows):
                out[k] = row
        return out

    def _apply_ranks(self, job: bytes, values: Sequence[Any]
                     ) -> list | None:
        """Per-rank loop over contiguous rank shards (shm or pickle in)."""
        p = len(values)
        bounds = _shard_bounds(p, self.workers)
        uniform = (all(isinstance(v, np.ndarray) for v in values)
                   and len({(v.shape, v.dtype) for v in values}) == 1)
        seg = None
        tasks: list[tuple[int, tuple]] = []
        try:
            if uniform:
                arrays = [np.ascontiguousarray(v) for v in values]
                seg, shape, dtype = self._stack_to_shm(arrays)
                for wi, (lo, hi) in enumerate(bounds):
                    tasks.append((wi, ("apply", job,
                                       ("shm", seg.name, shape, dtype,
                                        lo, hi))))
            else:
                for wi, (lo, hi) in enumerate(bounds):
                    blob = self._dumps(list(values[lo:hi]))
                    if blob is None:
                        self._fallback("unpicklable")
                        return None
                    tasks.append((wi, ("apply", job, ("vals", blob, lo))))
            if self._m_shard_rows is not None:
                for _, (lo, hi) in zip(tasks, bounds):
                    self._m_shard_rows.observe(hi - lo)
            replies = self._dispatch(tasks)
        finally:
            if seg is not None:
                seg.close()
                seg.unlink()
        rows_per_task, failure = self._unpack_all(replies)
        if rows_per_task is None:
            self._fallback("task-error")
            return None
        path = "shm" if uniform else "pickle"
        self.stats[f"tasks_{path}"] += len(tasks)
        if self._m_tasks is not None:
            self._m_tasks.labels(path=path).inc(len(tasks))
        out: list = []
        for rows in rows_per_task:
            out.extend(rows)
        return out

    # -- the generic executor entry point -------------------------------------

    def run_map(self, fn: Callable, items: Sequence[Any]) -> list:
        """``[fn(x) for x in items]`` across the workers, in input order.

        The :class:`~repro.runtime.executor.ProcessExecutor` backend.
        Unlike :meth:`apply_local` this never declines silently: an
        unpicklable function/items or a worker-side exception raises
        :class:`PoolError`.
        """
        items = list(items)
        if not items:
            return []
        job = self._dumps((fn, "plain", None))
        if job is None:
            raise PoolError(
                f"cannot pickle {getattr(fn, '__name__', fn)!r} for the "
                f"process pool (top-level functions only)")
        tasks: list[tuple[int, tuple]] = []
        for wi, (lo, hi) in enumerate(_shard_bounds(len(items),
                                                    self.workers)):
            blob = self._dumps(items[lo:hi])
            if blob is None:
                raise PoolError("cannot pickle work items for the "
                                "process pool")
            tasks.append((wi, ("apply", job, ("vals", blob, lo))))
        replies = self._dispatch(tasks)
        rows_per_task, failure = self._unpack_all(replies)
        if rows_per_task is None:
            raise PoolError(f"worker task failed: {failure}")
        out: list = []
        for rows in rows_per_task:
            out.extend(rows)
        return out

    def __repr__(self) -> str:
        state = ("broken" if self._broken
                 else "started" if self._ws else "idle")
        return (f"WorkerPool(workers={self.workers}, "
                f"start_method={self.start_method!r}, {state})")


# -------------------------------------------------------- pool singleton

_POOL: WorkerPool | None = None
_POOL_LOCK = threading.Lock()


def get_pool(workers: int | None = None, *,
             start_method: str | None = None,
             metrics: Any = None) -> WorkerPool:
    """The process-wide pool, (re)created to match ``workers``.

    Lazy by construction: no worker process starts until the first
    dispatch, so merely resolving the pool (e.g. ``parallel=True`` on a
    run that then declines every apply) costs nothing.
    """
    global _POOL
    with _POOL_LOCK:
        want = int(workers) if workers else (os.cpu_count() or 1)
        pool = _POOL
        if pool is not None and not pool.broken and pool.workers == want \
                and (start_method is None
                     or pool.start_method == start_method) \
                and (metrics is None or pool._metrics is metrics):
            return pool
        if pool is not None:
            pool.close()
        _POOL = WorkerPool(want, start_method=start_method, metrics=metrics)
        return _POOL


def shutdown_pool() -> None:
    """Close and drop the process-wide pool (no-op when absent)."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.close()
            _POOL = None
