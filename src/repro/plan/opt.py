"""The plan optimizer: §4's transformation rules over the lowered Plan IR.

:mod:`repro.scl.optimize` rewrites the *symbolic* expression tree; this
module applies the same algebra *post-lowering*, where composition
structure that source rewriting cannot see (skeletons brought together by
``iterFor`` expansion, communication tables already evaluated) becomes a
flat instruction stream.  Three passes run in order:

1. **LocalApply fusion** (``fuse``) — ``map f . map g → map (f . g)``:
   every run of adjacent :class:`~repro.plan.ir.LocalApply` instructions
   (including inside ``Loop`` bodies and nested ``SubPlan`` s) merges into
   one instruction carrying a :class:`~repro.plan.ir.FusedKernel`.  The
   fused instruction charges the same summed fragment cost and produces
   bit-identical values — it only removes per-instruction dispatch and
   one barrier of predicted synchronisation per merged instruction.
2. **Exchange coalescing** (``coalesce``) — the paper's
   ``send f . send g = send (f ∘ g)``: adjacent pure-routing instructions
   (``Rotate`` and replace-mode ``Exchange``) compose into a single
   message round; ``Rotate k1 . Rotate k2`` folds to
   ``Rotate (k1+k2 mod p)`` and identity routings are dropped entirely.
   Each composition is cost-guarded: it is kept only when
   :func:`~repro.plan.cost.plan_cost` predicts no more seconds and no
   more messages than the pair it replaces (a hot-spot ``fetch`` composed
   with a scatter can *concentrate* traffic, which the guard rejects).
3. **Collective selection** (``select_collectives``) — per
   :class:`~repro.plan.ir.Collective`, price the tree/flat/ring message
   schedules with the plan cost model plus a topology hop term, and swap
   the ``algo`` field only on a *strict* predicted improvement with no
   regression on either axis (seconds, messages).  A message-count win
   alone flips the schedule only when the spec prices communication at
   exactly zero seconds — on a seconds tie with real comm cost the
   analytic model is blind to round pipelining, so the tree stays.  On
   latency-dominated specs the binomial tree therefore wins everywhere
   and nothing changes; on zero-cost models the rank-order chain scan
   strictly reduces message volume and is selected.

``optimize_plan`` is wired into :func:`repro.plan.lower.lower` via the
``opt=`` cache key (so optimized and raw plans never share cache
entries) and enabled by default in :mod:`repro.scl.compile`.  The fourth
piece of the optimizer — the vectorized SoA kernel backend — lives in
:mod:`repro.plan.vexec` and is switched by :attr:`OptConfig.vectorize`.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.machine.cost import AP1000, MachineSpec
from repro.plan import ir
from repro.plan.cost import plan_cost

__all__ = ["OptConfig", "optimize_plan", "optimize_plan_report",
           "topology_signature"]

#: Relative margin a candidate collective schedule must beat the tree by
#: (in predicted seconds) unless it strictly reduces messages on a spec
#: where communication costs exactly zero seconds.
_SELECT_MARGIN = 0.02


def topology_signature(topo: Any) -> tuple | None:
    """Hashable description of a topology (for the lowering cache key).

    Returns ``None`` for unknown topology classes — collective selection
    then skips its hop term rather than guessing distances.
    """
    name = type(topo).__name__
    if name in ("Hypercube", "Ring", "FullyConnected"):
        return (name, topo.size)
    if name == "Mesh2D":
        return (name, topo.rows, topo.cols, topo.torus)
    return None


def _topology_from_signature(sig: tuple):
    from repro.machine import topology as T

    name = sig[0]
    if name == "Hypercube":
        return T.Hypercube.of_size(sig[1])
    if name == "Ring":
        return T.Ring(sig[1])
    if name == "FullyConnected":
        return T.FullyConnected(sig[1])
    if name == "Mesh2D":
        return T.Mesh2D(sig[1], sig[2], torus=sig[3])
    raise ValueError(f"unknown topology signature {sig!r}")


@dataclasses.dataclass(frozen=True)
class OptConfig:
    """Per-pass switches plus the machine signature the passes price with.

    Hashable (``spec`` is a frozen dataclass, ``topo`` a plain tuple), so
    the whole config participates in the plan-cache key — a ``--no-opt``
    run can never be served an optimized cache entry, and plans optimized
    for different machines never alias.
    """

    fuse: bool = True
    coalesce: bool = True
    select_collectives: bool = True
    #: Executor-side switch: run eligible plans through the precomputed
    #: SoA data plane (:mod:`repro.plan.vexec`) instead of the
    #: per-instruction interpreter.  Not a plan transformation, but part
    #: of the config so one flag set describes the whole pipeline.
    vectorize: bool = True
    #: Cost model used by the guarded passes; ``None`` disables
    #: collective selection (no basis for pricing).
    spec: MachineSpec | None = None
    #: :func:`topology_signature` of the target interconnect.
    topo: tuple | None = None

    @classmethod
    def for_machine(cls, machine: Any, **flags: bool) -> "OptConfig":
        """The default config for a machine: all passes on, priced on its
        spec and topology."""
        return cls(spec=machine.spec,
                   topo=topology_signature(machine.topology), **flags)


@dataclasses.dataclass(frozen=True)
class PassNote:
    """One optimization decision, for ``repro plan`` diffs."""

    pass_name: str
    detail: str


def optimize_plan(plan: ir.Plan, config: OptConfig) -> ir.Plan:
    """Apply the enabled passes; returns a new (or the same) plan."""
    plan, _notes = optimize_plan_report(plan, config)
    return plan


def optimize_plan_report(plan: ir.Plan,
                         config: OptConfig) -> tuple[ir.Plan, tuple[PassNote, ...]]:
    """Like :func:`optimize_plan` but also reports what each pass did."""
    notes: list[PassNote] = []
    instrs = plan.instrs
    if config.coalesce:
        guard_spec = config.spec if config.spec is not None else AP1000
        instrs = _coalesce_seq(instrs, plan, guard_spec, notes)
    if config.fuse:
        instrs = _fuse_seq(instrs, notes)
    if config.select_collectives and config.spec is not None:
        instrs = _select_seq(instrs, plan, config, notes)
    if instrs is plan.instrs:
        return plan, tuple(notes)
    returns_scalar = bool(instrs) and isinstance(instrs[-1], ir.Collective) \
        and instrs[-1].kind == "fold"
    return (ir.Plan(tuple(instrs), plan.nprocs, plan.grid, returns_scalar),
            tuple(notes))


# ---------------------------------------------------------------- fusion

def _fuse_seq(instrs, notes: list[PassNote]):
    out: list[ir.Instr] = []
    run: list[ir.LocalApply] = []
    changed = False

    def flush():
        nonlocal changed
        if len(run) == 1:
            out.append(run[0])
        elif run:
            merged = _fuse_run(tuple(run))
            notes.append(PassNote(
                "fuse", f"merged {len(run)} local applies -> "
                        f"local {merged.label}"))
            out.append(merged)
            changed = True
        run.clear()

    for instr in instrs:
        if isinstance(instr, ir.LocalApply):
            run.append(instr)
            continue
        flush()
        out.append(_fuse_nested(instr, notes))
        if out[-1] is not instr:
            changed = True
    flush()
    return tuple(out) if changed else instrs


def _fuse_run(applies: tuple[ir.LocalApply, ...]) -> ir.LocalApply:
    # Flatten: a constituent that is itself fused contributes its parts.
    flat: list[ir.LocalApply] = []
    for a in applies:
        if isinstance(a.fn, ir.FusedKernel):
            flat.extend(a.fn.applies)
        else:
            flat.append(a)
    label = "+".join(a.label for a in flat)
    return ir.LocalApply(ir.FusedKernel(tuple(flat)),
                         indexed=any(a.indexed for a in flat),
                         label=label)


def _fuse_nested(instr: ir.Instr, notes: list[PassNote]) -> ir.Instr:
    if isinstance(instr, ir.Loop):
        bodies = tuple(_fuse_seq(body, notes) for body in instr.bodies)
        if all(b is o for b, o in zip(bodies, instr.bodies)):
            return instr
        return ir.Loop(bodies)
    if isinstance(instr, ir.SubPlan):
        plans = tuple(
            dataclasses.replace(sub, instrs=_fuse_seq(sub.instrs, notes))
            for sub in instr.plans)
        if all(s.instrs is o.instrs for s, o in zip(plans, instr.plans)):
            return instr
        return ir.SubPlan(plans)
    return instr


# ---------------------------------------------------- exchange coalescing

def _route_map(instr: ir.Instr, p: int) -> tuple[int, ...] | None:
    """``srcs[r]`` of a pure-routing instruction, or ``None``."""
    if isinstance(instr, ir.Rotate):
        return tuple((r + instr.k) % p for r in range(p))
    if isinstance(instr, ir.Exchange) and instr.mode == "replace":
        return tuple(instr.recvs[r][0] for r in range(p))
    return None


def _exchange_from_srcs(srcs: tuple[int, ...], label: str) -> ir.Exchange:
    p = len(srcs)
    sends = tuple(tuple(j for j in range(p) if srcs[j] == r and j != r)
                  for r in range(p))
    recvs = tuple((srcs[r],) for r in range(p))
    return ir.Exchange("replace", sends, recvs, label=label)


def _route_label(instr: ir.Instr) -> str:
    return (f"rot{instr.k}" if isinstance(instr, ir.Rotate)
            else instr.label)


def _cost_of(instrs, plan: ir.Plan, spec: MachineSpec) -> tuple[float, int]:
    c = plan_cost(ir.Plan(tuple(instrs), plan.nprocs, plan.grid, False),
                  spec=spec)
    return c.seconds, c.messages


def _coalesce_seq(instrs, plan: ir.Plan, spec: MachineSpec,
                  notes: list[PassNote]):
    p = plan.nprocs
    out: list[ir.Instr] = []
    changed = False
    for instr in instrs:
        nested = _coalesce_nested(instr, plan, spec, notes)
        if nested is not instr:
            changed = True
        instr = nested
        srcs = _route_map(instr, p)
        if srcs is not None and all(s == r for r, s in enumerate(srcs)):
            # identity routing: no traffic, no result change — drop it
            notes.append(PassNote(
                "coalesce", f"dropped identity {_route_label(instr)}"))
            changed = True
            continue
        if out and srcs is not None:
            prev_srcs = _route_map(out[-1], p)
            if prev_srcs is not None:
                merged = _compose_routes(out[-1], prev_srcs, instr, srcs, p,
                                         plan, spec, notes)
                if merged is not None:
                    out.pop()
                    if merged:
                        out.append(merged[0])
                    changed = True
                    continue
        out.append(instr)
    return tuple(out) if changed else instrs


def _compose_routes(a: ir.Instr, srcs_a, b: ir.Instr, srcs_b, p: int,
                    plan: ir.Plan, spec: MachineSpec,
                    notes: list[PassNote]):
    """Compose routing ``a`` then ``b`` into one round, if never costlier.

    Returns ``None`` to keep the pair, ``()`` when the composition is the
    identity (both dropped), or a 1-tuple with the merged instruction.
    """
    composed = tuple(srcs_a[srcs_b[r]] for r in range(p))
    la, lb = _route_label(a), _route_label(b)
    if all(s == r for r, s in enumerate(composed)):
        notes.append(PassNote("coalesce", f"{la} . {lb} cancels out"))
        return ()
    if isinstance(a, ir.Rotate) and isinstance(b, ir.Rotate):
        merged: ir.Instr = ir.Rotate((a.k + b.k) % p)
    else:
        merged = _exchange_from_srcs(composed, f"{la}+{lb}")
    sec_m, msg_m = _cost_of([merged], plan, spec)
    sec_ab, msg_ab = _cost_of([a, b], plan, spec)
    if sec_m > sec_ab or msg_m > msg_ab:
        return None  # composition would concentrate traffic — keep the pair
    notes.append(PassNote(
        "coalesce", f"merged {la} . {lb} into one round "
                    f"({msg_ab} -> {msg_m} msgs)"))
    return (merged,)


def _coalesce_nested(instr: ir.Instr, plan: ir.Plan, spec: MachineSpec,
                     notes: list[PassNote]) -> ir.Instr:
    if isinstance(instr, ir.Loop):
        bodies = tuple(_coalesce_seq(body, plan, spec, notes)
                       for body in instr.bodies)
        if all(b is o for b, o in zip(bodies, instr.bodies)):
            return instr
        return ir.Loop(bodies)
    if isinstance(instr, ir.SubPlan):
        plans = tuple(
            dataclasses.replace(
                sub, instrs=_coalesce_seq(sub.instrs, sub, spec, notes))
            for sub in instr.plans)
        if all(s.instrs is o.instrs for s, o in zip(plans, instr.plans)):
            return instr
        return ir.SubPlan(plans)
    return instr


# ------------------------------------------------- collective selection

#: Candidate schedules per collective kind (``"tree"`` is the default and
#: always a candidate).
_CANDIDATES = {
    "fold": ("flat",),
    "scan": ("ring",),
    "bcast": ("flat", "ring"),
    "apply_bcast": ("flat", "ring"),
}


def _extra_hops(kind: str, algo: str, n: int, topo) -> int:
    """Hops beyond the first on the schedule's critical message path."""
    if topo is None or n <= 1:
        return 0

    def h(a: int, b: int) -> int:
        return topo.hops(a % n, b % n)

    if algo == "tree":
        # doubling distances: round k spans 2^k ranks
        return sum(max(h(0, 1 << k) - 1, 0)
                   for k in range((n - 1).bit_length()))
    if algo == "ring":
        return (n - 1) * max(h(0, 1) - 1, 0)
    # flat: root talks to every member; the farthest dominates
    return max(max(h(0, r) - 1, 0) for r in range(1, n))


def _select_seq(instrs, plan: ir.Plan, config: OptConfig,
                notes: list[PassNote]):
    out: list[ir.Instr] = []
    changed = False
    for instr in instrs:
        if isinstance(instr, ir.Loop):
            bodies = tuple(_select_seq(body, plan, config, notes)
                           for body in instr.bodies)
            if not all(b is o for b, o in zip(bodies, instr.bodies)):
                instr = ir.Loop(bodies)
                changed = True
        elif isinstance(instr, ir.SubPlan):
            plans = tuple(
                dataclasses.replace(
                    sub, instrs=_select_seq(sub.instrs, sub, config, notes))
                for sub in instr.plans)
            if not all(s.instrs is o.instrs
                       for s, o in zip(plans, instr.plans)):
                instr = ir.SubPlan(plans)
                changed = True
        elif isinstance(instr, ir.Collective) and instr.algo == "tree":
            picked = _select_collective(instr, plan, config, notes)
            if picked is not instr:
                instr = picked
                changed = True
        out.append(instr)
    return tuple(out) if changed else instrs


def _select_collective(instr: ir.Collective, plan: ir.Plan,
                       config: OptConfig,
                       notes: list[PassNote]) -> ir.Collective:
    spec = config.spec
    topo = (_topology_from_signature(config.topo)
            if config.topo is not None else None)
    n = plan.nprocs

    def price(algo: str) -> tuple[float, float, int]:
        """(hop-aware seconds, plain plan-cost seconds, messages)."""
        cand = dataclasses.replace(instr, algo=algo)
        c = plan_cost(ir.Plan((cand,), n, plan.grid, False), spec=spec)
        hop_s = spec.per_hop_latency * _extra_hops(instr.kind, algo, n, topo)
        return c.seconds + hop_s, c.seconds, c.messages

    tree_s, tree_plain, tree_m = price("tree")
    best, best_s, best_m = instr, tree_s, tree_m
    for algo in _CANDIDATES.get(instr.kind, ()):
        s, plain, m = price(algo)
        # Never worse on either axis — under the hop-aware model *and*
        # under the plain plan-cost model the test-suite's "predicted
        # cost never worse" property is stated over — and strictly
        # better on one (seconds by a real margin).
        if s > tree_s or plain > tree_plain or m > tree_m:
            continue
        # Switch only for a real predicted-seconds win, or — when the
        # spec prices all communication at exactly zero seconds, so no
        # schedule can change the makespan — for fewer messages.  On a
        # seconds *tie* with nonzero comm cost the analytic model is
        # blind to pipelining (e.g. tree-scan rounds overlap where a
        # rank-order chain is serial), so a message win alone must not
        # flip the schedule.
        if not (s < tree_s * (1.0 - _SELECT_MARGIN)
                or (m < tree_m and tree_plain == 0.0 and plain == 0.0)):
            continue
        if (s, m) < (best_s, best_m):
            best = dataclasses.replace(instr, algo=algo)
            best_s, best_m = s, m
    if best is not instr:
        notes.append(PassNote(
            "select", f"coll {instr.kind}: tree -> {best.algo} "
                      f"(predicted {tree_s:.3e}s/{tree_m} msgs -> "
                      f"{best_s:.3e}s/{best_m} msgs)"))
    return best
