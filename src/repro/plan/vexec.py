"""The vectorized data plane: precomputed per-rank request scripts.

Fault-free plan execution is fully deterministic: every message's source,
tag, payload and size — and every compute charge — is a pure function of
the plan and the input values.  This module exploits that by splitting
the interpreter's two jobs:

1. **Data plane** (:func:`precompute`): walk the plan *once*, evolving
   all p ranks' values together.  Known elementwise kernels
   (:mod:`repro.plan.kernels`) run as one SoA numpy op across the ranks
   instead of p Python calls; opaque fragments fall back to the per-rank
   loop.  The walk records, per rank, the exact sequence of simulator
   requests the interpreter would have yielded — same constructors, same
   arithmetic, same order.
2. **Replay** (:func:`replay_program`): each virtual processor runs a
   trivial generator that yields its prebuilt script.  The simulator
   sees a bit-for-bit identical request stream, so makespan, message
   counts and per-processor stats match the interpreted run exactly —
   all the interpreter's per-instruction dispatch, table indexing and
   collective generator frames are gone from the hot loop.

The walk itself is split the same way — *scripting* (cost charges,
message tables, collective generators: always in-process, always
identical) versus *value evolution* (the actual fragment compute).
Passing a :class:`~repro.plan.pexec.WorkerPool` via ``pool=`` dispatches
the evolution half of eligible ``LocalApply`` steps — including each
link of a :class:`~repro.plan.ir.FusedKernel` chain — to OS worker
processes, shard-parallel; the pool declines (returns ``None``) or
crashes (:class:`~repro.errors.PoolError`, caught here, pool dropped)
and the step runs in-process instead.  Results are bit-identical either
way, so the scripted request stream never depends on where the compute
ran.

Collectives are not re-derived by hand: :func:`precompute` drives the
*actual* generators of :func:`repro.machine.plan_exec._collective` (one
per rank) with an instant-delivery message pump, so any algorithm the
interpreter can run — including the optimizer's flat/ring selections —
scripts correctly by construction.

Eligibility (:func:`precompute` returns ``None`` otherwise): flat plans
only — ``LocalApply`` / ``Rotate`` / ``Exchange`` / ``Collective`` /
``Loop``.  Group instructions keep the interpreter path (their value is
nesting, not throughput).  Callers must also skip scripting for traced
or fault-injected machines, where per-request context matters
(:func:`repro.scl.compile` gates on both).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

from repro.errors import MachineError, PoolError
from repro.machine.cost import MachineSpec, estimate_nbytes
from repro.machine.events import Compute, Recv, Send
from repro.machine.plan_exec import EXCHANGE_TAG, _collective
from repro.plan import ir
from repro.plan.kernels import batched_apply

__all__ = ["precompute", "replay_program", "supported"]

_FLAT_INSTRS = (ir.LocalApply, ir.Rotate, ir.Exchange, ir.Collective,
                ir.Loop)


def supported(plan: ir.Plan) -> bool:
    """True when every instruction (recursively) can be scripted."""
    return _seq_supported(plan.instrs)


def _seq_supported(instrs) -> bool:
    for instr in instrs:
        if not isinstance(instr, _FLAT_INSTRS):
            return False
        if isinstance(instr, ir.Loop) and \
                not all(_seq_supported(b) for b in instr.bodies):
            return False
    return True


class _SizeCache:
    """Per-precompute memo of ``estimate_nbytes`` keyed by value identity.

    ``estimate_nbytes`` already memoizes hashable tuples globally (PR 6),
    but ndarrays are unhashable, and the data plane re-sizes the *same*
    array object every time it rotates or exchanges through another rank
    — a looped ``Rotate`` sizes each payload once per iteration.  Values
    never mutate in the data plane (fragments return fresh arrays), so
    one size per object is exact.  The cache pins each value it has
    sized so ids cannot be recycled within the walk.
    """

    __slots__ = ("_word_bytes", "_sizes", "_pins")

    def __init__(self, word_bytes: int):
        self._word_bytes = word_bytes
        self._sizes: dict[int, int] = {}
        self._pins: list[Any] = []

    def nbytes(self, value: Any) -> int:
        key = id(value)
        n = self._sizes.get(key)
        if n is None:
            n = estimate_nbytes(value, self._word_bytes)
            self._sizes[key] = n
            self._pins.append(value)
        return n


class _Ctx:
    """Everything one precompute walk threads through its steps."""

    __slots__ = ("plan", "spec", "default", "scripts", "sizes", "pool")

    def __init__(self, plan, spec, default, scripts, pool):
        self.plan = plan
        self.spec = spec
        self.default = default
        self.scripts = scripts
        self.sizes = _SizeCache(spec.word_bytes)
        self.pool = pool


def precompute(plan: ir.Plan, values: Sequence[Any], spec: MachineSpec,
               default: float = ir.DEFAULT_FRAGMENT_OPS, *, pool=None):
    """Script one execution of ``plan`` over ``values``.

    Returns ``(scripts, finals)`` — per-rank request lists and final
    local values — or ``None`` when the plan contains instructions the
    scripted path does not cover.  ``pool`` (optional) is a
    :class:`~repro.plan.pexec.WorkerPool`; eligible fragment compute
    dispatches to it, everything else (and every fallback) runs
    in-process with bit-identical results.
    """
    if not supported(plan):
        return None
    p = plan.nprocs
    scripts: list[list] = [[] for _ in range(p)]
    ctx = _Ctx(plan, spec, default, scripts, pool)
    finals = _run_seq(plan.instrs, ctx, list(values))
    return scripts, finals


def replay_program(scripts: list[list], finals: list):
    """A machine program that replays rank ``env.pid``'s script."""

    def program(env):
        for req in scripts[env.pid]:
            yield req
        return finals[env.pid]

    return program


# ------------------------------------------------------------ data plane

def _run_seq(instrs, ctx, values):
    for instr in instrs:
        values = _step(instr, ctx, values)
    return values


def _step(instr, ctx, values):
    p = len(values)
    scripts = ctx.scripts
    flop_time = ctx.spec.flop_time

    if isinstance(instr, ir.LocalApply):
        # charge first (matching the interpreter's clock order), apply SoA
        if isinstance(instr.fn, ir.FusedKernel):
            ops = [0.0] * p
            for a in instr.fn.applies:
                for r in range(p):
                    ops[r] += ir.fragment_ops(a.fn, values[r], ctx.default)
                values = _evolve_local(a, ctx, values)
            for r in range(p):
                scripts[r].append(Compute(float(ops[r]) * flop_time))
            return values
        for r in range(p):
            scripts[r].append(Compute(
                float(ir.fragment_ops(instr.fn, values[r], ctx.default))
                * flop_time))
        return _evolve_local(instr, ctx, values)

    if isinstance(instr, ir.Rotate):
        k = instr.k
        sizes = ctx.sizes
        for r in range(p):
            scripts[r].append(Send(
                (r - k) % p, values[r], EXCHANGE_TAG,
                sizes.nbytes(values[r])))
            scripts[r].append(Recv((r + k) % p, EXCHANGE_TAG, None))
        return [values[(r + k) % p] for r in range(p)]

    if isinstance(instr, ir.Exchange):
        sizes = ctx.sizes
        out = []
        for r in range(p):
            if instr.sends[r]:
                nbytes = sizes.nbytes(values[r])
                for dst in instr.sends[r]:
                    scripts[r].append(Send(dst, values[r], EXCHANGE_TAG,
                                           nbytes))
            if instr.mode == "collect":
                arrivals = []
                for src in instr.recvs[r]:
                    if src == r:
                        arrivals.append(values[r])
                    else:
                        scripts[r].append(Recv(src, EXCHANGE_TAG, None))
                        arrivals.append(values[src])
                out.append(arrivals)
                continue
            (src,) = instr.recvs[r]
            if src == r:
                fetched = values[r]
            else:
                scripts[r].append(Recv(src, EXCHANGE_TAG, None))
                fetched = values[src]
            out.append((values[r], fetched) if instr.mode == "pair"
                       else fetched)
        return out

    if isinstance(instr, ir.Collective):
        return _script_collective(instr, values, ctx.spec, ctx.default,
                                  scripts)

    if isinstance(instr, ir.Loop):
        for body in instr.bodies:
            values = _run_seq(body, ctx, values)
        return values

    raise AssertionError(f"unscriptable plan instruction {instr!r}")


def _evolve_local(a: ir.LocalApply, ctx, values):
    """Value evolution for one (possibly fused-constituent) apply.

    Pool dispatch first when one is attached; any decline runs the
    in-process path, and a crashed pool is dropped for the rest of the
    walk — the results are bit-identical by the pool's contract, so the
    scripts never see the difference.
    """
    pool = ctx.pool
    if pool is not None:
        grid = ctx.plan.grid
        cols = grid[1] if (a.indexed and grid is not None) else None
        try:
            out = pool.apply_local(a.fn, values, indexed=a.indexed,
                                   grid_cols=cols, farm_env=a.farm_env)
        except PoolError:
            ctx.pool = None
            out = None
        if out is not None:
            return out
    return _apply_one(a, ctx.plan, values)


def _apply_one(a: ir.LocalApply, plan, values):
    if a.indexed:
        if plan.grid is not None:
            cols = plan.grid[1]
            return [a.fn(divmod(r, cols), v) for r, v in enumerate(values)]
        return [a.fn(r, v) for r, v in enumerate(values)]
    if a.farm_env is not ir.NO_ENV:
        return [a.fn(a.farm_env, v) for v in values]
    return batched_apply(a.fn, values)


# ----------------------------------------------------------- collectives

class _ScriptComm:
    """Rank-addressed request factory (world group: rank == pid)."""

    __slots__ = ("rank", "size")

    def __init__(self, rank: int, size: int):
        self.rank = rank
        self.size = size

    def send(self, dst_rank: int, payload: Any, *, tag: int = 0,
             nbytes: int | None = None) -> Send:
        return Send(dst_rank, payload, tag, nbytes)

    def recv(self, src_rank: int, *, tag: int = 0,
             timeout: float | None = None) -> Recv:
        return Recv(src_rank, tag, timeout)


class _ScriptEnv:
    """The slice of :class:`ProcEnv` collective generators touch."""

    __slots__ = ("_flop_time",)

    def __init__(self, flop_time: float):
        self._flop_time = flop_time

    def work(self, ops: float) -> Compute:
        ops = float(ops)
        if ops < 0:
            raise MachineError(f"ops must be non-negative, got {ops}")
        return Compute(ops * self._flop_time)


class _Arrival:
    """What a scripted generator's ``yield Recv`` resumes with."""

    __slots__ = ("payload", "nbytes")

    def __init__(self, payload: Any, nbytes: int | None):
        self.payload = payload
        self.nbytes = nbytes


def _script_collective(instr, values, spec, default, scripts):
    """Drive the interpreter's own collective generators, one per rank,
    with instant in-order delivery — recording every request."""
    p = len(values)
    env = _ScriptEnv(spec.flop_time)
    gens = [_collective(instr, env, _ScriptComm(r, p), values[r], default)
            for r in range(p)]
    results: list[Any] = [None] * p
    done = [False] * p
    pending: list[Recv | None] = [None] * p
    started = [False] * p
    queues: dict[tuple[int, int, int], deque] = {}
    remaining = p
    while remaining:
        progressed = False
        for r in range(p):
            if done[r]:
                continue
            if started[r]:
                req = pending[r]
                if req is None:
                    continue
                q = queues.get((req.src, r, req.tag))
                if not q:
                    continue
                resume: Any = q.popleft()
                pending[r] = None
            else:
                resume = None
                started[r] = True
            progressed = True
            while True:
                try:
                    req = gens[r].send(resume)
                except StopIteration as stop:
                    results[r] = stop.value
                    done[r] = True
                    remaining -= 1
                    break
                resume = None
                scripts[r].append(req)
                if type(req) is Send:
                    queues.setdefault((r, req.dst, req.tag), deque()) \
                        .append(_Arrival(req.payload, req.nbytes))
                elif type(req) is Recv:
                    q = queues.get((req.src, r, req.tag))
                    if q:
                        resume = q.popleft()
                    else:
                        pending[r] = req
                        break
        if remaining and not progressed:
            raise MachineError(
                f"collective {instr.kind}/{instr.algo} deadlocked while "
                f"scripting — unmatched receives")
    return results
