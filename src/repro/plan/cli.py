"""``python -m repro plan`` — dump lowered plans with their costs.

The inspection window onto the Plan IR: lower one of the compiled example
applications, print the instruction listing
(:func:`repro.scl.plan_pretty.pretty_plan`), then price the **same plan
object** two ways —

* *predicted*: the optimizer's model (:func:`repro.plan.cost.plan_cost`)
  walking the instruction stream, per instruction and in total,
* *simulated*: the machine executing the plan on real data
  (:func:`repro.scl.compile.run_expression`), whose makespan and message
  count land in the final table row.

Because prediction and simulation consume the identical program, the two
columns are directly comparable — the gap *is* the model error, not a
compilation difference.

Since PR 5 the dump reflects the plan *optimizer* (:mod:`repro.plan.opt`):
the listing, prediction and simulation all use the same optimization
setting, so the three stay comparable.  ``--no-opt`` shows the raw
lowering; ``--diff`` prints the unoptimised listing, the pass notes
(which rule fired where), and the optimised listing side by side.

``--search`` switches to the cost-driven rewrite search
(:func:`repro.tune.tune_expression`): instead of dumping one plan it
prints the explored frontier — each candidate's rule provenance next to
its pipeline-predicted cost — and, for hyperquicksort, runs both the
searched winner and the greedy fixpoint on a single-port machine so the
final table shows predicted *and* simulated cost per strategy plus
``speedup_vs_greedy``.  The hyperquicksort search uses
:func:`repro.tune.tuned_sort_pipeline` (the sort plus a naive epilogue
whose fetch fusion is a trap for the greedy optimizer) and defaults to
``--dim 5``; ``--beam`` sets the beam width and ``--out`` writes the
frontier as a JSON artifact (schema ``repro.tune.frontier/v1``).

::

    python -m repro plan hyperquicksort            # d=3 rounds, 4096 keys
    python -m repro plan hyperquicksort --dim 5
    python -m repro plan gauss-jordan -n 24 --procs 6
    python -m repro plan hyperquicksort --tables   # full send/recv tables
    python -m repro plan hyperquicksort --diff     # before/after the passes
    python -m repro plan hyperquicksort --no-opt   # raw lowering only
    python -m repro plan hyperquicksort --search --beam 4   # rewrite search
    python -m repro plan hyperquicksort --parallel --workers 4  # pexec pool
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.machine import AP1000, MODERN_CLUSTER, PERFECT
from repro.plan import ir
from repro.plan.cost import plan_cost
from repro.plan.lower import lower, plan_cache_stats
from repro.plan.opt import OptConfig, optimize_plan_report
from repro.util.tables import render_table

__all__ = ["main"]

_SPECS = {"ap1000": AP1000, "modern": MODERN_CLUSTER, "perfect": PERFECT}


def _cost_rows(plan: ir.Plan, spec, fn_ops: float, element_bytes: int | None):
    """Predicted cost per top-level instruction plus the predicted total."""
    rows = []
    total = plan_cost(plan, spec=spec, fn_ops=fn_ops,
                      element_bytes=element_bytes)
    for i, instr in enumerate(plan.instrs):
        one = plan_cost(ir.Plan((instr,), plan.nprocs, plan.grid, False),
                        spec=spec, fn_ops=fn_ops, element_bytes=element_bytes)
        rows.append([f"[{i:>2}] {ir.instr_title(instr)}",
                     f"{one.seconds:.3e}", one.messages, one.barriers])
        if isinstance(instr, ir.Loop):
            for it, body in enumerate(instr.bodies):
                c = plan_cost(ir.Plan(tuple(body), plan.nprocs, plan.grid,
                                      False),
                              spec=spec, fn_ops=fn_ops,
                              element_bytes=element_bytes)
                rows.append([f"      iter {it}", f"{c.seconds:.3e}",
                             c.messages, c.barriers])
    rows.append(["predicted total", f"{total.seconds:.3e}",
                 total.messages, total.barriers])
    return rows, total


def _run_hyperquicksort(args):
    from repro.apps.sort import hyperquicksort_expression, seq_quicksort
    from repro.core import parmap, partition
    from repro.core.partition import Block
    from repro.machine import Hypercube, Machine
    from repro.scl.compile import run_expression

    d = args.dim
    p = 1 << d
    expr = hyperquicksort_expression(d)
    plan = lower(expr, p, opt=args.opt_cfg)
    rng = np.random.default_rng(args.seed)
    values = rng.integers(0, 2**31, size=args.n).astype(np.int32)
    blocks = parmap(seq_quicksort, partition(Block(p), values))
    out, res = run_expression(expr, blocks,
                              Machine(Hypercube(d), spec=args.spec),
                              opt=args.opt_cfg, parallel=args.parallel,
                              workers=args.workers)
    merged = np.concatenate([np.asarray(b) for b in out])
    assert np.array_equal(merged, np.sort(values)), "compiled sort incorrect"
    title = (f"hyperquicksort expression, d={d} (p={p}), "
             f"{args.n} keys, {args.spec.name}")
    eb = int(np.ceil(args.n / p)) * 4  # one block of int32 keys on the wire
    return expr, plan, res, title, eb


def _run_gauss_jordan(args):
    from repro.apps.linalg import gauss_jordan_compiled

    n, p = args.n, args.procs
    rng = np.random.default_rng(args.seed)
    A = rng.normal(size=(n, n)) + n * np.eye(n)
    b = rng.normal(size=n)
    x, res = gauss_jordan_compiled(A, b, p, spec=args.spec, opt=args.opt_cfg,
                                   parallel=args.parallel,
                                   workers=args.workers)
    assert np.allclose(A @ x, b), "compiled solve incorrect"
    from repro.apps.linalg import gauss_jordan_expression

    aug_shape = (n, n + 1)
    expr = gauss_jordan_expression(n, p, aug_shape)
    plan = lower(expr, p, opt=args.opt_cfg)
    title = f"gauss-jordan expression, n={n}, p={p}, {args.spec.name}"
    eb = n * int(np.ceil((n + 1) / p)) * 8  # one float64 column block
    return expr, plan, res, title, eb


_APPS = {
    "hyperquicksort": _run_hyperquicksort,
    "gauss-jordan": _run_gauss_jordan,
}

FRONTIER_SCHEMA = "repro.tune.frontier/v1"


def _rule_summary(rules) -> str:
    """Compress a rule chain: ``('a','a','b') -> 'a x2, b'``."""
    if not rules:
        return "(original)"
    counts: dict[str, int] = {}
    for name in rules:
        counts[name] = counts.get(name, 0) + 1
    return ", ".join(f"{name} x{c}" if c > 1 else name
                     for name, c in counts.items())


def _search_main(args) -> int:
    """``--search``: print the explored frontier, then (hyperquicksort)
    run searched winner and greedy fixpoint for simulated columns."""
    import json

    from repro.machine import Hypercube, Machine
    from repro.tune import tune_expression, tuned_sort_pipeline

    if args.app == "hyperquicksort":
        d, p = args.dim, 1 << args.dim
        expr = tuned_sort_pipeline(d)
        topo = Hypercube(d)
        title = (f"rewrite search: tuned_sort_pipeline d={d} (p={p}), "
                 f"beam={args.beam}, {args.spec.name}")
    else:
        from repro.apps.linalg import gauss_jordan_expression

        n, p = args.n, args.procs
        expr = gauss_jordan_expression(n, p, (n, n + 1))
        topo = None
        title = (f"rewrite search: gauss-jordan n={n}, p={p}, "
                 f"beam={args.beam}, {args.spec.name}")

    res = tune_expression(expr, nprocs=p, spec=args.spec, topo=topo,
                          beam=args.beam, fn_ops=args.fn_ops)
    print(title)
    print("=" * len(title))
    print()
    print(f"explored {res.explored} candidates in {res.rounds} rounds "
          f"(beam {res.beam}); winner applied {len(res.best.steps)} "
          f"rewrites, predicted speedup {res.predicted_speedup:.3f}x")
    print()
    rows = []
    for i, c in enumerate(res.frontier):
        tag = ("original" if c is res.original
               else "winner" if c is res.best else "")
        rows.append([i, tag, _rule_summary(c.rules),
                     f"{c.cost.seconds:.3e}", c.cost.messages,
                     c.cost.barriers, c.size])
    print(render_table(
        "explored frontier (pipeline-predicted cost, best first)",
        ["#", "", "rules applied", "pred seconds", "msgs", "barriers",
         "size"], rows,
        notes="Every candidate scored by lower -> plan.opt -> plan_cost; "
              "ties broken toward the smaller expression."))

    simulated = None
    if args.app == "hyperquicksort":
        from repro.apps.sort import seq_quicksort
        from repro.core import Block, parmap, partition
        from repro.scl.compile import run_expression
        from repro.scl.optimize import optimize

        rng = np.random.default_rng(args.seed)
        values = rng.integers(0, 2**31, size=args.n).astype(np.int32)
        blocks = parmap(seq_quicksort, partition(Block(p), values))
        winner_expr = res.best.expr if res.improved else expr
        greedy = optimize(expr, n=p, spec=args.spec, strategy="greedy")
        out_s, sim_s = run_expression(
            winner_expr, blocks,
            Machine(Hypercube(args.dim), spec=args.spec, single_port=True),
            opt="auto")
        out_g, sim_g = run_expression(
            greedy.optimized, blocks,
            Machine(Hypercube(args.dim), spec=args.spec, single_port=True),
            opt="auto")
        identical = all(np.array_equal(np.asarray(a), np.asarray(b))
                        for a, b in zip(list(out_s), list(out_g)))
        speedup = sim_g.makespan / sim_s.makespan
        greedy_rules = tuple(s.rule for s in greedy.steps)
        print()
        print(render_table(
            "searched winner vs greedy fixpoint "
            "(single-port hypercube run)",
            ["strategy", "pred seconds", "sim makespan", "sim msgs",
             "rules"],
            [["search", f"{res.best.cost.seconds:.3e}",
              f"{sim_s.makespan:.3e}", sim_s.total_messages,
              _rule_summary(res.best.rules)],
             ["greedy", f"{greedy.cost_after.seconds:.3e}",
              f"{sim_g.makespan:.3e}", sim_g.total_messages,
              _rule_summary(greedy_rules)]],
            notes=f"speedup_vs_greedy = {speedup:.3f}x; outputs identical: "
                  f"{'yes' if identical else 'NO'}"))
        if not identical:
            print("error: searched and greedy outputs differ",
                  file=sys.stderr)
            return 1
        simulated = {
            "search": {"makespan": sim_s.makespan,
                       "messages": sim_s.total_messages,
                       "rules": list(res.best.rules)},
            "greedy": {"makespan": sim_g.makespan,
                       "messages": sim_g.total_messages,
                       "rules": list(greedy_rules)},
            "speedup_vs_greedy": speedup,
            "outputs_identical": identical,
        }

    if args.out:
        artifact = {
            "schema": FRONTIER_SCHEMA,
            "generated_by": "python -m repro plan --search",
            "app": args.app,
            "spec": args.spec.name,
            "nprocs": p,
            "beam": res.beam,
            "explored": res.explored,
            "rounds": res.rounds,
            "predicted_speedup": res.predicted_speedup,
            "frontier": [{
                "rules": list(c.rules),
                "predicted_seconds": c.cost.seconds,
                "messages": c.cost.messages,
                "barriers": c.cost.barriers,
                "size": c.size,
                "depth": c.depth,
                "is_winner": c is res.best,
                "is_original": c is res.original,
            } for c in res.frontier],
            "simulated": simulated,
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro plan",
        description="Lower a compiled example app to the Plan IR and dump "
                    "the program with predicted vs simulated cost.")
    parser.add_argument("app", choices=sorted(_APPS))
    parser.add_argument("-n", type=int, default=None,
                        help="workload size (keys to sort / matrix order; "
                             "defaults: 4096 keys, n=24 system)")
    parser.add_argument("--dim", type=int, default=None,
                        help="hypercube dimension for hyperquicksort "
                             "(p=2^dim; default 3, or 5 with --search)")
    parser.add_argument("--procs", type=int, default=6,
                        help="processor count for gauss-jordan")
    parser.add_argument("--seed", type=int, default=19950701)
    parser.add_argument("--spec", choices=sorted(_SPECS), default="ap1000",
                        help="machine cost model")
    parser.add_argument("--fn-ops", type=float, default=50.0,
                        help="assumed ops per opaque function application "
                             "in the predicted column")
    parser.add_argument("--tables", action="store_true",
                        help="print full per-rank send/recv tables")
    parser.add_argument("--parallel", action="store_true",
                        help="dispatch fragment compute to the host-parallel "
                             "worker pool (repro.plan.pexec); virtual "
                             "results and costs are unchanged")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="pool width for --parallel (default: host "
                             "CPU count)")
    opt_group = parser.add_mutually_exclusive_group()
    opt_group.add_argument("--opt", dest="opt", action="store_true",
                           default=True,
                           help="run the plan optimizer passes (default)")
    opt_group.add_argument("--no-opt", dest="opt", action="store_false",
                           help="dump the raw lowering, passes disabled")
    parser.add_argument("--diff", action="store_true",
                        help="print the unoptimised listing, the pass notes, "
                             "and the optimised listing")
    parser.add_argument("--search", action="store_true",
                        help="run the cost-driven rewrite search and print "
                             "the explored frontier (predicted vs simulated, "
                             "rule provenance) instead of one plan dump")
    parser.add_argument("--beam", type=int, default=4,
                        help="beam width for --search (default 4)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="with --search: write the frontier as a JSON "
                             "artifact (schema repro.tune.frontier/v1)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    args.spec = _SPECS[args.spec]
    if args.dim is None:
        args.dim = 5 if args.search else 3
    if args.n is None:
        args.n = 4096 if args.app == "hyperquicksort" else 24
    if args.app == "hyperquicksort" and not (1 <= args.dim <= 10):
        print("error: --dim must be between 1 and 10", file=sys.stderr)
        return 2
    if args.search and args.app == "hyperquicksort" and (1 << args.dim) % 16:
        print("error: --search needs 16 | 2^dim (--dim >= 4): the tuned "
              "pipeline groups ranks into blocks of 16", file=sys.stderr)
        return 2
    args.opt_cfg = OptConfig(spec=args.spec) if args.opt else None
    if args.search:
        return _search_main(args)

    from repro.scl.plan_pretty import pretty_plan

    expr, plan, res, title, eb = _APPS[args.app](args)
    print(title + ("" if args.opt else "  [passes disabled]"))
    print("=" * len(title))
    print()
    if args.diff:
        raw = lower(expr, plan.nprocs, plan.grid)
        opt_plan, notes = optimize_plan_report(
            raw, args.opt_cfg or OptConfig(spec=args.spec))
        print("--- unoptimised plan " + "-" * 30)
        print(pretty_plan(raw, tables=args.tables))
        print()
        print("--- optimizer passes " + "-" * 30)
        if notes:
            for note in notes:
                print(f"[{note.pass_name}] {note.detail}")
        else:
            print("(no pass fired)")
        print()
        print("--- optimised plan " + "-" * 32)
        print(pretty_plan(opt_plan, tables=args.tables))
    else:
        print(pretty_plan(plan, tables=args.tables))
    print()
    rows, _total = _cost_rows(plan, args.spec, args.fn_ops, eb)
    rows.append(["simulated run", f"{res.makespan:.3e}",
                 res.total_messages, "-"])
    print(render_table(
        "predicted (plan cost model) vs simulated (machine run)"
        + ("" if args.opt else " — passes disabled"),
        ["instruction", "seconds", "messages", "barriers"], rows,
        notes="Predicted rows price the plan structurally "
              f"(fn_ops={args.fn_ops:g}, element_bytes={eb}); the simulated "
              "row is the same plan executed on real data."))
    stats = plan_cache_stats()
    print(f"plan cache: size={stats['size']} hits={stats['hits']} "
          f"misses={stats['misses']} uncachable={stats['uncachable']} "
          f"optimized={stats['optimized']}")
    if args.parallel:
        from repro.plan import pexec

        pool = pexec.get_pool(args.workers)
        shm = pool.stats["tasks_shm"]
        pick = pool.stats["tasks_pickle"]
        fb = sum(pool.stats["fallbacks"].values())
        print(f"worker pool: {pool!r} dispatches="
              f"{pool.stats['dispatches']} tasks(shm/pickle)={shm}/{pick} "
              f"fallbacks={fb}")
        pexec.shutdown_pool()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
