"""Lowering: SCL skeleton expressions → :class:`~repro.plan.ir.Plan`.

This is the front half of the SCL compiler (the back half is the plan
interpreter, :mod:`repro.machine.plan_exec`).  Lowering happens *once* per
``(expression, nprocs, grid)`` — every index function is evaluated over
the whole index space here (index functions are pure), producing the
static per-rank send/receive tables of :class:`~repro.plan.ir.Exchange` —
and the resulting plan is cached, so repeated runs (the perf harness,
chaos sweeps, an ``iterFor`` driver re-running an expression) skip both
the tree-walk and the table construction entirely.

Shape errors are raised at lowering time with the same messages the
tree-walking compiler raised during execution: applying a flat skeleton
to a split configuration, ``combine`` without ``split``, grid skeletons
on 1-D configurations (and vice versa), non-permutation ``send`` maps and
out-of-range ``fetch`` sources are all static properties of the
expression, so the plan either lowers completely or fails before any
virtual processor starts.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict

from repro.errors import SkeletonError
from repro.plan import ir
from repro.scl import nodes as N

__all__ = ["lower", "lower_uncached", "tuned_lower", "TunedPlan",
           "clear_plan_cache", "plan_cache_reset", "plan_cache_stats"]

_CACHE: OrderedDict[tuple, ir.Plan] = OrderedDict()
_CACHE_CAP = 512
#: Tuned tier: memoised :func:`repro.tune.tune_expression` winners.  Far
#: smaller than the plan cache because each entry fronts an entire beam
#: search (hundreds of candidate lowerings), not one lowering.
_TUNED: OrderedDict[tuple, "TunedPlan"] = OrderedDict()
_TUNED_CAP = 128
_STATS = {"hits": 0, "misses": 0, "uncachable": 0, "optimized": 0,
          "tuned_hits": 0, "tuned_misses": 0}


def lower(expr: N.Node, nprocs: int,
          grid: tuple[int, int] | None = None,
          opt=None) -> ir.Plan:
    """Lower ``expr`` for ``nprocs`` ranks (row-major over ``grid`` if 2-D).

    ``opt`` is an :class:`~repro.plan.opt.OptConfig` to run the plan
    optimizer's passes over the lowered program, or ``None`` for the raw
    plan.  Cached per ``(expr, nprocs, grid, opt)`` — the config is part
    of the key, so a ``--no-opt`` run is never served an optimized entry
    (and vice versa), and plans optimized for different machine specs
    never alias.  Expressions whose nodes are not hashable (e.g. a
    ``Brdcast`` of a numpy array) are lowered fresh each time.
    """
    key = (expr, nprocs, grid, opt)
    try:
        cached = _CACHE.get(key)
    except TypeError:
        _STATS["uncachable"] += 1
        plan = _lower(expr, nprocs, grid)
        return plan if opt is None else _optimize(plan, opt)
    if cached is not None:
        _STATS["hits"] += 1
        _CACHE.move_to_end(key)
        return cached
    _STATS["misses"] += 1
    if opt is None:
        plan = _lower(expr, nprocs, grid)
    else:
        # build on the raw plan's cache entry, then run the passes once
        plan = _optimize(lower(expr, nprocs, grid), opt)
        _STATS["optimized"] += 1
    _CACHE[key] = plan
    while len(_CACHE) > _CACHE_CAP:
        _CACHE.popitem(last=False)
    return plan


def _optimize(plan: ir.Plan, opt) -> ir.Plan:
    from repro.plan.opt import optimize_plan

    return optimize_plan(plan, opt)


def lower_uncached(expr: N.Node, nprocs: int,
                   grid: tuple[int, int] | None = None,
                   opt=None) -> ir.Plan:
    """Like :func:`lower` but without touching the cache or its counters.

    For callers that lower *throwaway* expressions — the beam search
    scores hundreds of candidates that will never be lowered again, and
    routing them through the LRU would evict genuinely hot plans and
    drown the hit-rate metric the service reports.  (Nested
    ``map``-of-sub-expression lowerings still share the cache: group
    sub-plans recur across candidates.)
    """
    plan = _lower(expr, nprocs, grid)
    return plan if opt is None else _optimize(plan, opt)


@dataclasses.dataclass(frozen=True)
class TunedPlan:
    """A beam-searched expression and its lowered plan (tuned-cache value)."""

    #: The searched winner (``original`` when search found no improvement).
    expr: N.Node
    #: ``expr`` lowered under the search's :class:`~repro.plan.opt.OptConfig`.
    plan: ir.Plan
    #: Rule provenance from the original expression to the winner.
    steps: tuple
    #: Pipeline-predicted :class:`~repro.plan.cost.ExprCost` of the
    #: original expression and of the winner.
    cost_before: object
    cost_after: object
    #: Candidates the search scored to find this plan — what a cache hit
    #: on this entry avoids re-lowering.
    explored: int

    @property
    def improved(self) -> bool:
        return bool(self.steps)


def tuned_lower(expr: N.Node, nprocs: int,
                grid: tuple[int, int] | None = None,
                opt=None, *, beam: int = 4, fn_ops: float = 1.0,
                element_bytes: int | None = None) -> TunedPlan:
    """Beam-search ``expr``'s rewrite space and lower the winner — cached.

    The tuned tier sits above the plan cache: a hit returns the searched
    winner's plan without re-running :func:`repro.tune.tune_expression`
    (whose candidate scoring is hundreds of lowerings — too many distinct
    expressions for the plan cache's LRU to retain).  Keyed by
    ``(expr, nprocs, grid, opt, beam, fn_ops, element_bytes)``; ``opt``
    is the :class:`~repro.plan.opt.OptConfig` candidates are lowered and
    priced with, so the machine spec and topology signature are part of
    the key — a plan tuned for a single-port hypercube is never served
    to a ring.
    """
    from repro.plan.opt import OptConfig

    if opt is None:
        opt = OptConfig()
    key = (expr, nprocs, grid, opt, beam, fn_ops, element_bytes)
    try:
        cached = _TUNED.get(key)
    except TypeError:
        _STATS["uncachable"] += 1
        return _tune_and_lower(expr, nprocs, grid, opt, beam=beam,
                               fn_ops=fn_ops, element_bytes=element_bytes)
    if cached is not None:
        _STATS["tuned_hits"] += 1
        _TUNED.move_to_end(key)
        return cached
    _STATS["tuned_misses"] += 1
    tuned = _tune_and_lower(expr, nprocs, grid, opt, beam=beam,
                            fn_ops=fn_ops, element_bytes=element_bytes)
    _TUNED[key] = tuned
    while len(_TUNED) > _TUNED_CAP:
        _TUNED.popitem(last=False)
    return tuned


def _tune_and_lower(expr: N.Node, nprocs: int, grid, opt, *,
                    beam: int, fn_ops: float,
                    element_bytes: int | None) -> TunedPlan:
    from repro.machine.cost import PERFECT
    from repro.tune import tune_expression

    spec = opt.spec if opt.spec is not None else PERFECT
    res = tune_expression(expr, nprocs=nprocs, grid=grid, spec=spec,
                          topo=opt.topo, opt=opt, beam=beam,
                          fn_ops=fn_ops, element_bytes=element_bytes)
    winner = res.best if res.improved else res.original
    plan = lower(winner.expr, nprocs, grid, opt=opt)
    return TunedPlan(winner.expr, plan, winner.steps,
                     res.original.cost, winner.cost, res.explored)


def clear_plan_cache() -> None:
    """Drop all cached plans — both tiers — and reset the counters."""
    _CACHE.clear()
    _TUNED.clear()
    _STATS.update(hits=0, misses=0, uncachable=0, optimized=0,
                  tuned_hits=0, tuned_misses=0)


def plan_cache_reset() -> None:
    """Zero the traffic counters but *keep* the cached plans.

    The test helper for counter-delta assertions: a test that wants
    "this run produced N hits" can reset and count from zero without
    discarding warm plans another test (or an earlier phase of the same
    test) paid to build.  :func:`clear_plan_cache` remains the full
    reset for tests that need cold-cache behaviour.
    """
    _STATS.update(hits=0, misses=0, uncachable=0, optimized=0,
                  tuned_hits=0, tuned_misses=0)


def plan_cache_stats() -> dict[str, int]:
    """Cache metrics: ``{"size", "hits", "misses", "uncachable",
    "optimized", "tuned_size", "tuned_hits", "tuned_misses"}`` —
    ``optimized`` counts cache misses that ran the optimizer pipeline
    (raw lowerings they built on count separately); the ``tuned_*``
    counters track :func:`tuned_lower`'s search-result tier."""
    return {"size": len(_CACHE), "tuned_size": len(_TUNED), **_STATS}


def _lower(expr: N.Node, nprocs: int,
           grid: tuple[int, int] | None) -> ir.Plan:
    out: list[ir.Instr] = []
    _emit(expr, nprocs, grid, out, [])
    returns_scalar = bool(out) and isinstance(out[-1], ir.Collective) \
        and out[-1].kind == "fold"
    return ir.Plan(tuple(out), nprocs, grid, returns_scalar)


def _emit(node: N.Node, p: int, grid: tuple[int, int] | None,
          out: list[ir.Instr],
          splits: list[ir.GroupSplit]) -> None:
    """Append the instructions of ``node`` to ``out``.

    ``splits`` is the static stack of open ``split``s — the lowering-time
    image of the tree-walker's ``_Grouped`` value wrapper, used to resolve
    nesting errors and to find the group shapes a ``map`` of a
    sub-expression runs over.
    """
    if isinstance(node, N.Id):
        return

    if isinstance(node, N.Compose):
        for step in reversed(node.steps):
            _emit(step, p, grid, out, splits)
        return

    if isinstance(node, N.Map):
        if isinstance(node.f, N.Node):
            if not splits:
                raise SkeletonError(
                    "map of a sub-expression requires a split (nested) "
                    "configuration — compile `... . split P` first")
            top = splits[-1]
            plans = tuple(lower(node.f, len(members), None)
                          for members in top.groups)
            out.append(ir.SubPlan(plans))
            return
        _no_groups(splits, "map of a base fragment")
        out.append(ir.LocalApply(node.f, label="map"))
        return

    if isinstance(node, N.IMap):
        _no_groups(splits, "imap")
        out.append(ir.LocalApply(node.f, indexed=True, label="imap"))
        return

    if isinstance(node, N.Farm):
        _no_groups(splits, "farm")
        out.append(ir.LocalApply(node.f, farm_env=node.env, label="farm"))
        return

    if isinstance(node, N.RotateRow):
        _require_grid(grid, "rotate_row")
        rows, cols = grid
        sends, recvs = [], []
        for r in range(p):
            i, j = divmod(r, cols)
            k = node.df(i) % cols
            if k == 0:
                sends.append(())
                recvs.append((r,))
            else:
                sends.append((i * cols + (j - k) % cols,))
                recvs.append((i * cols + (j + k) % cols,))
        out.append(ir.Exchange("replace", tuple(sends), tuple(recvs),
                               label="rotate_row"))
        return

    if isinstance(node, N.RotateCol):
        _require_grid(grid, "rotate_col")
        rows, cols = grid
        sends, recvs = [], []
        for r in range(p):
            i, j = divmod(r, cols)
            k = node.df(j) % rows
            if k == 0:
                sends.append(())
                recvs.append((r,))
            else:
                sends.append((((i - k) % rows) * cols + j,))
                recvs.append((((i + k) % rows) * cols + j,))
        out.append(ir.Exchange("replace", tuple(sends), tuple(recvs),
                               label="rotate_col"))
        return

    if isinstance(node, N.Fold):
        out.append(ir.Collective("fold", op=node.op, label="fold"))
        return

    if isinstance(node, N.Scan):
        _no_grid(grid, "scan")
        out.append(ir.Collective("scan", op=node.op, label="scan"))
        return

    if isinstance(node, N.Rotate):
        _no_grid(grid, "rotate")
        k = node.k % p
        if k != 0:
            out.append(ir.Rotate(k))
        return

    if isinstance(node, N.Fetch):
        _no_grid(grid, "fetch")
        srcs = []
        for r in range(p):
            src = node.f(r)
            if not (0 <= src < p):
                raise SkeletonError(
                    f"fetch: source {src} out of range 0..{p - 1}")
            srcs.append(src)
        sends = tuple(tuple(j for j in range(p) if srcs[j] == r and j != r)
                      for r in range(p))
        recvs = tuple((srcs[r],) for r in range(p))
        out.append(ir.Exchange("replace", sends, recvs, label="fetch"))
        return

    if isinstance(node, N.AlignFetch):
        _no_grid(grid, "align-fetch")
        srcs = []
        for r in range(p):
            src = node.f(r)
            if not (0 <= src < p):
                raise SkeletonError(
                    f"align-fetch: source {src} out of range 0..{p - 1}")
            srcs.append(src)
        sends = tuple(tuple(j for j in range(p) if srcs[j] == r and j != r)
                      for r in range(p))
        recvs = tuple((srcs[r],) for r in range(p))
        out.append(ir.Exchange("pair", sends, recvs, label="align-fetch"))
        return

    if isinstance(node, N.PermSend):
        _no_grid(grid, "send")
        dsts = []
        for r in range(p):
            dst = node.f(r)
            if not (0 <= dst < p):
                raise SkeletonError(
                    f"send: destination {dst} out of range 0..{p - 1}")
            dsts.append(dst)
        for r in range(p):
            sources = [k for k in range(p) if dsts[k] == r]
            if len(sources) != 1:
                raise SkeletonError(
                    f"send: index {r} receives {len(sources)} elements — "
                    f"the index map is not a permutation")
        sends = tuple((dsts[r],) if dsts[r] != r else () for r in range(p))
        recvs = tuple(tuple(k for k in range(p) if dsts[k] == r)
                      for r in range(p))
        out.append(ir.Exchange("replace", sends, recvs, label="send"))
        return

    if isinstance(node, N.SendNode):
        _no_grid(grid, "send")
        dst_lists = []
        for r in range(p):
            dsts = tuple(node.f(r))
            for dst in dsts:
                if not (0 <= dst < p):
                    raise SkeletonError(
                        f"send: destination {dst} out of range 0..{p - 1}")
            dst_lists.append(dsts)
        sends = tuple(tuple(d for d in dst_lists[r] if d != r)
                      for r in range(p))
        recvs = tuple(tuple(k for k in range(p) for d in dst_lists[k]
                            if d == r)
                      for r in range(p))
        out.append(ir.Exchange("collect", sends, recvs, label="send*"))
        return

    if isinstance(node, N.Brdcast):
        out.append(ir.Collective("bcast", value=node.a, label="brdcast"))
        return

    if isinstance(node, N.ApplyBrdcast):
        if grid is not None and isinstance(node.i, tuple):
            root = node.i[0] * grid[1] + node.i[1]
        else:
            root = node.i if isinstance(node.i, int) else node.i[0]
        out.append(ir.Collective("apply_bcast", op=node.f, root=root,
                                 label="applybrdcast"))
        return

    if isinstance(node, N.Split):
        _no_grid(grid, "split")
        if splits:
            raise SkeletonError(
                "split cannot be applied to a split configuration — "
                "`combine` first")
        raw = node.pattern.split(list(range(p)))
        groups = [tuple(raw[idx]) for idx in raw.indices()]
        group_of = []
        for r in range(p):
            for gi, members in enumerate(groups):
                if r in members:
                    group_of.append(gi)
                    break
            else:
                raise SkeletonError(f"split pattern lost rank {r}")
        instr = ir.GroupSplit(tuple(groups), tuple(group_of))
        out.append(instr)
        splits.append(instr)
        return

    if isinstance(node, N.Combine):
        if not splits:
            raise SkeletonError("combine without a preceding split")
        splits.pop()
        out.append(ir.GroupCombine())
        return

    if isinstance(node, N.Spmd):
        _no_groups(splits, "SPMD")
        for stage in node.stages:
            if stage.local is not None:
                out.append(ir.LocalApply(stage.local, indexed=stage.indexed,
                                         label="spmd-local"))
            if stage.global_ is not None:
                _emit(stage.global_, p, grid, out, splits)
        return

    if isinstance(node, N.IterFor):
        bodies = []
        for i in range(node.n):
            body: list[ir.Instr] = []
            _emit(node.body(i), p, grid, body, splits)
            bodies.append(tuple(body))
        out.append(ir.Loop(tuple(bodies)))
        return

    raise SkeletonError(
        f"the SCL compiler does not support {type(node).__name__} nodes")


def _require_grid(grid, who: str) -> None:
    if grid is None:
        raise SkeletonError(
            f"{who} requires a 2-D processor grid — run the expression over "
            f"a 2-D ParArray")


def _no_grid(grid, who: str) -> None:
    if grid is not None:
        raise SkeletonError(f"{who} requires a 1-D configuration, got a grid")


def _no_groups(splits: list, who: str) -> None:
    if splits:
        raise SkeletonError(
            f"{who} cannot be applied to a split configuration: the flat "
            f"element semantics would diverge from the nested semantics — "
            f"use `map (<sub-expression>)` or `combine` first")
