"""The Plan IR: a flat, typed SPMD instruction sequence.

A :class:`Plan` is what an SCL expression lowers to (see
:mod:`repro.plan.lower`): one shared instruction stream that every virtual
processor interprets against its own rank.  All index-function evaluation
happens at lowering time — instructions carry *precomputed per-rank
communication tables*, so the executor never re-walks the expression tree
or re-evaluates an index map.  The same stream is the unit of pricing
(:mod:`repro.plan.cost`), pretty-printing
(:mod:`repro.scl.plan_pretty`), raw execution
(:mod:`repro.machine.plan_exec`) and fault-tolerant execution
(:mod:`repro.faults.plan_exec`): predicted cost, dump, simulated run and
resilient run all describe the identical program.

Instruction set:

==================  =====================================================
:class:`LocalApply`  apply a base-language fragment to the local value
:class:`Rotate`      cyclic shift by ``k`` (dst/src are rank arithmetic)
:class:`Exchange`    static point-to-point pattern (fetch / send family)
:class:`Collective`  fold / scan / broadcast via the machine collectives
:class:`GroupSplit`  enter a processor group (communicator split)
:class:`SubPlan`     run a nested plan inside the current group
:class:`GroupCombine` leave the group (inverse of :class:`GroupSplit`)
:class:`Loop`        ``iterFor``: per-iteration instruction sequences
==================  =====================================================

The base-fragment cost annotations (:func:`base_fragment`,
:func:`fragment_ops`) live here because charging opaque fragments to the
machine clock is part of the IR's execution contract: every executor of a
:class:`LocalApply` charges ``fragment_ops(fn, value)`` before applying.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

__all__ = [
    "DEFAULT_FRAGMENT_OPS", "base_fragment", "fragment_ops",
    "Instr", "LocalApply", "Rotate", "Exchange", "Collective",
    "GroupSplit", "SubPlan", "GroupCombine", "Loop",
    "Plan", "Scalar", "NO_ENV", "instr_title",
    "FusedKernel", "apply_fused",
]

#: Default operation count charged per opaque base-language application.
DEFAULT_FRAGMENT_OPS = 10.0


def base_fragment(ops: float | Callable[[Any], float]):
    """Annotate a base-language callable with its operation cost.

    ``ops`` is either a constant or a function of the fragment's input
    (e.g. ``lambda xs: len(xs) * 5`` for a linear pass).  Every plan
    executor charges this to the machine's cost model at each
    application::

        @base_fragment(ops=lambda block: block.size * 3)
        def smooth(block): ...
    """

    def wrap(fn):
        fn.scl_ops = ops
        return fn

    return wrap


def fragment_ops(fn: Any, value: Any, default: float = DEFAULT_FRAGMENT_OPS) -> float:
    """The operation count a fragment application charges for ``value``."""
    ops = getattr(fn, "scl_ops", default)
    if callable(ops):
        return float(ops(value))
    return float(ops)


class _NoEnv:
    """Sentinel: a :class:`LocalApply` with no farm environment."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NO_ENV"


NO_ENV = _NoEnv()


@dataclasses.dataclass(frozen=True)
class Instr:
    """Base class of plan instructions."""


@dataclasses.dataclass(frozen=True)
class LocalApply(Instr):
    """Apply fragment ``fn`` to the local value (charging its cost first).

    ``indexed=True`` applies ``fn(index, local)`` where ``index`` is the
    rank (or the ``(row, col)`` grid coordinate); a non-``NO_ENV``
    ``farm_env`` applies ``fn(farm_env, local)``.

    ``fn`` may also be a :class:`FusedKernel` — the optimizer's merged
    form of a run of adjacent ``LocalApply`` s (§4 map fusion); executors
    handle it through :func:`apply_fused`.
    """

    fn: Callable[..., Any]
    indexed: bool = False
    farm_env: Any = NO_ENV
    label: str = "map"


class FusedKernel:
    """A run of adjacent :class:`LocalApply` s merged into one instruction.

    ``applies`` holds the original instructions in execution order — each
    keeps its own calling convention (plain / indexed / farm) and its own
    cost tag, so provenance and charging are exact.  ``parts`` is the flat
    tuple of constituent fragment callables (``Composed`` fragments are
    expanded), which is what :func:`repro.plan.cost.plan_cost` counts to
    price one pass per constituent — the fused instruction predicts and
    simulates the same compute cost as the run it replaced, minus the
    per-instruction dispatch.
    """

    __slots__ = ("applies", "parts")

    def __init__(self, applies: tuple["LocalApply", ...]):
        self.applies = tuple(applies)
        flat: list = []
        for a in self.applies:
            sub = getattr(a.fn, "parts", None)
            flat.extend(sub if sub is not None else (a.fn,))
        self.parts = tuple(flat)

    @property
    def __name__(self) -> str:
        return "(" + " ; ".join(
            getattr(a.fn, "__name__", "<fn>") for a in self.applies) + ")"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FusedKernel({'+'.join(a.label for a in self.applies)})"


def apply_fused(fk: FusedKernel, idx: Any, local: Any,
                default: float = DEFAULT_FRAGMENT_OPS) -> tuple[Any, float]:
    """Run every constituent of a fused kernel; returns ``(result, ops)``.

    Each part charges :func:`fragment_ops` on its *actual* input (the
    previous part's output), so the summed charge equals what the unfused
    instruction run would have charged step by step.
    """
    total = 0.0
    for a in fk.applies:
        total += fragment_ops(a.fn, local, default)
        if a.indexed:
            local = a.fn(idx, local)
        elif a.farm_env is not NO_ENV:
            local = a.fn(a.farm_env, local)
        else:
            local = a.fn(local)
    return local, total


@dataclasses.dataclass(frozen=True)
class Rotate(Instr):
    """Cyclic shift: rank ``r`` sends to ``(r - k) % p``, receives from
    ``(r + k) % p`` (so ``out[i] = A[(i + k) % p]``).  ``k`` is already
    reduced modulo the plan size and non-zero (a zero shift lowers to no
    instruction at all)."""

    k: int


@dataclasses.dataclass(frozen=True)
class Exchange(Instr):
    """A static point-to-point pattern with precomputed per-rank tables.

    ``sends[r]`` is the ordered tuple of destinations rank ``r`` sends its
    local value to (self excluded); ``recvs[r]`` the ordered tuple of
    sources it receives from, where an entry equal to ``r`` itself means
    "take the local value" (no message).  ``mode`` selects the result:

    * ``"replace"`` — single source; the received value becomes the local
      value (``rotate_row``/``rotate_col``/``fetch``/``send`` with a
      permutation),
    * ``"pair"`` — single source; the result is ``(local, received)``
      (``align id (fetch f)``),
    * ``"collect"`` — any number of sources in source-rank order; the
      result is the list of arrivals (the general ``send``).
    """

    mode: str
    sends: tuple[tuple[int, ...], ...]
    recvs: tuple[tuple[int, ...], ...]
    label: str = "exchange"


@dataclasses.dataclass(frozen=True)
class Collective(Instr):
    """A machine collective.

    ``kind`` is one of ``"fold"`` (tree reduce + broadcast, result wrapped
    in :class:`Scalar`), ``"scan"`` (Hillis–Steele prefix), ``"bcast"``
    (broadcast the constant ``value``, result ``(value, local)``) or
    ``"apply_bcast"`` (root applies ``op`` to its local value and
    broadcasts, result ``(piece, local)``).

    ``algo`` names the message schedule: ``"tree"`` (the binomial /
    doubling defaults of :mod:`repro.machine.collectives`), ``"flat"``
    (direct root↔member messages) or ``"ring"`` (a rank-order chain).
    Lowering always emits ``"tree"``; the plan optimizer's collective
    selection swaps it when the cost model predicts a strictly cheaper
    schedule on the target machine.
    """

    kind: str
    op: Callable[..., Any] | None = None
    value: Any = None
    root: int = 0
    label: str = "collective"
    algo: str = "tree"


@dataclasses.dataclass(frozen=True)
class GroupSplit(Instr):
    """Split the current communicator into processor groups.

    ``groups[g]`` lists the member ranks of group ``g``; ``group_of[r]``
    is the group index of rank ``r``.  Executors push a group frame (the
    subgroup communicator) that :class:`SubPlan` runs within and
    :class:`GroupCombine` pops.
    """

    groups: tuple[tuple[int, ...], ...]
    group_of: tuple[int, ...]
    label: str = "split"


@dataclasses.dataclass(frozen=True)
class SubPlan(Instr):
    """Run a nested plan inside the current group (``map`` of a
    sub-expression).  ``plans[g]`` is the plan for group ``g`` — groups of
    equal size share one :class:`Plan` object via the lowering cache."""

    plans: tuple["Plan", ...]


@dataclasses.dataclass(frozen=True)
class GroupCombine(Instr):
    """Return to the parent communicator (inverse of :class:`GroupSplit`)."""


@dataclasses.dataclass(frozen=True)
class Loop(Instr):
    """``iterFor n body``: ``bodies[i]`` is the instruction sequence of
    iteration ``i`` (bodies differ per iteration — the expression family
    is expanded at lowering time)."""

    bodies: tuple[tuple[Instr, ...], ...]


@dataclasses.dataclass(frozen=True)
class Plan:
    """A lowered SPMD program: one instruction stream for ``nprocs`` ranks.

    ``grid`` carries the processor-grid shape for 2-D configurations
    (indexed :class:`LocalApply` then receives ``(row, col)``);
    ``returns_scalar`` is set when the outermost step is a reduction, so
    drivers know to unwrap the :class:`Scalar` result.
    """

    instrs: tuple[Instr, ...]
    nprocs: int
    grid: tuple[int, int] | None = None
    returns_scalar: bool = False

    def __len__(self) -> int:
        return len(self.instrs)


@dataclasses.dataclass(frozen=True)
class Scalar:
    """Wrapper distinguishing a reduction result from an array component."""

    value: Any


def instr_title(instr: Instr) -> str:
    """Short human name of an instruction — the shared display/span label
    used by the plan dumper, the span-tagged executors and the trace
    reports (so an instruction is called the same thing everywhere)."""
    if isinstance(instr, LocalApply):
        return f"local {instr.label}"
    if isinstance(instr, Rotate):
        return f"rotate k={instr.k}"
    if isinstance(instr, Exchange):
        return f"exchange {instr.label}"
    if isinstance(instr, Collective):
        if instr.algo != "tree":
            return f"coll {instr.kind}/{instr.algo}"
        return f"coll {instr.kind}"
    if isinstance(instr, GroupSplit):
        return "group split"
    if isinstance(instr, GroupCombine):
        return "group combine"
    if isinstance(instr, SubPlan):
        return "subplan"
    if isinstance(instr, Loop):
        return f"loop x{len(instr.bodies)}"
    return type(instr).__name__
