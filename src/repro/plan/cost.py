"""Pricing plans: the analytic cost model over the Plan IR.

Because the optimizer and the machine now share one program
representation, predicted and simulated cost price the *identical*
instruction stream: :func:`plan_cost` walks the same
:class:`~repro.plan.ir.Plan` the interpreter executes, instruction by
instruction.  Per-instruction formulas keep the shape of the original
expression-level model (log-round collectives, one overlapped message
per rank for permutation traffic, a log-depth barrier per bulk step) but
use the lowered program's *actual* communication tables — an exchange
with no traffic (``fetch id``) prices at zero, and a hot-spot pattern
(``fetch (λi.0)``) pays for its in-degree.

The model remains deliberately coarse: it prices structure, not user
code (each opaque fragment costs ``fn_ops`` elementary operations).  Its
job is to rank alternatives; the test-suite checks its rankings against
simulated makespans.
"""

from __future__ import annotations

import dataclasses

from repro.machine.cost import MachineSpec, PERFECT
from repro.plan import ir

__all__ = ["ExprCost", "plan_cost", "ceil_log2"]


@dataclasses.dataclass(frozen=True)
class ExprCost:
    """Predicted execution profile of a program over ``n`` components."""

    seconds: float
    messages: int
    barriers: int

    def __add__(self, other: "ExprCost") -> "ExprCost":
        return ExprCost(self.seconds + other.seconds,
                        self.messages + other.messages,
                        self.barriers + other.barriers)

    def scaled(self, times: int) -> "ExprCost":
        return ExprCost(self.seconds * times, self.messages * times,
                        self.barriers * times)


ZERO = ExprCost(0.0, 0, 0)


def ceil_log2(n: int) -> int:
    """Rounds of a binary-tree schedule over ``n`` participants."""
    return (n - 1).bit_length() if n > 1 else 0


def plan_cost(plan: ir.Plan, *, spec: MachineSpec = PERFECT,
              fn_ops: float = 1.0,
              element_bytes: int | None = None) -> ExprCost:
    """Predicted cost of one execution of ``plan``.

    ``fn_ops`` is the assumed per-element cost of each opaque fragment
    application; ``element_bytes`` the wire size of a component (defaults
    to one machine word).
    """
    eb = spec.word_bytes if element_bytes is None else element_bytes
    n = max(plan.nprocs, 1)
    barrier = (spec.latency + spec.send_overhead + spec.recv_overhead) \
        * ceil_log2(n)
    msg = spec.transfer_time(eb) + spec.send_overhead + spec.recv_overhead
    fn_time = spec.compute_time(fn_ops)

    def seq(instrs) -> ExprCost:
        total = ZERO
        for instr in instrs:
            total = total + one(instr)
        return total

    def one(instr: ir.Instr) -> ExprCost:
        if isinstance(instr, ir.LocalApply):
            # a composed fragment pays once per constituent pass
            parts = getattr(instr.fn, "parts", None)
            passes = len(parts) if parts is not None else 1
            return ExprCost(fn_time * passes + barrier, 0, 1)

        if isinstance(instr, ir.Rotate):
            # one message in and out per component, overlapped across procs
            return ExprCost(msg, n, 1)

        if isinstance(instr, ir.Exchange):
            total = sum(len(s) for s in instr.sends)
            if total == 0:
                return ZERO  # e.g. fetch id — no wire traffic at all
            degree = max(max(len(instr.sends[r]),
                             sum(1 for s in instr.recvs[r] if s != r))
                         for r in range(len(instr.sends)))
            return ExprCost(msg * degree, total, 1)

        if isinstance(instr, ir.Collective):
            rounds = ceil_log2(n)
            algo = instr.algo
            if instr.kind in ("fold", "scan"):
                if algo == "ring":
                    # rank-order chain: p-1 serial combine steps (scan)
                    return ExprCost((n - 1) * (msg + fn_time),
                                    max(n - 1, 0), 1)
                if algo == "flat":
                    # direct gather-to-root combine plus a flat broadcast
                    return ExprCost((n - 1) * (msg + fn_time)
                                    + (n - 1) * msg, 2 * max(n - 1, 0), 1)
                # tree: log-n combine rounds; the rounds themselves are
                # the synchronisation, so no separate barrier term
                return ExprCost(rounds * (msg + fn_time), rounds * n // 2, 1)
            if algo in ("flat", "ring"):
                # root sends serially / chain forwards serially
                return ExprCost(max(n - 1, 0) * msg, max(n - 1, 0), 1)
            return ExprCost(rounds * msg, max(n - 1, 0), 1)

        if isinstance(instr, (ir.GroupSplit, ir.GroupCombine)):
            return ExprCost(barrier, 0, 1)

        if isinstance(instr, ir.SubPlan):
            # groups run concurrently: elapsed time is the slowest group's,
            # traffic is everyone's; plus the map-level synchronisation
            inner = [plan_cost(sub, spec=spec, fn_ops=fn_ops,
                               element_bytes=element_bytes)
                     for sub in instr.plans]
            return ExprCost(max(c.seconds for c in inner) + barrier,
                            sum(c.messages for c in inner),
                            max(c.barriers for c in inner) + 1)

        if isinstance(instr, ir.Loop):
            total = ZERO
            for body in instr.bodies:
                total = total + seq(body)
            return total

        raise AssertionError(f"unknown plan instruction {instr!r}")

    return seq(plan.instrs)
