"""SoA kernel registry: one numpy op across all p virtual processors.

The plan interpreter applies a :class:`~repro.plan.ir.LocalApply` as p
separate Python calls — one per virtual processor.  For *known*
elementwise/reduction kernels that is pure dispatch overhead: the same
fragment applied to every rank's value is one vectorised numpy operation
over the ranks' values stacked structure-of-arrays style.  This module is
the registry that makes a fragment "known":

* :func:`vectorize_fragment` attaches a batched implementation to a
  fragment (``batched(values) -> values``, one call for all ranks).  The
  attribute travels with the callable, so registration survives lowering,
  fusion and caching.  An optional *shard transform* additionally marks
  the kernel row-independent, which lets the host-parallel backend
  (:mod:`repro.plan.pexec`) run disjoint row slabs of the SoA stack on
  separate OS processes.
* :func:`batched_apply` is what the data plane
  (:mod:`repro.plan.vexec`) calls: the batched implementation when one is
  registered, a transparent per-rank fallback for opaque fragments.
* :func:`elementwise` builds a registered elementwise fragment from a
  numpy ufunc-like callable in one line (with its :func:`base_fragment`
  cost tag), and :func:`stack_uniform` is the SoA helper batched
  implementations share — it groups per-rank values by shape/dtype so
  ragged distributions (e.g. column blocks differing by one column) still
  vectorise within each uniform group.  :func:`group_uniform` exposes the
  grouping itself (index sets plus the stacked C-contiguous array per
  group) for backends that shard the stack instead of transforming it
  in one call.

Virtual cost and results are unchanged by construction: the batched
implementation must compute the same elementwise arithmetic, and the
executor still charges each rank's :func:`~repro.plan.ir.fragment_ops`
on its own value.  Only host time changes.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from repro.plan.ir import base_fragment

__all__ = ["vectorize_fragment", "batched_apply", "has_batched",
           "elementwise", "stack_uniform", "group_uniform",
           "shard_transform"]

#: Attribute carrying the batched implementation on a fragment callable.
_ATTR = "scl_batched"
#: Attribute carrying the row-independent shard transform (when the
#: kernel's batched form is safe to evaluate on disjoint row slabs).
_SHARD_ATTR = "scl_shard"


def vectorize_fragment(fn: Callable[..., Any],
                       batched: Callable[[Sequence[Any]], Sequence[Any]],
                       *,
                       shard: Callable[[np.ndarray], np.ndarray] | None = None):
    """Register ``batched`` as the all-ranks implementation of ``fn``.

    ``batched(values)`` receives the per-rank values in rank order and
    must return the per-rank results in the same order, computing exactly
    what ``[fn(v) for v in values]`` would — bit-identical results are
    part of the executor's contract.  Returns ``fn`` (decorator-friendly).

    ``shard`` (optional) is a transform over one stacked ``(g, ...)``
    group that is **row-independent**: ``shard(stack)[i] ==
    shard(stack[i:i+1])[0]`` bit-for-bit.  Registering it allows the
    host-parallel backend to evaluate disjoint row slabs in separate
    processes; elementwise numpy arithmetic qualifies, cross-rank
    reductions do not.
    """
    setattr(fn, _ATTR, batched)
    if shard is not None:
        setattr(fn, _SHARD_ATTR, shard)
    return fn


def has_batched(fn: Any) -> bool:
    """True when ``fn`` carries a registered batched implementation."""
    return getattr(fn, _ATTR, None) is not None


def shard_transform(fn: Any):
    """The registered row-independent shard transform, or ``None``."""
    return getattr(fn, _SHARD_ATTR, None)


def batched_apply(fn: Any, values: Sequence[Any]) -> list:
    """Apply ``fn`` to every rank's value — SoA when registered.

    The vectorized backend's single entry point: registered kernels run
    as one batched call, opaque fragments fall back to the per-rank loop
    transparently.
    """
    batched = getattr(fn, _ATTR, None)
    if batched is not None:
        res = batched(values)
        if res is None or not hasattr(res, "__iter__"):
            raise ValueError(
                f"batched kernel {getattr(fn, '__name__', fn)!r} returned "
                f"{type(res).__name__}, not a sequence of per-rank values")
        out = list(res)
        if len(out) != len(values):
            raise ValueError(
                f"batched kernel {getattr(fn, '__name__', fn)!r} returned "
                f"{len(out)} values for {len(values)} ranks")
        return out
    return [fn(v) for v in values]


def group_uniform(values: Sequence[Any]
                  ) -> list[tuple[list[int], np.ndarray]]:
    """Group rank values by ``(shape, dtype)`` and stack each group.

    Returns ``[(rank_indices, stacked)]`` where ``stacked`` is the
    C-contiguous ``(g, ...)`` SoA array of the group's values in rank
    order.  Inputs are normalised with :func:`np.ascontiguousarray`
    first, so transposed/strided views stack through one fast memcpy per
    value instead of the strided slow path — the grouping key (shape and
    dtype) is unchanged by the normalisation.
    """
    arrays = [np.ascontiguousarray(v) for v in values]
    groups: dict[tuple, list[int]] = {}
    for k, a in enumerate(arrays):
        groups.setdefault((a.shape, a.dtype), []).append(k)
    return [(idxs, np.stack([arrays[k] for k in idxs]))
            for idxs in groups.values()]


def stack_uniform(values: Sequence[Any],
                  transform: Callable[[np.ndarray], np.ndarray]) -> list:
    """Apply one array ``transform`` over rank values stacked SoA.

    Values are grouped by ``(shape, dtype)``; each uniform group stacks
    into a single ``(g, ...)`` ndarray, ``transform`` runs once per group
    (vectorised over axis 0), and the results scatter back to rank order.
    Non-array values raise — callers registering kernels via this helper
    guarantee array-valued fragments.
    """
    out: list = [None] * len(values)
    for idxs, stacked in group_uniform(values):
        batch = transform(stacked)
        for j, k in enumerate(idxs):
            out[k] = batch[j]
    return out


def elementwise(ufunc: Callable[[np.ndarray], np.ndarray], *,
                ops_per_elem: float = 1.0,
                name: str | None = None) -> Callable[[Any], np.ndarray]:
    """A registered elementwise fragment from a numpy-vectorisable callable.

    The per-rank form applies ``ufunc`` to one value; the batched form
    applies it once to the SoA stack.  Elementwise numpy arithmetic is
    positionwise-identical either way, so the results are bit-identical
    — which also makes ``ufunc`` itself a valid shard transform for the
    host-parallel backend.
    """

    @base_fragment(ops=lambda v: ops_per_elem * np.size(v))
    def frag(value):
        return ufunc(np.asarray(value))

    frag.__name__ = name or getattr(ufunc, "__name__", "elementwise")
    return vectorize_fragment(frag, lambda vals: stack_uniform(vals, ufunc),
                              shard=ufunc)
