"""``repro.plan`` — the explicit program representation between SCL
expressions and the machine.

The paper treats a skeleton program as an object you can transform (§4)
and then hand-compile (§5).  This package mechanises the hand-off: an
expression is *lowered once* into a flat, typed SPMD instruction
sequence (:mod:`repro.plan.ir`), and that one representation is then
executed (:mod:`repro.machine.plan_exec`), executed fault-tolerantly
(:mod:`repro.faults.plan_exec`), priced (:mod:`repro.plan.cost`) and
pretty-printed (:mod:`repro.scl.plan_pretty`).  ``python -m repro plan``
dumps lowered programs with predicted-vs-simulated cost columns.
"""

from repro.plan.cost import ExprCost, plan_cost
from repro.plan.ir import (
    DEFAULT_FRAGMENT_OPS,
    Collective,
    Exchange,
    GroupCombine,
    GroupSplit,
    Instr,
    LocalApply,
    Loop,
    Plan,
    Rotate,
    Scalar,
    SubPlan,
    base_fragment,
    fragment_ops,
)
from repro.plan.lower import clear_plan_cache, lower, plan_cache_stats

__all__ = [
    "Plan", "Instr", "LocalApply", "Rotate", "Exchange", "Collective",
    "GroupSplit", "SubPlan", "GroupCombine", "Loop", "Scalar",
    "base_fragment", "fragment_ops", "DEFAULT_FRAGMENT_OPS",
    "lower", "clear_plan_cache", "plan_cache_stats",
    "plan_cost", "ExprCost",
]
