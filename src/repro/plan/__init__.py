"""``repro.plan`` — the explicit program representation between SCL
expressions and the machine.

The paper treats a skeleton program as an object you can transform (§4)
and then hand-compile (§5).  This package mechanises the hand-off: an
expression is *lowered once* into a flat, typed SPMD instruction
sequence (:mod:`repro.plan.ir`), and that one representation is then
executed (:mod:`repro.machine.plan_exec`), executed fault-tolerantly
(:mod:`repro.faults.plan_exec`), priced (:mod:`repro.plan.cost`),
optimized (:mod:`repro.plan.opt` — §4's transformation rules applied
post-lowering, with the SoA data plane of :mod:`repro.plan.vexec` and
the kernel registry of :mod:`repro.plan.kernels`) and pretty-printed
(:mod:`repro.scl.plan_pretty`).  ``python -m repro plan`` dumps lowered
programs with predicted-vs-simulated cost columns and ``--no-opt`` /
``--diff`` views of what the optimizer did.
"""

from repro.plan.cost import ExprCost, plan_cost
from repro.plan.ir import (
    DEFAULT_FRAGMENT_OPS,
    Collective,
    Exchange,
    FusedKernel,
    GroupCombine,
    GroupSplit,
    Instr,
    LocalApply,
    Loop,
    Plan,
    Rotate,
    Scalar,
    SubPlan,
    apply_fused,
    base_fragment,
    fragment_ops,
)
from repro.plan.lower import (clear_plan_cache, lower, plan_cache_reset,
                              plan_cache_stats)
from repro.plan.opt import (
    OptConfig,
    PassNote,
    optimize_plan,
    optimize_plan_report,
    topology_signature,
)

__all__ = [
    "Plan", "Instr", "LocalApply", "Rotate", "Exchange", "Collective",
    "GroupSplit", "SubPlan", "GroupCombine", "Loop", "Scalar",
    "FusedKernel", "apply_fused",
    "base_fragment", "fragment_ops", "DEFAULT_FRAGMENT_OPS",
    "lower", "clear_plan_cache", "plan_cache_reset", "plan_cache_stats",
    "plan_cost", "ExprCost",
    "OptConfig", "PassNote", "optimize_plan", "optimize_plan_report",
    "topology_signature",
]
