"""Exception hierarchy for the SCL reproduction.

Every error raised by :mod:`repro` derives from :class:`SclError`, so callers
can catch library failures without accidentally swallowing interpreter-level
bugs.  The hierarchy mirrors the layering of the system:

* :class:`ConfigurationError` — misuse of configuration skeletons
  (``partition``, ``align``, ``distribution`` …): shape mismatches,
  non-conforming distributions, invalid partition patterns.
* :class:`SkeletonError` — misuse of elementary/computational skeletons
  (arity problems, empty reductions, invalid communication indices).
* :class:`MachineError` — faults inside the simulated machine substrate.

  * :class:`DeadlockError` — the event loop found live processes but no
    runnable event (every process blocked on a receive that can never be
    satisfied).
  * :class:`TopologyError` — invalid topology construction or addressing.
  * :class:`FaultError` — a *modelled* failure surfaced to the program:
    a receive timed out, a peer is presumed crashed, a retransmit budget
    was exhausted.  Structured (``kind``/``pid``/``rank`` attributes) so
    fault-tolerant runtimes can dispatch on the failure mode.
* :class:`RewriteError` — the transformation engine was asked to apply a
  rule whose side-conditions do not hold, or hit a malformed expression.
* :class:`PoolError` — the host-parallel worker pool
  (:mod:`repro.plan.pexec`) failed: a worker crashed, a pipe broke, or
  the pool was used after breaking.  Callers treat it as "run in-process
  instead" — it never signals a wrong result, only a lost backend.
"""

from __future__ import annotations

__all__ = [
    "SclError",
    "ConfigurationError",
    "SkeletonError",
    "MachineError",
    "DeadlockError",
    "TopologyError",
    "FaultError",
    "RewriteError",
    "ParseError",
    "PoolError",
]


class SclError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(SclError):
    """Invalid use of a configuration skeleton (partition/align/…)."""


class SkeletonError(SclError):
    """Invalid use of an elementary or computational skeleton."""


class MachineError(SclError):
    """Fault inside the simulated distributed machine."""


class DeadlockError(MachineError):
    """The simulated machine deadlocked: blocked processes, empty event queue."""


class TopologyError(MachineError):
    """Invalid topology construction or neighbour addressing."""


class FaultError(MachineError):
    """A modelled machine fault surfaced to the program.

    ``kind`` classifies the failure (``"timeout"``, ``"peer-dead"``,
    ``"no-survivors"``, …); ``pid``/``rank`` identify the peer involved
    when known.  Raised by the resilience layer (``repro.machine.reliable``,
    ``repro.machine.collectives_ft``) — never by the fault-free simulator.
    """

    def __init__(self, message: str, *, kind: str = "fault",
                 pid: int | None = None, rank: int | None = None):
        super().__init__(message)
        self.kind = kind
        self.pid = pid
        self.rank = rank


class RewriteError(SclError):
    """A transformation rule was applied where its side-conditions fail."""


class ParseError(SclError):
    """Syntax or resolution error in a textual SCL program."""


class PoolError(SclError):
    """The host-parallel worker pool lost a worker or broke a pipe.

    Raised by :mod:`repro.plan.pexec` when a dispatch cannot complete
    (worker crash, closed connection, unpicklable work item on the
    generic map path).  The vectorized data plane catches it and retries
    in-process; results are never silently wrong, only slower.
    """
