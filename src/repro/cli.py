"""Command-line driver: regenerate the paper's evaluation without pytest.

::

    python -m repro table1               # hyperquicksort runtimes (Table 1)
    python -m repro figure3              # speedup series (Figure 3)
    python -m repro figure2              # stage-by-stage trace (Figure 2)
    python -m repro ablations            # the four §4 transformation studies
    python -m repro baselines            # hyperquicksort vs bitonic sort
    python -m repro all                  # everything above
    python -m repro perf                 # simulator-core performance suite
    python -m repro chaos                # fault-injection survival sweep
    python -m repro plan hyperquicksort  # dump a lowered plan + its costs
    python -m repro trace hyperquicksort # traced run: spans, critical path
    python -m repro serve                # skeleton service under load
    python -m repro metrics serve        # live metrics dashboard of a run
    python -m repro table1 -n 20000 --seed 7   # smaller/quicker variants

Each command prints the reproduced table to stdout; ``--spec`` switches the
machine model (``ap1000`` / ``modern`` / ``perfect``).

``perf``, ``chaos`` and ``plan`` are different from the rest: ``perf``
measures *host* performance of the simulator itself (see
:mod:`repro.perf`), ``chaos`` sweeps fault rates over the fault-tolerant
apps (see :mod:`repro.faults.chaos`), ``plan`` dumps a lowered Plan-IR
program with predicted-vs-simulated cost columns (see
:mod:`repro.plan.cli`); each takes its own flags —
``python -m repro perf --help`` / ``python -m repro chaos --help`` /
``python -m repro plan --help``.
"""

from __future__ import annotations

import argparse
import operator
import sys
from typing import Callable

import numpy as np

from repro.machine import AP1000, MODERN_CLUSTER, PERFECT, MachineSpec
from repro.machine.metrics import scaling_series
from repro.util.tables import render_table

__all__ = ["main", "cmd_table1", "cmd_figure3", "cmd_figure2",
           "cmd_ablations", "cmd_baselines"]

_SPECS = {"ap1000": AP1000, "modern": MODERN_CLUSTER, "perfect": PERFECT}


def _workload(n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 2**31, size=n).astype(np.int32)


def _sort_times(values: np.ndarray, spec: MachineSpec, max_dim: int):
    from repro.apps.sort import hyperquicksort_machine, sequential_sort_machine

    expected = np.sort(values)
    times: dict[int, float] = {}
    extras: dict[int, tuple[int, float]] = {}
    _out, seq = sequential_sort_machine(values, spec=spec)
    times[1] = seq.makespan
    extras[1] = (0, 1.0)
    for d in range(1, max_dim + 1):
        out, res = hyperquicksort_machine(values, d, spec=spec)
        if not np.array_equal(out, expected):
            raise AssertionError(f"sort incorrect at d={d}")
        times[1 << d] = res.makespan
        extras[1 << d] = (res.total_messages, res.efficiency())
    return times, extras


def cmd_table1(args: argparse.Namespace) -> str:
    """Regenerate Table 1: hyperquicksort runtime vs processor count."""
    values = _workload(args.n, args.seed)
    times, extras = _sort_times(values, args.spec, args.max_dim)
    rows = [[p, f"{t:.3f}", extras[p][0], f"{extras[p][1]:.0%}"]
            for p, t in sorted(times.items())]
    return render_table(
        f"Table 1: hyperquicksort of {args.n} random integers "
        f"(simulated {args.spec.name})",
        ["procs", "runtime (s)", "messages", "efficiency"], rows)


def cmd_figure3(args: argparse.Namespace) -> str:
    """Regenerate Figure 3: the speedup-vs-linear series."""
    values = _workload(args.n, args.seed)
    times, _ = _sort_times(values, args.spec, args.max_dim)
    series = scaling_series(times)
    rows = [[pt.procs, f"{pt.speedup:.2f}", pt.procs, f"{pt.efficiency:.0%}"]
            for pt in series if pt.procs > 1]
    return render_table(
        f"Figure 3: speedup of sorting {args.n} integers "
        f"(simulated {args.spec.name})",
        ["procs", "speedup", "linear", "efficiency"], rows,
        notes="Sub-linear and bending away from the diagonal, as in the paper.")


def cmd_figure2(args: argparse.Namespace) -> str:
    """Regenerate Figure 2: the 32-value stage-by-stage trace."""
    from repro.apps.sort import hyperquicksort_trace

    rng = np.random.default_rng(args.seed)
    values = rng.integers(1, 100, size=32)
    lines = ["Figure 2: hyperquicksort of 32 values on a 2-dim hypercube",
             "=" * 58, ""]
    for panel, snap in zip("abcdefgh", hyperquicksort_trace(values, 2)):
        lines.append(f"({panel}) {snap.label}")
        for pid, contents in enumerate(snap.contents):
            lines.append(f"    p{pid}: {' '.join(str(int(v)) for v in contents)}")
        lines.append("")
    return "\n".join(lines)


def cmd_ablations(args: argparse.Namespace) -> str:
    """Summarise the §4 transformation ablations (predicted gains)."""
    from repro.scl import (FoldrFused, Map, Rotate, compose_nodes,
                           default_engine, estimate_cost, pretty)

    engine = default_engine()
    out = []
    studies = [
        ("A. map fusion",
         compose_nodes(Map(lambda x: x + 1), Map(lambda x: x * 2),
                       Map(lambda x: x - 3))),
        ("B. communication algebra",
         compose_nodes(Rotate(1), Rotate(1), Rotate(1), Rotate(1))),
        ("D. map distribution",
         FoldrFused(operator.add, lambda x: x * x, op_associative=True)),
    ]
    rows = []
    for name, prog in studies:
        rewritten, steps = engine.rewrite(prog)
        before = estimate_cost(prog, n=64, spec=args.spec, fn_ops=50)
        after = estimate_cost(rewritten, n=64, spec=args.spec, fn_ops=50)
        rows.append([name, pretty(rewritten)[:40], len(steps),
                     f"{before.seconds / max(after.seconds, 1e-30):.2f}x"])
    out.append(render_table(
        f"§4 transformation ablations (64 procs, {args.spec.name} model)",
        ["study", "rewritten form", "rules fired", "predicted gain"], rows,
        notes="Full measured versions: pytest benchmarks/ --benchmark-only"))
    return "\n".join(out)


def cmd_baselines(args: argparse.Namespace) -> str:
    """Compare hyperquicksort against the bitonic-sort baseline."""
    from repro.apps.bitonic import bitonic_sort_machine
    from repro.apps.sort import hyperquicksort_machine

    n = args.n - args.n % 32  # keep divisible for bitonic blocks
    values = _workload(n, args.seed)
    rows = []
    for d in range(1, args.max_dim + 1):
        _h, hq = hyperquicksort_machine(values, d, spec=args.spec,
                                        include_distribution=False)
        _b, bt = bitonic_sort_machine(values, d, spec=args.spec)
        rows.append([1 << d, f"{hq.makespan:.3f}", f"{bt.makespan:.3f}",
                     f"{bt.makespan / hq.makespan:.2f}x"])
    return render_table(
        f"Hyperquicksort vs bitonic sort, {n} integers ({args.spec.name})",
        ["procs", "hyperqs (s)", "bitonic (s)", "ratio"], rows)


_COMMANDS: dict[str, Callable[[argparse.Namespace], str]] = {
    "table1": cmd_table1,
    "figure3": cmd_figure3,
    "figure2": cmd_figure2,
    "ablations": cmd_ablations,
    "baselines": cmd_baselines,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the evaluation of 'Parallel Skeletons for "
                    "Structured Composition' (PPoPP 1995).")
    parser.add_argument("command",
                        choices=[*_COMMANDS, "all", "perf", "chaos", "plan",
                                 "trace", "serve", "metrics"],
                        help="which artefact to regenerate ('perf' runs the "
                             "simulator performance suite, 'chaos' the "
                             "fault-injection sweep, 'plan' dumps a lowered "
                             "Plan-IR program; see "
                             "'python -m repro perf --help' / "
                             "'python -m repro chaos --help' / "
                             "'python -m repro plan --help')")
    parser.add_argument("-n", type=int, default=100_000,
                        help="workload size (default: the paper's 100,000)")
    parser.add_argument("--seed", type=int, default=19950701,
                        help="workload RNG seed")
    parser.add_argument("--spec", choices=sorted(_SPECS), default="ap1000",
                        help="machine cost model")
    parser.add_argument("--max-dim", type=int, default=5,
                        help="largest hypercube dimension (p = 2^dim)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["perf"]:
        # The perf suite has its own flag set (--quick/--output/...);
        # delegate everything after the subcommand to repro.perf.
        from repro import perf

        return perf.main(argv[1:])
    if argv[:1] == ["chaos"]:
        # Likewise the chaos harness (--app/--drop-rate/--crash/...).
        from repro.faults import chaos

        return chaos.main(argv[1:])
    if argv[:1] == ["plan"]:
        # And the plan dumper (<app>/--dim/--tables/...).
        from repro.plan import cli as plan_cli

        return plan_cli.main(argv[1:])
    if argv[:1] == ["trace"]:
        # And the traced-run reporter (<app>/--sink/--critical-path/...).
        from repro.obs import cli as obs_cli

        return obs_cli.main(argv[1:])
    if argv[:1] == ["serve"]:
        # And the skeleton-service load run (--smoke/--requests/--out/...).
        from repro.serve import cli as serve_cli

        return serve_cli.main(argv[1:])
    if argv[:1] == ["metrics"]:
        # And the live-metrics dashboard (<app>/--from/--prom/...).
        from repro.obs import metrics_cli

        return metrics_cli.main(argv[1:])
    args = build_parser().parse_args(argv)
    args.spec = _SPECS[args.spec]
    if args.max_dim < 1 or args.max_dim > 10:
        print("error: --max-dim must be between 1 and 10", file=sys.stderr)
        return 2
    commands = list(_COMMANDS) if args.command == "all" else [args.command]
    for name in commands:
        print(_COMMANDS[name](args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
