"""Skeleton-expression layer: SCL programs as data, plus §4's transformations.

The paper's optimisation story depends on parallel structure being *visible*:
because skeletons are functional forms, "meaning preserving transformation
techniques can be generally applied to optimise the parallelism specified
uniformly in terms of skeletons".  This package mechanises that claim:

* :mod:`repro.scl.nodes` — an AST of skeleton applications (a ``Map`` node,
  a ``Fetch`` node, …) whose composition mirrors SCL's functional notation,
* :mod:`repro.scl.interp` — the semantics: evaluate an expression against a
  :class:`~repro.core.pararray.ParArray` using the core library,
* :mod:`repro.scl.rules` — the paper's rewrite rules (map fusion, map
  distribution, communication algebra, SPMD flattening) plus derived rules,
* :mod:`repro.scl.rewrite` — the rewrite engine (windowed matching over
  composition chains, recursion into sub-expressions, fixpoint strategy),
* :mod:`repro.scl.optimize` — cost-guided optimisation against a
  :class:`~repro.machine.cost.MachineSpec`,
* :mod:`repro.scl.pretty` — human-readable rendering of expressions,
* :mod:`repro.scl.compile` — lowering to the :mod:`repro.plan` IR and
  execution on the simulated machine,
* :mod:`repro.scl.plan_pretty` — rendering of lowered plans.
"""

from repro.scl.nodes import (
    Node,
    Id,
    Map,
    IMap,
    Fold,
    Scan,
    FoldrFused,
    Rotate,
    RotateRow,
    RotateCol,
    Fetch,
    AlignFetch,
    PermSend,
    SendNode,
    Brdcast,
    ApplyBrdcast,
    Compose,
    Spmd,
    Stage,
    Split,
    Combine,
    Partition,
    Gather,
    Farm,
    IterFor,
    compose_nodes,
)
from repro.scl.compile import (
    CompiledProgram,
    base_fragment,
    fragment_ops,
    run_expression,
)
from repro.scl.interp import evaluate
from repro.scl.rewrite import Rule, RewriteEngine, RewriteStep
from repro.scl.rules import (
    MAP_FUSION,
    MAP_DISTRIBUTION,
    FETCH_FUSION,
    SEND_FUSION,
    ROTATE_FUSION,
    ROTATE_ROW_FUSION,
    ROTATE_COL_FUSION,
    GATHER_PARTITION_ELIM,
    SPMD_FLATTENING,
    SPMD_STAGE_MERGE,
    ALL_RULES,
    default_engine,
)
from repro.scl.optimize import ExprCost, estimate_cost, optimize
from repro.scl.graph import to_dot, to_networkx, node_count, communication_count
from repro.scl.pretty import pretty
from repro.scl.plan_pretty import pretty_plan

__all__ = [
    "Node", "Id", "Map", "IMap", "Fold", "Scan", "FoldrFused",
    "Rotate", "RotateRow", "RotateCol", "Fetch", "AlignFetch", "PermSend",
    "SendNode", "Brdcast", "ApplyBrdcast", "Compose", "Spmd", "Stage",
    "Split", "Combine", "Partition", "Gather", "Farm", "IterFor", "compose_nodes",
    "CompiledProgram", "base_fragment", "fragment_ops", "run_expression",
    "evaluate",
    "Rule", "RewriteEngine", "RewriteStep",
    "MAP_FUSION", "MAP_DISTRIBUTION", "FETCH_FUSION", "SEND_FUSION",
    "ROTATE_FUSION", "ROTATE_ROW_FUSION", "ROTATE_COL_FUSION", "GATHER_PARTITION_ELIM",
    "SPMD_FLATTENING", "SPMD_STAGE_MERGE",
    "ALL_RULES", "default_engine",
    "ExprCost", "estimate_cost", "optimize",
    "to_dot", "to_networkx", "node_count", "communication_count",
    "pretty", "pretty_plan",
]
