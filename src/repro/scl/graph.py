"""Expression graphs: render skeleton programs as DOT / networkx graphs.

Each node of the expression tree becomes a graph vertex labelled in SCL
notation; composition edges are annotated with their order of application.
Useful for documenting how a program looked before and after rewriting::

    from repro.scl.graph import to_dot, to_networkx
    print(to_dot(program))             # paste into graphviz
    g = to_networkx(program)           # analyse structurally
"""

from __future__ import annotations

from typing import Iterator

from repro.scl import nodes as N
from repro.scl.pretty import pretty

__all__ = ["to_dot", "to_networkx", "node_count", "communication_count"]


def _walk(node: N.Node) -> Iterator[tuple[int, N.Node, int | None, str]]:
    """Yield (id, node, parent_id, edge_label) in preorder."""
    counter = 0

    def go(n: N.Node, parent: int | None, label: str):
        nonlocal counter
        my_id = counter
        counter += 1
        yield (my_id, n, parent, label)
        if isinstance(n, N.Compose):
            for i, step in enumerate(n.steps):
                yield from go(step, my_id, f"step {len(n.steps) - i}")
        elif isinstance(n, N.Spmd):
            for i, stage in enumerate(n.stages):
                yield from go(stage, my_id, f"stage {i + 1}")
        else:
            for child in n.children():
                yield from go(child, my_id, "")

    yield from go(node, None, "")


def _label(node: N.Node) -> str:
    if isinstance(node, N.Compose):
        return "compose"
    if isinstance(node, N.Spmd):
        return "SPMD"
    if isinstance(node, N.Stage):
        return "stage"
    text = pretty(node)
    return text if len(text) <= 30 else text[:27] + "..."


def to_dot(node: N.Node, *, name: str = "scl") -> str:
    """Render an expression as a Graphviz DOT digraph."""
    lines = [f"digraph {name} {{", "  rankdir=TB;",
             '  node [shape=box, fontname="monospace"];']
    for my_id, n, parent, label in _walk(node):
        lines.append(f'  n{my_id} [label="{_label(n)}"];')
        if parent is not None:
            attr = f' [label="{label}"]' if label else ""
            lines.append(f"  n{parent} -> n{my_id}{attr};")
    lines.append("}")
    return "\n".join(lines)


def to_networkx(node: N.Node):
    """The expression tree as a ``networkx.DiGraph`` (vertices carry the
    SCL label under the ``"label"`` attribute)."""
    import networkx as nx

    g = nx.DiGraph()
    for my_id, n, parent, label in _walk(node):
        g.add_node(my_id, label=_label(n), kind=type(n).__name__)
        if parent is not None:
            g.add_edge(parent, my_id, label=label)
    return g


def node_count(node: N.Node) -> int:
    """Total number of AST vertices (Compose/Stage wrappers included)."""
    return sum(1 for _ in _walk(node))


_COMM_NODES = (N.Rotate, N.RotateRow, N.RotateCol, N.Fetch, N.AlignFetch,
               N.PermSend, N.SendNode, N.Brdcast, N.ApplyBrdcast,
               N.Partition, N.Gather)


def communication_count(node: N.Node) -> int:
    """How many communication skeletons the program applies (statically;
    iteration bodies counted once)."""
    return sum(1 for _id, n, _p, _l in _walk(node)
               if isinstance(n, _COMM_NODES))
