"""The paper's transformation rules (§4), as rewrite-engine rules.

Each rule is stated exactly as in the paper and verified behaviourally by
the property-based test-suite (rewritten expression ≡ original on random
programs and inputs):

* **map fusion** — ``map f . map g = map (f . g)``: removes a barrier
  synchronisation and improves load balance (the functional abstraction of
  loop fusion),
* **map distribution** — ``foldr (f . g) = fold f . map g`` when ``f`` is
  associative: the left side is sequential (the fused function is not
  associative); splitting exposes parallelism (the analogue of loop
  distribution),
* **communication algebra** — ``send f . send g = send (f . g)`` and
  ``fetch f . fetch g = fetch (g . f)``: two communication steps become
  one; :data:`ROTATE_FUSION` is the same law specialised to rotations,
* **SPMD flattening** — nested SPMD over ``split P`` becomes a flat SPMD
  with a segmented global function (NESL-style segmented instructions).

Side-conditions are enforced structurally: map distribution requires the
``op_associative`` assertion on the :class:`~repro.scl.nodes.FoldrFused`
node; send fusion only matches the single-destination :class:`PermSend`
form for which the law is exact; flattening requires index-insensitive
local functions (``Stage.indexed == False``).
"""

from __future__ import annotations

from repro.scl import nodes as N
from repro.scl.rewrite import Rule, RewriteEngine
from repro.util.functional import Composed

__all__ = [
    "MAP_FUSION",
    "MAP_DISTRIBUTION",
    "FETCH_FUSION",
    "SEND_FUSION",
    "ROTATE_FUSION",
    "ROTATE_ROW_FUSION",
    "ROTATE_COL_FUSION",
    "GATHER_PARTITION_ELIM",
    "SPMD_STAGE_MERGE",
    "SPMD_FLATTENING",
    "ALL_RULES",
    "default_engine",
]


def _map_fusion(window: tuple[N.Node, ...]) -> tuple[N.Node, ...] | None:
    outer, inner = window
    if not (isinstance(outer, N.Map) and isinstance(inner, N.Map)):
        return None
    f, g = outer.f, inner.f
    if isinstance(f, N.Node) and isinstance(g, N.Node):
        return (N.Map(N.compose_nodes(f, g)),)
    if isinstance(f, N.Node) or isinstance(g, N.Node):
        return None  # mixed node/callable maps: leave for nested rewriting
    return (N.Map(Composed(f, g)),)


MAP_FUSION = Rule(
    name="map-fusion",
    window_size=2,
    matcher=_map_fusion,
    law="map f . map g = map (f . g)",
)


def _map_distribution(window: tuple[N.Node, ...]) -> tuple[N.Node, ...] | None:
    (node,) = window
    if not isinstance(node, N.FoldrFused) or not node.op_associative:
        return None
    return (N.Fold(node.op), N.Map(node.g))


MAP_DISTRIBUTION = Rule(
    name="map-distribution",
    window_size=1,
    matcher=_map_distribution,
    law="foldr (f . g) = fold f . map g   [f associative]",
)


def _fetch_fusion(window: tuple[N.Node, ...]) -> tuple[N.Node, ...] | None:
    outer, inner = window
    if not (isinstance(outer, N.Fetch) and isinstance(inner, N.Fetch)):
        return None
    # fetch f (fetch g A)[i] = A[g(f(i))]  =>  fetch (g . f)
    return (N.Fetch(Composed(inner.f, outer.f)),)


FETCH_FUSION = Rule(
    name="fetch-fusion",
    window_size=2,
    matcher=_fetch_fusion,
    law="fetch f . fetch g = fetch (g . f)",
)


def _send_fusion(window: tuple[N.Node, ...]) -> tuple[N.Node, ...] | None:
    outer, inner = window
    if not (isinstance(outer, N.PermSend) and isinstance(inner, N.PermSend)):
        return None
    # send f (send g A): element k lands at f(g(k))  =>  send (f . g)
    return (N.PermSend(Composed(outer.f, inner.f)),)


SEND_FUSION = Rule(
    name="send-fusion",
    window_size=2,
    matcher=_send_fusion,
    law="send f . send g = send (f . g)",
)


def _rotate_fusion(window: tuple[N.Node, ...]) -> tuple[N.Node, ...] | None:
    outer, inner = window
    if not (isinstance(outer, N.Rotate) and isinstance(inner, N.Rotate)):
        return None
    k = outer.k + inner.k
    if k == 0:
        return ()
    return (N.Rotate(k),)


ROTATE_FUSION = Rule(
    name="rotate-fusion",
    window_size=2,
    matcher=_rotate_fusion,
    law="rotate j . rotate k = rotate (j + k)   [derived from fetch fusion]",
)


def _rotate_row_fusion(window: tuple[N.Node, ...]) -> tuple[N.Node, ...] | None:
    outer, inner = window
    if not (isinstance(outer, N.RotateRow) and isinstance(inner, N.RotateRow)):
        return None
    df1, df2 = outer.df, inner.df
    return (N.RotateRow(lambda i, df1=df1, df2=df2: df1(i) + df2(i)),)


ROTATE_ROW_FUSION = Rule(
    name="rotate-row-fusion",
    window_size=2,
    matcher=_rotate_row_fusion,
    law="rotate_row f . rotate_row g = rotate_row (λi. f i + g i)",
)


def _rotate_col_fusion(window: tuple[N.Node, ...]) -> tuple[N.Node, ...] | None:
    outer, inner = window
    if not (isinstance(outer, N.RotateCol) and isinstance(inner, N.RotateCol)):
        return None
    df1, df2 = outer.df, inner.df
    return (N.RotateCol(lambda j, df1=df1, df2=df2: df1(j) + df2(j)),)


ROTATE_COL_FUSION = Rule(
    name="rotate-col-fusion",
    window_size=2,
    matcher=_rotate_col_fusion,
    law="rotate_col f . rotate_col g = rotate_col (λj. f j + g j)",
)


def _spmd_stage_merge(window: tuple[N.Node, ...]) -> tuple[N.Node, ...] | None:
    later, earlier = window
    if not (isinstance(later, N.Spmd) and isinstance(earlier, N.Spmd)):
        return None
    # SPMD fs1 . SPMD fs2 applies fs2's stages first
    return (N.Spmd(earlier.stages + later.stages),)


SPMD_STAGE_MERGE = Rule(
    name="spmd-stage-merge",
    window_size=2,
    matcher=_spmd_stage_merge,
    law="SPMD fs1 . SPMD fs2 = SPMD (fs2 ++ fs1)",
)


def _spmd_flattening(window: tuple[N.Node, ...]) -> tuple[N.Node, ...] | None:
    outer, nested, splitter = window
    # outer: SPMD [gf1] (global-only, single stage)
    if not (isinstance(outer, N.Spmd) and len(outer.stages) == 1):
        return None
    s1 = outer.stages[0]
    if s1.local is not None or s1.global_ is None:
        return None
    # nested: map (SPMD [(gf2, lf)]) — one stage, index-insensitive local
    if not (isinstance(nested, N.Map) and isinstance(nested.f, N.Spmd)):
        return None
    inner_spmd = nested.f
    if len(inner_spmd.stages) != 1:
        return None
    s2 = inner_spmd.stages[0]
    if s2.indexed:
        return None  # index-aware locals see different indices after flattening
    if not isinstance(splitter, N.Split):
        return None
    # sgf = gf1 . map gf2 . split P  (the segmented global function)
    inner_global = N.Map(s2.global_) if s2.global_ is not None else N.Id()
    sgf = N.compose_nodes(s1.global_, inner_global, N.Split(splitter.pattern))
    return (N.Spmd((N.Stage(global_=sgf, local=s2.local),)),)


SPMD_FLATTENING = Rule(
    name="spmd-flattening",
    window_size=3,
    matcher=_spmd_flattening,
    law=("SPMD [gf1] . map (SPMD [(gf2, lf)]) . split P "
         "= SPMD [(gf1 . map gf2 . split P, lf)]"),
)

def _gather_partition_elim(window: tuple[N.Node, ...]) -> tuple[N.Node, ...] | None:
    outer, inner = window
    if not (isinstance(outer, N.Gather) and isinstance(inner, N.Partition)):
        return None
    if outer.pattern is not None and outer.pattern != inner.pattern:
        return None  # gathering with a different pattern is a transposition
    return ()


GATHER_PARTITION_ELIM = Rule(
    name="gather-partition-elimination",
    window_size=2,
    matcher=_gather_partition_elim,
    law="gather . partition P = id",
)


#: The complete rule set of §4 (plus the derived rotation rules).
ALL_RULES = (
    MAP_FUSION,
    MAP_DISTRIBUTION,
    FETCH_FUSION,
    SEND_FUSION,
    ROTATE_FUSION,
    ROTATE_ROW_FUSION,
    ROTATE_COL_FUSION,
    GATHER_PARTITION_ELIM,
    SPMD_FLATTENING,
    SPMD_STAGE_MERGE,
)


def default_engine(*, max_passes: int = 200) -> RewriteEngine:
    """A rewrite engine loaded with all the paper's rules."""
    return RewriteEngine(ALL_RULES, max_passes=max_passes)
