"""The rewrite engine: meaning-preserving transformation of expressions.

A :class:`Rule` matches a *window* of adjacent steps in a composition chain
(``f . g . h`` viewed as the tuple ``(f, g, h)``, rightmost applied first)
and produces replacement steps.  The :class:`RewriteEngine` applies a rule
set bottom-up to fixpoint:

1. rewrite every sub-expression (children first),
2. slide each rule's window across the node's composition chain,
3. repeat until no rule fires (bounded by ``max_passes``).

Every application is recorded as a :class:`RewriteStep`, so optimisation
reports can show *which* law fired where — the paper's "compile time
optimisation ... systematically realised based on a class of transformation
rules", made inspectable.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

from repro.errors import RewriteError
from repro.scl import nodes as N

__all__ = ["Rule", "RewriteStep", "RewriteEngine"]

#: A window matcher: receives ``window_size`` adjacent steps and returns the
#: replacement steps, or ``None`` when the rule does not apply.
Matcher = Callable[[tuple[N.Node, ...]], "tuple[N.Node, ...] | None"]


@dataclasses.dataclass(frozen=True)
class Rule:
    """A named rewrite rule over composition windows."""

    name: str
    window_size: int
    matcher: Matcher
    law: str = ""  # human-readable statement, e.g. "map f . map g = map (f.g)"

    def try_apply(self, window: tuple[N.Node, ...]) -> tuple[N.Node, ...] | None:
        """Replacement steps if this rule matches ``window``, else ``None``."""
        if len(window) != self.window_size:
            return None
        return self.matcher(window)

    def __repr__(self) -> str:
        return f"Rule({self.name!r})"


@dataclasses.dataclass(frozen=True)
class RewriteStep:
    """A record of one rule application."""

    rule: str
    before: tuple[N.Node, ...]
    after: tuple[N.Node, ...]

    def __str__(self) -> str:
        from repro.scl.pretty import pretty

        b = " . ".join(pretty(n) for n in self.before)
        a = " . ".join(pretty(n) for n in self.after) or "id"
        return f"{self.rule}: {b}  ==>  {a}"


class RewriteEngine:
    """Applies a rule set to fixpoint, bottom-up."""

    def __init__(self, rules: Sequence[Rule], *, max_passes: int = 200):
        self.rules = list(rules)
        if max_passes <= 0:
            raise RewriteError(f"max_passes must be positive, got {max_passes}")
        #: Global budget of rule applications per :meth:`rewrite` call —
        #: bounds diverging rule sets even when they keep creating fresh
        #: sub-expressions.
        self.max_passes = max_passes

    def rewrite(self, node: N.Node) -> tuple[N.Node, list[RewriteStep]]:
        """Fully rewrite ``node``; returns the result and the step log."""
        steps: list[RewriteStep] = []
        out = self._rewrite(node, steps)
        return out, steps

    # ------------------------------------------------------------ internals

    def _rewrite(self, node: N.Node, steps: list[RewriteStep]) -> N.Node:
        node = self._rewrite_children(node, steps)
        while True:
            changed, node = self._apply_here(node, steps)
            if not changed:
                return node
            if len(steps) >= self.max_passes:
                raise RewriteError(
                    f"rewrite exceeded {self.max_passes} rule applications "
                    f"(diverging rule set?)")
            # a rewrite may have produced new sub-expressions — revisit them
            node = self._rewrite_children(node, steps)

    def _rewrite_children(self, node: N.Node, steps: list[RewriteStep]) -> N.Node:
        kids = node.children()
        if not kids:
            return node
        new_kids = tuple(self._rewrite(k, steps) for k in kids)
        if new_kids == kids:
            return node
        return node.replace_children(new_kids)

    def _apply_here(self, node: N.Node,
                    steps: list[RewriteStep]) -> tuple[bool, N.Node]:
        chain = node.steps if isinstance(node, N.Compose) else (node,)
        for rule in self.rules:
            w = rule.window_size
            if w > len(chain):
                continue
            for at in range(len(chain) - w + 1):
                window = chain[at: at + w]
                replacement = rule.try_apply(window)
                if replacement is None:
                    continue
                steps.append(RewriteStep(rule.name, window, replacement))
                new_chain = chain[:at] + tuple(replacement) + chain[at + w:]
                return True, N.compose_nodes(*new_chain)
        return False, node
