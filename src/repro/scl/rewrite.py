"""The rewrite engine: meaning-preserving transformation of expressions.

A :class:`Rule` matches a *window* of adjacent steps in a composition chain
(``f . g . h`` viewed as the tuple ``(f, g, h)``, rightmost applied first)
and produces replacement steps.  The :class:`RewriteEngine` applies a rule
set bottom-up to fixpoint:

1. rewrite every sub-expression (children first),
2. slide each rule's window across the node's composition chain,
3. repeat until no rule fires (bounded by ``max_passes``).

Every application is recorded as a :class:`RewriteStep`, so optimisation
reports can show *which* law fired where — the paper's "compile time
optimisation ... systematically realised based on a class of transformation
rules", made inspectable.

Besides the destructive fixpoint mode, :meth:`RewriteEngine.applications`
enumerates every expression reachable by exactly *one* rule application
anywhere in the tree, without modifying the input — the neighbour
generator that :mod:`repro.tune`'s beam search expands frontiers with.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Callable, Sequence

from repro.errors import RewriteError
from repro.scl import nodes as N

__all__ = ["Rule", "RewriteStep", "RewriteEngine", "RewriteBudgetExhausted"]

#: A window matcher: receives ``window_size`` adjacent steps and returns the
#: replacement steps, or ``None`` when the rule does not apply.
Matcher = Callable[[tuple[N.Node, ...]], "tuple[N.Node, ...] | None"]


@dataclasses.dataclass(frozen=True)
class Rule:
    """A named rewrite rule over composition windows."""

    name: str
    window_size: int
    matcher: Matcher
    law: str = ""  # human-readable statement, e.g. "map f . map g = map (f.g)"

    def try_apply(self, window: tuple[N.Node, ...]) -> tuple[N.Node, ...] | None:
        """Replacement steps if this rule matches ``window``, else ``None``."""
        if len(window) != self.window_size:
            return None
        return self.matcher(window)

    def __repr__(self) -> str:
        return f"Rule({self.name!r})"


@dataclasses.dataclass(frozen=True)
class RewriteStep:
    """A record of one rule application."""

    rule: str
    before: tuple[N.Node, ...]
    after: tuple[N.Node, ...]

    def __str__(self) -> str:
        from repro.scl.pretty import pretty

        b = " . ".join(pretty(n) for n in self.before)
        a = " . ".join(pretty(n) for n in self.after) or "id"
        return f"{self.rule}: {b}  ==>  {a}"


class RewriteBudgetExhausted(RuntimeWarning):
    """The ``max_passes`` rule-application budget ran out before fixpoint.

    Issued (once per :meth:`RewriteEngine.rewrite` call) when the engine
    was built with ``on_exhausted="warn"``; the partial rewrite is still
    returned, and the warning carries the budget and how many steps were
    actually applied so callers can react structurally instead of
    parsing a message.
    """

    def __init__(self, max_passes: int, applied: int):
        super().__init__(
            f"rewrite stopped after {applied} rule applications "
            f"(max_passes={max_passes}) without reaching a fixpoint; "
            f"returning the partial rewrite")
        self.max_passes = max_passes
        self.applied = applied


class RewriteEngine:
    """Applies a rule set to fixpoint, bottom-up."""

    def __init__(self, rules: Sequence[Rule], *, max_passes: int = 200,
                 on_exhausted: str = "raise"):
        self.rules = list(rules)
        if max_passes <= 0:
            raise RewriteError(f"max_passes must be positive, got {max_passes}")
        if on_exhausted not in ("raise", "warn"):
            raise RewriteError(
                f"on_exhausted must be 'raise' or 'warn', got {on_exhausted!r}")
        #: Global budget of rule applications per :meth:`rewrite` call —
        #: bounds diverging rule sets even when they keep creating fresh
        #: sub-expressions.
        self.max_passes = max_passes
        #: What to do when the budget runs out: ``"raise"`` a
        #: :class:`~repro.errors.RewriteError` (default), or ``"warn"``
        #: with :class:`RewriteBudgetExhausted` and return the partial
        #: rewrite plus its (truncated) step log.
        self.on_exhausted = on_exhausted

    def rewrite(self, node: N.Node) -> tuple[N.Node, list[RewriteStep]]:
        """Fully rewrite ``node``; returns the result and the step log."""
        steps: list[RewriteStep] = []
        exhausted: list[bool] = [False]
        out = self._rewrite(node, steps, exhausted)
        if exhausted[0]:
            warnings.warn(RewriteBudgetExhausted(self.max_passes, len(steps)),
                          stacklevel=2)
        return out, steps

    def applications(self, node: N.Node) -> list[tuple[N.Node, RewriteStep]]:
        """Enumerate single rule applications, non-destructively.

        Returns every ``(candidate, step)`` where ``candidate`` is the
        whole expression after exactly one rule application somewhere in
        the tree (any rule, any window position, any depth) and ``step``
        records the rule and the rewritten window.  ``node`` itself is
        never modified, nothing is applied transitively, and the
        ``max_passes`` budget is not consumed — this is the neighbour
        set of ``node`` in rewrite space, in deterministic
        (rule-order, position) order.
        """
        out: list[tuple[N.Node, RewriteStep]] = []
        chain = node.steps if isinstance(node, N.Compose) else (node,)
        for rule in self.rules:
            w = rule.window_size
            if w > len(chain):
                continue
            for at in range(len(chain) - w + 1):
                window = chain[at: at + w]
                replacement = rule.try_apply(window)
                if replacement is None:
                    continue
                new_chain = chain[:at] + tuple(replacement) + chain[at + w:]
                out.append((N.compose_nodes(*new_chain),
                            RewriteStep(rule.name, window, replacement)))
        if isinstance(node, N.Compose):
            # chain windows above already cover each element itself; only
            # descend *strictly inside* the elements to avoid duplicates
            for i, kid in enumerate(chain):
                for new_kid, step in self._child_applications(kid):
                    out.append((N.compose_nodes(
                        *chain[:i], new_kid, *chain[i + 1:]), step))
        else:
            out.extend(self._child_applications(node))
        return out

    # ------------------------------------------------------------ internals

    def _child_applications(
            self, node: N.Node) -> list[tuple[N.Node, RewriteStep]]:
        """Single applications strictly inside ``node``'s children."""
        out: list[tuple[N.Node, RewriteStep]] = []
        kids = node.children()
        for i, kid in enumerate(kids):
            for new_kid, step in self.applications(kid):
                new_kids = kids[:i] + (new_kid,) + kids[i + 1:]
                out.append((node.replace_children(new_kids), step))
        return out

    def _rewrite(self, node: N.Node, steps: list[RewriteStep],
                 exhausted: list[bool]) -> N.Node:
        node = self._rewrite_children(node, steps, exhausted)
        while True:
            if exhausted[0]:
                return node
            changed, node = self._apply_here(node, steps)
            if not changed:
                return node
            if len(steps) >= self.max_passes:
                if self.on_exhausted == "raise":
                    raise RewriteError(
                        f"rewrite exceeded {self.max_passes} rule applications "
                        f"(diverging rule set?)")
                exhausted[0] = True
                return node
            # a rewrite may have produced new sub-expressions — revisit them
            node = self._rewrite_children(node, steps, exhausted)

    def _rewrite_children(self, node: N.Node, steps: list[RewriteStep],
                          exhausted: list[bool]) -> N.Node:
        if exhausted[0]:
            return node
        kids = node.children()
        if not kids:
            return node
        new_kids = tuple(self._rewrite(k, steps, exhausted) for k in kids)
        if new_kids == kids:
            return node
        return node.replace_children(new_kids)

    def _apply_here(self, node: N.Node,
                    steps: list[RewriteStep]) -> tuple[bool, N.Node]:
        chain = node.steps if isinstance(node, N.Compose) else (node,)
        for rule in self.rules:
            w = rule.window_size
            if w > len(chain):
                continue
            for at in range(len(chain) - w + 1):
                window = chain[at: at + w]
                replacement = rule.try_apply(window)
                if replacement is None:
                    continue
                steps.append(RewriteStep(rule.name, window, replacement))
                new_chain = chain[:at] + tuple(replacement) + chain[at + w:]
                return True, N.compose_nodes(*new_chain)
        return False, node
