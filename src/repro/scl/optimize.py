"""Cost-guided optimisation of skeleton expressions.

:func:`estimate_cost` prices an expression by **lowering it to the same
plan the machine executes** (:mod:`repro.plan`) and walking that
instruction stream with :func:`repro.plan.cost.plan_cost` — predicted
and simulated cost describe the identical program, which is what lets
the test-suite check the model's rankings against simulated makespans.

:func:`optimize` chooses among the programs reachable by the §4 rewrite
rules — the mechanised version of the paper's "compile time optimisation
can be systematically realised based on a class of transformation
rules".  Two strategies:

* ``strategy="search"`` (default) — :func:`repro.tune.tune_expression`'s
  beam search: every candidate is scored through the *whole* pipeline
  (lower → ``plan.opt`` passes → ``plan.cost``), so a symbolic rewrite
  is only taken when it improves the plan the machine will actually
  run.  Rewrites the post-lowering passes recover anyway (map fusion,
  rotation folding) tie on cost and are accepted for the smaller
  expression; rewrites that *concentrate* traffic (e.g. fusing two
  sparse fetches into one high-degree exchange) price worse and are
  declined — per law, not all-or-nothing.
* ``strategy="greedy"`` — the original driver, kept as the fallback and
  the test oracle: apply every rule to fixpoint, price original and
  result on their **raw** lowerings with :func:`estimate_cost`, and
  accept the whole package only if it is predicted no slower.

Expressions that have no plan form — ``FoldrFused`` (inherently
sequential), ``Partition``/``Gather`` (data ingress/egress), grid
skeletons priced without a grid — fall back to the original
expression-level model, whose per-node formulas the plan model
deliberately preserves, so comparisons *across* the two paths (e.g. the
map-distribution crossover between ``foldr`` and ``fold . map``) remain
meaningful under both strategies.

The model is deliberately coarse (it prices *structure*, not user code —
each opaque function application costs ``fn_ops`` elementary operations).
Its job is to rank alternatives, and the ablation benchmarks check its
rankings against simulated execution.
"""

from __future__ import annotations

import dataclasses

from repro.machine.cost import MachineSpec, PERFECT
# sys.modules binding (see repro.scl.compile for why): survives both import
# orders of the repro.plan <-> repro.scl cycle and the package-attribute
# shadowing of the `lower` submodule by the `lower` function.
import repro.plan.lower  # noqa: F401  (registers the module in sys.modules)
import sys

from repro.plan.cost import ExprCost, ceil_log2, plan_cost
from repro.scl import nodes as N

_plan_lower = sys.modules["repro.plan.lower"]

__all__ = ["ExprCost", "estimate_cost", "optimize", "OptimizeReport"]

_ceil_log2 = ceil_log2


def estimate_cost(node: N.Node, *, n: int, spec: MachineSpec = PERFECT,
                  fn_ops: float = 1.0, element_bytes: int | None = None) -> ExprCost:
    """Predicted cost of ``node`` over ``n`` components.

    ``fn_ops`` is the assumed per-element cost (elementary operations) of
    each opaque function application; ``element_bytes`` the wire size of a
    component (defaults to one machine word).
    """
    try:
        plan = _plan_lower.lower(node, n, None)
    except Exception:
        return _legacy_estimate(node, n=n, spec=spec, fn_ops=fn_ops,
                                element_bytes=element_bytes)
    return plan_cost(plan, spec=spec, fn_ops=fn_ops,
                     element_bytes=element_bytes)


def _legacy_estimate(node: N.Node, *, n: int, spec: MachineSpec,
                     fn_ops: float, element_bytes: int | None) -> ExprCost:
    """Expression-level pricing for nodes with no plan form."""
    eb = spec.word_bytes if element_bytes is None else element_bytes
    barrier = (spec.latency + spec.send_overhead + spec.recv_overhead) * _ceil_log2(max(n, 1))
    msg = spec.transfer_time(eb) + spec.send_overhead + spec.recv_overhead
    fn_time = spec.compute_time(fn_ops)

    def go(node: N.Node, n: int) -> ExprCost:
        if isinstance(node, N.Id):
            return ExprCost(0.0, 0, 0)
        if isinstance(node, N.Compose):
            total = ExprCost(0.0, 0, 0)
            for step in node.steps:
                total = total + go(step, n)
            return total
        if isinstance(node, N.Map):
            if isinstance(node.f, N.Node):
                return go(node.f, n) + ExprCost(barrier, 0, 1)
            parts = node.f.parts if hasattr(node.f, "parts") else (node.f,)
            return ExprCost(fn_time * len(parts) + barrier, 0, 1)
        if isinstance(node, (N.IMap, N.Farm)):
            return ExprCost(fn_time + barrier, 0, 1)
        if isinstance(node, (N.Fold, N.Scan)):
            # log-n combine rounds; the rounds themselves are the
            # synchronisation, so no separate barrier term
            rounds = _ceil_log2(max(n, 1))
            return ExprCost(rounds * (msg + fn_time), rounds * n // 2, 1)
        if isinstance(node, N.FoldrFused):
            # inherently sequential: n combine steps on one processor
            return ExprCost(n * 2 * fn_time, 0, 0)
        if isinstance(node, (N.Rotate, N.RotateRow, N.RotateCol,
                             N.Fetch, N.AlignFetch, N.PermSend, N.SendNode)):
            # one message in and out per component, overlapped across procs
            return ExprCost(msg, n, 1)
        if isinstance(node, (N.Brdcast, N.ApplyBrdcast)):
            rounds = _ceil_log2(max(n, 1))
            return ExprCost(rounds * msg, max(n - 1, 0), 1)
        if isinstance(node, N.Split):
            return ExprCost(barrier, 0, 1)
        if isinstance(node, N.Combine):
            return ExprCost(barrier, 0, 1)
        if isinstance(node, (N.Partition, N.Gather)):
            # full redistribution: the whole array crosses the root's link
            # plus a log-depth tree of message startups
            rounds = _ceil_log2(max(n, 1))
            return ExprCost(
                rounds * (spec.latency + spec.send_overhead + spec.recv_overhead)
                + n * eb / spec.bandwidth,
                max(n - 1, 0), 1)
        if isinstance(node, N.Spmd):
            total = ExprCost(0.0, 0, 0)
            for stage in node.stages:
                if stage.local is not None:
                    total = total + ExprCost(fn_time, 0, 0)
                if stage.global_ is not None:
                    total = total + go(stage.global_, n)
                total = total + ExprCost(barrier, 0, 1)
            return total
        if isinstance(node, N.IterFor):
            body = go(node.body(0), n)
            return body.scaled(node.n)
        return ExprCost(0.0, 0, 0)

    return go(node, n)


@dataclasses.dataclass(frozen=True)
class OptimizeReport:
    """Outcome of :func:`optimize`: the programs, costs and rule trace."""

    original: N.Node
    optimized: N.Node
    cost_before: ExprCost
    cost_after: ExprCost
    steps: tuple

    @property
    def accepted(self) -> bool:
        """True when the rewritten form was predicted no slower."""
        return self.optimized is not self.original

    @property
    def speedup(self) -> float:
        """Predicted ratio of original to optimised time."""
        if self.cost_after.seconds == 0:
            return float("inf") if self.cost_before.seconds > 0 else 1.0
        return self.cost_before.seconds / self.cost_after.seconds

    def __str__(self) -> str:
        from repro.scl.pretty import pretty

        lines = [f"original : {pretty(self.original)}",
                 f"optimised: {pretty(self.optimized)}"]
        for s in self.steps:
            lines.append(f"  applied {s.rule}")
        lines.append(
            f"predicted: {self.cost_before.seconds:.3e}s -> "
            f"{self.cost_after.seconds:.3e}s "
            f"({self.cost_before.messages} -> {self.cost_after.messages} msgs, "
            f"{self.cost_before.barriers} -> {self.cost_after.barriers} barriers)")
        return "\n".join(lines)


def optimize(node: N.Node, *, n: int, spec: MachineSpec = PERFECT,
             fn_ops: float = 1.0, element_bytes: int | None = None,
             rules=None, strategy: str = "search", beam: int = 4,
             topo=None, grid: tuple[int, int] | None = None) -> OptimizeReport:
    """Optimise ``node`` with the §4 rules under ``strategy`` (see the
    module docstring for the two strategies).

    ``beam`` and ``topo`` (a Topology or its signature — the target
    interconnect the candidate plans are priced for) only apply to
    ``strategy="search"``; ``grid`` names the 2-D process grid for
    expressions using grid skeletons.  Under ``"greedy"`` all the
    paper's rules are individually improving against the raw lowering,
    so in practice the rewritten form always wins; the cost guard
    protects against user-supplied rule sets.
    """
    if strategy == "search":
        from repro.tune import tune_expression

        res = tune_expression(node, nprocs=n, grid=grid, spec=spec,
                              topo=topo, rules=rules, beam=beam,
                              fn_ops=fn_ops, element_bytes=element_bytes)
        if not res.improved:
            return OptimizeReport(node, node, res.original.cost,
                                  res.original.cost, ())
        return OptimizeReport(node, res.best.expr, res.original.cost,
                              res.best.cost, res.best.steps)
    if strategy != "greedy":
        raise ValueError(
            f"strategy must be 'search' or 'greedy', got {strategy!r}")

    from repro.scl.rewrite import RewriteEngine
    from repro.scl.rules import ALL_RULES

    engine = RewriteEngine(ALL_RULES if rules is None else rules)
    rewritten, steps = engine.rewrite(node)
    before = estimate_cost(node, n=n, spec=spec, fn_ops=fn_ops,
                           element_bytes=element_bytes)
    after = estimate_cost(rewritten, n=n, spec=spec, fn_ops=fn_ops,
                          element_bytes=element_bytes)
    if after.seconds <= before.seconds:
        return OptimizeReport(node, rewritten, before, after, tuple(steps))
    return OptimizeReport(node, node, before, before, ())
