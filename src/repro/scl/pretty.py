"""Human-readable rendering of skeleton expressions.

``pretty`` prints expressions in the paper's functional notation, e.g.
``fold (+) . map square`` or
``SPMD [(gf . map gf2 . split Block(4), lf)]``, which is how rewrite traces
and optimisation reports display programs.
"""

from __future__ import annotations

from typing import Any

from repro.scl import nodes as N
from repro.util.functional import Composed

__all__ = ["pretty"]


def _fn_name(f: Any) -> str:
    if isinstance(f, N.Node):
        return f"({pretty(f)})"
    if isinstance(f, Composed):
        return "(" + " . ".join(_fn_name(p) for p in f.parts) + ")"
    name = getattr(f, "__name__", None)
    if name and name != "<lambda>":
        return name
    return "<fn>"


def pretty(node: N.Node) -> str:
    """Render an expression in SCL notation."""
    if isinstance(node, N.Id):
        return "id"
    if isinstance(node, N.Compose):
        return " . ".join(pretty(s) for s in node.steps)
    if isinstance(node, N.Map):
        return f"map {_fn_name(node.f)}"
    if isinstance(node, N.IMap):
        return f"imap {_fn_name(node.f)}"
    if isinstance(node, N.Fold):
        return f"fold {_fn_name(node.op)}"
    if isinstance(node, N.Scan):
        return f"scan {_fn_name(node.op)}"
    if isinstance(node, N.FoldrFused):
        return f"foldr ({_fn_name(node.op)} . {_fn_name(node.g)})"
    if isinstance(node, N.Rotate):
        return f"rotate {node.k}"
    if isinstance(node, N.RotateRow):
        return f"rotate_row {_fn_name(node.df)}"
    if isinstance(node, N.RotateCol):
        return f"rotate_col {_fn_name(node.df)}"
    if isinstance(node, N.Fetch):
        return f"fetch {_fn_name(node.f)}"
    if isinstance(node, N.AlignFetch):
        return f"align id (fetch {_fn_name(node.f)})"
    if isinstance(node, N.PermSend):
        return f"send {_fn_name(node.f)}"
    if isinstance(node, N.SendNode):
        return f"send* {_fn_name(node.f)}"
    if isinstance(node, N.Brdcast):
        return f"brdcast {node.a!r}"
    if isinstance(node, N.ApplyBrdcast):
        return f"applybrdcast {_fn_name(node.f)} {node.i!r}"
    if isinstance(node, N.Split):
        return f"split {node.pattern!r}"
    if isinstance(node, N.Combine):
        return "combine"
    if isinstance(node, N.Partition):
        return f"partition {node.pattern!r}"
    if isinstance(node, N.Gather):
        return "gather" if node.pattern is None else f"gather {node.pattern!r}"
    if isinstance(node, N.Farm):
        return f"farm {_fn_name(node.f)} <env>"
    if isinstance(node, N.Spmd):
        stages = ", ".join(_pretty_stage(s) for s in node.stages)
        return f"SPMD [{stages}]"
    if isinstance(node, N.IterFor):
        return f"iterFor {node.n} <body>"
    return repr(node)


def _pretty_stage(stage: N.Stage) -> str:
    g = pretty(stage.global_) if stage.global_ is not None else "id"
    loc = _fn_name(stage.local) if stage.local is not None else "id"
    marker = "imap " if stage.indexed else ""
    return f"({g}, {marker}{loc})"
