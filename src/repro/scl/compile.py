"""The SCL compiler: skeleton expressions → message-passing programs.

The paper closes with "a prototype SCL compiler is currently under
development"; this module is that compiler for the simulated machine.  A
skeleton expression (one :class:`~repro.scl.nodes.Node`) over a ParArray
with one component per processor — a 1-D vector, or a 2-D grid for the
``rotate_row``/``rotate_col`` mesh operations — is compiled to an SPMD
virtual-processor program and executed on a
:class:`~repro.machine.simulator.Machine`:

* ``Map``/``IMap``/``Farm``/SPMD locals become local computation, charged
  to the cost model through :func:`base_fragment` annotations,
* ``Rotate``/``Fetch``/``PermSend``/``SendNode`` become point-to-point
  messages (the receiver set of an index function is computed by
  evaluating it over the index space — index functions are pure),
* ``Fold``/``Scan``/``Brdcast``/``ApplyBrdcast`` become the tree /
  doubling collectives of :mod:`repro.machine.collectives`,
* ``Split P`` becomes a communicator split (processor groups), ``Map`` of
  a sub-expression then runs *inside* each group, and ``Combine`` returns
  to the parent group — nested parallelism mapped to MPI-style groups
  exactly as §2.1 prescribes.

The compiled program carries real data, so
:func:`run_expression`'s result can be (and in the test-suite, is)
cross-checked against the pure interpreter — the compiler's correctness
statement — while the run's makespan prices the program on the machine.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.core.pararray import ParArray
from repro.errors import SkeletonError
from repro.machine import collectives as C
from repro.machine.api import Comm
from repro.machine.cost import estimate_nbytes
from repro.machine.simulator import Machine, ProcEnv, RunResult
from repro.scl import nodes as N

__all__ = ["base_fragment", "fragment_ops", "CompiledProgram", "run_expression"]

#: Default operation count charged per opaque base-language application.
DEFAULT_FRAGMENT_OPS = 10.0

_EXCHANGE_TAG = 900_001


def base_fragment(ops: float | Callable[[Any], float]):
    """Annotate a base-language callable with its operation cost.

    ``ops`` is either a constant or a function of the fragment's input
    (e.g. ``lambda xs: len(xs) * 5`` for a linear pass).  The compiler
    charges this to the machine's cost model at every application::

        @base_fragment(ops=lambda block: block.size * 3)
        def smooth(block): ...
    """

    def wrap(fn):
        fn.scl_ops = ops
        return fn

    return wrap


def fragment_ops(fn: Any, value: Any, default: float = DEFAULT_FRAGMENT_OPS) -> float:
    """The operation count a fragment application charges for ``value``."""
    ops = getattr(fn, "scl_ops", default)
    if callable(ops):
        return float(ops(value))
    return float(ops)


@dataclasses.dataclass
class _Grouped:
    """Marker value: this processor's slice of a split (nested) array."""

    comm: Comm
    parent: Comm
    local: Any


@dataclasses.dataclass(frozen=True)
class CompiledProgram:
    """A skeleton expression bound to a machine, ready to run."""

    expr: N.Node
    machine: Machine
    fragment_default_ops: float = DEFAULT_FRAGMENT_OPS

    def run(self, pa: ParArray) -> tuple[Any, RunResult]:
        """Execute on the machine; returns (result, run statistics).

        ``pa`` must have exactly one component per processor: 1-D arrays
        map rank ``r`` to component ``r``; 2-D grids map row-major, and
        enable the grid communication nodes (``RotateRow``/``RotateCol``).
        The result is a ParArray of the final per-processor values (same
        shape as the input), or the reduction scalar for expressions
        ending in ``Fold``.
        """
        if not isinstance(pa, ParArray) or pa.ndim not in (1, 2):
            raise SkeletonError("compiled programs take a 1-D or 2-D ParArray input")
        if pa.size != self.machine.nprocs:
            raise SkeletonError(
                f"expression input has {pa.size} components but the machine "
                f"has {self.machine.nprocs} processors")
        values = pa.to_list()  # row-major
        shape = pa.shape
        default = self.fragment_default_ops
        expr = self.expr

        def program(env: ProcEnv):
            comm = Comm.world(env)
            local = values[env.pid]
            result = yield from _exec(expr, env, comm, local, default,
                                      grid=shape if len(shape) == 2 else None)
            return result

        res = self.machine.run(program)
        if res.values and isinstance(res.values[0], _Scalar):
            return res.values[0].value, res
        if len(shape) == 2:
            rows, cols = shape
            return ParArray(
                {(i, j): res.values[i * cols + j]
                 for i in range(rows) for j in range(cols)}, shape), res
        return ParArray(res.values), res


def run_expression(expr: N.Node, pa: ParArray, machine: Machine, *,
                   fragment_default_ops: float = DEFAULT_FRAGMENT_OPS,
                   ) -> tuple[Any, RunResult]:
    """Compile ``expr`` and run it on ``machine`` over ``pa`` (see
    :class:`CompiledProgram`)."""
    return CompiledProgram(expr, machine, fragment_default_ops).run(pa)


@dataclasses.dataclass(frozen=True)
class _Scalar:
    """Wrapper distinguishing a reduction result from an array component."""

    value: Any


def _charge(env: ProcEnv, fn: Any, value: Any, default: float):
    return env.work(fragment_ops(fn, value, default))


def _exec(node: N.Node, env: ProcEnv, comm: Comm, local: Any, default: float,
          grid: tuple[int, int] | None = None):
    """Execute ``node`` on this processor; yields simulator requests and
    returns the new local value.

    ``grid`` carries the processor-grid shape for 2-D inputs; grid
    communication nodes (``RotateRow``/``RotateCol``) require it, 1-D
    communication nodes reject it.
    """
    if isinstance(node, N.Id):
        return local

    if isinstance(node, N.Compose):
        for step in reversed(node.steps):
            local = yield from _exec(step, env, comm, local, default, grid)
        return local

    if isinstance(node, N.Map):
        if isinstance(node.f, N.Node):
            if not isinstance(local, _Grouped):
                raise SkeletonError(
                    "map of a sub-expression requires a split (nested) "
                    "configuration — compile `... . split P` first")
            inner = yield from _exec(node.f, env, local.comm, local.local, default)
            return _Grouped(local.comm, local.parent, inner)
        _no_groups(local, "map of a base fragment")
        yield _charge(env, node.f, local, default)
        return node.f(local)

    if isinstance(node, N.IMap):
        _no_groups(local, "imap")
        yield _charge(env, node.f, local, default)
        if grid is not None:
            return node.f(divmod(comm.rank, grid[1]), local)
        return node.f(comm.rank, local)

    if isinstance(node, N.RotateRow):
        _require_grid(grid, "rotate_row")
        rows, cols = grid
        i, j = divmod(comm.rank, cols)
        k = node.df(i) % cols
        if k == 0:
            return local
        dst = i * cols + (j - k) % cols
        src = i * cols + (j + k) % cols
        yield comm.send(dst, local, tag=_EXCHANGE_TAG,
                        nbytes=estimate_nbytes(local, env.spec.word_bytes))
        msg = yield comm.recv(src, tag=_EXCHANGE_TAG)
        return msg.payload

    if isinstance(node, N.RotateCol):
        _require_grid(grid, "rotate_col")
        rows, cols = grid
        i, j = divmod(comm.rank, cols)
        k = node.df(j) % rows
        if k == 0:
            return local
        dst = ((i - k) % rows) * cols + j
        src = ((i + k) % rows) * cols + j
        yield comm.send(dst, local, tag=_EXCHANGE_TAG,
                        nbytes=estimate_nbytes(local, env.spec.word_bytes))
        msg = yield comm.recv(src, tag=_EXCHANGE_TAG)
        return msg.payload

    if isinstance(node, N.Farm):
        _no_groups(local, "farm")
        yield _charge(env, node.f, local, default)
        return node.f(node.env, local)

    if isinstance(node, N.Fold):
        acc = yield from C.reduce(comm, local, _charging_op(env, node.op, default))
        acc = yield from C.bcast(comm, acc, root=0)
        return _Scalar(acc)

    if isinstance(node, N.Scan):
        _no_grid(grid, "scan")
        out = yield from C.scan(comm, local, _charging_op(env, node.op, default))
        return out

    if isinstance(node, N.Rotate):
        _no_grid(grid, "rotate")
        # out[i] = A[(i + k) mod p]: receive from rank+k, send to rank-k
        p = comm.size
        k = node.k % p
        if k == 0:
            return local
        yield comm.send((comm.rank - k) % p, local, tag=_EXCHANGE_TAG,
                        nbytes=estimate_nbytes(local, env.spec.word_bytes))
        msg = yield comm.recv((comm.rank + k) % p, tag=_EXCHANGE_TAG)
        return msg.payload

    if isinstance(node, N.Fetch):
        _no_grid(grid, "fetch")
        p = comm.size
        src = node.f(comm.rank)
        if not (0 <= src < p):
            raise SkeletonError(f"fetch: source {src} out of range 0..{p - 1}")
        # who fetches from me? evaluate the (pure) index map over all ranks
        readers = [j for j in range(p) if node.f(j) == comm.rank]
        for j in readers:
            if j != comm.rank:
                yield comm.send(j, local, tag=_EXCHANGE_TAG,
                                nbytes=estimate_nbytes(local, env.spec.word_bytes))
        if src == comm.rank:
            return local
        msg = yield comm.recv(src, tag=_EXCHANGE_TAG)
        return msg.payload

    if isinstance(node, N.AlignFetch):
        _no_grid(grid, "align-fetch")
        p = comm.size
        src = node.f(comm.rank)
        if not (0 <= src < p):
            raise SkeletonError(f"align-fetch: source {src} out of range 0..{p - 1}")
        readers = [j for j in range(p) if node.f(j) == comm.rank and j != comm.rank]
        for j in readers:
            yield comm.send(j, local, tag=_EXCHANGE_TAG,
                            nbytes=estimate_nbytes(local, env.spec.word_bytes))
        if src == comm.rank:
            return (local, local)
        msg = yield comm.recv(src, tag=_EXCHANGE_TAG)
        return (local, msg.payload)

    if isinstance(node, N.PermSend):
        _no_grid(grid, "send")
        p = comm.size
        dst = node.f(comm.rank)
        if not (0 <= dst < p):
            raise SkeletonError(f"send: destination {dst} out of range 0..{p - 1}")
        sources = [k for k in range(p) if node.f(k) == comm.rank]
        if len(sources) != 1:
            raise SkeletonError(
                f"send: index {comm.rank} receives {len(sources)} elements — "
                f"the index map is not a permutation")
        if dst != comm.rank:
            yield comm.send(dst, local, tag=_EXCHANGE_TAG,
                            nbytes=estimate_nbytes(local, env.spec.word_bytes))
        (src,) = sources
        if src == comm.rank:
            return local
        msg = yield comm.recv(src, tag=_EXCHANGE_TAG)
        return msg.payload

    if isinstance(node, N.SendNode):
        _no_grid(grid, "send")
        p = comm.size
        for dst in node.f(comm.rank):
            if not (0 <= dst < p):
                raise SkeletonError(
                    f"send: destination {dst} out of range 0..{p - 1}")
            if dst == comm.rank:
                continue
            yield comm.send(dst, local, tag=_EXCHANGE_TAG,
                            nbytes=estimate_nbytes(local, env.spec.word_bytes))
        arrivals = []
        for k in range(p):
            for dst in node.f(k):
                if dst == comm.rank:
                    if k == comm.rank:
                        arrivals.append((k, local))
                    else:
                        msg = yield comm.recv(k, tag=_EXCHANGE_TAG)
                        arrivals.append((k, msg.payload))
        arrivals.sort(key=lambda kv: kv[0])
        return [v for _k, v in arrivals]

    if isinstance(node, N.Brdcast):
        value = yield from C.bcast(comm, node.a if comm.rank == 0 else None)
        return (value, local)

    if isinstance(node, N.ApplyBrdcast):
        if grid is not None and isinstance(node.i, tuple):
            root = node.i[0] * grid[1] + node.i[1]
        else:
            root = node.i if isinstance(node.i, int) else node.i[0]
        if comm.rank == root:
            yield _charge(env, node.f, local, default)
            piece = node.f(local)
        else:
            piece = None
        piece = yield from C.bcast(comm, piece, root=root)
        return (piece, local)

    if isinstance(node, N.Split):
        _no_grid(grid, "split")
        groups = node.pattern.split(list(range(comm.size)))
        my_group = None
        for idx in groups.indices():
            if comm.rank in list(groups[idx]):
                my_group = list(groups[idx])
                break
        if my_group is None:
            raise SkeletonError(f"split pattern lost rank {comm.rank}")
        sub = comm.subgroup(my_group)
        return _Grouped(sub, comm, local)

    if isinstance(node, N.Combine):
        if not isinstance(local, _Grouped):
            raise SkeletonError("combine without a preceding split")
        return local.local

    if isinstance(node, N.Spmd):
        _no_groups(local, "SPMD")
        for stage in node.stages:
            if stage.local is not None:
                yield _charge(env, stage.local, local, default)
                if stage.indexed:
                    idx = (divmod(comm.rank, grid[1])
                           if grid is not None else comm.rank)
                    local = stage.local(idx, local)
                else:
                    local = stage.local(local)
            if stage.global_ is not None:
                local = yield from _exec(stage.global_, env, comm, local,
                                         default, grid)
        return local

    if isinstance(node, N.IterFor):
        for i in range(node.n):
            local = yield from _exec(node.body(i), env, comm, local,
                                     default, grid)
        return local

    raise SkeletonError(
        f"the SCL compiler does not support {type(node).__name__} nodes")


def _require_grid(grid, who: str) -> None:
    if grid is None:
        raise SkeletonError(
            f"{who} requires a 2-D processor grid — run the expression over "
            f"a 2-D ParArray")


def _no_grid(grid, who: str) -> None:
    if grid is not None:
        raise SkeletonError(f"{who} requires a 1-D configuration, got a grid")


def _no_groups(local: Any, who: str) -> None:
    if isinstance(local, _Grouped):
        raise SkeletonError(
            f"{who} cannot be applied to a split configuration: the flat "
            f"element semantics would diverge from the nested semantics — "
            f"use `map (<sub-expression>)` or `combine` first")


def _charging_op(env: ProcEnv, op: Callable[[Any, Any], Any], default: float):
    """Reduction operators run synchronously inside the collectives'
    generator frames, so their CPU cost cannot be yielded from here; the
    message rounds carry the synchronisation cost (estimate_cost prices
    the combines analytically).  The operator is passed through unwrapped.
    """
    return op
