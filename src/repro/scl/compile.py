"""The SCL compiler: skeleton expressions → plans → machine programs.

The paper closes with "a prototype SCL compiler is currently under
development"; this module is that compiler for the simulated machine.  A
skeleton expression (one :class:`~repro.scl.nodes.Node`) over a ParArray
with one component per processor — a 1-D vector, or a 2-D grid for the
``rotate_row``/``rotate_col`` mesh operations — is compiled in two
stages:

1. **Lowering** (:func:`repro.plan.lower.lower`): the expression tree is
   flattened once into a typed SPMD instruction sequence
   (:class:`~repro.plan.ir.Plan`).  Index functions are evaluated over
   the whole index space here — communication becomes static per-rank
   send/receive tables — and shape errors (flat skeletons on split
   configurations, grid mismatches, non-permutation sends) are raised
   before anything runs.  Plans are cached per ``(expr, nprocs, grid)``.
2. **Execution** (:func:`repro.machine.plan_exec.execute_plan`): every
   virtual processor runs the same plan through one interpreter loop —
   ``Map``/``IMap``/``Farm``/SPMD locals charge their
   :func:`base_fragment` cost and apply, exchanges replay the tables as
   point-to-point messages, ``Fold``/``Scan``/``Brdcast`` use the tree /
   doubling collectives of :mod:`repro.machine.collectives`, and
   ``split``/``combine`` map to communicator groups exactly as §2.1
   prescribes.

Between the two stages sits the plan optimizer (:mod:`repro.plan.opt`),
on by default: lowering is asked for the plan optimized for this
machine's spec and topology (fusion, exchange coalescing, collective
selection — all cost-guarded to never predict worse), and eligible
fault-free, untraced runs execute through the scripted SoA data plane of
:mod:`repro.plan.vexec` instead of the per-instruction interpreter.
``opt="off"`` (or a hand-built :class:`~repro.plan.opt.OptConfig`)
restores the raw path — the cache keys raw and optimized plans
separately, so the two never alias.

The compiled program carries real data, so :func:`run_expression`'s
result can be (and in the test-suite, is) cross-checked against the pure
interpreter — the compiler's correctness statement — while the run's
makespan prices the program on the machine.  The optimizer's
:func:`~repro.scl.optimize.estimate_cost` prices the *same* plan the
machine executes.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.core.pararray import ParArray
from repro.errors import SkeletonError
from repro.machine.simulator import Machine, RunResult
from repro.plan.ir import (
    DEFAULT_FRAGMENT_OPS,
    Scalar as _Scalar,
    base_fragment,
    fragment_ops,
)
# Bind the lowering module through sys.modules: `repro.plan.lower` imports
# `repro.scl.nodes`, whose package __init__ imports this module back, so the
# `lower` *name* may not exist yet at either import order — and the package
# attribute `repro.plan.lower` is shadowed by the function of the same name
# once `repro.plan.__init__` finishes.  The sys.modules entry is always the
# module itself.
import repro.plan.lower  # noqa: F401  (registers the module in sys.modules)
import sys

from repro.scl import nodes as N

_plan_lower = sys.modules["repro.plan.lower"]

__all__ = ["base_fragment", "fragment_ops", "CompiledProgram",
           "run_expression", "resolve_opt"]


def resolve_opt(opt: Any, machine: Machine):
    """Normalise an ``opt`` argument to an OptConfig (or ``None``).

    ``"auto"`` builds the machine's default config (all passes on, priced
    on its spec/topology); ``"off"``/``None``/``False`` disables the
    optimizer; anything else must already be an
    :class:`~repro.plan.opt.OptConfig` and passes through.
    """
    if opt == "auto":
        from repro.plan.opt import OptConfig

        return OptConfig.for_machine(machine)
    if opt in ("off", None, False):
        return None
    return opt


@dataclasses.dataclass(frozen=True)
class CompiledProgram:
    """A skeleton expression bound to a machine, ready to run."""

    expr: N.Node
    machine: Machine
    fragment_default_ops: float = DEFAULT_FRAGMENT_OPS
    #: Root span label on traced machines (the skeleton/program name the
    #: observability layer attributes every event to).
    label: str = "program"
    #: Plan-optimizer switch: ``"auto"`` (optimize for this machine),
    #: ``"off"`` / ``None`` (raw plan), or a prebuilt
    #: :class:`~repro.plan.opt.OptConfig`.
    opt: Any = "auto"
    #: Host-parallel switch: dispatch the data plane's fragment compute
    #: to the :mod:`repro.plan.pexec` worker pool.  Only affects runs
    #: that take the scripted path — faults, tracing, ``opt="off"`` and
    #: ineligible plans never touch the pool, and the pool itself starts
    #: lazily on the first actual dispatch.
    parallel: bool = False
    #: Pool width for ``parallel=True`` (``None`` → host CPU count).
    workers: int | None = None

    def run(self, pa: ParArray) -> tuple[Any, RunResult]:
        """Execute on the machine; returns (result, run statistics).

        ``pa`` must have exactly one component per processor: 1-D arrays
        map rank ``r`` to component ``r``; 2-D grids map row-major, and
        enable the grid communication nodes (``RotateRow``/``RotateCol``).
        The result is a ParArray of the final per-processor values (same
        shape as the input), or the reduction scalar for expressions
        ending in ``Fold``.

        Fault-free, untraced runs of flat optimized plans go through the
        scripted data plane (:mod:`repro.plan.vexec`) — bit-identical
        request stream, so the returned statistics match the interpreter.
        Traced or fault-injected machines always interpret.
        """
        from repro.machine.api import Comm
        from repro.machine.plan_exec import execute_plan

        if not isinstance(pa, ParArray) or pa.ndim not in (1, 2):
            raise SkeletonError("compiled programs take a 1-D or 2-D ParArray input")
        if pa.size != self.machine.nprocs:
            raise SkeletonError(
                f"expression input has {pa.size} components but the machine "
                f"has {self.machine.nprocs} processors")
        values = pa.to_list()  # row-major
        shape = pa.shape
        default = self.fragment_default_ops
        config = resolve_opt(self.opt, self.machine)
        plan = _plan_lower.lower(self.expr, self.machine.nprocs,
                     shape if len(shape) == 2 else None, opt=config)

        res: RunResult | None = None
        if config is not None and config.vectorize \
                and self.machine.faults is None \
                and not self.machine.record_trace:
            from repro.plan import vexec

            pool = None
            if self.parallel:
                from repro.plan import pexec

                pool = pexec.get_pool(self.workers)
            pre = vexec.precompute(plan, values, self.machine.spec, default,
                                   pool=pool)
            if pre is not None:
                res = self.machine.run(vexec.replay_program(*pre))
        if res is None:
            label = self.label

            def program(env):
                result = yield from execute_plan(plan, env, Comm.world(env),
                                                 values[env.pid], default,
                                                 label)
                return result

            res = self.machine.run(program)
        if res.values and isinstance(res.values[0], _Scalar):
            return res.values[0].value, res
        if len(shape) == 2:
            rows, cols = shape
            return ParArray(
                {(i, j): res.values[i * cols + j]
                 for i in range(rows) for j in range(cols)}, shape), res
        return ParArray(res.values), res


def run_expression(expr: N.Node, pa: ParArray, machine: Machine, *,
                   fragment_default_ops: float = DEFAULT_FRAGMENT_OPS,
                   label: str = "program",
                   opt: Any = "auto",
                   parallel: bool = False,
                   workers: int | None = None) -> tuple[Any, RunResult]:
    """Compile ``expr`` and run it on ``machine`` over ``pa`` (see
    :class:`CompiledProgram`)."""
    return CompiledProgram(expr, machine, fragment_default_ops, label,
                           opt, parallel, workers).run(pa)
