"""Interpreter: the semantics of skeleton expressions.

:func:`evaluate` maps every AST node onto the corresponding core-library
skeleton, so an expression means exactly what the equivalent direct calls
would compute.  The rewrite rules are *verified* against this interpreter:
a rule is sound iff evaluating the rewritten expression gives the same
result as the original on all inputs (the property-based tests sample that
universe).
"""

from __future__ import annotations

from typing import Any

from repro.core import communication as comm
from repro.core import config as cfg
from repro.core import elementary as elem
from repro.core.pararray import ParArray
from repro.errors import SkeletonError
from repro.runtime.executor import Executor
from repro.scl import nodes as N
from repro.util.functional import foldr

__all__ = ["evaluate"]


def evaluate(node: N.Node, value: Any, *,
             executor: Executor | str | None = None) -> Any:
    """Evaluate expression ``node`` applied to ``value``.

    ``value`` is usually a :class:`~repro.core.pararray.ParArray`; reduction
    nodes return scalars.  ``executor`` is threaded through to the data-
    parallel core skeletons.
    """
    if isinstance(node, N.Id):
        return value

    if isinstance(node, N.Compose):
        for step in reversed(node.steps):
            value = evaluate(step, value, executor=executor)
        return value

    if isinstance(node, N.Map):
        if isinstance(node.f, N.Node):
            inner = node.f
            return elem.parmap(
                lambda sub: evaluate(inner, sub, executor=executor), value)
        return elem.parmap(node.f, value, executor=executor)

    if isinstance(node, N.IMap):
        return elem.imap(node.f, value, executor=executor)

    if isinstance(node, N.Fold):
        return elem.fold(node.op, value, executor=executor)

    if isinstance(node, N.Scan):
        return elem.scan(node.op, value, executor=executor)

    if isinstance(node, N.FoldrFused):
        items = _as_items(value, "FoldrFused")
        if not items:
            raise SkeletonError("FoldrFused of an empty array is undefined")
        # op(g x0, op(g x1, ... op(g x_{n-2}, g x_{n-1})))
        return foldr(lambda x, acc: node.op(node.g(x), acc),
                     node.g(items[-1]), items[:-1])

    if isinstance(node, N.Rotate):
        return comm.rotate(node.k, value)

    if isinstance(node, N.RotateRow):
        return comm.rotate_row(node.df, value)

    if isinstance(node, N.RotateCol):
        return comm.rotate_col(node.df, value)

    if isinstance(node, N.Fetch):
        return comm.fetch(node.f, value)

    if isinstance(node, N.AlignFetch):
        return cfg.align(value, comm.fetch(node.f, value))

    if isinstance(node, N.PermSend):
        return _perm_send(node.f, value)

    if isinstance(node, N.SendNode):
        return comm.send(node.f, value)

    if isinstance(node, N.Brdcast):
        return comm.brdcast(node.a, value)

    if isinstance(node, N.ApplyBrdcast):
        return comm.apply_brdcast(node.f, node.i, value)

    if isinstance(node, N.Split):
        return cfg.split(node.pattern, value)

    if isinstance(node, N.Combine):
        return cfg.combine(value)

    if isinstance(node, N.Partition):
        return cfg.partition(node.pattern, value)

    if isinstance(node, N.Gather):
        return cfg.gather(value, node.pattern)

    if isinstance(node, N.Farm):
        from repro.core.computational import farm

        return farm(node.f, node.env, value, executor=executor)

    if isinstance(node, N.Spmd):
        for stage in node.stages:
            if stage.local is not None:
                if stage.indexed:
                    value = elem.imap(stage.local, value, executor=executor)
                else:
                    value = elem.parmap(stage.local, value, executor=executor)
            if stage.global_ is not None:
                value = evaluate(stage.global_, value, executor=executor)
        return value

    if isinstance(node, N.IterFor):
        for i in range(node.n):
            value = evaluate(node.body(i), value, executor=executor)
        return value

    raise SkeletonError(f"cannot evaluate unknown node {node!r}")


def _as_items(value: Any, who: str) -> list[Any]:
    if isinstance(value, ParArray):
        if value.ndim != 1:
            raise SkeletonError(f"{who} requires a 1-D array, got shape {value.shape}")
        return value.to_list()
    return list(value)


def _perm_send(f: Any, pa: ParArray) -> ParArray:
    """``out[f(k)] = A[k]``; ``f`` must be a permutation of the index space."""
    if not isinstance(pa, ParArray) or pa.ndim != 1:
        raise SkeletonError("PermSend requires a 1-D ParArray")
    n = pa.shape[0]
    out: dict[tuple[int, ...], Any] = {}
    for k in range(n):
        dst = f(k)
        if not (0 <= dst < n):
            raise SkeletonError(f"PermSend: destination {dst} out of range 0..{n - 1}")
        if (dst,) in out:
            raise SkeletonError(
                f"PermSend: index {dst} receives more than one element — "
                f"the index map is not a permutation")
        out[(dst,)] = pa[k]
    return ParArray(out, (n,), dist=None)
