"""Human-readable rendering of lowered plans.

``pretty_plan`` prints a :class:`~repro.plan.ir.Plan` as a numbered
instruction listing — the plan-level counterpart of
:mod:`repro.scl.pretty`'s expression notation, and the renderer behind
``python -m repro plan``.  Communication instructions summarise their
precomputed tables (total messages, max fan-in/out) rather than dumping
every per-rank entry; pass ``tables=True`` for the full tables.
"""

from __future__ import annotations

from typing import Any

from repro.plan import ir

__all__ = ["pretty_plan"]


def _fn_name(f: Any) -> str:
    name = getattr(f, "__name__", None)
    if name and name != "<lambda>":
        return name
    parts = getattr(f, "parts", None)
    if parts is not None:
        return "(" + " . ".join(_fn_name(p) for p in parts) + ")"
    return "<fn>"


def _describe(instr: ir.Instr, tables: bool) -> str:
    if isinstance(instr, ir.LocalApply):
        kind = instr.label
        detail = _fn_name(instr.fn)
        if instr.indexed:
            detail += "  (indexed)"
        if instr.farm_env is not ir.NO_ENV:
            detail += "  env=" + repr(instr.farm_env)
        return f"local    {kind} {detail}"
    if isinstance(instr, ir.Rotate):
        return f"rotate   k={instr.k}"
    if isinstance(instr, ir.Exchange):
        total = sum(len(s) for s in instr.sends)
        fan_in = max((sum(1 for s in r if s != i)
                      for i, r in enumerate(instr.recvs)), default=0)
        line = (f"exchange {instr.label} mode={instr.mode} "
                f"msgs={total} max-fan-in={fan_in}")
        if tables:
            line += "".join(
                f"\n             rank {r}: send->{list(instr.sends[r])} "
                f"recv<-{list(instr.recvs[r])}"
                for r in range(len(instr.sends)))
        return line
    if isinstance(instr, ir.Collective):
        extra = ""
        if instr.kind in ("fold", "scan", "apply_bcast"):
            extra = f" op={_fn_name(instr.op)}"
        if instr.kind == "bcast":
            extra = f" value={instr.value!r}"
        if instr.root:
            extra += f" root={instr.root}"
        return f"coll     {instr.kind}{extra}"
    if isinstance(instr, ir.GroupSplit):
        sizes = "/".join(str(len(g)) for g in instr.groups)
        return f"split    {len(instr.groups)} groups ({sizes} ranks)"
    if isinstance(instr, ir.GroupCombine):
        return "combine"
    if isinstance(instr, ir.SubPlan):
        return f"subplan  {len(instr.plans)} group plans"
    if isinstance(instr, ir.Loop):
        return f"loop     {len(instr.bodies)} iterations"
    return repr(instr)


def pretty_plan(plan: ir.Plan, *, tables: bool = False,
                indent: str = "") -> str:
    """Render ``plan`` as a numbered instruction listing."""
    shape = (f"{plan.grid[0]}x{plan.grid[1]} grid" if plan.grid
             else f"{plan.nprocs} ranks")
    lines = [f"{indent}plan over {shape}"
             + (" -> scalar" if plan.returns_scalar else "")]
    lines.extend(_render_seq(plan.instrs, tables, indent))
    return "\n".join(lines)


def _render_seq(instrs, tables: bool, indent: str) -> list:
    lines = []
    for i, instr in enumerate(instrs):
        lines.append(f"{indent}  [{i:>2}] {_describe(instr, tables)}")
        if isinstance(instr, ir.Loop):
            for it, body in enumerate(instr.bodies):
                lines.append(f"{indent}       iter {it}:")
                lines.extend(_render_seq(body, tables, indent + "       "))
        if isinstance(instr, ir.SubPlan):
            seen = set()
            for g, sub in enumerate(instr.plans):
                if id(sub) in seen:
                    continue
                seen.add(id(sub))
                lines.append(f"{indent}       group {g}:")
                lines.append(pretty_plan(sub, tables=tables,
                                         indent=indent + "       "))
    return lines
