"""AST for skeleton expressions.

An expression denotes a function from a :class:`~repro.core.pararray.ParArray`
to a ParArray (or, for reductions, to a scalar).  Programs are built by
composing nodes exactly as SCL composes skeletons::

    prog = compose_nodes(Fold(add), Map(square))        # fold add . map square
    value = evaluate(prog, par_array)

Nodes are immutable; opaque base-language callables compare by identity,
while :class:`~repro.util.functional.Composed` pipelines compare
structurally — so rewriting is purely syntactic and its soundness is
checked behaviourally by the test-suite.

Nested parallelism appears as a :class:`Map` whose function is itself a
*node*: ``Map(Spmd(...))`` applies a parallel operation to every component
(each a sub-ParArray created by :class:`Split`).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Union

from repro.core.partition import PartitionPattern
from repro.errors import RewriteError

__all__ = [
    "Node", "Id", "Map", "IMap", "Fold", "Scan", "FoldrFused",
    "Rotate", "RotateRow", "RotateCol", "Fetch", "AlignFetch", "PermSend",
    "SendNode", "Brdcast", "ApplyBrdcast", "Compose", "Stage", "Spmd",
    "Split", "Combine", "Partition", "Gather", "Farm", "IterFor",
    "compose_nodes",
]

Fn = Callable[..., Any]


@dataclasses.dataclass(frozen=True)
class Node:
    """Base class of all skeleton-expression nodes."""

    def children(self) -> tuple["Node", ...]:
        """Sub-expressions, for generic traversal."""
        return ()

    def replace_children(self, new: tuple["Node", ...]) -> "Node":
        """Rebuild this node with different sub-expressions."""
        if new != ():
            raise RewriteError(f"{type(self).__name__} has no children to replace")
        return self

    def __call__(self, value: Any) -> Any:
        """Evaluate this expression (sequential executor)."""
        from repro.scl.interp import evaluate

        return evaluate(self, value)


@dataclasses.dataclass(frozen=True)
class Id(Node):
    """The identity expression (unit of composition; ``SPMD [] = id``)."""


@dataclasses.dataclass(frozen=True)
class Map(Node):
    """``map f``: apply ``f`` to every component.

    ``f`` may be an opaque base-language callable, or a :class:`Node` —
    in which case each component must itself be a ParArray and ``f`` is a
    nested parallel operation.
    """

    f: Union[Fn, Node]

    def children(self) -> tuple[Node, ...]:
        return (self.f,) if isinstance(self.f, Node) else ()

    def replace_children(self, new: tuple[Node, ...]) -> "Map":
        if isinstance(self.f, Node):
            (f,) = new
            return Map(f)
        return super().replace_children(new)  # type: ignore[return-value]


@dataclasses.dataclass(frozen=True)
class IMap(Node):
    """``imap f``: index-aware map — ``f(index, value)`` per component."""

    f: Fn


@dataclasses.dataclass(frozen=True)
class Fold(Node):
    """``fold op``: tree reduction with an associative operator.

    Reduces a ParArray to a scalar, so a ``Fold`` is only legal as the
    outermost (leftmost) step of a composition.
    """

    op: Fn


@dataclasses.dataclass(frozen=True)
class Scan(Node):
    """``scan op``: inclusive prefix reduction (associative operator)."""

    op: Fn


@dataclasses.dataclass(frozen=True)
class FoldrFused(Node):
    """A *sequential* right-fold with a fused combine-and-transform step.

    Semantics: ``x0 ⊕ (x1 ⊕ (... ⊕ xn))`` where ``a ⊕ b = op(g(a'), b)``
    precisely: ``FoldrFused(op, g)`` computes
    ``op(g x0, op(g x1, ... op(g x_{n-1}, g x_n)))``.

    This is the left-hand side of §4's **map distribution** law: because
    the fused function is not associative, the fold cannot parallelise.
    When ``op`` *is* associative (assert with ``op_associative=True``) the
    law rewrites it to ``fold op . map g``, which can.
    """

    op: Fn
    g: Fn
    op_associative: bool = False


@dataclasses.dataclass(frozen=True)
class Rotate(Node):
    """``rotate k``: cyclic shift of a 1-D array."""

    k: int


@dataclasses.dataclass(frozen=True)
class RotateRow(Node):
    """``rotate_row df``: per-row cyclic shift of a 2-D grid."""

    df: Fn


@dataclasses.dataclass(frozen=True)
class RotateCol(Node):
    """``rotate_col df``: per-column cyclic shift of a 2-D grid."""

    df: Fn


@dataclasses.dataclass(frozen=True)
class Fetch(Node):
    """``fetch f``: ``out[i] = A[f(i)]`` — source-indexed data movement."""

    f: Fn


@dataclasses.dataclass(frozen=True)
class AlignFetch(Node):
    """``align id (fetch f)``: ``out[i] = (A[i], A[f(i)])``.

    The paper's recurring idiom of pairing local data with fetched remote
    data — ``getpartner`` (``align localData partnerData``) and ``wpivot``
    (``align x pivots``) in the hyperquicksort programs are both instances.
    Fetching from oneself (``f(i) == i``) pairs the local value with itself.
    """

    f: Fn


@dataclasses.dataclass(frozen=True)
class PermSend(Node):
    """``send f`` with a single-destination index map: ``out[f(k)] = A[k]``.

    ``f`` must be a permutation of the index space (checked at evaluation
    time); this is the form of ``send`` for which §4's communication
    algebra law ``send f . send g = send (f . g)`` is exact.
    """

    f: Fn


@dataclasses.dataclass(frozen=True)
class SendNode(Node):
    """General ``send f``: ``f(k)`` is the *set* of destinations of element
    ``k``; each index accumulates a vector of arrivals (many-to-one)."""

    f: Fn


@dataclasses.dataclass(frozen=True)
class Brdcast(Node):
    """``brdcast a``: pair a fixed value with every component."""

    a: Any


@dataclasses.dataclass(frozen=True)
class ApplyBrdcast(Node):
    """``applybrdcast f i``: broadcast ``f(A[i])`` paired with local data."""

    f: Fn
    i: Any


@dataclasses.dataclass(frozen=True)
class Compose(Node):
    """Function composition of steps, applied **right to left**.

    ``Compose((f, g, h))(x) == f(g(h(x)))`` — matching SCL's ``f . g . h``.
    Use :func:`compose_nodes` to build one: it flattens nested compositions
    and drops identities so that composition is associative by construction.
    """

    steps: tuple[Node, ...]

    def children(self) -> tuple[Node, ...]:
        return self.steps

    def replace_children(self, new: tuple[Node, ...]) -> Node:
        return compose_nodes(*new)


@dataclasses.dataclass(frozen=True)
class Stage(Node):
    """One SPMD stage: an optional global operation (a sub-expression) and
    an optional flat local function farmed over the configuration.

    ``indexed=True`` applies the local function as ``imap`` (receiving the
    component index); this blocks the flattening law, whose soundness
    needs index-insensitive locals (see :data:`repro.scl.rules.SPMD_FLATTENING`).
    """

    global_: Node | None = None
    local: Fn | None = None
    indexed: bool = False

    def children(self) -> tuple[Node, ...]:
        return (self.global_,) if self.global_ is not None else ()

    def replace_children(self, new: tuple[Node, ...]) -> "Stage":
        if self.global_ is not None:
            (g,) = new
            return Stage(global_=g, local=self.local, indexed=self.indexed)
        return super().replace_children(new)  # type: ignore[return-value]


@dataclasses.dataclass(frozen=True)
class Spmd(Node):
    """``SPMD [stage1, stage2, ...]``: staged SPMD computation.

    Each stage farms its local function then applies its global operation;
    ``Spmd(())`` is the identity, as in the paper.
    """

    stages: tuple[Stage, ...]

    def __post_init__(self) -> None:
        if not all(isinstance(s, Stage) for s in self.stages):
            raise RewriteError("Spmd stages must be Stage nodes")

    def children(self) -> tuple[Node, ...]:
        return self.stages

    def replace_children(self, new: tuple[Node, ...]) -> "Spmd":
        if not all(isinstance(s, Stage) for s in new):
            raise RewriteError("Spmd children must remain Stage nodes")
        return Spmd(tuple(new))  # type: ignore[arg-type]


@dataclasses.dataclass(frozen=True)
class Split(Node):
    """``split P``: divide a configuration into sub-configurations."""

    pattern: PartitionPattern


@dataclasses.dataclass(frozen=True)
class Partition(Node):
    """``partition P``: divide a *sequential* array into a ParArray.

    The data-ingress end of a program: ``Compose((work, Partition(P)))``
    applied to a base-language array.  The inverse is :class:`Gather`.
    """

    pattern: PartitionPattern


@dataclasses.dataclass(frozen=True)
class Gather(Node):
    """``gather``: collect a distributed array back into a sequential one.

    With ``pattern=None`` the partition recorded on the array is inverted;
    an explicit pattern overrides it.  ``Gather . Partition P`` is the
    identity — the redistribution-elimination rewrite rule exploits this.
    """

    pattern: PartitionPattern | None = None


@dataclasses.dataclass(frozen=True)
class Combine(Node):
    """``combine``: flatten a nested ParArray (inverse of :class:`Split`)."""


@dataclasses.dataclass(frozen=True)
class Farm(Node):
    """``farm f env``: apply ``f(env, ·)`` to every component."""

    f: Fn
    env: Any


@dataclasses.dataclass(frozen=True)
class IterFor(Node):
    """``iterFor n body``: apply ``body(i)`` (an expression family) for
    ``i = 0 .. n-1``.  The body is an opaque function from the iteration
    counter to a :class:`Node`, so per-iteration structure (e.g. pivoting
    on column ``i``) stays expressible."""

    n: int
    body: Callable[[int], Node]


def compose_nodes(*steps: Node) -> Node:
    """Smart constructor for composition (right-to-left application).

    Flattens nested :class:`Compose` nodes and removes :class:`Id`, so
    ``compose_nodes(a, compose_nodes(b, c)) == compose_nodes(a, b, c)`` —
    making composition associativity hold *structurally*, which is what
    lets the rewrite engine slide windows over chains.
    """
    flat: list[Node] = []
    for s in steps:
        if isinstance(s, Compose):
            flat.extend(s.steps)
        elif isinstance(s, Id):
            continue
        elif isinstance(s, Node):
            flat.append(s)
        else:
            raise RewriteError(f"compose_nodes expects Node arguments, got {s!r}")
    if not flat:
        return Id()
    if len(flat) == 1:
        return flat[0]
    return Compose(tuple(flat))
