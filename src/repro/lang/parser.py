"""Recursive-descent parser: textual SCL → skeleton-expression nodes.

Grammar (``.`` composes right-to-left, exactly as in the paper)::

    program    := ('let' NAME '=' pipeline 'in')* pipeline
    pipeline   := term ('.' term)*
    term       := 'id'
                | 'map'    fnarg          -- fnarg may be '(' pipeline ')'
                | 'imap'   fn
                | 'fold'   fn
                | 'scan'   fn
                | 'rotate' int
                | 'fetch'  fn
                | 'alignfetch' fn
                | 'send'   fn             -- permutation send (fusible form)
                | 'sendv'  fn             -- general vector-accumulating send
                | 'brdcast' name          -- value looked up in env
                | 'applybrdcast' fn int
                | 'farm'   fn name
                | 'split'  pattern
                | 'combine'
                | 'partition' pattern     -- SeqArray -> ParArray (ingress)
                | 'gather' [pattern]      -- ParArray -> SeqArray (egress)
                | 'SPMD' '[' stage (',' stage)* ']'
                | 'iterFor' int '(' pipeline ')'
                | '(' pipeline ')'
    stage      := '(' pipeline ',' ['imap'] fn ')'  -- (global, local); 'id' = no local; 'imap fn' = index-aware local
    pattern    := ('block'|'cyclic'|'row_block'|'col_block'|'row_cyclic'
                  |'col_cyclic') '(' int ')'
                | 'row_col_block' '(' int ',' int ')'
    fn / name  := identifier resolved in the caller's environment
    int        := integer literal, or identifier bound to an int in env

Fragment names resolve against the ``env`` mapping — the "base language"
side of the paper's two-tier model.  The parsed result is a plain
:class:`repro.scl.nodes.Node`, fully interoperable with the rewrite
engine, the optimiser and the compiler.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.partition import (
    Block,
    BlockCyclic,
    ColBlock,
    ColCyclic,
    Cyclic,
    RowBlock,
    RowColBlock,
    RowCyclic,
)
from repro.errors import ParseError
from repro.lang.lexer import Token, tokenize
from repro.scl import nodes as N

__all__ = ["parse_scl"]

_PATTERNS_1 = {
    "block": Block,
    "cyclic": Cyclic,
    "row_block": RowBlock,
    "col_block": ColBlock,
    "row_cyclic": RowCyclic,
    "col_cyclic": ColCyclic,
}
_PATTERNS_2 = {"row_col_block": RowColBlock, "block_cyclic": BlockCyclic}

_KEYWORDS = {
    "id", "map", "imap", "fold", "scan", "rotate", "fetch", "alignfetch",
    "send", "sendv", "brdcast", "applybrdcast", "farm", "split", "combine",
    "partition", "gather", "SPMD", "iterFor", "let", "in",
} | set(_PATTERNS_1) | set(_PATTERNS_2)


def parse_scl(source: str, env: Mapping[str, Any] | None = None) -> N.Node:
    """Parse a textual SCL program into an expression node.

    ``env`` supplies the base-language fragments (and any named integer
    or broadcast constants) the program refers to.
    """
    return _Parser(tokenize(source), dict(env or {})).parse_program()


class _Parser:
    def __init__(self, tokens: list[Token], env: dict[str, Any]):
        self.tokens = tokens
        self.env = env
        self.pos = 0
        #: names bound by `let name = pipeline in ...`
        self.bindings: dict[str, N.Node] = {}

    # ------------------------------------------------------------- plumbing

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def expect(self, text: str) -> Token:
        tok = self.current
        if tok.text != text:
            self.fail(f"expected {text!r}, found {tok.describe()}")
        return self.advance()

    def at(self, text: str) -> bool:
        return self.current.text == text

    def fail(self, message: str) -> None:
        tok = self.current
        raise ParseError(f"{message} (line {tok.line}, column {tok.col})")

    # -------------------------------------------------------------- grammar

    def parse_program(self) -> N.Node:
        while self.at("let"):
            self.advance()
            tok = self.current
            if tok.kind != "ident" or tok.text in _KEYWORDS:
                self.fail("expected a binding name after 'let'")
            name = self.advance().text
            self.expect("=")
            self.bindings[name] = self.parse_pipeline()
            self.expect("in")
        node = self.parse_pipeline()
        if self.current.kind != "eof":
            self.fail(f"unexpected {self.current.describe()} after program")
        return node

    def parse_pipeline(self) -> N.Node:
        terms = [self.parse_term()]
        while self.at("."):
            self.advance()
            terms.append(self.parse_term())
        return N.compose_nodes(*terms)

    def parse_term(self) -> N.Node:
        tok = self.current
        if tok.text == "(":
            self.advance()
            inner = self.parse_pipeline()
            self.expect(")")
            return inner
        if tok.kind != "ident":
            self.fail(f"expected a skeleton, found {tok.describe()}")
        name = tok.text
        handler = getattr(self, f"_term_{name}", None)
        if name in _KEYWORDS and handler is not None:
            self.advance()
            return handler()
        if name in self.bindings:
            self.advance()
            return self.bindings[name]
        self.fail(f"unknown skeleton {name!r}")
        raise AssertionError("unreachable")

    # ------------------------------------------------------ term handlers

    def _term_id(self) -> N.Node:
        return N.Id()

    def _term_map(self) -> N.Node:
        if self.at("("):
            self.advance()
            inner = self.parse_pipeline()
            self.expect(")")
            return N.Map(inner)
        return N.Map(self.parse_fn())

    def _term_imap(self) -> N.Node:
        return N.IMap(self.parse_fn())

    def _term_fold(self) -> N.Node:
        return N.Fold(self.parse_fn())

    def _term_scan(self) -> N.Node:
        return N.Scan(self.parse_fn())

    def _term_rotate(self) -> N.Node:
        return N.Rotate(self.parse_int())

    def _term_fetch(self) -> N.Node:
        return N.Fetch(self.parse_fn())

    def _term_alignfetch(self) -> N.Node:
        return N.AlignFetch(self.parse_fn())

    def _term_send(self) -> N.Node:
        return N.PermSend(self.parse_fn())

    def _term_sendv(self) -> N.Node:
        return N.SendNode(self.parse_fn())

    def _term_brdcast(self) -> N.Node:
        return N.Brdcast(self.parse_value())

    def _term_applybrdcast(self) -> N.Node:
        fn = self.parse_fn()
        return N.ApplyBrdcast(fn, self.parse_int())

    def _term_farm(self) -> N.Node:
        fn = self.parse_fn()
        return N.Farm(fn, self.parse_value())

    def _term_split(self) -> N.Node:
        return N.Split(self.parse_pattern())

    def _term_combine(self) -> N.Node:
        return N.Combine()

    def _term_partition(self) -> N.Node:
        return N.Partition(self.parse_pattern())

    def _term_gather(self) -> N.Node:
        # an optional explicit pattern; otherwise invert the recorded one
        tok = self.current
        if tok.kind == "ident" and (tok.text in _PATTERNS_1
                                    or tok.text in _PATTERNS_2):
            return N.Gather(self.parse_pattern())
        return N.Gather()

    def _term_SPMD(self) -> N.Node:
        self.expect("[")
        stages = []
        if not self.at("]"):
            stages.append(self.parse_stage())
            while self.at(","):
                self.advance()
                stages.append(self.parse_stage())
        self.expect("]")
        return N.Spmd(tuple(stages))

    def _term_iterFor(self) -> N.Node:
        n = self.parse_int()
        self.expect("(")
        body = self.parse_pipeline()
        self.expect(")")
        return N.IterFor(n, lambda _i, body=body: body)

    # ------------------------------------------------------------ elements

    def parse_stage(self) -> N.Stage:
        self.expect("(")
        global_ = self.parse_pipeline()
        self.expect(",")
        indexed = False
        if self.at("id"):
            self.advance()
            local = None
        else:
            if self.at("imap"):
                self.advance()
                indexed = True
            local = self.parse_fn()
        self.expect(")")
        return N.Stage(
            global_=None if isinstance(global_, N.Id) else global_,
            local=local,
            indexed=indexed,
        )

    def parse_pattern(self):
        tok = self.current
        if tok.kind != "ident" or (tok.text not in _PATTERNS_1
                                   and tok.text not in _PATTERNS_2):
            self.fail(f"expected a partition pattern, found {tok.describe()}")
        name = self.advance().text
        self.expect("(")
        first = self.parse_int()
        if name in _PATTERNS_2:
            self.expect(",")
            second = self.parse_int()
            self.expect(")")
            return _PATTERNS_2[name](first, second)
        self.expect(")")
        return _PATTERNS_1[name](first)

    def parse_fn(self):
        tok = self.current
        if tok.kind != "ident":
            self.fail(f"expected a fragment name, found {tok.describe()}")
        if tok.text in _KEYWORDS and tok.text not in self.env:
            self.fail(f"expected a fragment name, found keyword {tok.text!r}")
        name = self.advance().text
        if name not in self.env:
            raise ParseError(
                f"fragment {name!r} is not defined in the environment "
                f"(line {tok.line}, column {tok.col})")
        fn = self.env[name]
        if not callable(fn):
            raise ParseError(
                f"{name!r} resolves to a non-callable {type(fn).__name__} "
                f"(line {tok.line}, column {tok.col})")
        return fn

    def parse_value(self) -> Any:
        tok = self.current
        if tok.kind == "number":
            return int(self.advance().text)
        if tok.kind != "ident":
            self.fail(f"expected a value, found {tok.describe()}")
        name = self.advance().text
        if name not in self.env:
            raise ParseError(
                f"value {name!r} is not defined in the environment "
                f"(line {tok.line}, column {tok.col})")
        return self.env[name]

    def parse_int(self) -> int:
        tok = self.current
        if tok.kind == "number":
            return int(self.advance().text)
        if tok.kind == "ident" and isinstance(self.env.get(tok.text), int):
            return self.env[self.advance().text]
        self.fail(f"expected an integer, found {tok.describe()}")
        raise AssertionError("unreachable")
