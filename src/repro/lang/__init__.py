"""A textual front end for SCL — the paper's "FortranS" direction.

The paper's future work: "to write a parallel program in FortranS we use
SCL, which is the higher level of the language, to define the parallel
structure of the program; local sequential computation for each processor
is then programmed in Fortran."  This package is that front end with
Python as the base language: parallel structure is written in SCL's own
notation as text, base-language fragments are looked up by name in a
user-supplied environment::

    from repro.lang import parse_scl
    from repro.scl import evaluate

    prog = parse_scl("fold add . map square . rotate 2",
                     env={"add": operator.add, "square": lambda x: x * x})
    evaluate(prog, par_array)

The parser produces ordinary :mod:`repro.scl` expression nodes, so parsed
programs can be rewritten by the §4 rules, priced by the cost model, and
compiled to the simulated machine like any other expression.
"""

from repro.lang.lexer import Token, tokenize
from repro.lang.parser import parse_scl

__all__ = ["parse_scl", "tokenize", "Token"]
