"""Tokenizer for textual SCL programs.

Tokens: identifiers (skeleton keywords and fragment names), integer
literals (optionally signed), and the punctuation ``( ) [ ] , .`` —
where ``.`` is SCL's composition operator.  ``--`` starts a comment that
runs to end of line.  Positions are tracked for error messages.
"""

from __future__ import annotations

import dataclasses
import re

from repro.errors import ParseError

__all__ = ["Token", "tokenize"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>      \s+                    )
  | (?P<comment> --[^\n]*               )
  | (?P<number>  -?\d+                  )
  | (?P<ident>   [A-Za-z_][A-Za-z0-9_]* )
  | (?P<punct>   [()\[\],.=]            )
    """,
    re.VERBOSE,
)


@dataclasses.dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based line/column)."""

    kind: str  # "number" | "ident" | "punct" | "eof"
    text: str
    line: int
    col: int

    def describe(self) -> str:
        if self.kind == "eof":
            return "end of input"
        return f"{self.text!r}"


def tokenize(source: str) -> list[Token]:
    """Tokenize an SCL program; raises :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    line, col = 1, 1
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise ParseError(
                f"unexpected character {source[pos]!r} at line {line}, column {col}")
        text = m.group(0)
        kind = m.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, text, line, col))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            col = len(text) - text.rfind("\n")
        else:
            col += len(text)
        pos = m.end()
    tokens.append(Token("eof", "", line, col))
    return tokens
