"""``repro.tune`` — cost-driven search over the SCL rewrite space.

One cost model for both optimizers: candidates produced by the §4
rewrite rules (:mod:`repro.scl.rules`) are scored by lowering them
through the existing pipeline — ``scl.compile`` → ``plan.opt`` →
``plan.cost`` — so pre-lowering rewrites are priced by what the
post-lowering passes make of them on one machine spec + topology.
:func:`tune_expression` is the beam searcher; ``scl.optimize`` builds
its default ``strategy="search"`` on it, ``plan.lower``'s tuned-plan
cache tier memoises its winners per machine, and ``python -m repro plan
--search`` prints its explored frontier.
"""

from repro.tune.search import (
    Candidate,
    TuneResult,
    score_expression,
    tune_expression,
)
from repro.tune.workloads import run_tuned_hyperquicksort, tuned_sort_pipeline

__all__ = [
    "Candidate",
    "TuneResult",
    "score_expression",
    "tune_expression",
    "run_tuned_hyperquicksort",
    "tuned_sort_pipeline",
]
