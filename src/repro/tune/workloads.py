"""Tunable benchmark workloads: where search and greedy rewriting diverge.

``tuned_sort_pipeline`` is hyperquicksort followed by a naively-written
per-group summary epilogue: each round stamps the local block three times
(three adjacent un-fused ``map`` s) after replicating two group leaders'
blocks with two sparse ``fetch`` steps — first every quarter-leader
(rank ``r - r%4``, fan-out 3), then every block-leader's quarter image
(rank ``16*(r//16) + r%4``, fan-out 3).

Both optimizers see the same §4 laws here, but they price them
differently:

* **greedy** (:func:`repro.scl.optimize.optimize` with
  ``strategy="greedy"``) rewrites to fixpoint and accepts the package
  all-or-nothing against the *raw* lowering: the map fusions save two
  predicted barriers per round, which more than covers the fetch
  fusion's penalty — so the fused ``fetch`` survives, composing the two
  fan-out-3 exchanges into one fan-out-15 funnel (every rank reads the
  block leader directly).
* **search** (:func:`repro.tune.tune_expression`) prices every candidate
  through ``plan.opt`` + ``plan.cost``: the post-lowering passes already
  fuse the adjacent maps for free, so the only thing the symbolic fetch
  fusion changes is the exchange degree — 15 serialized port
  transmissions at each block leader versus 3+3 — and the search
  declines it.

On a single-port machine (the contention model the ``msg × degree``
exchange pricing assumes) the declined funnel is a real simulated win:
``speedup_vs_greedy`` in BENCH_simulator.json tracks it.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.machine.cost import AP1000, MachineSpec
from repro.machine.simulator import Machine
from repro.machine.topology import Hypercube
from repro.scl import nodes as N

__all__ = ["tuned_sort_pipeline", "run_tuned_hyperquicksort",
           "TUNED_REPEATS", "QUARTER", "BLOCK"]

#: Epilogue rounds in the benchmark pipeline; each contributes three
#: fusible maps and one fusible (but traffic-concentrating) fetch pair.
TUNED_REPEATS = 6
#: Fan-in group sizes of the two sparse fetches (and their composition).
QUARTER = 4
BLOCK = QUARTER * QUARTER


def _quarter_leader(r: int) -> int:
    """Source map of the first fetch: every rank reads its quarter leader."""
    return r - r % QUARTER


def _block_pick(r: int) -> int:
    """Source map of the second fetch: the quarter image inside the block
    (composes with :func:`_quarter_leader` into the fan-out-15 funnel
    ``r -> BLOCK * (r // BLOCK)``)."""
    return BLOCK * (r // BLOCK) + r % QUARTER


def _stamp_shift(block):
    return block + 3


def _stamp_mark(block):
    return block ^ 1


def _stamp_settle(block):
    return block - 2


def _epilogue_round() -> tuple[N.Node, ...]:
    """One naive epilogue round, innermost (rightmost) step first."""
    return (
        N.Map(_stamp_settle),
        N.Map(_stamp_mark),
        N.Map(_stamp_shift),
        N.Fetch(_block_pick),
        N.Fetch(_quarter_leader),
    )


@functools.lru_cache(maxsize=None)
def tuned_sort_pipeline(d: int, repeats: int = TUNED_REPEATS) -> N.Node:
    """Hyperquicksort plus ``repeats`` naive epilogue rounds (see module
    docstring).  Memoised so every caller shares one expression object
    and the plan / tuned-plan caches key consistently."""
    from repro.apps.sort import hyperquicksort_expression

    if (1 << d) % BLOCK:
        raise ValueError(
            f"tuned pipeline needs {BLOCK} | nprocs, got p={1 << d}")
    steps: list[N.Node] = []
    for _ in range(repeats):
        steps.extend(_epilogue_round())
    steps.append(hyperquicksort_expression(d))
    return N.compose_nodes(*steps)


def run_tuned_hyperquicksort(values, d: int, *,
                             spec: MachineSpec = AP1000,
                             strategy: str = "search", beam: int = 4,
                             repeats: int = TUNED_REPEATS):
    """Optimize the tuned pipeline with ``strategy`` and run the winner.

    Returns ``(blocks_out, result, report)`` where ``report`` is the
    :class:`~repro.scl.optimize.OptimizeReport` of the chosen strategy.
    The machine is a single-port hypercube: the one-port contention
    model is what the exchange pricing (``msg × degree``) assumes, so
    predicted and simulated rankings describe the same machine.

    The search path goes through :func:`repro.plan.lower.tuned_lower`,
    so repeated runs (the perf harness) pay the beam search once and
    then hit the tuned-plan cache tier.
    """
    from repro.apps.sort import seq_quicksort
    from repro.core import Block, parmap, partition
    from repro.scl.compile import run_expression
    from repro.scl.optimize import OptimizeReport, optimize

    values = np.asarray(values)
    p = 1 << d
    expr = tuned_sort_pipeline(d, repeats)
    machine = Machine(Hypercube(d), spec=spec, single_port=True)
    if strategy == "search":
        from repro.plan.lower import tuned_lower
        from repro.plan.opt import OptConfig

        tuned = tuned_lower(expr, p, opt=OptConfig.for_machine(machine),
                            beam=beam)
        report = OptimizeReport(expr, tuned.expr, tuned.cost_before,
                                tuned.cost_after, tuned.steps)
    else:
        report = optimize(expr, n=p, spec=spec, strategy=strategy,
                          beam=beam, topo=machine.topology)
    blocks = parmap(seq_quicksort, partition(Block(p), values))
    out, result = run_expression(report.optimized, blocks, machine,
                                 opt="auto")
    return out, result, report
