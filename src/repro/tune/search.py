"""Beam search over SCL rewrite space, scored through the real pipeline.

The §4 rewrite engine and the PR-5 post-lowering pass pipeline used to be
two optimizers that never talked: :func:`repro.scl.optimize.optimize`
rewrote greedily to fixpoint and priced the *raw* lowering, while
:mod:`repro.plan.opt` ran unconditionally after lowering.  This module
puts one cost model in charge of both: every candidate expression is
scored by lowering it through the existing pipeline —
``lower(expr, nprocs, grid, opt=OptConfig(spec, topo))`` followed by
:func:`repro.plan.cost.plan_cost` — so a *pre-lowering* rewrite is
priced by what the *post-lowering* passes make of it on one machine
spec + topology.  That is what lets the search decline a symbolic law
that is locally plausible but globally bad (e.g. fusing two sparse
``fetch`` steps into one traffic-concentrating exchange) while still
taking the fusions that the plan optimizer cannot recover on its own.

The search itself is a plain beam search: the frontier is expanded with
:meth:`repro.scl.rewrite.RewriteEngine.applications` (every expression
one rule application away), candidates are deduplicated by expression
equality, ordered lexicographically by predicted
``(seconds, messages, barriers)``, and the best ``beam`` survive each
round.  The original expression always stays in the candidate pool, so
the winner is never predicted worse than doing nothing.
"""

from __future__ import annotations

import dataclasses
import sys
from typing import Sequence

from repro.machine.cost import MachineSpec, PERFECT
from repro.plan.cost import ExprCost, plan_cost
from repro.scl import nodes as N
from repro.scl.rewrite import RewriteEngine, RewriteStep, Rule

# sys.modules binding (see repro.scl.compile for why): survives both import
# orders of the repro.plan <-> repro.scl cycle and the package-attribute
# shadowing of the `lower` submodule by the `lower` function.
import repro.plan.lower  # noqa: F401  (registers the module in sys.modules)

_plan_lower = sys.modules["repro.plan.lower"]

__all__ = ["Candidate", "TuneResult", "tune_expression", "score_expression",
           "expr_size"]


def expr_size(node: N.Node) -> int:
    """Number of skeleton nodes in ``node``'s tree (tie-break metric)."""
    return 1 + sum(expr_size(k) for k in node.children())


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One point in rewrite space, with its pipeline-predicted cost."""

    expr: N.Node
    cost: ExprCost
    #: False when the expression has no plan form (e.g. ``FoldrFused``)
    #: and was priced by the legacy expression-level model instead.
    lowerable: bool
    #: Rule provenance from the original expression to this candidate.
    steps: tuple[RewriteStep, ...]
    depth: int
    #: :func:`expr_size` of ``expr`` — full-cost ties go to the smaller
    #: expression, so simplifications the post-lowering passes make
    #: cost-invisible (e.g. map fusion, which ``plan.opt`` recovers
    #: anyway) are still taken, while cost-neutral *blow-ups* that the
    #: passes merely repair (e.g. un-fusing a rotation) are declined.
    size: int = 0

    @property
    def rules(self) -> tuple[str, ...]:
        """The rule names applied, in order."""
        return tuple(s.rule for s in self.steps)

    def order_key(self) -> tuple:
        """Lexicographic ranking: seconds, then messages, then barriers,
        then expression size; final ties go to fewer rewrites."""
        return (self.cost.seconds, self.cost.messages, self.cost.barriers,
                self.size, self.depth)


@dataclasses.dataclass(frozen=True)
class TuneResult:
    """Outcome of :func:`tune_expression`."""

    original: Candidate
    best: Candidate
    #: The most promising candidates explored (including ``original`` and
    #: ``best``), ranked by :meth:`Candidate.order_key`.
    frontier: tuple[Candidate, ...]
    #: Total candidates scored (the whole explored set, not just the
    #: reported frontier).
    explored: int
    beam: int
    rounds: int

    @property
    def improved(self) -> bool:
        """True when the winner is a real rewrite predicted to beat the
        original (strictly, on the lexicographic key)."""
        return self.best is not self.original and \
            self.best.order_key() < self.original.order_key()

    @property
    def predicted_speedup(self) -> float:
        """Predicted ratio of original to winner time."""
        if self.best.cost.seconds == 0:
            return float("inf") if self.original.cost.seconds > 0 else 1.0
        return self.original.cost.seconds / self.best.cost.seconds


def score_expression(expr: N.Node, *, nprocs: int,
                     grid: tuple[int, int] | None = None,
                     opt=None, spec: MachineSpec = PERFECT,
                     fn_ops: float = 1.0,
                     element_bytes: int | None = None) -> tuple[ExprCost, bool]:
    """Price ``expr`` through the real pipeline: lower with ``opt``, then
    :func:`plan_cost` on the optimized plan.

    Returns ``(cost, lowerable)``; expressions with no plan form fall
    back to :func:`repro.scl.optimize.estimate_cost`'s legacy model with
    ``lowerable=False``.  Lowering bypasses the plan cache
    (:func:`repro.plan.lower.lower_uncached`): search candidates are
    throwaway expressions that would otherwise evict hot entries and
    distort the service-level hit-rate metric.
    """
    from repro.scl.optimize import estimate_cost

    try:
        plan = _plan_lower.lower_uncached(expr, nprocs, grid, opt=opt)
    except Exception:
        return estimate_cost(expr, n=nprocs, spec=spec, fn_ops=fn_ops,
                             element_bytes=element_bytes), False
    return plan_cost(plan, spec=spec, fn_ops=fn_ops,
                     element_bytes=element_bytes), True


def _resolve_topo(topo) -> tuple | None:
    """Accept a Topology instance or a prebuilt signature tuple."""
    if topo is None or isinstance(topo, tuple):
        return topo
    from repro.plan.opt import topology_signature

    return topology_signature(topo)


def tune_expression(expr: N.Node, *, nprocs: int,
                    grid: tuple[int, int] | None = None,
                    spec: MachineSpec = PERFECT, topo=None,
                    opt=None, rules: Sequence[Rule] | None = None,
                    beam: int = 4, max_rounds: int = 32,
                    frontier_size: int | None = None,
                    fn_ops: float = 1.0,
                    element_bytes: int | None = None) -> TuneResult:
    """Beam-search the rewrite space of ``expr`` for the cheapest plan.

    ``spec``/``topo`` name the machine the candidates are priced for
    (``topo`` is a :class:`~repro.machine.topology.Topology` or its
    :func:`~repro.plan.opt.topology_signature`); ``opt`` overrides the
    :class:`~repro.plan.opt.OptConfig` the candidates are lowered with
    (default: all passes on, priced on ``spec``/``topo`` — the same
    config ``scl.compile`` would build for that machine).  ``beam``
    candidates survive each expansion round; ``max_rounds`` bounds the
    search depth.  The result's ``best`` is the cheapest candidate seen
    anywhere — including the original, so search never *predicts* a
    regression — restricted to lowerable candidates whenever the
    original itself lowers (the winner must stay runnable).
    """
    from repro.plan.opt import OptConfig
    from repro.scl.rules import ALL_RULES

    if beam <= 0:
        raise ValueError(f"beam must be positive, got {beam}")
    topo_sig = _resolve_topo(topo)
    if opt is None:
        opt = OptConfig(spec=spec, topo=topo_sig)
    engine = RewriteEngine(ALL_RULES if rules is None else rules)

    def score(e: N.Node) -> tuple[ExprCost, bool]:
        return score_expression(e, nprocs=nprocs, grid=grid, opt=opt,
                                spec=spec, fn_ops=fn_ops,
                                element_bytes=element_bytes)

    seen: set = set()

    def remember(e: N.Node) -> bool:
        """True the first time ``e`` is seen (unhashable: always new)."""
        try:
            if e in seen:
                return False
            seen.add(e)
        except TypeError:
            pass
        return True

    cost, lowerable = score(expr)
    original = Candidate(expr, cost, lowerable, (), 0, expr_size(expr))
    remember(expr)
    pool = [original]
    frontier = [original]
    rounds = 0
    for _ in range(max_rounds):
        grown: list[Candidate] = []
        for cand in frontier:
            for new_expr, step in engine.applications(cand.expr):
                if not remember(new_expr):
                    continue
                c_cost, c_low = score(new_expr)
                grown.append(Candidate(new_expr, c_cost, c_low,
                                       cand.steps + (step,), cand.depth + 1,
                                       expr_size(new_expr)))
        if not grown:
            break
        rounds += 1
        grown.sort(key=Candidate.order_key)
        pool.extend(grown)
        frontier = grown[:beam]

    eligible = [c for c in pool if c.lowerable] if original.lowerable else pool
    best = min(eligible, key=Candidate.order_key)
    ranked = sorted(pool, key=Candidate.order_key)
    if frontier_size is None:
        frontier_size = max(4 * beam, 16)
    shown = ranked[:frontier_size]
    for must in (best, original):
        if must not in shown:
            shown.append(must)
    return TuneResult(original=original, best=best, frontier=tuple(shown),
                      explored=len(pool), beam=beam, rounds=rounds)
