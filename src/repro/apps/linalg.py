"""Gauss–Jordan linear solver with partial pivoting — §3's first example.

The paper parallelises ``Ax = b`` by distributing the columns of the
(augmented) matrix and, in each iteration ``i``:

* ``PARTIAL_PIVOT`` — the processor owning column ``i`` searches rows
  ``i..n`` for the entry of largest absolute value and broadcasts the pivot
  row index together with the (swapped) pivot column
  (``applybrdcast PARTIAL_PIVOT_i owner``),
* ``UPDATE`` — every processor uses the broadcast pivot data to swap rows,
  normalise the pivot row and annihilate column ``i`` in all of its local
  columns (``map (UPDATE i)``),

with the main loop written as ``iterFor n elimPivot DA`` — exactly the SCL
program in the paper.  Gauss–Jordan annihilates above *and* below the
pivot, so after ``n`` iterations the solution is simply the augmented
column.

Besides the skeleton program (:func:`gauss_jordan_solve`) this module has
the same algorithm as a sequential reference (:func:`gauss_jordan_seq`) and
as a message-passing program on the simulated machine
(:func:`gauss_jordan_machine`) for scaling studies.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import ColBlock, ParArray, apply_brdcast, gather, iter_for, parmap, partition
from repro.errors import SkeletonError
from repro.machine import AP1000, Comm, Machine, MachineSpec, collectives
from repro.machine.simulator import RunResult
from repro.machine.topology import FullyConnected
from repro.runtime.chunking import chunk_indices
from repro.runtime.executor import Executor

__all__ = [
    "gauss_jordan_seq",
    "gauss_jordan_solve",
    "gauss_jordan_expression",
    "gauss_jordan_compiled",
    "GaussCostParams",
    "gauss_jordan_machine",
]


def _partial_pivot(i: int, local_col: np.ndarray) -> tuple[int, np.ndarray]:
    """``PARTIAL_PIVOT``: pick the pivot row for step ``i`` from column ``i``.

    Returns ``(r, c)`` where ``r`` is the chosen row and ``c`` is column
    ``i`` with rows ``i`` and ``r`` already swapped.
    """
    col = np.array(local_col, dtype=float)
    r = i + int(np.argmax(np.abs(col[i:])))
    if col[r] == 0.0:
        raise SkeletonError(f"matrix is singular: no pivot in column {i}")
    col[[i, r]] = col[[r, i]]
    return r, col


def _update(i: int, pivot: tuple[int, np.ndarray], local: np.ndarray) -> np.ndarray:
    """``UPDATE``: swap, normalise and annihilate on one column block."""
    r, c = pivot
    block = np.array(local, dtype=float)
    block[[i, r], :] = block[[r, i], :]
    block[i, :] /= c[i]
    mult = c.copy()
    mult[i] = 0.0
    block -= np.outer(mult, block[i, :])
    return block


def gauss_jordan_seq(A: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sequential reference: the same algorithm on one 'processor'."""
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    n = A.shape[0]
    m = np.hstack([A, b.reshape(n, -1)])
    for i in range(n):
        _r, c = _partial_pivot(i, m[:, i])
        m = _update(i, (_r, c), m)
    return m[:, A.shape[1]:].reshape(b.shape)


def gauss_jordan_solve(A: np.ndarray, b: np.ndarray, p: int, *,
                       executor: Executor | str | None = None) -> np.ndarray:
    """Solve ``Ax = b`` with the paper's SCL program on ``p`` processors.

    ``gauss A p = iterFor n elimPivot (partition col_block_p [A|b])`` with
    ``elimPivot i x = map (UPDATE i) (applybrdcast (PARTIAL_PIVOT i)
    owner(i) x)``.
    """
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n):
        raise SkeletonError(f"A must be square, got {A.shape}")
    if b.shape[0] != n:
        raise SkeletonError(f"b length {b.shape[0]} does not match A ({n})")
    aug = np.hstack([A, b.reshape(n, -1)])
    pattern = ColBlock(p)
    da = partition(pattern, aug)

    def elim_pivot(i: int, x: ParArray) -> ParArray:
        (owner,), (_row, lcol) = pattern.index_map((0, i), aug.shape)

        def partial_pivot(local_block: np.ndarray) -> tuple[int, np.ndarray]:
            return _partial_pivot(i, np.asarray(local_block)[:, lcol])

        conf = apply_brdcast(partial_pivot, owner, x)
        return parmap(lambda pv_loc: _update(i, pv_loc[0], pv_loc[1]),
                      conf, executor=executor)

    result = iter_for(n, elim_pivot, da)
    solved = np.asarray(gather(ParArray(result.to_list(), dist=pattern)))
    return solved[:, A.shape[1]:].reshape(b.shape)


def gauss_jordan_expression(n: int, p: int, aug_shape: tuple[int, int]):
    """The §3 Gauss–Jordan program as a compilable SCL expression.

    ``iterFor n elimPivot`` over column blocks, with
    ``elimPivot i = map (UPDATE i) . applybrdcast (PARTIAL_PIVOT i) owner``
    — node for node the paper's program.  The expression runs under the
    interpreter and under the SCL compiler (one column block per
    processor), with base-fragment cost annotations for the machine's
    clock.
    """
    from repro.plan.kernels import stack_uniform, vectorize_fragment
    from repro.scl import ApplyBrdcast, IterFor, Map, compose_nodes
    from repro.scl.compile import base_fragment

    pattern = ColBlock(p)
    params = GaussCostParams()

    def body(i: int):
        (owner,), (_row, lcol) = pattern.index_map((0, i), aug_shape)

        @base_fragment(ops=params.pivot_ops_per_row * (aug_shape[0] - i))
        def partial_pivot(block):
            return _partial_pivot(i, np.asarray(block)[:, lcol])

        @base_fragment(ops=lambda pv_blk: params.update_ops_per_entry
                       * np.asarray(pv_blk[1]).size)
        def update(pv_blk):
            return _update(i, pv_blk[0], pv_blk[1])

        def update_batched(vals):
            # Every rank's value is ``(pivot, block)`` with the *same*
            # broadcast pivot object; the swap/normalise/annihilate
            # arithmetic is elementwise per block, so all p updates run
            # as one broadcasted numpy pass over the stacked blocks.
            first = vals[0][0]
            if not all(v[0] is first for v in vals[1:]):
                return [update(v) for v in vals]  # pragma: no cover
            r, c = first
            mult = c.copy()
            mult[i] = 0.0

            def xform(stacked):
                B = np.array(stacked, dtype=float)
                B[:, [i, r], :] = B[:, [r, i], :]
                B[:, i, :] /= c[i]
                B -= mult[None, :, None] * B[:, i, :][:, None, :]
                return B

            return stack_uniform([v[1] for v in vals], xform)

        vectorize_fragment(update, update_batched)
        return compose_nodes(Map(update), ApplyBrdcast(partial_pivot, owner))

    return IterFor(n, body)


def gauss_jordan_compiled(
    A: np.ndarray,
    b: np.ndarray,
    p: int,
    *,
    spec: MachineSpec = AP1000,
    opt="auto",
    parallel: bool = False,
    workers: int | None = None,
) -> tuple[np.ndarray, RunResult]:
    """Run the §3 expression through the SCL compiler on the simulator.

    The column-block partition and the final gather bracket the compiled
    iteration, exactly as in :func:`gauss_jordan_solve`.  ``opt`` is the
    plan-optimizer switch of :class:`repro.scl.compile.CompiledProgram`;
    ``parallel``/``workers`` dispatch eligible fragment compute to the
    host-parallel worker pool (the closure-registered batched kernel of
    this app is unpicklable, so its applies transparently stay
    in-process — results are identical either way).
    """
    from repro.core import parmap, partition
    from repro.core import gather as cfg_gather
    from repro.core.pararray import ParArray
    from repro.machine.topology import FullyConnected
    from repro.scl.compile import run_expression

    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    n = A.shape[0]
    aug = np.hstack([A, b.reshape(n, -1)])
    pattern = ColBlock(p)
    blocks = partition(pattern, aug)
    machine = Machine(FullyConnected(p), spec=spec)
    expr = gauss_jordan_expression(n, p, aug.shape)
    out, result = run_expression(expr, blocks, machine, opt=opt,
                                 parallel=parallel, workers=workers)
    solved = np.asarray(cfg_gather(ParArray(out.to_list(), dist=pattern)))
    return solved[:, A.shape[1]:].reshape(b.shape), result


@dataclasses.dataclass(frozen=True)
class GaussCostParams:
    """Operation counts for the simulated-machine Gauss–Jordan."""

    update_ops_per_entry: float = 4.0   # multiply-sub + row ops per entry
    pivot_ops_per_row: float = 2.0      # abs + compare in the pivot search


def gauss_jordan_machine(
    A: np.ndarray,
    b: np.ndarray,
    p: int,
    *,
    spec: MachineSpec = AP1000,
    params: GaussCostParams = GaussCostParams(),
) -> tuple[np.ndarray, RunResult]:
    """The hand-compiled message-passing Gauss–Jordan on the simulator.

    Column blocks live on ``p`` processors; each iteration the owner of the
    pivot column broadcasts ``(r, c)`` and everyone updates locally.
    Returns the solution (assembled on processor 0) and the run result
    whose makespan gives the virtual solve time.
    """
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    n = A.shape[0]
    aug = np.hstack([A, b.reshape(n, -1)])
    cols = aug.shape[1]
    spans = chunk_indices(cols, p)
    machine = Machine(FullyConnected(p), spec=spec)

    def owner_of(col: int) -> int:
        for k, (lo, hi) in enumerate(spans):
            if lo <= col < hi:
                return k
        raise SkeletonError(f"column {col} out of range")

    def program(env):
        comm = Comm.world(env)
        rank = comm.rank
        lo, hi = spans[rank]
        local = aug[:, lo:hi].copy()
        for i in range(n):
            owner = owner_of(i)
            if rank == owner:
                yield env.work(params.pivot_ops_per_row * (n - i))
                pivot = _partial_pivot(i, local[:, i - lo])
            else:
                pivot = None
            pivot = yield from collectives.bcast(
                comm, pivot, root=owner, nbytes=(n + 1) * spec.word_bytes)
            yield env.work(params.update_ops_per_entry * n * max(hi - lo, 1))
            local = _update(i, pivot, local)
        blocks = yield from collectives.gather(
            comm, local, root=0, nbytes=max(int(local.nbytes), 1))
        if rank == 0:
            return np.hstack(blocks)
        return None

    result = machine.run(program)
    solved = np.asarray(result.values[0])
    return solved[:, A.shape[1]:].reshape(b.shape), result
