"""Applications from §3/§5 of the paper, plus baselines and extensions.

* :mod:`repro.apps.sort` — hyperquicksort: the recursive nested-parallel
  SCL program (§3), its flattened iterative form (§5), the hand-compiled
  machine-level program that reproduces Table 1 / Figure 3, a sample-sort
  baseline, and the Figure 2 stage tracer.
* :mod:`repro.apps.linalg` — the Gauss–Jordan linear solver with partial
  pivoting (§3, first example).
* :mod:`repro.apps.matmul` — Cannon's matrix multiplication (exercises
  ``rotate_row``/``rotate_col`` exactly as §2.2 motivates).
* :mod:`repro.apps.stencil` — Jacobi iteration (exercises ``iter_until``
  and halo exchange with ``fetch``).
* :mod:`repro.apps.bitonic` — block bitonic sort, the classic hypercube
  baseline hyperquicksort is measured against.
* :mod:`repro.apps.fft` — binary-exchange parallel FFT on the hypercube.
* :mod:`repro.apps.nbody` — all-pairs N-body forces on a systolic ring
  (the rotation-pipeline workout for ``rotate``).
"""

from repro.apps import bitonic, fft, linalg, matmul, nbody, sort, stencil

__all__ = ["sort", "bitonic", "fft", "nbody", "linalg", "matmul", "stencil"]
