"""Hyperquicksort — the paper's flagship example (§3, §5, Table 1, Fig. 2/3).

Renderings of the same algorithm, each at a different point of the paper's
pipeline:

1. :func:`hyperquicksort` — the **recursive nested-parallel SCL program**
   of §3: pivot broadcast (``apply_brdcast``), split, partner exchange
   (``fetch`` over the hypercube partner map), merge, then ``split`` the
   cube into sub-cubes and recurse in parallel, ``combine`` at the end.
2. :func:`hyperquicksort_flat` — the **flattened iterative SPMD program**
   of §5 (what the paper derives by transformation before hand-compiling):
   ``iterFor d step`` over the distributed array, with pivot distribution
   expressed as a ``fetch`` from each sub-cube's leader.
3. :func:`hyperquicksort_machine` — the **hand-compiled message-passing
   program** running on the simulated AP1000: real data, real messages,
   virtual time.  This regenerates Table 1 and Figure 3.
   :func:`hyperquicksort_machine_nested` is its §3-faithful sibling,
   recursing on communicator splits instead of iterating — measured to be
   runtime-identical, which is why the paper could flatten for free.
4. :func:`hyperquicksort_expression` / :func:`hyperquicksort_compiled` —
   the §5 program as a **pure skeleton expression**, run through the SCL
   compiler onto the machine.
5. :func:`hyperquicksort_trace` — instrumented variant recording
   per-processor contents after every stage, reproducing Figure 2's
   (a)–(h) progression.

Distributed **sample sort** (:func:`sample_sort`,
:func:`sample_sort_machine`) is included as a comparator, plus sequential
references; the bitonic baseline lives in :mod:`repro.apps.bitonic`.

The base-language fragments (``SEQ_QUICKSORT``, ``MIDVALUE``, ``SPLIT``,
``MERGE``) are plain NumPy procedures, exactly as the paper keeps them
opaque Fortran/C code.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Sequence

import numpy as np

from repro.core import (
    Block,
    ParArray,
    align,
    apply_brdcast,
    combine,
    fetch,
    gather,
    imap,
    iter_for,
    parmap,
    partition,
    split,
)
from repro.errors import SkeletonError
from repro.machine import AP1000, Comm, Hypercube, Machine, MachineSpec, collectives
from repro.machine.simulator import RunResult
from repro.plan.ir import base_fragment
from repro.runtime.chunking import chunk_indices
from repro.runtime.executor import Executor

__all__ = [
    "seq_quicksort",
    "midvalue",
    "split_by_pivot",
    "merge_sorted",
    "hyperquicksort",
    "hyperquicksort_flat",
    "hyperquicksort_trace",
    "StageSnapshot",
    "SortCostParams",
    "hyperquicksort_machine",
    "hyperquicksort_machine_nested",
    "hyperquicksort_expression",
    "hyperquicksort_compiled",
    "sequential_sort_machine",
    "sample_sort",
    "sample_sort_machine",
]


# --------------------------------------------------------------------------
# Base-language fragments (the paper's omitted Fortran/C procedures)
# --------------------------------------------------------------------------

def seq_quicksort(a: np.ndarray) -> np.ndarray:
    """``SEQ_QUICKSORT``: sort a local array (NumPy introsort)."""
    return np.sort(np.asarray(a))


def midvalue(a: np.ndarray) -> float:
    """``MIDVALUE``: the median element of a *sorted* local array.

    The paper broadcasts "the median value of the sequential array on
    node 0" as the pivot; an empty local array yields 0 so the algorithm
    degrades gracefully on pathological splits.
    """
    a = np.asarray(a)
    if a.size == 0:
        return 0.0
    return float(a[a.size // 2])


def split_by_pivot(pivot: float, a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``SPLIT``: cut a sorted array into (≤ pivot, > pivot) halves."""
    a = np.asarray(a)
    k = int(np.searchsorted(a, pivot, side="right"))
    return a[:k], a[k:]


def merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``MERGE``: merge two sorted arrays into one sorted array."""
    a, b = np.asarray(a), np.asarray(b)
    if a.size == 0:
        return b.copy()
    if b.size == 0:
        return a.copy()
    out = np.concatenate([a, b])
    out.sort(kind="mergesort")  # stable two-run merge
    return out


# --------------------------------------------------------------------------
# 1. Recursive nested-parallel SCL program (§3)
# --------------------------------------------------------------------------

def _exchange_step(dim: int, da: ParArray) -> ParArray:
    """One pivot/split/exchange/merge step on a ``2**dim``-cube ParArray.

    Mirrors the paper's composition: ``map MERGE . exPart d . wpivot d``
    with the partner map ``myPart i = xor(i, 2^(d-1))``.
    """
    half = 1 << (dim - 1)
    conf = apply_brdcast(midvalue, 0, da)  # spreadPivot: (pivot, local) pairs
    low_high = parmap(lambda pv_loc: split_by_pivot(pv_loc[0], pv_loc[1]), conf)
    # lower-half processors keep the low part and send the high part;
    # upper-half processors keep high, send low (Fig. 2 (d)/(f))
    kept = imap(lambda i, lh: lh[0] if i & half == 0 else lh[1], low_high)
    to_send = imap(lambda i, lh: lh[1] if i & half == 0 else lh[0], low_high)
    received = fetch(lambda i: i ^ half, to_send)  # fetchPartner
    return parmap(lambda kr: merge_sorted(kr[0], kr[1]), align(kept, received))


def _hsort(da: ParArray, dim: int, *, executor: Executor | str | None) -> ParArray:
    """The recursive ``hsort``: exchange, then recurse on both sub-cubes."""
    if dim == 0:
        return da
    merged = _exchange_step(dim, da)
    sub_cubes = split(Block(2), merged)  # mergeAndDiv's division step
    sorted_subs = parmap(
        lambda cube: _hsort(cube, dim - 1, executor=None),
        sub_cubes, executor=executor)
    return combine(sorted_subs)


def hyperquicksort(values: Sequence[float] | np.ndarray, d: int, *,
                   executor: Executor | str | None = None) -> np.ndarray:
    """Sort ``values`` on a simulated ``d``-dimensional hypercube (§3).

    ``hypersort A d = gather (hsort d (map SEQ_QUICKSORT (partition block
    2^d A)))``.  Nested parallelism: after each exchange the cube splits
    into two sub-cubes sorted recursively (and, with an executor,
    concurrently).
    """
    values = np.asarray(values)
    p = 1 << d
    da = parmap(seq_quicksort, partition(Block(p), values), executor=executor)
    sorted_da = _hsort(da, d, executor=executor)
    return np.asarray(gather(ParArray(sorted_da.to_list(), dist=Block(p))))


# --------------------------------------------------------------------------
# 2. Flattened iterative SPMD program (§5)
# --------------------------------------------------------------------------

def hyperquicksort_flat(values: Sequence[float] | np.ndarray, d: int, *,
                        executor: Executor | str | None = None) -> np.ndarray:
    """The transformation-derived flat program: ``iterfor d step DA``.

    Each ``step i`` works on sub-cubes of dimension ``d - i``: the pivot
    travels by ``fetch (mf d')`` from each sub-cube's leader
    (``mf d' j = floor(j / 2^d') * 2^d'``) and the partner exchange uses
    ``mypartner j = xor(j, 2^(d'-1))`` — the exact index functions of the
    paper's flattened code.
    """
    values = np.asarray(values)
    p = 1 << d
    da = parmap(seq_quicksort, partition(Block(p), values), executor=executor)

    def step(i: int, x: ParArray) -> ParArray:
        dim = d - i          # the paper's d' = d - i
        sub = 1 << dim
        half = sub >> 1
        # wpivot: align x with pivots fetched from each sub-cube leader
        pivots = fetch(lambda j: (j // sub) * sub, parmap(midvalue, x))
        conf = align(pivots, x)
        low_high = parmap(
            lambda pv_loc: split_by_pivot(pv_loc[0], pv_loc[1]), conf,
            executor=executor)
        kept = imap(lambda j, lh: lh[0] if j & half == 0 else lh[1], low_high)
        to_send = imap(lambda j, lh: lh[1] if j & half == 0 else lh[0], low_high)
        received = fetch(lambda j: j ^ half, to_send)  # getpartner
        return parmap(lambda kr: merge_sorted(kr[0], kr[1]),
                      align(kept, received), executor=executor)

    sorted_da = iter_for(d, step, da)
    return np.asarray(gather(ParArray(sorted_da.to_list(), dist=Block(p))))


# --------------------------------------------------------------------------
# 3. Figure 2 stage tracer
# --------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class StageSnapshot:
    """Per-processor contents after one named stage of the algorithm."""

    label: str
    contents: tuple[tuple[float, ...], ...]

    def sizes(self) -> tuple[int, ...]:
        return tuple(len(c) for c in self.contents)

    def total(self) -> int:
        return sum(self.sizes())


def hyperquicksort_trace(values: Sequence[float] | np.ndarray,
                         d: int) -> list[StageSnapshot]:
    """Run the flat algorithm recording Figure 2's stage-by-stage states.

    Snapshot labels follow the figure: the initial unsorted vector on p0
    (a), the distributed+locally-sorted state (b/c), then per-iteration
    post-exchange (d/f) and post-merge (e/g) states, and the final gather
    to p0 (h).
    """
    values = np.asarray(values)
    p = 1 << d
    snaps: list[StageSnapshot] = []

    def snap(label: str, da: ParArray) -> None:
        snaps.append(StageSnapshot(
            label, tuple(tuple(float(v) for v in np.asarray(part)) for part in da)))

    initial = [np.asarray(values)] + [np.asarray([])] * (p - 1)
    snap("initial-on-p0", ParArray(initial))
    da = parmap(seq_quicksort, partition(Block(p), values))
    snap("distributed-sorted", da)
    for i in range(d):
        dim = d - i
        sub = 1 << dim
        half = sub >> 1
        pivots = fetch(lambda j: (j // sub) * sub, parmap(midvalue, da))
        low_high = parmap(lambda pv_loc: split_by_pivot(pv_loc[0], pv_loc[1]),
                          align(pivots, da))
        kept = imap(lambda j, lh: lh[0] if j & half == 0 else lh[1], low_high)
        to_send = imap(lambda j, lh: lh[1] if j & half == 0 else lh[0], low_high)
        received = fetch(lambda j: j ^ half, to_send)
        snap(f"iter{i}-exchanged",
             parmap(lambda kr: np.concatenate([np.asarray(kr[0]), np.asarray(kr[1])]),
                    align(kept, received)))
        da = parmap(lambda kr: merge_sorted(kr[0], kr[1]), align(kept, received))
        snap(f"iter{i}-merged", da)
    final = np.asarray(gather(ParArray(da.to_list(), dist=Block(p))))
    snap("gathered-on-p0",
         ParArray([final] + [np.asarray([])] * (p - 1)))
    return snaps


# --------------------------------------------------------------------------
# 4. Machine-level program (the hand compilation of §5) — Table 1 / Fig. 3
# --------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class SortCostParams:
    """Per-element operation counts charged for the base-language fragments.

    These play the role of the compiled Fortran inner loops on the AP1000:
    quicksort costs ``sort_ops_per_cmp`` per comparison over ``m log2 m``
    comparisons, splitting costs a binary search, merging is linear.
    """

    sort_ops_per_cmp: float = 16.0
    merge_ops_per_elem: float = 30.0
    split_ops_per_probe: float = 12.0
    median_ops: float = 6.0

    def sort_ops(self, m: int) -> float:
        return self.sort_ops_per_cmp * m * max(np.log2(max(m, 2)), 1.0)

    def merge_ops(self, m: int) -> float:
        return self.merge_ops_per_elem * m

    def split_ops(self, m: int) -> float:
        return self.split_ops_per_probe * max(np.log2(max(m, 2)), 1.0)


def hyperquicksort_machine(
    values: Sequence[int] | np.ndarray,
    d: int,
    *,
    spec: MachineSpec = AP1000,
    params: SortCostParams = SortCostParams(),
    include_distribution: bool = True,
    record_trace: bool = False,
    single_port: bool = False,
) -> tuple[np.ndarray, RunResult]:
    """Run hyperquicksort on the simulated hypercube machine.

    The data starts on processor 0, is scattered block-wise, locally
    sorted, pushed through ``d`` pivot/split/exchange/merge iterations and
    gathered back to processor 0 — the exact structure of the paper's
    experiment ("the 32 values to be sorted are initially located on
    processor 0", generalised).  Returns the sorted array and the
    :class:`RunResult` whose ``makespan`` is the Table 1 runtime.

    ``include_distribution=False`` skips the initial scatter and final
    gather (for scaling studies of the sort proper).
    """
    values = np.asarray(values)
    p = 1 << d
    machine = Machine(Hypercube(d), spec=spec, record_trace=record_trace,
                      single_port=single_port)
    word = values.dtype.itemsize

    def program(env):
        comm = Comm.world(env)
        rank = comm.rank
        # -- distribute: block scatter from p0
        if include_distribution and p > 1:
            blocks = None
            if rank == 0:
                blocks = [values[lo:hi] for lo, hi in chunk_indices(len(values), p)]
            local = yield from collectives.scatter(comm, blocks, root=0)
        else:
            lo, hi = chunk_indices(len(values), p)[rank]
            local = values[lo:hi]
        local = np.asarray(local)
        # -- local sort
        yield env.work(params.sort_ops(local.size))
        local = seq_quicksort(local)
        # -- d iterations over shrinking sub-cubes
        for it in range(d):
            dim = d - it
            sub = 1 << dim
            half = sub >> 1
            leader = (rank // sub) * sub
            cube = comm.subgroup(range(leader, leader + sub))
            # pivot: median on the sub-cube leader, broadcast
            if cube.rank == 0:
                yield env.work(params.median_ops)
                pivot = midvalue(local)
            else:
                pivot = None
            pivot = yield from collectives.bcast(cube, pivot, root=0,
                                                 nbytes=word)
            # split
            yield env.work(params.split_ops(local.size))
            low, high = split_by_pivot(pivot, local)
            keep, send_part = (low, high) if rank & half == 0 else (high, low)
            # partner exchange
            partner = cube.rank_of_pid(env.pid ^ half)
            yield cube.send(partner, send_part, tag=7,
                            nbytes=max(send_part.nbytes, 1))
            msg = yield cube.recv(partner, tag=7)
            recv_part = np.asarray(msg.payload)
            # merge
            yield env.work(params.merge_ops(keep.size + recv_part.size))
            local = merge_sorted(keep, recv_part)
        # -- gather to p0
        if include_distribution and p > 1:
            parts = yield from collectives.gather(
                comm, local, root=0, nbytes=max(int(local.nbytes), 1))
            if rank == 0:
                yield env.work(len(values))  # copy-out cost
                return np.concatenate([np.asarray(b) for b in parts])
            return None
        return local

    result = machine.run(program)
    if include_distribution and p > 1:
        sorted_values = result.values[0]
    elif p == 1:
        sorted_values = result.values[0]
    else:
        sorted_values = np.concatenate([np.asarray(v) for v in result.values])
    return np.asarray(sorted_values), result


def sequential_sort_machine(
    values: Sequence[int] | np.ndarray,
    *,
    spec: MachineSpec = AP1000,
    params: SortCostParams = SortCostParams(),
) -> tuple[np.ndarray, RunResult]:
    """One-processor reference run: pure local quicksort, no communication.

    This is the ``T(1)`` of the paper's speedup curve (Fig. 3) — the
    sequential algorithm, not the parallel algorithm on one processor.
    """
    values = np.asarray(values)
    machine = Machine(Hypercube(0), spec=spec)

    def program(env):
        yield env.work(params.sort_ops(values.size))
        return seq_quicksort(values)

    result = machine.run(program)
    return np.asarray(result.values[0]), result


def hyperquicksort_machine_nested(
    values: Sequence[int] | np.ndarray,
    d: int,
    *,
    spec: MachineSpec = AP1000,
    params: SortCostParams = SortCostParams(),
) -> tuple[np.ndarray, RunResult]:
    """The §3 *nested* program on the machine: recursion on sub-groups.

    Where :func:`hyperquicksort_machine` runs the §5 flattened iteration,
    this version keeps the paper's recursive structure: after each
    exchange the communicator **splits** into two half-cube groups
    (``combine . map (hsort (d-1)) . split``) and the recursion continues
    inside each group — nested parallelism mapped to MPI-style groups
    exactly as §2.1 prescribes.  Results and per-processor contents match
    the flat version; the measured times quantify what flattening buys
    (slightly fewer, cheaper group-relative operations and no recursive
    communicator bookkeeping).
    """
    values = np.asarray(values)
    p = 1 << d
    machine = Machine(Hypercube(d), spec=spec)
    blocks = [values[lo:hi] for lo, hi in chunk_indices(len(values), p)]
    word = values.dtype.itemsize

    def hsort(env, cube, local, dim):
        if dim == 0:
            return local
        half = 1 << (dim - 1)
        if cube.rank == 0:
            yield env.work(params.median_ops)
            pivot = midvalue(local)
        else:
            pivot = None
        pivot = yield from collectives.bcast(cube, pivot, root=0, nbytes=word)
        yield env.work(params.split_ops(local.size))
        low, high = split_by_pivot(pivot, local)
        keep, send_part = (low, high) if cube.rank & half == 0 else (high, low)
        partner = cube.rank ^ half
        yield cube.send(partner, send_part, tag=100 + dim,
                        nbytes=max(int(send_part.nbytes), 1))
        msg = yield cube.recv(partner, tag=100 + dim)
        recv_part = np.asarray(msg.payload)
        yield env.work(params.merge_ops(keep.size + recv_part.size))
        local = merge_sorted(keep, recv_part)
        # split the cube into two half-cube groups and recurse inside
        sub = cube.split(lambda r, half=half: r // half)
        local = yield from hsort(env, sub, local, dim - 1)
        return local

    def program(env):
        comm = Comm.world(env)
        local = np.asarray(blocks[comm.rank])
        yield env.work(params.sort_ops(local.size))
        local = seq_quicksort(local)
        local = yield from hsort(env, comm, local, d)
        return local

    res = machine.run(program)
    return np.concatenate([np.asarray(v) for v in res.values]), res


# --------------------------------------------------------------------------
# 5. Hyperquicksort as a compilable SCL expression
# --------------------------------------------------------------------------

#: Cost parameters for the module-level expression fragments below.  A
#: module constant (not a per-expression closure) so the fragments are
#: top-level callables — picklable by reference, which lets the
#: host-parallel data plane (:mod:`repro.plan.pexec`) ship them to
#: worker processes.  Workers re-import this module, so the ``scl_ops``
#: tags resolve identically on both sides.
_HQ_PARAMS = SortCostParams()


@base_fragment(ops=lambda dp: _HQ_PARAMS.median_ops
               + _HQ_PARAMS.split_ops(np.asarray(dp[0]).size))
def _hq_split_on_leader_median(dp):
    data, leader_data = dp
    return split_by_pivot(midvalue(leader_data), data)


class _HqSelect:
    """The piece selector of one hyperquicksort step, as a picklable
    callable: lower-half processors keep and receive the low pieces,
    upper-half processors keep and receive the high pieces."""

    scl_ops = 2.0

    def __init__(self, half: int):
        self.half = half
        self.__name__ = f"select_half_{half}"

    def __call__(self, j, own_partner):
        own, partner = own_partner
        if j & self.half == 0:
            return own[0], partner[0]
        return own[1], partner[1]


@base_fragment(ops=lambda kr: _HQ_PARAMS.merge_ops(
    np.asarray(kr[0]).size + np.asarray(kr[1]).size))
def _hq_merge_pair(kr):
    return merge_sorted(kr[0], kr[1])


@functools.lru_cache(maxsize=None)
def hyperquicksort_expression(d: int):
    """The flattened §5 program as a :mod:`repro.scl` expression.

    ``iterFor d step`` where each ``step i`` is a composition of skeleton
    nodes only — pivot alignment (``align id (fetch leader)``), split,
    partner exchange, merge — with the base-language fragments annotated
    by :func:`repro.scl.compile.base_fragment` cost tags.  The expression
    can be interpreted (`evaluate`) over a ParArray of pre-sorted blocks,
    rewritten by the §4 rules, or **compiled** onto the simulated machine
    (`run_expression`), which mechanises the paper's full pipeline.

    The fragments are module-level callables (see :data:`_HQ_PARAMS`), so
    compiled runs can dispatch them to the host-parallel worker pool
    (``parallel=True``); the index functions inside ``AlignFetch`` stay
    local — they are evaluated once at lowering time, never shipped.

    Memoised on ``d``: repeated calls return the *same* expression object,
    so every compile after the first is a plan-cache hit (plans are keyed
    by the expression).
    """
    from repro.scl import AlignFetch, IMap, IterFor, Map, compose_nodes

    def step(i):
        dim = d - i
        sub = 1 << dim
        half = sub >> 1
        return compose_nodes(
            Map(_hq_merge_pair),
            IMap(_HqSelect(half)),
            AlignFetch(lambda j, half=half: j ^ half),   # getpartner
            Map(_hq_split_on_leader_median),
            AlignFetch(lambda j, sub=sub: (j // sub) * sub),  # wpivot
        )

    return IterFor(d, step)


def hyperquicksort_compiled(
    values: Sequence[int] | np.ndarray,
    d: int,
    *,
    spec: MachineSpec = AP1000,
    params: SortCostParams = SortCostParams(),
    opt="auto",
    parallel: bool = False,
    workers: int | None = None,
) -> tuple[np.ndarray, RunResult]:
    """Run the §5 expression through the SCL compiler on the simulator.

    Local pre-sorting and the final gather are outside the expression (as
    in the paper's program, where ``map SEQ_QUICKSORT . partition`` and
    ``gather`` bracket the ``iterfor``); the iterations themselves execute
    as compiled skeleton code.  ``opt`` is the plan-optimizer switch of
    :class:`repro.scl.compile.CompiledProgram`; ``parallel``/``workers``
    dispatch the fragment compute to the host-parallel worker pool
    (virtual results and costs are bit-identical, only host time moves).
    """
    from repro.scl.compile import run_expression

    values = np.asarray(values)
    p = 1 << d
    machine = Machine(Hypercube(d), spec=spec)
    blocks = parmap(seq_quicksort, partition(Block(p), values))
    expr = hyperquicksort_expression(d)
    out, result = run_expression(expr, blocks, machine, opt=opt,
                                 parallel=parallel, workers=workers)
    return np.concatenate([np.asarray(b) for b in out]), result


# --------------------------------------------------------------------------
# 6. Sample sort baseline (extension)
# --------------------------------------------------------------------------

def sample_sort(values: Sequence[float] | np.ndarray, p: int, *,
                oversample: int = 8,
                executor: Executor | str | None = None,
                rng: np.random.Generator | None = None) -> np.ndarray:
    """Distributed sample sort over ``p`` processors (baseline comparator).

    Classic structure: local sort, regular sampling, splitter selection,
    all-to-all bucket exchange (expressed with the ``send`` skeleton's
    accumulate-vector semantics), local merge, concatenate.
    """
    values = np.asarray(values)
    if p <= 0:
        raise SkeletonError(f"p must be positive, got {p}")
    if values.size == 0:
        return values.copy()
    da = parmap(seq_quicksort, partition(Block(p), values), executor=executor)
    # regular sampling: up to `oversample` evenly-spaced samples per part
    def sample(a: np.ndarray) -> np.ndarray:
        a = np.asarray(a)
        if a.size == 0:
            return a
        k = min(oversample, a.size)
        idx = np.linspace(0, a.size - 1, k).astype(int)
        return a[idx]

    samples = np.sort(np.concatenate([np.asarray(s) for s in parmap(sample, da)]))
    splitter_idx = np.linspace(0, samples.size - 1, p + 1).astype(int)[1:-1]
    splitters = samples[splitter_idx]
    # bucket the local data; route bucket b of every source to processor b.
    # The p*p chunks form a ParArray on which the irregular `send` skeleton
    # performs the all-to-all: chunk k belongs to destination k mod p.
    buckets = parmap(lambda a: [np.asarray(chunk) for chunk in
                                np.split(np.asarray(a), np.searchsorted(a, splitters))],
                     da)
    flat = [chunk for src in range(p) for chunk in buckets[src]]
    from repro.core import send

    arrived = send(lambda k: [k % p], ParArray(flat))
    merged = [np.sort(np.concatenate([np.asarray(c) for c in arrived[i]]))
              if arrived[i] else np.asarray([], dtype=values.dtype)
              for i in range(p)]
    return np.concatenate(merged)


def sample_sort_machine(
    values: Sequence[int] | np.ndarray,
    p: int,
    *,
    spec: MachineSpec = AP1000,
    params: SortCostParams = SortCostParams(),
    oversample: int = 8,
) -> tuple[np.ndarray, RunResult]:
    """Distributed sample sort on the simulated machine (third comparator).

    The all-to-all bucket exchange makes this the communication-heavy
    contrast to hyperquicksort's ``d`` pairwise exchanges: one round of
    ``p(p-1)`` messages moving (on average) all data once.  Data starts
    pre-distributed block-wise, as in the other no-distribution-phase
    comparators.
    """
    values = np.asarray(values)
    if p <= 0:
        raise SkeletonError(f"p must be positive, got {p}")
    machine = Machine(p, spec=spec)
    spans = chunk_indices(len(values), p)

    def program(env):
        comm = Comm.world(env)
        rank = comm.rank
        lo, hi = spans[rank]
        local = np.asarray(values[lo:hi])
        yield env.work(params.sort_ops(local.size))
        local = seq_quicksort(local)
        if p == 1:
            return local
        # regular sampling + allgather + splitter selection (everywhere)
        k = min(oversample, max(local.size, 1))
        idx = np.linspace(0, max(local.size - 1, 0), k).astype(int)
        sample = local[idx] if local.size else local
        samples = yield from collectives.allgather(
            comm, sample, nbytes=max(int(np.asarray(sample).nbytes), 1))
        pool = np.sort(np.concatenate([np.asarray(s) for s in samples]))
        yield env.work(params.sort_ops(pool.size))
        cut = np.linspace(0, max(pool.size - 1, 0), p + 1).astype(int)[1:-1]
        splitters = pool[cut] if pool.size else pool
        # bucket local data and exchange all-to-all
        yield env.work(params.split_ops(max(local.size, 1)) * p)
        buckets = np.split(local, np.searchsorted(local, splitters))
        got = yield from collectives.alltoall(
            comm, buckets,
            nbytes=max(int(local.nbytes) // p, 1))
        pieces = [np.asarray(b) for b in got]
        total = sum(b.size for b in pieces)
        yield env.work(params.merge_ops(total))
        merged = np.sort(np.concatenate(pieces)) if total else \
            np.asarray([], dtype=values.dtype)
        return merged

    res = machine.run(program)
    out = np.concatenate([np.asarray(v) for v in res.values])
    return out, res
