"""Cannon's matrix multiplication on a processor grid.

§2.2 introduces ``rotate_row``/``rotate_col`` as the canonical regular
data-movement skeletons; Cannon's algorithm is *the* program they exist
for, so it serves here as the worked example of 2-D configurations:

* partition ``A`` and ``B`` onto a ``q x q`` grid (``RowColBlock``),
* skew: rotate row ``i`` of the ``A``-blocks left by ``i`` and column ``j``
  of the ``B``-blocks up by ``j`` (``rotate_row (λi.i)``, ``rotate_col
  (λj.j)``),
* ``q`` steps of: local block multiply-accumulate, then rotate all ``A``
  rows by one and all ``B`` columns by one.

The whole algorithm is a composition of configuration skeletons
(``distribution``), communication skeletons (the rotations) and ``iter_for``
— no explicit process or port ever appears, which is the paper's pitch.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import (
    ParArray,
    RowColBlock,
    align,
    gather,
    iter_for,
    parmap,
    partition,
    rotate_col,
    rotate_row,
    unalign,
)
from repro.errors import SkeletonError
from repro.machine import AP1000, Machine, MachineSpec
from repro.machine.simulator import RunResult
from repro.machine.topology import Mesh2D
from repro.runtime.executor import Executor

__all__ = ["cannon_matmul", "blocked_matmul_seq", "CannonCostParams",
           "cannon_matmul_machine"]


def blocked_matmul_seq(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Sequential reference product (NumPy ``@``)."""
    return np.asarray(A) @ np.asarray(B)


def cannon_matmul(A: np.ndarray, B: np.ndarray, q: int, *,
                  executor: Executor | str | None = None) -> np.ndarray:
    """Multiply ``A @ B`` on a ``q x q`` virtual-processor grid.

    Requires square matrices whose order is divisible by ``q`` (each block
    must be square for the block products to compose).
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n) or B.shape != (n, n):
        raise SkeletonError(
            f"cannon_matmul requires square same-order matrices, got {A.shape}, {B.shape}")
    if q <= 0 or n % q != 0:
        raise SkeletonError(f"matrix order {n} must be divisible by grid size {q}")

    pattern = RowColBlock(q, q)
    da = rotate_row(lambda i: i, partition(pattern, A))   # initial skew
    db = rotate_col(lambda j: j, partition(pattern, B))
    dc = parmap(lambda blk: np.zeros_like(np.asarray(blk)), partition(pattern, A))

    def step(_k: int, state: ParArray) -> ParArray:
        a, b, c = unalign(state)
        c = parmap(lambda abc: abc[2] + np.asarray(abc[0]) @ np.asarray(abc[1]),
                   align(a, b, c), executor=executor)
        return align(rotate_row(lambda _i: 1, a), rotate_col(lambda _j: 1, b), c)

    final = iter_for(q, step, align(da, db, dc))
    c_blocks = unalign(final, 2)
    return np.asarray(gather(ParArray(
        {idx: c_blocks[idx] for idx in c_blocks.indices()},
        c_blocks.shape, dist=pattern)))


@dataclasses.dataclass(frozen=True)
class CannonCostParams:
    """Operation counts for the machine-level Cannon multiply."""

    flops_per_madd: float = 2.0  # multiply + add per inner-product term


def cannon_matmul_machine(
    A: np.ndarray,
    B: np.ndarray,
    q: int,
    *,
    spec: MachineSpec = AP1000,
    params: CannonCostParams = CannonCostParams(),
    torus: bool = True,
) -> tuple[np.ndarray, RunResult]:
    """Cannon's algorithm on a simulated ``q x q`` processor torus.

    The AP1000's physical interconnect was a 2-D torus, which is exactly
    the topology Cannon's algorithm is designed for: after the initial
    skew (one message over up to ``q/2`` hops), every round moves each
    block one hop — all communication is nearest-neighbour.  Returns the
    product (assembled from the per-processor C blocks) and the run
    result.
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    n = A.shape[0]
    if A.shape != (n, n) or B.shape != (n, n):
        raise SkeletonError(
            f"cannon_matmul_machine requires square same-order matrices, "
            f"got {A.shape}, {B.shape}")
    if q <= 0 or n % q != 0:
        raise SkeletonError(f"matrix order {n} must be divisible by grid size {q}")
    mesh = Mesh2D(q, q, torus=torus)
    machine = Machine(mesh, spec=spec)
    m = n // q
    pattern = RowColBlock(q, q)
    blocks_a = pattern.split(A)
    blocks_b = pattern.split(B)

    def program(env):
        i, j = mesh.coords(env.pid)
        a = np.array(np.asarray(blocks_a[(i, j)]))
        b = np.array(np.asarray(blocks_b[(i, j)]))
        c = np.zeros((m, m))
        nbytes = max(int(a.nbytes), 1)
        if q > 1:
            # initial skew: A_ij -> (i, j - i), B_ij -> (i - j, j)
            a_dst = mesh.node_at(i, (j - i) % q)
            b_dst = mesh.node_at((i - j) % q, j)
            if a_dst != env.pid:
                yield env.send(a_dst, a, tag=9001, nbytes=nbytes)
            if b_dst != env.pid:
                yield env.send(b_dst, b, tag=9002, nbytes=nbytes)
            a_src = mesh.node_at(i, (j + i) % q)
            b_src = mesh.node_at((i + j) % q, j)
            if a_src != env.pid:
                msg = yield env.recv(a_src, tag=9001)
                a = np.asarray(msg.payload)
            if b_src != env.pid:
                msg = yield env.recv(b_src, tag=9002)
                b = np.asarray(msg.payload)
        left = mesh.node_at(i, (j - 1) % q)
        right = mesh.node_at(i, (j + 1) % q)
        up = mesh.node_at((i - 1) % q, j)
        down = mesh.node_at((i + 1) % q, j)
        for k in range(q):
            yield env.work(params.flops_per_madd * m * m * m)
            c = c + a @ b
            if q > 1 and k < q - 1:
                yield env.send(left, a, tag=2 * k + 10, nbytes=nbytes)
                yield env.send(up, b, tag=2 * k + 11, nbytes=nbytes)
                msg = yield env.recv(right, tag=2 * k + 10)
                a = np.asarray(msg.payload)
                msg = yield env.recv(down, tag=2 * k + 11)
                b = np.asarray(msg.payload)
        return c

    res = machine.run(program)
    c_blocks = ParArray(
        {(i, j): res.values[mesh.node_at(i, j)] for i in range(q) for j in range(q)},
        (q, q), dist=pattern)
    return np.asarray(pattern.unsplit(c_blocks)), res
