"""Jacobi iteration — the ``iter_until`` + halo-exchange workout.

A 2-D Laplace solve with Dirichlet boundaries: the grid's interior is
repeatedly replaced by the four-neighbour average until the largest update
falls below a tolerance.  Parallel structure in SCL terms:

* the grid is partitioned into row blocks (``RowBlock``),
* each sweep, every block ``fetch``-es its neighbours' boundary rows (the
  halo exchange is two ``fetch`` skeletons, one per direction),
* the sweep itself is a ``parmap`` of the local base-language stencil,
* convergence is a ``fold (max)`` over per-block residuals, driving
  ``iter_until``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import (
    ParArray,
    RowBlock,
    align,
    fetch,
    fold,
    gather,
    imap,
    iter_until,
    parmap,
    partition,
)
from repro.errors import SkeletonError
from repro.runtime.executor import Executor

__all__ = ["jacobi_seq", "jacobi_solve", "JacobiResult", "JacobiCostParams", "jacobi_machine"]


def _sweep_block(up: np.ndarray, block: np.ndarray, down: np.ndarray,
                 is_top: bool, is_bottom: bool) -> tuple[np.ndarray, float]:
    """One Jacobi sweep of a row block given halo rows; returns residual."""
    rows = np.vstack([up[None, :], block, down[None, :]])
    new = block.copy()
    # interior columns only; global top/bottom rows are fixed boundary
    lo = 1 if is_top else 0
    hi = block.shape[0] - (1 if is_bottom else 0)
    if lo < hi:
        interior = 0.25 * (rows[lo:hi, 1:-1] + rows[lo + 2: hi + 2, 1:-1]
                           + rows[lo + 1: hi + 1, :-2] + rows[lo + 1: hi + 1, 2:])
        new[lo:hi, 1:-1] = interior
    resid = float(np.max(np.abs(new - block))) if block.size else 0.0
    return new, resid


@dataclasses.dataclass(frozen=True)
class JacobiResult:
    """Converged grid plus iteration metadata."""

    grid: np.ndarray
    iterations: int
    residual: float


def jacobi_seq(grid: np.ndarray, *, tol: float = 1e-4,
               max_iter: int = 10_000) -> JacobiResult:
    """Sequential reference Jacobi solve."""
    g = np.array(grid, dtype=float)
    for it in range(max_iter):
        new = g.copy()
        new[1:-1, 1:-1] = 0.25 * (g[:-2, 1:-1] + g[2:, 1:-1]
                                  + g[1:-1, :-2] + g[1:-1, 2:])
        resid = float(np.max(np.abs(new - g)))
        g = new
        if resid < tol:
            return JacobiResult(g, it + 1, resid)
    return JacobiResult(g, max_iter, resid)


def jacobi_solve(grid: np.ndarray, p: int, *, tol: float = 1e-4,
                 max_iter: int = 10_000,
                 executor: Executor | str | None = None) -> JacobiResult:
    """Parallel Jacobi over ``p`` row blocks, written with SCL skeletons."""
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2 or min(grid.shape) < 3:
        raise SkeletonError(f"grid must be 2-D and at least 3x3, got {grid.shape}")
    pattern = RowBlock(p)
    da = partition(pattern, grid)
    if any(np.asarray(blk).shape[0] == 0 for blk in da):
        raise SkeletonError(f"{p} row blocks over {grid.shape[0]} rows leaves empty blocks")

    def sweep(state: tuple[ParArray, float, int]) -> tuple[ParArray, float, int]:
        blocks, _resid, it = state
        last_rows = parmap(lambda blk: np.asarray(blk)[-1, :], blocks)
        first_rows = parmap(lambda blk: np.asarray(blk)[0, :], blocks)
        up = fetch(lambda i: max(i - 1, 0), last_rows)      # halo from above
        down = fetch(lambda i: min(i + 1, p - 1), first_rows)  # halo from below
        conf = align(up, blocks, down)
        swept = imap(
            lambda i, ubd: _sweep_block(
                np.asarray(ubd[0]), np.asarray(ubd[1]), np.asarray(ubd[2]),
                is_top=(i == 0), is_bottom=(i == p - 1)),
            conf, executor=executor)
        new_blocks = parmap(lambda br: br[0], swept)
        resid = fold(max, parmap(lambda br: br[1], swept))
        return (ParArray(new_blocks.to_list(), dist=pattern), resid, it + 1)

    def converged(state: tuple[ParArray, float, int]) -> bool:
        _blocks, resid, it = state
        return resid < tol or it >= max_iter

    blocks, resid, iters = iter_until(
        sweep, lambda s: s, converged, (da, float("inf"), 0))
    return JacobiResult(np.asarray(gather(blocks)), iters, resid)


@dataclasses.dataclass(frozen=True)
class JacobiCostParams:
    """Operation counts for the machine-level Jacobi sweep."""

    stencil_ops_per_cell: float = 6.0   # 4 adds, 1 mul, 1 diff per cell
    norm_ops_per_cell: float = 2.0


def jacobi_machine(grid: np.ndarray, p: int, *, tol: float = 1e-4,
                   max_iter: int = 10_000,
                   spec=None,
                   params: JacobiCostParams = JacobiCostParams()):
    """The message-passing Jacobi solve on the simulated machine.

    Row blocks on a ring of ``p`` processors: every sweep exchanges halo
    rows with both neighbours, applies the local stencil (charged per
    cell), and agrees on convergence with an ``allreduce (max)`` of the
    per-block residuals — the machine rendering of ``iter_until``'s
    global condition.  Returns a :class:`JacobiResult` and the run result.
    """
    from repro.machine import AP1000, Comm, Machine, collectives
    from repro.machine.topology import Ring
    from repro.runtime.chunking import chunk_indices

    if spec is None:
        spec = AP1000
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2 or min(grid.shape) < 3:
        raise SkeletonError(f"grid must be 2-D and at least 3x3, got {grid.shape}")
    spans = chunk_indices(grid.shape[0], p)
    if any(hi == lo for lo, hi in spans):
        raise SkeletonError(f"{p} row blocks over {grid.shape[0]} rows leaves empty blocks")
    machine = Machine(Ring(p) if p > 1 else 1, spec=spec)

    def program(env):
        comm = Comm.world(env)
        rank = comm.rank
        lo, hi = spans[rank]
        block = grid[lo:hi].copy()
        row_bytes = max(int(block[0].nbytes), 1)
        iterations = 0
        resid = float("inf")
        while resid >= tol and iterations < max_iter:
            # halo exchange with ring neighbours (boundary blocks reuse
            # their own edge rows, matching the skeleton version)
            if p > 1:
                tag = 2 * iterations
                if rank > 0:
                    yield comm.send(rank - 1, block[0], tag=tag,
                                    nbytes=row_bytes)
                if rank < p - 1:
                    yield comm.send(rank + 1, block[-1], tag=tag + 1,
                                    nbytes=row_bytes)
                up = block[0]
                down = block[-1]
                if rank > 0:
                    msg = yield comm.recv(rank - 1, tag=tag + 1)
                    up = np.asarray(msg.payload)
                if rank < p - 1:
                    msg = yield comm.recv(rank + 1, tag=tag)
                    down = np.asarray(msg.payload)
            else:
                up, down = block[0], block[-1]
            yield env.work(params.stencil_ops_per_cell * block.size)
            new, local_resid = _sweep_block(
                np.asarray(up), block, np.asarray(down),
                is_top=(rank == 0), is_bottom=(rank == p - 1))
            yield env.work(params.norm_ops_per_cell * block.size)
            block = new
            if p > 1:
                resid = yield from collectives.allreduce(comm, local_resid, max)
            else:
                resid = local_resid
            iterations += 1
        return (block, iterations, resid)

    res = machine.run(program)
    blocks = [np.asarray(v[0]) for v in res.values]
    iterations = res.values[0][1]
    resid = res.values[0][2]
    return JacobiResult(np.concatenate(blocks, axis=0), iterations, resid), res
