"""Binary-exchange parallel FFT on a hypercube.

The decimation-in-frequency radix-2 FFT is the textbook hypercube
algorithm the AP1000 generation of machines was built for: with ``n``
coefficients block-distributed over ``p = 2**d`` processors, the first
``d`` butterfly stages pair elements on *different* processors (partner =
``rank ^ 2**(d-1-s)``, a single full-block exchange per stage) and the
remaining ``log2(n) - d`` stages are purely local.  Output emerges in
bit-reversed order and is permuted during the final gather.

Three renderings, as for the sorting apps:

* :func:`fft_seq` — the same DIF algorithm sequentially (reference),
* :func:`fft_parallel` — the skeleton program (``iter_for`` over stages,
  partner exchange via ``fetch``/``align``),
* :func:`fft_machine` — the message-passing program on the simulated
  machine, with butterfly work charged per element.

All three agree with ``numpy.fft.fft`` to floating-point accuracy.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.core import Block, ParArray, align, fetch, imap, iter_for, partition
from repro.errors import SkeletonError
from repro.machine import AP1000, Comm, Hypercube, Machine, MachineSpec
from repro.machine.simulator import RunResult
from repro.util.validation import ilog2, is_power_of_two

__all__ = ["FftCostParams", "fft_seq", "fft_parallel", "fft_machine", "bit_reverse"]


def bit_reverse(i: int, bits: int) -> int:
    """Reverse the low ``bits`` bits of ``i``."""
    out = 0
    for _ in range(bits):
        out = (out << 1) | (i & 1)
        i >>= 1
    return out


def _check_input(x: np.ndarray, p: int) -> tuple[int, int]:
    n = x.size
    if not is_power_of_two(n):
        raise SkeletonError(f"FFT length must be a power of two, got {n}")
    if n < p:
        raise SkeletonError(f"need at least one coefficient per processor "
                            f"({n} < {p})")
    return n, ilog2(n)


def _butterfly_block(block: np.ndarray, g0: int, h: int, n: int,
                     is_low: bool | None = None,
                     partner: np.ndarray | None = None) -> np.ndarray:
    """One DIF stage on a contiguous block starting at global index ``g0``.

    With ``partner`` given (cross-processor stage), the whole block is one
    side of every butterfly: ``is_low`` selects ``a + b`` (low side) or
    ``(a - b) * w`` (high side).  Without, the stage is local: pairs at
    distance ``h`` inside the block.
    """
    m = block.size
    g = g0 + np.arange(m)
    if partner is not None:
        w = np.exp(-2j * np.pi * (g % h) / (2 * h))
        if is_low:
            return block + partner
        return (partner - block) * w  # partner holds the low-side values
    out = block.copy()
    idx = np.arange(m)
    low = idx[(g // h) % 2 == 0]
    high = low + h
    w = np.exp(-2j * np.pi * (g[low] % h) / (2 * h))
    a, b = out[low].copy(), out[high].copy()
    out[low] = a + b
    out[high] = (a - b) * w
    return out


def fft_seq(x: Sequence[complex] | np.ndarray) -> np.ndarray:
    """Sequential DIF FFT (the exact algorithm the parallel versions run)."""
    data = np.asarray(x, dtype=complex).copy()
    n, bits = _check_input(data, 1)
    h = n // 2
    while h >= 1:
        data = _butterfly_block(data, 0, h, n)
        h //= 2
    out = np.empty_like(data)
    for g in range(n):
        out[bit_reverse(g, bits)] = data[g]
    return out


def fft_parallel(x: Sequence[complex] | np.ndarray, d: int) -> np.ndarray:
    """The skeleton-program FFT on ``2**d`` virtual processors."""
    data = np.asarray(x, dtype=complex)
    p = 1 << d
    n, bits = _check_input(data, p)
    m = n // p
    da = partition(Block(p), data)

    def stage(s: int, blocks: ParArray) -> ParArray:
        h = n >> (s + 1)
        if h >= m:  # cross-processor butterfly: exchange with partner
            dist = h // m
            partners = fetch(lambda r: r ^ dist, blocks)
            return imap(
                lambda r, pair: _butterfly_block(
                    np.asarray(pair[0]), r * m, h, n,
                    is_low=(r // dist) % 2 == 0,
                    partner=np.asarray(pair[1])),
                align(blocks, partners))
        return imap(
            lambda r, blk: _butterfly_block(np.asarray(blk), r * m, h, n),
            blocks)

    out_blocks = iter_for(bits, stage, da)
    flat = np.concatenate([np.asarray(b) for b in out_blocks])
    out = np.empty_like(flat)
    for g in range(n):
        out[bit_reverse(g, bits)] = flat[g]
    return out


@dataclasses.dataclass(frozen=True)
class FftCostParams:
    """Operation counts for the machine-level FFT."""

    butterfly_ops_per_elem: float = 14.0  # complex mul + add + twiddle
    permute_ops_per_elem: float = 2.0


def fft_machine(
    x: Sequence[complex] | np.ndarray,
    d: int,
    *,
    spec: MachineSpec = AP1000,
    params: FftCostParams = FftCostParams(),
) -> tuple[np.ndarray, RunResult]:
    """The message-passing binary-exchange FFT on the simulated hypercube.

    Data is pre-distributed block-wise; the bit-reversal permutation runs
    on processor 0 after a tree gather (charged per element).
    """
    data = np.asarray(x, dtype=complex)
    p = 1 << d
    n, bits = _check_input(data, p)
    m = n // p
    machine = Machine(Hypercube(d), spec=spec)
    blocks = np.split(data, p)

    def program(env):
        from repro.machine import collectives as C

        comm = Comm.world(env)
        rank = comm.rank
        local = np.asarray(blocks[rank]).copy()
        for s in range(bits):
            h = n >> (s + 1)
            if h >= m and p > 1:
                dist = h // m
                partner = rank ^ dist
                yield comm.send(partner, local, tag=s,
                                nbytes=max(int(local.nbytes), 1))
                msg = yield comm.recv(partner, tag=s)
                other = np.asarray(msg.payload)
                yield env.work(params.butterfly_ops_per_elem * m)
                is_low = (rank // dist) % 2 == 0
                local = _butterfly_block(
                    local, rank * m, h, n, is_low=is_low,
                    partner=other)
            else:
                yield env.work(params.butterfly_ops_per_elem * m)
                local = _butterfly_block(local, rank * m, h, n)
        if p > 1:
            parts = yield from C.gather(comm, local, root=0,
                                        nbytes=max(int(local.nbytes), 1))
        else:
            parts = [local]
        if rank == 0:
            yield env.work(params.permute_ops_per_elem * n)
            flat = np.concatenate([np.asarray(b) for b in parts])
            out = np.empty_like(flat)
            for g in range(n):
                out[bit_reverse(g, bits)] = flat[g]
            return out
        return None

    res = machine.run(program)
    return np.asarray(res.values[0]), res
