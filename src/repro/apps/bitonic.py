"""Block bitonic sort on a hypercube — baseline comparator for Table 1.

Batcher's bitonic sort is *the* classic hypercube sorting network and the
natural baseline for hyperquicksort (Quinn's textbook, which the paper
cites for hyperquicksort, presents both).  Where hyperquicksort does
``d`` data-dependent split/exchange rounds, bitonic sort does a fixed
``d(d+1)/2`` compare-split rounds, always exchanging *full* blocks — more
communication, perfectly balanced load.  On the simulated AP1000 this
reproduces the textbook result: hyperquicksort wins on uniform random
input, and the gap grows with the number of processors.

Two renderings, mirroring :mod:`repro.apps.sort`:

* :func:`bitonic_sort` — the skeleton program over a ParArray
  (``iter_for`` over compare-split steps built from ``AlignFetch``-style
  ``align``/``fetch``/``imap`` compositions),
* :func:`bitonic_sort_machine` — the message-passing program on the
  simulated machine, returning virtual timing.

Requires ``len(values)`` divisible by ``2**d`` (blocks must stay equal for
the compare-split invariant).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.apps.sort import SortCostParams, seq_quicksort
from repro.core import Block, ParArray, align, fetch, gather, imap, iter_for, parmap, partition
from repro.errors import SkeletonError
from repro.machine import AP1000, Comm, Hypercube, Machine, MachineSpec
from repro.machine.simulator import RunResult

__all__ = ["compare_split", "bitonic_steps", "bitonic_sort", "bitonic_sort_machine"]


def compare_split(mine: np.ndarray, theirs: np.ndarray, keep_low: bool) -> np.ndarray:
    """Merge two equal-length sorted blocks, keep the low or high half."""
    mine = np.asarray(mine)
    theirs = np.asarray(theirs)
    if mine.size != theirs.size:
        raise SkeletonError(
            f"compare_split needs equal blocks, got {mine.size} and {theirs.size}")
    merged = np.concatenate([mine, theirs])
    merged.sort(kind="mergesort")
    return merged[: mine.size] if keep_low else merged[mine.size:]


def bitonic_steps(d: int) -> list[tuple[int, int]]:
    """The (stage, substep) schedule of block bitonic sort on a d-cube.

    Stage ``i`` (0-based) runs substeps ``j = i .. 0``; in substep ``j``
    processor ``r`` compare-splits with partner ``r ^ 2**j``, keeping the
    low half iff bit ``j`` of ``r`` equals bit ``i+1`` of ``r``.
    """
    return [(i, j) for i in range(d) for j in range(i, -1, -1)]


def _keep_low(rank: int, stage: int, sub: int) -> bool:
    return ((rank >> sub) & 1) == ((rank >> (stage + 1)) & 1)


def bitonic_sort(values: Sequence[float] | np.ndarray, d: int) -> np.ndarray:
    """Sort with the skeleton-level block bitonic network on ``2**d`` procs."""
    values = np.asarray(values)
    p = 1 << d
    if values.size % p != 0:
        raise SkeletonError(
            f"bitonic sort needs len(values) divisible by {p}, got {values.size}")
    da = parmap(seq_quicksort, partition(Block(p), values))

    steps = bitonic_steps(d)

    def step(k: int, x: ParArray) -> ParArray:
        stage, sub = steps[k]
        half = 1 << sub
        partner_blocks = fetch(lambda r: r ^ half, x)
        return imap(
            lambda r, pair: compare_split(pair[0], pair[1],
                                          keep_low=_keep_low(r, stage, sub)),
            align(x, partner_blocks))

    sorted_da = iter_for(len(steps), step, da)
    return np.asarray(gather(ParArray(sorted_da.to_list(), dist=Block(p))))


def bitonic_sort_machine(
    values: Sequence[int] | np.ndarray,
    d: int,
    *,
    spec: MachineSpec = AP1000,
    params: SortCostParams = SortCostParams(),
) -> tuple[np.ndarray, RunResult]:
    """The message-passing block bitonic sort on the simulated hypercube.

    Data is pre-distributed (no scatter/gather phase) so its timing
    compares against ``hyperquicksort_machine(..., include_distribution=
    False)``; both charge the same :class:`SortCostParams` constants.
    """
    values = np.asarray(values)
    p = 1 << d
    if values.size % p != 0:
        raise SkeletonError(
            f"bitonic sort needs len(values) divisible by {p}, got {values.size}")
    machine = Machine(Hypercube(d), spec=spec)
    blocks = np.split(values, p)
    steps = bitonic_steps(d)

    def program(env):
        comm = Comm.world(env)
        rank = comm.rank
        local = np.asarray(blocks[rank])
        yield env.work(params.sort_ops(local.size))
        local = seq_quicksort(local)
        for tag, (stage, sub) in enumerate(steps):
            partner = rank ^ (1 << sub)
            yield comm.send(partner, local, tag=tag,
                            nbytes=max(int(local.nbytes), 1))
            msg = yield comm.recv(partner, tag=tag)
            yield env.work(params.merge_ops(local.size * 2))
            local = compare_split(local, np.asarray(msg.payload),
                                  keep_low=_keep_low(rank, stage, sub))
        return local

    res = machine.run(program)
    return np.concatenate([np.asarray(v) for v in res.values]), res
