"""All-pairs N-body force computation on a systolic ring.

The classic rotation-pipeline workout for the ``rotate`` skeleton: bodies
are block-distributed; each of ``p`` rounds every processor accumulates
the forces its resident bodies feel from the currently *visiting* block,
then the visiting blocks rotate one position around the ring.  After ``p``
rounds every pair has met exactly once per direction.

* :func:`forces_seq` — direct O(n²) reference,
* :func:`forces_parallel` — the skeleton program: ``iter_for p`` over a
  configuration of (resident, visiting, accumulated) triples moved by
  ``rotate``,
* :func:`forces_machine` — the ring message-passing program on the
  simulated machine (each round is one neighbour send/recv, so the
  communication pattern is exactly the paper's regular-data-movement
  story: the destination is a uniform function of the index).

Gravitational softening keeps the maths finite for coincident bodies.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core import Block, ParArray, align, iter_for, parmap, partition, rotate, unalign
from repro.errors import SkeletonError
from repro.machine import AP1000, Comm, Machine, MachineSpec, Ring
from repro.machine.simulator import RunResult
from repro.runtime.chunking import chunk_indices

__all__ = ["NBodyCostParams", "pairwise_forces", "forces_seq",
           "forces_parallel", "forces_machine"]

#: Softening length squared: keeps self/coincident interactions finite.
_EPS2 = 1e-6


def pairwise_forces(targets: np.ndarray, sources: np.ndarray,
                    masses: np.ndarray) -> np.ndarray:
    """Softened gravitational force on each target from all sources.

    ``targets``: (t, 3) positions; ``sources``: (s, 3); ``masses``: (s,).
    Self-pairs contribute ~0 through the softening term.
    """
    diff = sources[None, :, :] - targets[:, None, :]         # (t, s, 3)
    dist2 = np.sum(diff * diff, axis=2) + _EPS2              # (t, s)
    inv = masses[None, :] * dist2 ** -1.5
    return np.sum(diff * inv[:, :, None], axis=1)            # (t, 3)


def forces_seq(positions: np.ndarray, masses: np.ndarray) -> np.ndarray:
    """Direct all-pairs reference."""
    positions = np.asarray(positions, dtype=float)
    masses = np.asarray(masses, dtype=float)
    return pairwise_forces(positions, positions, masses)


def _check(positions: np.ndarray, masses: np.ndarray, p: int) -> None:
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise SkeletonError(f"positions must be (n, 3), got {positions.shape}")
    if masses.shape != (positions.shape[0],):
        raise SkeletonError("masses must match positions")
    if p <= 0 or positions.shape[0] < p:
        raise SkeletonError(
            f"need at least one body per processor ({positions.shape[0]} < {p})")


def forces_parallel(positions: np.ndarray, masses: np.ndarray, p: int) -> np.ndarray:
    """The systolic skeleton program over ``p`` virtual processors."""
    positions = np.asarray(positions, dtype=float)
    masses = np.asarray(masses, dtype=float)
    _check(positions, masses, p)

    resident = partition(Block(p), positions)
    res_mass = partition(Block(p), masses)
    visiting = align(partition(Block(p), positions), res_mass)
    acc = parmap(lambda blk: np.zeros_like(np.asarray(blk)), resident)

    def round_(_k: int, state: ParArray) -> ParArray:
        res, vis, forces = unalign(state)
        new_forces = parmap(
            lambda rvf: rvf[2] + pairwise_forces(
                np.asarray(rvf[0]), np.asarray(rvf[1][0]),
                np.asarray(rvf[1][1])),
            align(res, vis, forces))
        return align(res, rotate(1, vis), new_forces)

    final = iter_for(p, round_, align(resident, visiting, acc))
    _res, _vis, forces = unalign(final)
    return np.concatenate([np.asarray(f) for f in forces])


@dataclasses.dataclass(frozen=True)
class NBodyCostParams:
    """Operation counts for the machine-level N-body round."""

    ops_per_interaction: float = 20.0  # 3 subs, 3 mults, rsqrt, accumulate


def forces_machine(
    positions: np.ndarray,
    masses: np.ndarray,
    p: int,
    *,
    spec: MachineSpec = AP1000,
    params: NBodyCostParams = NBodyCostParams(),
) -> tuple[np.ndarray, RunResult]:
    """The systolic ring program on the simulated machine."""
    positions = np.asarray(positions, dtype=float)
    masses = np.asarray(masses, dtype=float)
    _check(positions, masses, p)
    machine = Machine(Ring(p), spec=spec) if p > 1 else Machine(1, spec=spec)
    spans = chunk_indices(positions.shape[0], p)

    def program(env):
        comm = Comm.world(env)
        rank = comm.rank
        lo, hi = spans[rank]
        resident = positions[lo:hi]
        vis_pos = resident.copy()
        vis_mass = masses[lo:hi].copy()
        forces = np.zeros_like(resident)
        for k in range(p):
            yield env.work(params.ops_per_interaction
                           * resident.shape[0] * vis_pos.shape[0])
            forces = forces + pairwise_forces(resident, vis_pos, vis_mass)
            if p > 1 and k < p - 1:
                nxt = (rank - 1) % p          # visiting block moves left
                prv = (rank + 1) % p
                payload = (vis_pos, vis_mass)
                nbytes = int(vis_pos.nbytes + vis_mass.nbytes)
                yield comm.send(nxt, payload, tag=k, nbytes=max(nbytes, 1))
                msg = yield comm.recv(prv, tag=k)
                vis_pos, vis_mass = msg.payload
                vis_pos = np.asarray(vis_pos)
                vis_mass = np.asarray(vis_mass)
        return forces

    res = machine.run(program)
    return np.concatenate([np.asarray(f) for f in res.values]), res
