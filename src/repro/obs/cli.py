"""``python -m repro trace`` — run an app traced and explain its makespan.

Runs one of the compiled example applications on a traced machine, then
prints the observability report: per-skeleton and per-instruction
rollups (with the plan cost model's *predicted* seconds next to each
*observed* window), the critical path through the event graph, and the
who-waited-on-whom idle table.  ``--sink`` additionally streams every
event to an artifact as it is recorded:

* ``jsonl`` — one JSON object per line (``span`` as a root-to-leaf frame
  list), the machine-readable interchange format,
* ``chrome`` — the Chrome trace-event JSON array; open the file in
  ``chrome://tracing`` or https://ui.perfetto.dev to see one timeline
  track per virtual processor.

::

    python -m repro trace hyperquicksort
    python -m repro trace hyperquicksort --sink chrome --out hq.trace.json
    python -m repro trace gauss-jordan -n 24 --procs 6 --critical-path
    python -m repro trace hyperquicksort --limit 10000   # bounded memory
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.machine import AP1000, MODERN_CLUSTER, PERFECT
from repro.obs import analyze, report
from repro.obs.sinks import ChromeTraceSink, JsonlSink
from repro.plan.lower import lower

__all__ = ["main"]

_SPECS = {"ap1000": AP1000, "modern": MODERN_CLUSTER, "perfect": PERFECT}

_DEFAULT_OUT = {"jsonl": "trace.jsonl", "chrome": "trace.json"}


def _run_hyperquicksort(args, machine_kw):
    from repro.apps.sort import hyperquicksort_expression, seq_quicksort
    from repro.core import parmap, partition
    from repro.core.partition import Block
    from repro.machine import Hypercube, Machine
    from repro.scl.compile import run_expression

    d = args.dim
    p = 1 << d
    expr = hyperquicksort_expression(d)
    plan = lower(expr, p)
    rng = np.random.default_rng(args.seed)
    values = rng.integers(0, 2**31, size=args.n).astype(np.int32)
    blocks = parmap(seq_quicksort, partition(Block(p), values))
    machine = Machine(Hypercube(d), spec=args.spec, **machine_kw)
    out, res = run_expression(expr, blocks, machine, label="hyperquicksort")
    merged = np.concatenate([np.asarray(b) for b in out])
    assert np.array_equal(merged, np.sort(values)), "traced sort incorrect"
    title = (f"traced hyperquicksort, d={d} (p={p}), {args.n} keys, "
             f"{args.spec.name}")
    eb = int(np.ceil(args.n / p)) * 4  # one block of int32 keys on the wire
    return plan, res, title, eb


def _run_gauss_jordan(args, machine_kw):
    from repro.apps.linalg import gauss_jordan_expression
    from repro.core import ColBlock, ParArray, gather, partition
    from repro.machine import Machine
    from repro.machine.topology import FullyConnected
    from repro.scl.compile import run_expression

    n, p = args.n, args.procs
    rng = np.random.default_rng(args.seed)
    A = rng.normal(size=(n, n)) + n * np.eye(n)
    b = rng.normal(size=n)
    aug = np.hstack([A, b.reshape(n, -1)])
    pattern = ColBlock(p)
    expr = gauss_jordan_expression(n, p, aug.shape)
    plan = lower(expr, p)
    machine = Machine(FullyConnected(p), spec=args.spec, **machine_kw)
    out, res = run_expression(expr, partition(pattern, aug), machine,
                              label="gauss-jordan")
    solved = np.asarray(gather(ParArray(out.to_list(), dist=pattern)))
    x = solved[:, n:].reshape(b.shape)
    assert np.allclose(A @ x, b), "traced solve incorrect"
    title = f"traced gauss-jordan, n={n}, p={p}, {args.spec.name}"
    eb = n * int(np.ceil((n + 1) / p)) * 8  # one float64 column block
    return plan, res, title, eb


_APPS = {
    "hyperquicksort": _run_hyperquicksort,
    "gauss-jordan": _run_gauss_jordan,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run a compiled example app with span tracing on and "
                    "print per-instruction predicted-vs-observed costs, "
                    "rollups and the critical path.")
    parser.add_argument("app", choices=sorted(_APPS))
    parser.add_argument("-n", type=int, default=None,
                        help="workload size (keys to sort / matrix order; "
                             "defaults: 4096 keys, n=24 system)")
    parser.add_argument("--dim", type=int, default=3,
                        help="hypercube dimension for hyperquicksort (p=2^dim)")
    parser.add_argument("--procs", type=int, default=6,
                        help="processor count for gauss-jordan")
    parser.add_argument("--seed", type=int, default=19950701)
    parser.add_argument("--spec", choices=sorted(_SPECS), default="ap1000",
                        help="machine cost model")
    parser.add_argument("--fn-ops", type=float, default=50.0,
                        help="assumed ops per opaque function application "
                             "in the predicted column")
    parser.add_argument("--sink", choices=sorted(_DEFAULT_OUT), default=None,
                        help="also stream every event to an export artifact")
    parser.add_argument("--out", default=None,
                        help="artifact path (defaults: trace.jsonl / "
                             "trace.json per --sink)")
    parser.add_argument("--top", type=int, default=10,
                        help="rows in the top-segments and idle tables")
    parser.add_argument("--critical-path", action="store_true",
                        help="print the full critical-path breakdown "
                             "(the summary line is always printed)")
    parser.add_argument("--limit", type=int, default=None,
                        help="bound the in-memory trace to the last N events "
                             "(ring buffer; analysis needing the full event "
                             "graph is skipped when events were evicted)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    args.spec = _SPECS[args.spec]
    if args.n is None:
        args.n = 4096 if args.app == "hyperquicksort" else 24
    if args.app == "hyperquicksort" and not (1 <= args.dim <= 10):
        print("error: --dim must be between 1 and 10", file=sys.stderr)
        return 2

    sink = None
    out_path = None
    if args.sink is not None:
        out_path = args.out or _DEFAULT_OUT[args.sink]
        sink = (JsonlSink(out_path) if args.sink == "jsonl"
                else ChromeTraceSink(out_path))
    machine_kw = {"record_trace": True, "trace_sink": sink,
                  "trace_limit": args.limit}

    try:
        plan, res, title, eb = _APPS[args.app](args, machine_kw)
    finally:
        if sink is not None:
            sink.close()

    trace = res.trace
    print(title)
    print("=" * len(title))
    print()
    print(report.skeleton_report(trace))
    print(report.instruction_report(trace, plan, spec=args.spec,
                                    fn_ops=args.fn_ops, element_bytes=eb,
                                    makespan=res.makespan))
    if trace.dropped:
        print(f"[ring buffer kept the last {len(trace.events())} of "
              f"{len(trace.events()) + trace.dropped} events; critical path "
              "and idle analysis need the full graph — rerun without "
              "--limit]")
    else:
        cp = analyze.critical_path(trace, spec=args.spec)
        print(f"critical path: {len(cp.steps)} events, length "
              f"{cp.length:.6e} s (makespan {res.makespan:.6e} s)")
        print()
        if args.critical_path:
            print(report.critical_path_report(cp, top=args.top))
        print(report.idle_report(trace, spec=args.spec, top=args.top))
    if sink is not None:
        print(f"wrote {sink.count} {args.sink} records to {out_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
