"""repro.obs — observability: span-attributed tracing, sinks, analysis.

The simulator records :class:`~repro.machine.trace.TraceEvent` s; the
plan executors attribute each one to a span stack
(``skeleton → [i] instruction → iter k``).  This package consumes those
traces:

* :mod:`repro.obs.sinks` — streaming exporters (JSONL, Chrome
  trace-event / Perfetto) and the :class:`TraceSink` protocol the
  machine accepts via ``Machine(..., trace_sink=...)``,
* :mod:`repro.obs.analyze` — critical path, per-span rollups, idle
  attribution,
* :mod:`repro.obs.report` — the analyses as aligned text tables,
* :mod:`repro.obs.latency` — request-latency quantiles and p50/p99/
  throughput rollups (shared by :mod:`repro.serve` and the perf rows),
* :mod:`repro.obs.cli` — ``python -m repro trace <app>``.
"""

from repro.obs.analyze import (
    CriticalPath,
    PathStep,
    Rollup,
    by_instruction,
    by_iteration,
    by_skeleton,
    critical_path,
    idle_attribution,
)
from repro.obs.latency import (
    quantile,
    render_latency_table,
    rollup_by,
    summarize_latencies,
)
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    TraceSink,
    event_to_dict,
    span_to_list,
)

__all__ = [
    "CriticalPath",
    "PathStep",
    "Rollup",
    "by_instruction",
    "by_iteration",
    "by_skeleton",
    "critical_path",
    "idle_attribution",
    "ChromeTraceSink",
    "JsonlSink",
    "MemorySink",
    "TraceSink",
    "event_to_dict",
    "span_to_list",
    "quantile",
    "summarize_latencies",
    "rollup_by",
    "render_latency_table",
]
