"""repro.obs — observability: span-attributed tracing, sinks, analysis.

The simulator records :class:`~repro.machine.trace.TraceEvent` s; the
plan executors attribute each one to a span stack
(``skeleton → [i] instruction → iter k``).  This package consumes those
traces:

* :mod:`repro.obs.sinks` — streaming exporters (JSONL, Chrome
  trace-event / Perfetto) and the :class:`TraceSink` protocol the
  machine accepts via ``Machine(..., trace_sink=...)``,
* :mod:`repro.obs.analyze` — critical path, per-span rollups, idle
  attribution,
* :mod:`repro.obs.report` — the analyses as aligned text tables,
* :mod:`repro.obs.latency` — request-latency quantiles and p50/p99/
  throughput rollups (shared by :mod:`repro.serve` and the perf rows),
* :mod:`repro.obs.metrics` — the *live* metrics plane: lock-cheap
  Counter/Gauge/Histogram registry, periodic snapshots (JSONL +
  Prometheus text exposition + ``repro.obs.metrics/v1`` artifact), and
  :class:`SloMonitor` for latency-aware admission in :mod:`repro.serve`,
* :mod:`repro.obs.cli` — ``python -m repro trace <app>``.
"""

from repro.obs.analyze import (
    CriticalPath,
    PathStep,
    Rollup,
    by_instruction,
    by_iteration,
    by_skeleton,
    critical_path,
    idle_attribution,
)
from repro.obs.latency import (
    quantile,
    render_latency_table,
    rollup_by,
    summarize_latencies,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    METRICS_SCHEMA,
    MetricsRegistry,
    MetricsSnapshot,
    PeriodicSnapshotter,
    SloMonitor,
    exponential_buckets,
    metrics_artifact,
    observe_fault_counters,
    register_plan_cache_gauges,
    render_prometheus,
)
from repro.obs.sinks import (
    ChromeTraceSink,
    JsonlSink,
    MemorySink,
    TraceSink,
    event_to_dict,
    span_to_list,
)

__all__ = [
    "CriticalPath",
    "PathStep",
    "Rollup",
    "by_instruction",
    "by_iteration",
    "by_skeleton",
    "critical_path",
    "idle_attribution",
    "ChromeTraceSink",
    "JsonlSink",
    "MemorySink",
    "TraceSink",
    "event_to_dict",
    "span_to_list",
    "quantile",
    "summarize_latencies",
    "rollup_by",
    "render_latency_table",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PeriodicSnapshotter",
    "SloMonitor",
    "exponential_buckets",
    "metrics_artifact",
    "observe_fault_counters",
    "register_plan_cache_gauges",
    "render_prometheus",
]
