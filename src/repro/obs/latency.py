"""Latency rollups: quantiles and throughput tables for request streams.

The skeleton service (:mod:`repro.serve`) records one completion record
per request through the :class:`~repro.obs.sinks.TraceSink` protocol;
this module turns lists of such records into the p50/p99/throughput
summaries the service report, the ``repro serve`` JSON artifact and the
``service_sustained`` perf rows all share.

Quantiles use the *nearest-rank* method (no interpolation): ``p99`` of
``n`` samples is the ``ceil(0.99 · n)``-th smallest — the conventional
definition for latency SLOs, and exact for small samples.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Mapping, Sequence

from repro.util.tables import render_table

__all__ = ["quantile", "summarize_latencies", "rollup_by",
           "render_latency_table"]


def quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of ``values`` (``0 < q <= 1``).

    ``quantile(xs, 0.5)`` is the median-by-rank, ``quantile(xs, 1.0)``
    the maximum.  Raises ``ValueError`` on an empty sample or a ``q``
    outside ``(0, 1]``.
    """
    if not values:
        raise ValueError("quantile of an empty sample")
    if not 0 < q <= 1:
        raise ValueError(f"q must be in (0, 1], got {q}")
    ordered = sorted(values)
    rank = math.ceil(q * len(ordered))
    return ordered[rank - 1]


def summarize_latencies(latencies_s: Sequence[float], *,
                        duration_s: float | None = None) -> dict[str, Any]:
    """The standard latency summary of one sample set.

    Latencies come in seconds; the summary reports milliseconds (the
    scale requests actually live at) plus ``throughput_rps`` when the
    observation window ``duration_s`` is given.
    """
    if not latencies_s:
        summary: dict[str, Any] = {"count": 0}
        if duration_s is not None:
            summary["throughput_rps"] = 0.0
        return summary
    ms = [lat * 1e3 for lat in latencies_s]
    summary = {
        "count": len(ms),
        "mean_ms": round(sum(ms) / len(ms), 3),
        "p50_ms": round(quantile(ms, 0.50), 3),
        "p90_ms": round(quantile(ms, 0.90), 3),
        "p99_ms": round(quantile(ms, 0.99), 3),
        "max_ms": round(max(ms), 3),
    }
    if duration_s is not None and duration_s > 0:
        summary["throughput_rps"] = round(len(ms) / duration_s, 1)
    return summary


def rollup_by(records: Iterable[Mapping[str, Any]], key: str, *,
              latency_field: str = "latency_s",
              duration_s: float | None = None) -> dict[str, dict[str, Any]]:
    """Group completion records by ``record[key]`` and summarize each group.

    Records missing ``key`` or the latency field are skipped (a
    rejection record has no latency).  Group names are sorted in the
    returned dict.
    """
    groups: dict[str, list[float]] = {}
    for rec in records:
        name = rec.get(key)
        lat = rec.get(latency_field)
        if name is None or lat is None:
            continue
        groups.setdefault(str(name), []).append(float(lat))
    return {name: summarize_latencies(groups[name], duration_s=duration_s)
            for name in sorted(groups)}


def render_latency_table(title: str,
                         rollups: Mapping[str, Mapping[str, Any]],
                         notes: str = "") -> str:
    """Aligned text table of per-group latency summaries."""
    rows = []
    for name, summary in rollups.items():
        rows.append([
            name,
            summary.get("count", 0),
            _fmt(summary.get("p50_ms")),
            _fmt(summary.get("p90_ms")),
            _fmt(summary.get("p99_ms")),
            _fmt(summary.get("max_ms")),
            _fmt(summary.get("throughput_rps")),
        ])
    return render_table(title,
                        ["group", "requests", "p50 (ms)", "p90 (ms)",
                         "p99 (ms)", "max (ms)", "rps"],
                        rows, notes=notes)


def _fmt(value: Any) -> str:
    return "-" if value is None else f"{value:.1f}"
