"""Streaming trace sinks: JSONL and Chrome trace-event exporters.

A *sink* observes every :class:`~repro.machine.trace.TraceEvent` the
instant the simulator records it (``Machine(..., trace_sink=sink)``), so
traces can be exported or bounded without a second pass over an in-memory
list.  The protocol is two methods::

    sink.emit(event)   # called once per recorded event, in record order
    sink.close()       # flush and finalise the artifact

Three implementations:

* :class:`MemorySink` — keeps the events in a list (useful to tee a run
  into analysis code while another sink streams to disk),
* :class:`JsonlSink` — one JSON object per line, the machine-readable
  interchange format (``span`` serialised as a root-to-leaf frame list),
* :class:`ChromeTraceSink` — the Chrome trace-event format (JSON Array
  Format), openable in ``chrome://tracing`` or https://ui.perfetto.dev:
  each event becomes a complete (``"ph": "X"``) slice on track
  ``tid = pid`` with timestamps in microseconds of virtual time, or an
  instant (``"ph": "i"``) mark for zero-length events such as crashes.

Both file sinks stream — events are written as they arrive, never
buffered whole — so a bounded in-memory trace
(``Machine(..., trace_limit=...)``) plus a file sink handles
million-event chaos runs in constant memory.
"""

from __future__ import annotations

import json
from typing import Any, IO, Iterable, Protocol, runtime_checkable

from repro.machine.trace import Span, TraceEvent

__all__ = [
    "TraceSink",
    "MemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "event_to_dict",
    "span_to_list",
]


@runtime_checkable
class TraceSink(Protocol):
    """Structural protocol every trace sink implements."""

    def emit(self, event: TraceEvent) -> None:
        """Observe one recorded event (called in record order)."""

    def close(self) -> None:
        """Flush buffered output and finalise the artifact."""


def span_to_list(span: Span | None) -> list[dict[str, Any]] | None:
    """Serialise a span chain as a root-to-leaf list of plain frames."""
    if span is None:
        return None
    out = []
    for frame in span.frames():
        rec: dict[str, Any] = {"label": frame.label}
        if frame.instr is not None:
            rec["instr"] = frame.instr
        if frame.iteration is not None:
            rec["iter"] = frame.iteration
        out.append(rec)
    return out


def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    """The JSONL record of one event (stable key order)."""
    rec: dict[str, Any] = {
        "pid": event.pid,
        "kind": event.kind,
        "start": event.start,
        "end": event.end,
    }
    if event.detail:
        rec["detail"] = dict(event.detail)
    span = span_to_list(event.span)
    if span is not None:
        rec["span"] = span
    return rec


class MemorySink:
    """Collects events in :attr:`events` (the in-memory reference sink)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.closed = False

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True


class _FileSink:
    """Shared open/own-or-borrow file handling for the file-based sinks."""

    def __init__(self, target: str | IO[str]):
        if isinstance(target, str):
            self._fh: IO[str] = open(target, "w", encoding="utf-8")
            self._owns = True
            self.path: str | None = target
        else:
            self._fh = target
            self._owns = False
            self.path = getattr(target, "name", None)
        self.count = 0
        self.closed = False

    def _finish(self) -> None:
        """Subclass hook: write any trailer before the file is closed."""

    def close(self) -> None:
        if self.closed:
            return
        self._finish()
        self.closed = True
        if self._owns:
            self._fh.close()
        else:
            self._fh.flush()


class JsonlSink(_FileSink):
    """Streams one JSON object per event to ``target`` (path or file).

    A non-serialisable detail value (an ndarray payload, say) is rendered
    with ``repr`` rather than failing the run — traces are diagnostics,
    and a lossy field beats a crashed export.
    """

    def emit(self, event: TraceEvent) -> None:
        self._fh.write(json.dumps(event_to_dict(event), default=repr))
        self._fh.write("\n")
        self.count += 1


# Non-timed kinds rendered as Chrome "instant" marks rather than slices.
_INSTANT_KINDS = frozenset({"crash", "drop"})


class ChromeTraceSink(_FileSink):
    """Streams the Chrome trace-event *JSON Array Format* to ``target``.

    Layout: one Chrome ``pid`` (the machine), one ``tid`` per virtual
    processor, ``ts``/``dur`` in microseconds of virtual time.  The file
    is written incrementally and closed with process/thread ``M``
    (metadata) records naming the tracks; the array is valid JSON once
    :meth:`close` runs.
    """

    #: Virtual seconds → Chrome microseconds.
    SCALE = 1e6

    def __init__(self, target: str | IO[str], *, process_name: str = "repro"):
        super().__init__(target)
        self._process_name = process_name
        self._tids: set[int] = set()
        self._fh.write("[")

    def _write(self, rec: dict[str, Any]) -> None:
        if self.count:
            self._fh.write(",\n")
        else:
            self._fh.write("\n")
        self._fh.write(json.dumps(rec, default=repr))
        self.count += 1

    def emit(self, event: TraceEvent) -> None:
        self._tids.add(event.pid)
        span = event.span
        name = span.label if span is not None else event.kind
        args: dict[str, Any] = dict(event.detail)
        if span is not None:
            args["span"] = span.path()
        rec: dict[str, Any] = {
            "name": name,
            "cat": event.kind,
            "pid": 0,
            "tid": event.pid,
            "ts": event.start * self.SCALE,
        }
        if event.kind in _INSTANT_KINDS or event.end <= event.start:
            rec["ph"] = "i"
            rec["s"] = "t"  # thread-scoped instant
        else:
            rec["ph"] = "X"
            rec["dur"] = (event.end - event.start) * self.SCALE
        if args:
            rec["args"] = args
        self._write(rec)

    def _finish(self) -> None:
        self._write({"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
                     "args": {"name": self._process_name}})
        for tid in sorted(self._tids):
            self._write({"name": "thread_name", "ph": "M", "pid": 0,
                         "tid": tid, "args": {"name": f"proc {tid}"}})
        self._fh.write("\n]\n")


def close_all(sinks: Iterable[Any]) -> None:
    """Close every sink, ignoring ones without a ``close`` method."""
    for sink in sinks:
        close = getattr(sink, "close", None)
        if close is not None:
            close()
