"""``python -m repro metrics`` — a live-ish dashboard over metric snapshots.

Two modes:

* ``python -m repro metrics serve`` — drive a short, seeded load run
  (the three phases of ``python -m repro serve``, shrunk) against a
  fresh :class:`~repro.obs.metrics.MetricsRegistry`, snapshotting on an
  interval, then render the snapshot series as a dashboard table: one
  row per snapshot, counters as cumulative totals with per-interval
  deltas visible in the rate column.  The overload phase is part of the
  run, so the table shows the slo-shed counter climb and the rolling
  p99 breach-then-clear.
* ``python -m repro metrics --from FILE`` — render the same dashboard
  from a previously written ``repro.obs.metrics/v1`` artifact (or a
  snapshot-per-line JSONL stream), e.g. the ``--metrics-out`` of a real
  run.

``--prom`` additionally prints the final snapshot as Prometheus text
exposition; ``--out`` writes the collected ``repro.obs.metrics/v1``
artifact (no-op with ``--from``: the file already exists).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Mapping, Sequence

from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsSnapshot,
    iter_snapshot_dicts,
    render_prometheus,
)
from repro.util.tables import render_table

__all__ = ["main", "build_parser", "dashboard", "load_snapshots"]


def _total(snap: MetricsSnapshot, name: str,
           where: Mapping[str, str] | None = None,
           field: str = "value") -> float:
    """Sum ``field`` over every series of ``name`` whose labels include
    ``where`` (counters aggregate across label combinations)."""
    total = 0.0
    for s in snap.series:
        if s["name"] != name or field not in s:
            continue
        labels = s.get("labels", {})
        if where and any(labels.get(k) != v for k, v in where.items()):
            continue
        total += s[field]
    return total


def dashboard(snapshots: Sequence[MetricsSnapshot], *,
              tail: int = 0) -> str:
    """The snapshot series as one aligned table (latest ``tail`` rows,
    0 = all)."""
    if not snapshots:
        return "(no snapshots)"
    shown = list(snapshots)[-tail:] if tail else list(snapshots)
    prev_done: float | None = None
    prev_t: float | None = None
    rows = []
    for snap in shown:
        done = _total(snap, "serve_requests_total")
        rate = "-"
        if prev_done is not None and snap.t > prev_t:
            rate = f"{(done - prev_done) / (snap.t - prev_t):.0f}"
        prev_done, prev_t = done, snap.t
        p99 = snap.value("serve_slo_rolling_p99_ms")
        shed = _total(snap, "serve_rejections_total",
                      {"reason": "slo-shed"})
        pool_w = snap.value("pexec_workers")
        pool = ("-" if pool_w is None else
                f"{int(pool_w)}/"
                f"{int(snap.value('pexec_workers_busy') or 0)}")
        rows.append([
            f"{snap.t:.2f}",
            int(done),
            rate,
            int(_total(snap, "serve_rejections_total")),
            int(shed),
            int(snap.value("serve_queue_depth") or 0),
            int(snap.value("serve_in_flight") or 0),
            pool,
            "-" if p99 is None else f"{p99:.1f}",
            int(snap.value("plan_cache_hits") or 0),
            int(_total(snap, "stream_chunks_total")),
        ])
    return render_table(
        f"metrics dashboard — {len(shown)}/{len(snapshots)} snapshots",
        ["t (s)", "done", "rps", "rej", "slo-shed", "queue", "busy",
         "pool w/b", "p99 (ms)", "cache-hits", "chunks"],
        rows,
        notes="counters are cumulative; 'rps' is the completion rate "
              "over the preceding interval; 'p99' is the rolling SLO "
              "window (blank when no SloMonitor is bound); 'pool w/b' is "
              "the pexec worker pool's configured width / busy workers "
              "('-' when no pool is registered).")


def load_snapshots(path: str) -> list[MetricsSnapshot]:
    """Snapshots from a ``repro.obs.metrics/v1`` artifact or a JSONL
    stream of snapshot dicts."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        # Not one document: a snapshot-per-line JSONL stream.
        return iter_snapshot_dicts(
            json.loads(line) for line in text.splitlines() if line.strip())
    if isinstance(doc, dict) and "snapshots" in doc:
        if doc.get("schema") != METRICS_SCHEMA:
            raise SystemExit(
                f"error: {path} has schema "
                f"{doc.get('schema')!r}, expected {METRICS_SCHEMA}")
        return iter_snapshot_dicts(doc["snapshots"])
    return iter_snapshot_dicts([doc])


def _run_serve_demo(args: argparse.Namespace
                    ) -> tuple[list[MetricsSnapshot], dict[str, Any]]:
    from repro.serve.cli import run_serve

    _, doc = run_serve(
        requests=args.requests, concurrency=8, workers=2, nprocs=4,
        seed=args.seed, burst_requests=40, burst_rate=4000.0,
        smoke=True, slo_requests=120,
        snapshot_interval_s=args.interval)
    return iter_snapshot_dicts(doc["snapshots"]), doc


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro metrics``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description="dashboard over repro.obs.metrics snapshots")
    parser.add_argument("app", nargs="?", choices=["serve"],
                        default="serve",
                        help="which app to drive when not using --from")
    parser.add_argument("--from", dest="from_path", default=None,
                        metavar="FILE",
                        help="render an existing repro.obs.metrics/v1 "
                             "artifact (or snapshot JSONL) instead of "
                             "running a load")
    parser.add_argument("--requests", type=int, default=96,
                        help="closed-loop budget of the demo run "
                             "(default 96)")
    parser.add_argument("--interval", type=float, default=0.1,
                        help="snapshot interval in seconds (default 0.1)")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed (default 0)")
    parser.add_argument("--tail", type=int, default=0,
                        help="show only the last N snapshots (default all)")
    parser.add_argument("--prom", action="store_true",
                        help="also print the final snapshot as Prometheus "
                             "text exposition")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the repro.obs.metrics/v1 artifact")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro metrics``; returns an exit code."""
    args = build_parser().parse_args(argv)

    doc: dict[str, Any] | None = None
    if args.from_path:
        snapshots = load_snapshots(args.from_path)
    else:
        snapshots, doc = _run_serve_demo(args)
    if not snapshots:
        print("error: no snapshots to render", file=sys.stderr)
        return 1

    print(dashboard(snapshots, tail=args.tail))
    if args.prom:
        print()
        print(render_prometheus(snapshots[-1]), end="")
    if args.out:
        if doc is None:
            print("error: --out needs a live run (with --from the "
                  "artifact already exists)", file=sys.stderr)
            return 1
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, default=str)
            fh.write("\n")
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
