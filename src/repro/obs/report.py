"""Render trace analyses as aligned text tables.

Pure formatting over :mod:`repro.obs.analyze` — every function takes
analysis inputs and returns a string (the CLI prints them; tests assert
on them).  The headline table, :func:`instruction_report`, lines up the
cost model's *predicted* per-instruction seconds against the *observed*
elapsed window from the trace: because prediction and execution consume
the identical :class:`~repro.plan.ir.Plan`, the gap per row is model
error, not a compilation difference.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.machine.cost import MachineSpec
from repro.machine.trace import Trace
from repro.obs import analyze
from repro.plan import ir
from repro.plan.cost import plan_cost
from repro.util.tables import render_table

__all__ = [
    "skeleton_report",
    "instruction_report",
    "critical_path_report",
    "idle_report",
]


def _s(x: float) -> str:
    return f"{x:.3e}"


def skeleton_report(trace: Trace | Iterable) -> str:
    """Per-skeleton rollup: time, events, messages, bytes by root label."""
    rolls = analyze.by_skeleton(trace)
    rows = [[label, _s(r.elapsed), _s(r.seconds), r.events, r.messages,
             r.bytes]
            for label, r in sorted(rolls.items(),
                                   key=lambda kv: -kv[1].elapsed)]
    return render_table(
        "per-skeleton rollup",
        ["skeleton", "elapsed s", "busy s", "events", "msgs", "bytes"],
        rows,
        notes="elapsed = wall-clock window of the group across all "
              "processors; busy = summed event durations.")


def _predicted(plan: ir.Plan, instrs, spec: MachineSpec, fn_ops: float,
               element_bytes: int | None):
    return plan_cost(ir.Plan(tuple(instrs), plan.nprocs, plan.grid, False),
                     spec=spec, fn_ops=fn_ops, element_bytes=element_bytes)


def instruction_report(trace: Trace | Iterable, plan: ir.Plan | None = None, *,
                       spec: MachineSpec | None = None, fn_ops: float = 50.0,
                       element_bytes: int | None = None,
                       makespan: float | None = None) -> str:
    """Per-instruction observed costs, with predicted columns when a plan
    (and its ``spec``) is supplied.

    Observed ``elapsed`` is the wall-clock window the instruction's
    events occupied; ``msgs``/``bytes`` count its sends.  Predicted
    columns price the same single instruction with
    :func:`repro.plan.cost.plan_cost`.  Loops get per-iteration
    sub-rows, both columns.
    """
    rolls = analyze.by_instruction(trace)
    predict = plan is not None and spec is not None
    header = ["instruction", "elapsed s", "busy s", "msgs", "bytes"]
    if predict:
        header += ["predicted s", "pred msgs"]

    def row(title: str, r: analyze.Rollup | None, cost) -> list[Any]:
        cells: list[Any] = [title]
        if r is None:
            cells += ["-", "-", "-", "-"]
        else:
            cells += [_s(r.elapsed), _s(r.seconds), r.messages, r.bytes]
        if predict:
            cells += ([_s(cost.seconds), cost.messages]
                      if cost is not None else ["-", "-"])
        return cells

    rows: list[list[Any]] = []
    if plan is not None:
        for i, instr in enumerate(plan.instrs):
            cost = (_predicted(plan, [instr], spec, fn_ops, element_bytes)
                    if predict else None)
            rows.append(row(f"[{i:>2}] {ir.instr_title(instr)}",
                            rolls.get(i), cost))
            if isinstance(instr, ir.Loop):
                iters = analyze.by_iteration(trace, instr=i)
                for it, body in enumerate(instr.bodies):
                    cost = (_predicted(plan, body, spec, fn_ops,
                                       element_bytes) if predict else None)
                    rows.append(row(f"      iter {it}", iters.get(it), cost))
        stray = rolls.get(None)
        if stray is not None:
            rows.append(row(stray.label, stray, None))
    else:
        for key, r in sorted(rolls.items(),
                             key=lambda kv: (kv[0] is None, kv[0])):
            title = r.label if key is None else f"[{key:>2}] {r.label}"
            rows.append(row(title, r, None))
    if makespan is not None:
        cells: list[Any] = ["whole run (makespan)", _s(makespan),
                            "-", "-", "-"]
        if predict:
            cells += ["-", "-"]
        rows.append(cells)
    notes = ("observed columns aggregate the traced events of each "
             "top-level plan instruction; ")
    notes += (f"predicted columns price the same instruction with the plan "
              f"cost model (fn_ops={fn_ops:g}, element_bytes="
              f"{element_bytes})." if predict
              else "run with a plan and spec for predicted columns.")
    return render_table("per-instruction observed vs predicted"
                        if predict else "per-instruction observed costs",
                        header, rows, notes=notes)


def critical_path_report(cp: analyze.CriticalPath, *, top: int = 10) -> str:
    """Category breakdown of the critical path plus its longest segments."""
    cat_rows = [[cat, _s(sec), f"{100 * sec / cp.length:5.1f}%"]
                for cat, sec in cp.by_category().items()] if cp.length else [
        [cat, _s(sec), "-"] for cat, sec in cp.by_category().items()]
    out = render_table(
        "critical path by category",
        ["category", "seconds", "share"], cat_rows,
        notes=f"path: {len(cp.steps)} events, length {_s(cp.length)} s "
              "(= makespan; segments telescope exactly).")
    seg_rows = []
    for s in cp.top_segments(top):
        e = s.event
        where = str(e.span) if e.span is not None else analyze.UNTAGGED
        seg_rows.append([_s(s.seconds), e.pid, e.kind, s.edge, where])
    out += "\n" + render_table(
        f"top {min(top, len(cp.steps))} critical-path segments",
        ["seconds", "pid", "kind", "edge", "span"], seg_rows,
        notes="edge: what pinned the event's finish — the previous event "
              "on its processor (local), the matching send (network), or "
              "time zero (start).")
    return out


def idle_report(trace: Trace | Iterable, *, spec: MachineSpec,
                top: int = 10) -> str:
    """Who-waited-on-whom table, largest blocked time first."""
    idle = analyze.idle_attribution(trace, spec=spec)
    rows = [[pid, src, _s(sec)]
            for (pid, src), sec in list(idle.items())[:top]]
    return render_table(
        "idle time: waiting on whom",
        ["waiter", "waited on", "blocked s"], rows,
        notes="blocked = receive wait until arrival (recv overhead "
              "excluded); timeouts charge their whole window.")
